//! Criterion micro-benchmarks for the analytical machinery: exact ε
//! computations, parameter selection and failure-probability evaluation —
//! the computations behind Tables 2–4 and Figures 1–3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pqs_core::prelude::*;
use pqs_core::probabilistic::params::{
    exact_epsilon_dissemination, exact_epsilon_intersecting, exact_epsilon_masking,
    smallest_quorum_intersecting,
};
use pqs_math::bounds::masking_threshold_k;

fn bench_exact_epsilons(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_epsilon");
    for &n in &[100u32, 900, 10_000] {
        let q = ((n as f64).sqrt() * 2.5).round() as u32;
        let b = (n as f64).sqrt() as u32 / 2;
        group.bench_with_input(BenchmarkId::new("intersecting", n), &n, |bench, _| {
            bench.iter(|| exact_epsilon_intersecting(n, q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dissemination", n), &n, |bench, _| {
            bench.iter(|| exact_epsilon_dissemination(n, q, b).unwrap())
        });
        let k = masking_threshold_k(n as u64, (2 * q) as u64) as u32;
        group.bench_with_input(BenchmarkId::new("masking", n), &n, |bench, _| {
            bench.iter(|| exact_epsilon_masking(n, 2 * q, b, k).unwrap())
        });
    }
    group.finish();
}

fn bench_parameter_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("parameter_selection");
    for &n in &[100u32, 400, 900] {
        group.bench_with_input(BenchmarkId::new("smallest_quorum", n), &n, |bench, _| {
            bench.iter(|| smallest_quorum_intersecting(n, 1e-3).unwrap())
        });
    }
    group.finish();
}

fn bench_failure_probability(c: &mut Criterion) {
    let mut group = c.benchmark_group("failure_probability");
    for &n in &[100u32, 900] {
        let prob = EpsilonIntersecting::with_target_epsilon(n, 1e-3).unwrap();
        let majority = Majority::new(n).unwrap();
        let grid = Grid::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("probabilistic", n), &n, |bench, _| {
            bench.iter(|| prob.failure_probability(0.4))
        });
        group.bench_with_input(BenchmarkId::new("majority", n), &n, |bench, _| {
            bench.iter(|| majority.failure_probability(0.4))
        });
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |bench, _| {
            bench.iter(|| grid.failure_probability(0.4))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_exact_epsilons, bench_parameter_selection, bench_failure_probability
}
criterion_main!(benches);
