//! Criterion benchmark for the discrete-event engine's hot loop.
//!
//! Reports engine throughput in **events per second**: each simulated
//! operation costs one arrival event, one probe-reply event per probed
//! server and one timeout event, so `events/sec` is the honest unit for
//! "how fast can this simulator chew through a workload" — it is invariant
//! under quorum-size changes, unlike ops/sec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pqs_core::prelude::*;
use pqs_sim::latency::LatencyModel;
use pqs_sim::runner::{ProtocolKind, SimConfig, Simulation};
use pqs_sim::workload::KeySpace;
use std::time::Instant;

fn engine_config(arrival_rate: f64) -> SimConfig {
    SimConfig {
        duration: 10.0,
        arrival_rate,
        read_fraction: 0.9,
        latency: LatencyModel::Exponential { mean: 2e-3 },
        seed: 1,
        ..SimConfig::default()
    }
}

/// Measures and prints events/sec directly (the number the acceptance
/// criterion asks for), then hands the same closure to criterion for its
/// statistics.
fn bench_engine_throughput(c: &mut Criterion) {
    let sys = EpsilonIntersecting::with_target_epsilon(100, 1e-3).unwrap();

    // One timed reference run per load level, printed as events/sec.
    for &rate in &[100.0f64, 500.0] {
        let config = engine_config(rate);
        let start = Instant::now();
        let report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "engine_throughput(arrival_rate={rate}): {} events in {:.3}s -> {:.0} events/sec \
             (max in-flight {})",
            report.events_processed,
            elapsed,
            report.events_processed as f64 / elapsed,
            report.max_in_flight,
        );
    }

    let mut group = c.benchmark_group("event_engine");
    for &rate in &[100.0f64, 500.0] {
        group.bench_with_input(
            BenchmarkId::new("safe_run", rate as u64),
            &rate,
            |bench, &rate| {
                let config = engine_config(rate);
                bench.iter(|| Simulation::new(&sys, ProtocolKind::Safe, config).run())
            },
        );
    }
    // The probe margin multiplies the event count per op: measure the cost.
    group.bench_function("safe_run_margin_8", |bench| {
        let mut config = engine_config(100.0);
        config.probe_margin = 8;
        bench.iter(|| Simulation::new(&sys, ProtocolKind::Safe, config).run())
    });
    group.finish();

    // The sharded key space: the per-variable session table (register map,
    // per-key write logs, per-key metrics) must not cost events/sec as the
    // key count grows. A regression here is the session-table overhead.
    let mut group = c.benchmark_group("event_engine_multi_key");
    for &keys in &[1u64, 64, 4096] {
        group.bench_with_input(BenchmarkId::new("zipf_run", keys), &keys, |bench, &keys| {
            let mut config = engine_config(500.0);
            config.keyspace = if keys == 1 {
                KeySpace::single()
            } else {
                KeySpace::zipf(keys, 1.0)
            };
            bench.iter(|| Simulation::new(&sys, ProtocolKind::Safe, config).run())
        });
    }
    group.finish();

    let mask = ProbabilisticMasking::with_target_epsilon(100, 5, 1e-3).unwrap();
    c.bench_function("event_engine/masking_run", |bench| {
        let config = engine_config(100.0);
        bench.iter(|| {
            Simulation::new(
                &mask,
                ProtocolKind::Masking {
                    threshold: mask.read_threshold(),
                },
                config,
            )
            .run()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_engine_throughput
}
criterion_main!(benches);
