//! Criterion benchmark for the discrete-event engine's hot loop, plus the
//! CI throughput floor.
//!
//! Reports engine throughput in **events per second**: each simulated
//! operation costs one arrival event, one probe-reply event per probed
//! server and one timeout event (and, with diffusion on, one event per
//! gossip round and per push), so `events/sec` is the honest unit for
//! "how fast can this simulator chew through a workload" — it is invariant
//! under quorum-size changes, unlike ops/sec.
//!
//! Four environment knobs wire this bench into CI:
//!
//! * `PQS_BENCH_QUICK=1` — run only the timed reference runs (a few
//!   hundred milliseconds), skipping the criterion statistics; the mode
//!   the `bench-floor` CI job uses.
//! * `PQS_BENCH_FLOOR=<events/sec>` — after measuring, exit nonzero if the
//!   best observed engine throughput falls below the floor.
//! * `PQS_BENCH_THREADS=<n>` — additionally time the 8-shard parallel
//!   engine with `n` worker threads (the sharded engine always runs with
//!   1 thread as a reference).
//! * `PQS_BENCH_THREADS_FLOOR=<events/sec>` — exit nonzero if the
//!   `PQS_BENCH_THREADS` run falls below this floor; CI uses it to pin the
//!   multi-core speedup, not just the serial hot loop.
//! * `PQS_BENCH_SPINE_MAX_FRACTION=<0..1>` — exit nonzero if the sharded
//!   gossip cell spends more than this fraction of its wall clock on the
//!   spine's barrier work (sync + plan + route, from
//!   [`pqs_sim::metrics::EngineStageTimings`]); CI uses it to keep the
//!   incremental sync and batched routing proportional to per-round work.
//! * `PQS_BENCH_QUEUE_FLOOR=<ops/sec>` — exit nonzero if the calendar
//!   queue's *hold* throughput (pop + reschedule at constant depth) at
//!   10^6 pending events falls below the floor; CI uses it to pin the
//!   O(1)-amortized scheduling claim at the depth where a binary heap's
//!   log factor is unmistakable.
//!
//! Every invocation writes the measured numbers — including the per-run
//! drain/sync/plan/route stage breakdown — to
//! `target/experiments/BENCH_engine.json` so the perf trajectory can be
//! tracked per push as a CI artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pqs_core::prelude::*;
use pqs_sim::latency::LatencyModel;
use pqs_sim::metrics::EngineStageTimings;
use pqs_sim::runner::{DiffusionPolicy, ProtocolKind, SimConfig, Simulation};
use pqs_sim::time::{EventQueue, QueueKind};
use pqs_sim::workload::KeySpace;
use std::io::Write as _;
use std::time::Instant;

fn engine_config(arrival_rate: f64) -> SimConfig {
    SimConfig::builder()
        .with_duration(10.0)
        .with_arrival_rate(arrival_rate)
        .with_read_fraction(0.9)
        .with_latency(LatencyModel::Exponential { mean: 2e-3 })
        .with_seed(1)
        .build()
}

fn diffusion_config(arrival_rate: f64) -> SimConfig {
    let mut config = engine_config(arrival_rate);
    config.keyspace = KeySpace::zipf(64, 1.0);
    config.diffusion = Some(
        DiffusionPolicy::full_push(0.25, 2)
            .with_push_latency(LatencyModel::Exponential { mean: 2e-3 }),
    );
    config
}

/// The parallel-engine reference cell: 8 shards over a 64-key Zipf space,
/// drained by `threads` worker threads.  The report is bit-identical for
/// every thread count, so thread sweeps measure pure engine speed.
fn sharded_config(arrival_rate: f64, threads: u32) -> SimConfig {
    SimConfig::builder()
        .with_duration(10.0)
        .with_arrival_rate(arrival_rate)
        .with_read_fraction(0.9)
        .with_keyspace(KeySpace::zipf(64, 1.0))
        .with_latency(LatencyModel::Exponential { mean: 2e-3 })
        .with_seed(1)
        .with_num_shards(8)
        .with_threads(threads)
        .build()
}

/// The spine-cost reference cell: the diffusion workload on the sharded
/// engine, whose drain/sync/plan/route breakdown feeds the
/// `PQS_BENCH_SPINE_MAX_FRACTION` guard.
fn sharded_gossip_config(arrival_rate: f64, threads: u32) -> SimConfig {
    let mut config = diffusion_config(arrival_rate);
    config.num_shards = 8;
    config.threads = threads;
    config
}

/// One timed reference run: name, events processed, wall-clock seconds and
/// the engine's own stage breakdown.
struct Measured {
    name: String,
    events: u64,
    seconds: f64,
    stages: EngineStageTimings,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.events as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Runs each reference configuration once under a wall clock and prints
/// events/sec — the numbers the floors are enforced against.  `threads`
/// (the `PQS_BENCH_THREADS` knob) adds the multi-thread sharded run.
fn reference_runs(sys: &EpsilonIntersecting, threads: Option<u32>) -> Vec<Measured> {
    let mut measured = Vec::new();
    // One untimed pass over the largest cell first: the timed numbers
    // should measure the engine, not first-touch page faults and allocator
    // growth from a cold process.
    let _ = Simulation::new(sys, ProtocolKind::Safe, sharded_config(2000.0, 1)).run();
    let mut time_run = |name: String, config: SimConfig| {
        let start = Instant::now();
        let (report, stages) = Simulation::new(sys, ProtocolKind::Safe, config).run_with_stats();
        let seconds = start.elapsed().as_secs_f64();
        let m = Measured {
            name,
            events: report.events_processed,
            seconds,
            stages,
        };
        println!(
            "engine_throughput({}): {} events in {:.3}s -> {:.0} events/sec \
             (max in-flight {}, spine fraction {:.3})",
            m.name,
            m.events,
            seconds,
            m.events_per_sec(),
            report.max_in_flight,
            m.stages.spine_fraction(),
        );
        measured.push(m);
    };
    time_run("safe_run/100".into(), engine_config(100.0));
    time_run("safe_run/500".into(), engine_config(500.0));
    time_run("diffusion_run/500".into(), diffusion_config(500.0));
    time_run("sharded_run/2000x1t".into(), sharded_config(2000.0, 1));
    time_run(
        "sharded_gossip_run/500x1t".into(),
        sharded_gossip_config(500.0, 1),
    );
    if let Some(t) = threads {
        time_run(format!("sharded_run/2000x{t}t"), sharded_config(2000.0, t));
    }
    measured
}

/// One timed queue-depth cell: backend name, held depth, hold operations
/// performed (one pop + one schedule each) and wall-clock seconds.
struct QueueMeasured {
    name: String,
    depth: usize,
    ops: u64,
    seconds: f64,
}

impl QueueMeasured {
    fn ops_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.ops as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// SplitMix64 step: a tiny deterministic generator so the queue microbench
/// needs no RNG dependency and replays identically run to run.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from SplitMix64 bits.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds a queue of `kind` holding `depth` pending events with times
/// uniform over `[0, depth)` — unit mean spacing, the density the hold
/// loop maintains.
fn prefilled_queue(kind: QueueKind, depth: usize, state: &mut u64) -> EventQueue<u64> {
    let mut queue = EventQueue::with_kind(kind);
    let span = depth as f64;
    for i in 0..depth {
        queue.schedule(unit_f64(state) * span, i as u64);
    }
    queue
}

/// The classic *hold* microbenchmark over the two `EventQueue` backends:
/// at a constant pending depth, each operation pops the earliest event and
/// reschedules it a uniform `[0, depth)` ahead, so the queue stays at the
/// target depth while cycling through its buckets.  ops/sec at depth 10^6
/// vs 10^2 is the O(1)-vs-O(log n) story in one table.
fn queue_depth_runs() -> Vec<QueueMeasured> {
    let mut measured = Vec::new();
    for &depth in &[100usize, 10_000, 1_000_000] {
        for (kind_name, kind) in [("heap", QueueKind::Heap), ("calendar", QueueKind::Calendar)] {
            let mut state = 0x5eed_0000 + depth as u64;
            let mut queue = prefilled_queue(kind, depth, &mut state);
            let span = depth as f64;
            let ops = 400_000u64;
            // Warm the hold loop before timing so the first bucket lap and
            // any initial resize settle out of the measurement.
            for _ in 0..(ops / 10) {
                let (t, ev) = queue.pop().expect("hold keeps the queue non-empty");
                queue.schedule(t + unit_f64(&mut state) * span, ev);
            }
            let start = Instant::now();
            for _ in 0..ops {
                let (t, ev) = queue.pop().expect("hold keeps the queue non-empty");
                queue.schedule(t + unit_f64(&mut state) * span, ev);
            }
            let seconds = start.elapsed().as_secs_f64();
            let m = QueueMeasured {
                name: format!("{kind_name}/{depth}"),
                depth,
                ops,
                seconds,
            };
            println!(
                "queue_depth({}): {} hold ops in {:.3}s -> {:.0} ops/sec",
                m.name,
                m.ops,
                seconds,
                m.ops_per_sec(),
            );
            measured.push(m);
        }
    }
    measured
}

/// Serialises the measurements (and the floor verdicts) as JSON by hand —
/// the vendored serde shim's derives are no-ops, so formatting is explicit.
fn write_json(
    measured: &[Measured],
    queue_measured: &[QueueMeasured],
    floor: Option<f64>,
    threads_floor: Option<f64>,
    spine_max: Option<f64>,
    queue_floor: Option<f64>,
    pass: bool,
) {
    let best = measured
        .iter()
        .map(Measured::events_per_sec)
        .fold(0.0, f64::max);
    let runs: Vec<String> = measured
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"events\": {}, \"seconds\": {:.6}, \
                 \"events_per_sec\": {:.0}, \"drain_seconds\": {:.6}, \
                 \"sync_seconds\": {:.6}, \"plan_seconds\": {:.6}, \
                 \"route_seconds\": {:.6}, \"spine_fraction\": {:.4}}}",
                m.name,
                m.events,
                m.seconds,
                m.events_per_sec(),
                m.stages.drain_seconds,
                m.stages.sync_seconds,
                m.stages.plan_seconds,
                m.stages.route_seconds,
                m.stages.spine_fraction(),
            )
        })
        .collect();
    let queue_runs: Vec<String> = queue_measured
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"depth\": {}, \"ops\": {}, \
                 \"seconds\": {:.6}, \"ops_per_sec\": {:.0}}}",
                m.name,
                m.depth,
                m.ops,
                m.seconds,
                m.ops_per_sec(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"event_engine\",\n  \"floor_events_per_sec\": {},\n  \
         \"threads_floor_events_per_sec\": {},\n  \
         \"spine_max_fraction\": {},\n  \
         \"queue_floor_ops_per_sec\": {},\n  \
         \"best_events_per_sec\": {:.0},\n  \"pass\": {},\n  \"runs\": [\n{}\n  ],\n  \
         \"queue_depth\": [\n{}\n  ]\n}}\n",
        floor.map_or("null".to_string(), |f| format!("{f:.0}")),
        threads_floor.map_or("null".to_string(), |f| format!("{f:.0}")),
        spine_max.map_or("null".to_string(), |f| format!("{f:.3}")),
        queue_floor.map_or("null".to_string(), |f| format!("{f:.0}")),
        best,
        pass,
        runs.join(",\n"),
        queue_runs.join(",\n")
    );
    let dir = pqs_bench::output_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("BENCH_engine.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("(bench json written to {})", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Measures and prints events/sec directly (the number the floor enforces),
/// then — unless `PQS_BENCH_QUICK=1` — hands the same closures to criterion
/// for its statistics.
fn bench_engine_throughput(c: &mut Criterion) {
    let sys = EpsilonIntersecting::with_target_epsilon(100, 1e-3).unwrap();
    let quick = std::env::var("PQS_BENCH_QUICK").is_ok_and(|v| v == "1");
    let floor: Option<f64> = std::env::var("PQS_BENCH_FLOOR")
        .ok()
        .map(|v| v.parse().expect("PQS_BENCH_FLOOR must be a number"));
    let threads: Option<u32> = std::env::var("PQS_BENCH_THREADS")
        .ok()
        .map(|v| v.parse().expect("PQS_BENCH_THREADS must be a thread count"));
    let threads_floor: Option<f64> = std::env::var("PQS_BENCH_THREADS_FLOOR")
        .ok()
        .map(|v| v.parse().expect("PQS_BENCH_THREADS_FLOOR must be a number"));
    let spine_max: Option<f64> = std::env::var("PQS_BENCH_SPINE_MAX_FRACTION").ok().map(|v| {
        v.parse()
            .expect("PQS_BENCH_SPINE_MAX_FRACTION must be a number in 0..1")
    });
    let queue_floor: Option<f64> = std::env::var("PQS_BENCH_QUEUE_FLOOR")
        .ok()
        .map(|v| v.parse().expect("PQS_BENCH_QUEUE_FLOOR must be a number"));

    let measured = reference_runs(&sys, threads);
    let queue_measured = queue_depth_runs();
    let best = measured
        .iter()
        .map(Measured::events_per_sec)
        .fold(0.0, f64::max);
    let threaded: Option<f64> = threads.and_then(|t| {
        measured
            .iter()
            .find(|m| m.name == format!("sharded_run/2000x{t}t"))
            .map(Measured::events_per_sec)
    });
    let spine_fraction: Option<f64> = measured
        .iter()
        .find(|m| m.name.starts_with("sharded_gossip_run"))
        .map(|m| m.stages.spine_fraction());
    let serial_pass = floor.is_none_or(|f| best >= f);
    let threads_pass = match threads_floor {
        Some(f) => threaded.is_some_and(|r| r >= f),
        None => true,
    };
    let spine_pass = match spine_max {
        Some(f) => spine_fraction.is_some_and(|s| s <= f),
        None => true,
    };
    // The O(1) guarantee is what the floor pins: the calendar backend at
    // the deepest cell (10^6 pending) must still clear the floor, where a
    // log-depth backend visibly cannot.
    let deep_calendar: Option<f64> = queue_measured
        .iter()
        .find(|m| m.name == "calendar/1000000")
        .map(QueueMeasured::ops_per_sec);
    let queue_pass = match queue_floor {
        Some(f) => deep_calendar.is_some_and(|r| r >= f),
        None => true,
    };
    let pass = serial_pass && threads_pass && spine_pass && queue_pass;
    write_json(
        &measured,
        &queue_measured,
        floor,
        threads_floor,
        spine_max,
        queue_floor,
        pass,
    );
    if let Some(f) = floor {
        if serial_pass {
            println!("bench floor: best {best:.0} events/sec >= floor {f:.0} — ok");
        } else {
            eprintln!(
                "bench floor VIOLATED: best {best:.0} events/sec < floor {f:.0} \
                 — the engine hot loop regressed"
            );
        }
    }
    if let Some(f) = threads_floor {
        match threaded {
            Some(r) if r >= f => {
                println!("bench threads floor: {r:.0} events/sec >= floor {f:.0} — ok");
            }
            Some(r) => eprintln!(
                "bench threads floor VIOLATED: {r:.0} events/sec < floor {f:.0} \
                 — the parallel engine regressed"
            ),
            None => eprintln!(
                "bench threads floor VIOLATED: PQS_BENCH_THREADS_FLOOR set \
                 without PQS_BENCH_THREADS, nothing to measure"
            ),
        }
    }
    if let Some(f) = spine_max {
        match spine_fraction {
            Some(s) if s <= f => {
                println!("bench spine fraction: {s:.3} <= max {f:.3} — ok");
            }
            Some(s) => eprintln!(
                "bench spine fraction VIOLATED: {s:.3} > max {f:.3} — the \
                 spine's barrier work (sync/plan/route) is no longer \
                 proportional to per-round work"
            ),
            None => eprintln!(
                "bench spine fraction VIOLATED: no sharded gossip cell was \
                 measured"
            ),
        }
    }
    if let Some(f) = queue_floor {
        match deep_calendar {
            Some(r) if r >= f => {
                println!("bench queue floor: calendar/1000000 {r:.0} ops/sec >= floor {f:.0} — ok");
            }
            Some(r) => eprintln!(
                "bench queue floor VIOLATED: calendar/1000000 {r:.0} ops/sec \
                 < floor {f:.0} — the calendar queue lost its O(1) hold cost"
            ),
            None => eprintln!(
                "bench queue floor VIOLATED: no calendar/1000000 cell was \
                 measured"
            ),
        }
    }
    if !pass {
        std::process::exit(1);
    }
    if quick {
        println!("PQS_BENCH_QUICK=1: skipping criterion statistics");
        return;
    }

    let mut group = c.benchmark_group("event_engine");
    for &rate in &[100.0f64, 500.0] {
        group.bench_with_input(
            BenchmarkId::new("safe_run", rate as u64),
            &rate,
            |bench, &rate| {
                let config = engine_config(rate);
                bench.iter(|| Simulation::new(&sys, ProtocolKind::Safe, config).run())
            },
        );
    }
    // The probe margin multiplies the event count per op: measure the cost.
    group.bench_function("safe_run_margin_8", |bench| {
        let mut config = engine_config(100.0);
        config.probe_margin = 8;
        bench.iter(|| Simulation::new(&sys, ProtocolKind::Safe, config).run())
    });
    // Anti-entropy competes for the same event loop: measure what a default
    // gossip policy costs next to the plain run at the same arrival rate.
    group.bench_function("diffusion_run_500", |bench| {
        let config = diffusion_config(500.0);
        bench.iter(|| Simulation::new(&sys, ProtocolKind::Safe, config).run())
    });
    // The parallel engine: 8 shards drained by 1 worker thread (the
    // sharded-family baseline) and, when PQS_BENCH_THREADS is set, by that
    // many threads — same bit-identical report, different wall clock.
    let mut thread_counts = vec![1u32];
    thread_counts.extend(threads.filter(|&t| t > 1));
    for &t in &thread_counts {
        group.bench_with_input(
            BenchmarkId::new("sharded_run", format!("{t}t")),
            &t,
            |bench, &t| {
                let config = sharded_config(500.0, t);
                bench.iter(|| Simulation::new(&sys, ProtocolKind::Safe, config).run())
            },
        );
    }
    group.finish();

    // The event-queue hold cost in isolation, at three pending depths: the
    // heap column grows with log(depth), the calendar column must not.
    let mut group = c.benchmark_group("queue_depth");
    for &depth in &[100usize, 10_000, 1_000_000] {
        for (kind_name, kind) in [("heap", QueueKind::Heap), ("calendar", QueueKind::Calendar)] {
            group.bench_with_input(
                BenchmarkId::new(kind_name, depth),
                &depth,
                |bench, &depth| {
                    let mut state = 0x5eed_0000 + depth as u64;
                    let mut queue = prefilled_queue(kind, depth, &mut state);
                    let span = depth as f64;
                    bench.iter(|| {
                        let (t, ev) = queue.pop().expect("hold keeps the queue non-empty");
                        queue.schedule(t + unit_f64(&mut state) * span, ev);
                    })
                },
            );
        }
    }
    group.finish();

    // The sharded key space: the per-variable session table (register map,
    // per-key write logs, per-key metrics) must not cost events/sec as the
    // key count grows. A regression here is the session-table overhead.
    let mut group = c.benchmark_group("event_engine_multi_key");
    for &keys in &[1u64, 64, 4096] {
        group.bench_with_input(BenchmarkId::new("zipf_run", keys), &keys, |bench, &keys| {
            let mut config = engine_config(500.0);
            config.keyspace = if keys == 1 {
                KeySpace::single()
            } else {
                KeySpace::zipf(keys, 1.0)
            };
            bench.iter(|| Simulation::new(&sys, ProtocolKind::Safe, config).run())
        });
    }
    group.finish();

    let mask = ProbabilisticMasking::with_target_epsilon(100, 5, 1e-3).unwrap();
    c.bench_function("event_engine/masking_run", |bench| {
        let config = engine_config(100.0);
        bench.iter(|| {
            Simulation::new(
                &mask,
                ProtocolKind::Masking {
                    threshold: mask.read_threshold(),
                },
                config,
            )
            .run()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_engine_throughput
}
criterion_main!(benches);
