//! Criterion micro-benchmarks for the register protocols: end-to-end
//! read/write operations against an in-memory cluster, for the three
//! protocols and for a strict baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pqs_core::prelude::*;
use pqs_protocols::cluster::Cluster;
use pqs_protocols::crypto::KeyRegistry;
use pqs_protocols::register::{DisseminationRegister, MaskingRegister, SafeRegister};
use pqs_protocols::value::Value;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_safe_register(c: &mut Criterion) {
    let mut group = c.benchmark_group("safe_register");
    for &n in &[100u32, 900] {
        let prob = EpsilonIntersecting::with_target_epsilon(n, 1e-3).unwrap();
        let strict = Majority::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("probabilistic_rw", n), &n, |bench, _| {
            let mut cluster = Cluster::new(prob.universe());
            let mut reg = SafeRegister::new(&prob, 1);
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let mut i = 0u64;
            bench.iter(|| {
                i += 1;
                reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                    .unwrap();
                reg.read(&mut cluster, &mut rng).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("majority_rw", n), &n, |bench, _| {
            let mut cluster = Cluster::new(strict.universe());
            let mut reg = SafeRegister::new(&strict, 1);
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let mut i = 0u64;
            bench.iter(|| {
                i += 1;
                reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                    .unwrap();
                reg.read(&mut cluster, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_byzantine_registers(c: &mut Criterion) {
    let mut group = c.benchmark_group("byzantine_registers");
    let n = 400u32;
    let b = 20u32;
    let dis = ProbabilisticDissemination::with_target_epsilon(n, b, 1e-3).unwrap();
    group.bench_function("dissemination_rw", |bench| {
        let mut cluster = Cluster::new(dis.universe());
        let mut registry = KeyRegistry::new();
        let key = registry.register(1, 7);
        let mut reg = DisseminationRegister::new(&dis, key, registry);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            reg.read(&mut cluster, &mut rng).unwrap()
        })
    });
    let mask = ProbabilisticMasking::with_target_epsilon(n, b, 1e-3).unwrap();
    group.bench_function("masking_rw", |bench| {
        let mut cluster = Cluster::new(mask.universe());
        let mut reg = MaskingRegister::new(&mask, mask.read_threshold(), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            reg.read(&mut cluster, &mut rng).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_safe_register, bench_byzantine_registers
}
criterion_main!(benches);
