//! Criterion micro-benchmarks for quorum sampling and intersection tests —
//! the innermost operations of every experiment and protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pqs_core::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_quorum");
    for &n in &[100u32, 900, 10_000] {
        let epsilon = EpsilonIntersecting::with_target_epsilon(n, 1e-3).unwrap();
        let majority = Majority::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("epsilon_intersecting", n), &n, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| epsilon.sample_quorum(&mut rng))
        });
        group.bench_with_input(BenchmarkId::new("majority", n), &n, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            b.iter(|| majority.sample_quorum(&mut rng))
        });
    }
    for &n in &[100u32, 900] {
        let grid = Grid::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            b.iter(|| grid.sample_quorum(&mut rng))
        });
    }
    group.finish();
}

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum_intersection");
    for &n in &[100u32, 900, 10_000] {
        let sys = EpsilonIntersecting::with_target_epsilon(n, 1e-3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = sys.sample_quorum(&mut rng);
        let b_q = sys.sample_quorum(&mut rng);
        group.bench_with_input(BenchmarkId::new("intersects", n), &n, |bencher, _| {
            bencher.iter(|| a.intersects(&b_q))
        });
        group.bench_with_input(
            BenchmarkId::new("intersection_size", n),
            &n,
            |bencher, _| bencher.iter(|| a.intersection_size(&b_q)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_sampling, bench_intersection
}
criterion_main!(benches);
