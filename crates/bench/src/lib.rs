//! # pqs-bench
//!
//! The reproduction harness for the evaluation section of *Probabilistic
//! Quorum Systems*.  Each binary in `src/bin/` regenerates one table or
//! figure of the paper (or validates one analytical bound); the Criterion
//! benches in `benches/` measure the library's own performance.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table I — load lower bounds and resilience caps |
//! | `table2` | Table 2 — ε-intersecting vs threshold vs grid |
//! | `table3` | Table 3 — dissemination systems |
//! | `table4` | Table 4 — masking systems |
//! | `figure1`–`figure3` | Figures 1–3 — failure-probability curves |
//! | `validate_epsilon` | Lemma 3.15 / Theorem 3.16 |
//! | `validate_dissemination` | Lemma 4.3 / Theorems 4.4, 4.6 |
//! | `validate_masking` | Lemmas 5.7, 5.9 / Theorem 5.10 |
//! | `validate_protocols` | Theorems 3.2, 4.2, 5.2 (simulation) |
//! | `validate_load` | Theorems 3.9, 5.5 and Table I load bounds |
//! | `validate_sharding` | per-server load invariance and per-key popularity of the sharded KV store |
//! | `validate_diffusion` | Section 1.1 write-diffusion: stale-read-rate cut on hot keys, per-key convergence |
//! | `validate_adaptive_diffusion` | digest/delta gossip: ≥60% push-volume cut vs full-push at equal-or-better hot-key staleness and coverage speed |
//! | `validate_parallel` | sharded multi-core engine: bit-identical reports across shard/thread counts, plus throughput |
//! | `plan` | the capacity planner: solves for minimal (n, q, margin, gossip) from an ε target, a p99 SLO and a workload shape |
//! | `validate_plan` | the prediction contract: simulates each emitted plan and fails unless measured ε and p99 land in the documented tolerance bands |
//!
//! All binaries print an aligned text table to stdout and write the same
//! rows as CSV under `target/experiments/`.  Every `validate_*` binary
//! speaks the shared command line of the [`cli`] module (`--seed`,
//! `--quick`, `--threads`, `--out-dir`) with uniform help text and exit
//! codes; `plan` adds its workload/SLO knobs through the same parser
//! ([`cli::ExtraFlag`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::OnceLock;

pub mod cli;
pub mod planner;

/// The universe sizes used throughout Section 6 (perfect squares so the grid
/// constructions apply).
pub const SECTION_6_SIZES: [u32; 6] = [25, 100, 225, 400, 625, 900];

/// The Byzantine threshold used by Tables 3 and 4: `b = (√n − 1)/2`, "the
/// largest b for which all the constructions in the table work".
pub fn section_6_byzantine_threshold(n: u32) -> u32 {
    (((n as f64).sqrt() as u32).saturating_sub(1)) / 2
}

/// The consistency target used throughout Section 6: ε ≤ 0.001.
pub const SECTION_6_EPSILON: f64 = 1e-3;

/// A simple experiment table: named columns plus rows of cells, printed
/// aligned to stdout and exported as CSV.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates an empty table with the given experiment name and columns.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        ExperimentTable {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the number of columns).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the number of columns.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.name));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Serialises the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and writes it as CSV under
    /// `target/experiments/<name>.csv`.  IO errors are reported on stderr
    /// but do not abort the experiment.
    pub fn emit(&self) {
        println!("{}", self.render());
        let dir = output_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{}.csv", self.name.replace([' ', '/'], "_")));
        match fs::File::create(&path).and_then(|mut f| f.write_all(self.to_csv().as_bytes())) {
            Ok(()) => println!("(csv written to {})\n", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

static OUTPUT_DIR_OVERRIDE: OnceLock<PathBuf> = OnceLock::new();

/// Installs a process-wide override for [`output_dir`].  Used by the
/// shared validator CLI's `--out-dir` flag; the first call wins and later
/// calls are ignored (the flag is parsed once, before any table is
/// emitted).
pub fn set_output_dir(dir: PathBuf) {
    let _ = OUTPUT_DIR_OVERRIDE.set(dir);
}

/// Directory experiment CSVs (and the bench JSON) are written to: the
/// [`set_output_dir`] override if installed (the validators' `--out-dir`
/// flag), else `$PQS_EXPERIMENTS_DIR` if set (CI uses this to pin the
/// artifact path regardless of the process working directory — cargo runs
/// benches from the package directory, not the workspace root), otherwise
/// `$CARGO_TARGET_DIR/experiments`, otherwise `target/experiments`.
pub fn output_dir() -> PathBuf {
    if let Some(dir) = OUTPUT_DIR_OVERRIDE.get() {
        return dir.clone();
    }
    if let Ok(dir) = std::env::var("PQS_EXPERIMENTS_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
        .join("experiments")
}

/// Parses a `--seed N` (or `--seed=N`) argument from the process command
/// line, defaulting to 0 and ignoring unknown arguments.  The `validate_*`
/// binaries use the strict shared parser in [`cli`] instead; this lenient
/// helper remains for ad-hoc tools and scripts that only care about the
/// seed.  The seed is mixed into every RNG seed, so the CI smoke job (and
/// a suspicious reader) can re-run experiments under fresh randomness:
/// the paper's bounds must hold for *every* seed, not one lucky draw.
///
/// # Panics
///
/// Panics with a usage message if `--seed` is present but its value is
/// missing or not an unsigned integer.
pub fn cli_seed() -> u64 {
    seed_from_args(std::env::args().skip(1))
}

/// [`cli_seed`] on an explicit argument iterator (testable core).
pub fn seed_from_args<I: IntoIterator<Item = String>>(args: I) -> u64 {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--seed" {
            let value = args.next().unwrap_or_else(|| {
                panic!("--seed requires a value, e.g. --seed 42");
            });
            return value
                .parse()
                .unwrap_or_else(|_| panic!("--seed expects an unsigned integer, got {value:?}"));
        }
        if let Some(value) = arg.strip_prefix("--seed=") {
            return value
                .parse()
                .unwrap_or_else(|_| panic!("--seed expects an unsigned integer, got {value:?}"));
        }
    }
    0
}

/// Formats a probability compactly for table cells.
pub fn fmt_prob(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else if p >= 0.01 {
        format!("{p:.4}")
    } else {
        format!("{p:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_6_constants() {
        assert_eq!(section_6_byzantine_threshold(25), 2);
        assert_eq!(section_6_byzantine_threshold(100), 4);
        assert_eq!(section_6_byzantine_threshold(225), 7);
        assert_eq!(section_6_byzantine_threshold(400), 9);
        assert_eq!(section_6_byzantine_threshold(625), 12);
        assert_eq!(section_6_byzantine_threshold(900), 14);
    }

    #[test]
    fn table_rendering_and_csv() {
        let mut t = ExperimentTable::new("demo", &["n", "value"]);
        assert!(t.is_empty());
        t.push_row(vec!["25".into(), "1.5".into()]);
        t.push_row(vec!["100".into(), "2.25".into()]);
        assert_eq!(t.len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("# demo"));
        assert!(rendered.contains("value"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("n,value"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = ExperimentTable::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn seed_argument_parsing() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(seed_from_args(to_args(&[])), 0);
        assert_eq!(seed_from_args(to_args(&["--seed", "17"])), 17);
        assert_eq!(seed_from_args(to_args(&["--seed=99"])), 99);
        assert_eq!(seed_from_args(to_args(&["--other", "--seed", "3"])), 3);
    }

    #[test]
    #[should_panic(expected = "unsigned integer")]
    fn seed_argument_rejects_garbage() {
        let _ = seed_from_args(vec!["--seed".to_string(), "banana".to_string()]);
    }

    #[test]
    fn probability_formatting() {
        assert_eq!(fmt_prob(0.0), "0");
        assert_eq!(fmt_prob(0.25), "0.2500");
        assert!(fmt_prob(1.2e-7).contains('e'));
    }
}
