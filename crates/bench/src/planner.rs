//! Bridge from [`pqs_math::plan`] capacity plans to runnable simulator
//! configurations, shared by the `plan` and `validate_plan` binaries.
//!
//! The math crate solves for `(n, q, probe_margin, gossip)` without knowing
//! the simulator exists; this module does the mechanical mapping — latency
//! spec to [`LatencyModel`], workload shape to [`KeySpace`], gossip plan to
//! [`DiffusionPolicy`] — picks a run duration long enough for the measured
//! stale-read rate to be statistically meaningful, and implements the
//! tolerance-band checks of the prediction contract (`docs/ANALYSIS.md`):
//! the Wilson interval of the measured ε must intersect the predicted
//! `[epsilon_lower, epsilon_upper]` band and the measured p99 must land
//! within `±P99_REL_TOL` of the prediction.

use pqs_math::mc::BernoulliEstimator;
use pqs_math::plan::{tolerance, CapacityPlan, PlanInput, ProbeLatency, SloTargets, WorkloadShape};
use pqs_sim::latency::LatencyModel;
use pqs_sim::metrics::SimReport;
use pqs_sim::runner::{DiffusionPolicy, SimConfig};
use pqs_sim::workload::KeySpace;

/// Expected stale-read events the run duration is sized for (at the
/// mid-band ε): enough that the Wilson interval is a few times narrower
/// than the predicted band.
pub const EPS_EVENTS_TARGET: f64 = 40.0;

/// Minimum completed operations the run duration is sized for, so the p99
/// estimate rests on a real sample.
pub const MIN_OP_SAMPLES: f64 = 4000.0;

/// Run-duration clamp in simulated seconds (quick mode divides by 4 and
/// clamps to the same floor).
pub const DURATION_RANGE: (f64, f64) = (20.0, 240.0);

/// A named workload/SLO preset — the worked examples of `docs/PLANNER.md`.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// CLI name (`--scenario NAME`).
    pub name: &'static str,
    /// One-line description for tables and help text.
    pub about: &'static str,
    /// The planner input the preset expands to.
    pub input: PlanInput,
}

/// The three worked examples: a low-ε directory service, a hot-key Zipf
/// cache, and a crash-heavy lock service.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "directory",
            about: "low-epsilon directory service (tight staleness, mild skew)",
            input: PlanInput {
                workload: WorkloadShape {
                    arrival_rate: 200.0,
                    read_fraction: 0.9,
                    keys: 64,
                    zipf_exponent: 0.8,
                    crash_fraction: 0.02,
                },
                slo: SloTargets {
                    epsilon: 0.01,
                    p99_latency: 0.030,
                    max_server_rate: 40.0,
                },
                latency: ProbeLatency::Exponential { mean: 0.005 },
                max_universe: 4096,
            },
        },
        Scenario {
            name: "hotkey",
            about: "hot-key Zipf service (read-mostly, heavy skew, loose epsilon)",
            input: PlanInput {
                workload: WorkloadShape {
                    arrival_rate: 400.0,
                    read_fraction: 0.95,
                    keys: 512,
                    zipf_exponent: 1.2,
                    crash_fraction: 0.0,
                },
                slo: SloTargets {
                    epsilon: 0.05,
                    p99_latency: 0.012,
                    max_server_rate: 120.0,
                },
                latency: ProbeLatency::Exponential { mean: 0.003 },
                max_universe: 4096,
            },
        },
        Scenario {
            name: "lock",
            about: "crash-heavy lock service (write-heavy, 20% crashed servers)",
            input: PlanInput {
                workload: WorkloadShape {
                    arrival_rate: 120.0,
                    read_fraction: 0.7,
                    keys: 32,
                    zipf_exponent: 0.5,
                    crash_fraction: 0.2,
                },
                slo: SloTargets {
                    epsilon: 0.02,
                    p99_latency: 0.050,
                    max_server_rate: 60.0,
                },
                latency: ProbeLatency::Exponential { mean: 0.008 },
                max_universe: 4096,
            },
        },
    ]
}

/// Looks a scenario preset up by name.
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

/// Maps the planner's latency spec onto the simulator's model (the two
/// enums are deliberately isomorphic; the math crate owns the CDFs, the
/// simulator owns the samplers).
pub fn latency_model(latency: &ProbeLatency) -> LatencyModel {
    match *latency {
        ProbeLatency::Fixed(v) => LatencyModel::Fixed(v),
        ProbeLatency::Uniform { min, max } => LatencyModel::Uniform { min, max },
        ProbeLatency::Exponential { mean } => LatencyModel::Exponential { mean },
        ProbeLatency::Pareto { scale, shape } => LatencyModel::Pareto { scale, shape },
    }
}

/// Maps the workload shape onto the simulator's key space.
pub fn keyspace_for(workload: &WorkloadShape) -> KeySpace {
    if workload.keys == 1 {
        KeySpace::single()
    } else if workload.zipf_exponent == 0.0 {
        KeySpace::uniform(workload.keys)
    } else {
        KeySpace::zipf(workload.keys, workload.zipf_exponent)
    }
}

/// Picks a run duration long enough that (a) the mid-band ε prediction
/// implies ≥ [`EPS_EVENTS_TARGET`] expected stale reads and (b) at least
/// [`MIN_OP_SAMPLES`] operations complete, clamped to [`DURATION_RANGE`];
/// `quick` divides by 4 for smoke runs (the Wilson check automatically
/// widens with the smaller sample).
pub fn duration_for(input: &PlanInput, plan: &CapacityPlan, quick: bool) -> f64 {
    let eps_ref = (0.5 * plan.predicted.epsilon_upper)
        .max(plan.predicted.epsilon_lower)
        .max(1e-4);
    let read_rate = (input.workload.arrival_rate * input.workload.read_fraction).max(1.0);
    let d_eps = EPS_EVENTS_TARGET / (eps_ref * read_rate);
    let d_ops = MIN_OP_SAMPLES / input.workload.arrival_rate;
    let (lo, hi) = DURATION_RANGE;
    let full = d_eps.max(d_ops).clamp(lo, hi);
    if quick {
        (full / 4.0).max(lo / 2.0)
    } else {
        full
    }
}

/// Renders a solved plan as a runnable [`SimConfig`].  `diffusion_on`
/// selects between the emitted configuration (gossip as planned) and its
/// diffusion-off twin, which `validate_plan` uses for the two-sided ε band
/// check (without gossip the steady-state stale rate must land *inside*
/// `[epsilon_lower, epsilon_upper]`, not merely below the top).
pub fn plan_config(
    input: &PlanInput,
    plan: &CapacityPlan,
    seed: u64,
    duration: f64,
    diffusion_on: bool,
) -> SimConfig {
    let mut builder = SimConfig::builder()
        .with_duration(duration)
        .with_arrival_rate(input.workload.arrival_rate)
        .with_read_fraction(input.workload.read_fraction)
        .with_keyspace(keyspace_for(&input.workload))
        .with_latency(latency_model(&input.latency))
        .with_crash_probability(input.workload.crash_fraction)
        .with_probe_margin(plan.probe_margin as u32)
        .with_op_timeout(plan.predicted.op_timeout)
        .with_seed(seed);
    if diffusion_on {
        if let Some(g) = plan.gossip {
            let mut policy = if g.digest_delta {
                DiffusionPolicy::digest_delta(g.period, g.fanout)
            } else {
                DiffusionPolicy::full_push(g.period, g.fanout)
            };
            policy = policy.with_push_latency(latency_model(&input.latency));
            builder = builder.with_diffusion(policy);
        }
    }
    builder.build()
}

/// Rebuilds a configuration through the builder from its own fields and
/// checks both the struct and its rendered chain agree — the round-trip
/// half of the serialization contract.
pub fn builder_round_trips(config: &SimConfig) -> bool {
    let mut b = SimConfig::builder()
        .with_duration(config.duration)
        .with_arrival_rate(config.arrival_rate)
        .with_read_fraction(config.read_fraction)
        .with_keyspace(config.keyspace)
        .with_latency(config.latency)
        .with_crash_probability(config.crash_probability)
        .with_byzantine(config.byzantine)
        .with_probe_margin(config.probe_margin)
        .with_op_timeout(config.op_timeout)
        .with_max_retries(config.max_retries)
        .with_retry_backoff(config.retry_backoff)
        .with_seed(config.seed)
        .with_num_shards(config.num_shards)
        .with_threads(config.threads);
    if let Some(policy) = config.diffusion {
        b = b.with_diffusion(policy);
    }
    let rebuilt = b.build();
    rebuilt == *config && rebuilt.to_builder_chain() == config.to_builder_chain()
}

/// Checks a measured report against a plan's tolerance bands and returns
/// the violations (empty = contract honored).  `diffusion_on` must say
/// which twin produced the report: with gossip the ε check is one-sided
/// (gossip only freshens state), without it the band is two-sided.
pub fn check_prediction(
    label: &str,
    plan: &CapacityPlan,
    report: &SimReport,
    diffusion_on: bool,
) -> Vec<String> {
    let mut violations = Vec::new();
    let p = &plan.predicted;

    // ε: Wilson interval of the measured stale rate vs the predicted band.
    // Eligible trials only — reads of never-written keys cannot be stale
    // and would dilute the per-read probability the bounds predict.
    let trials = report
        .completed_reads
        .saturating_sub(report.concurrent_reads)
        .saturating_sub(report.unwritten_reads);
    let stale = (report.stale_reads + report.empty_reads).min(trials);
    let est = BernoulliEstimator::from_counts(stale, trials);
    let (wilson_lo, wilson_hi) = est.wilson_interval(tolerance::EPS_CONFIDENCE_Z);
    if trials < 100 {
        violations.push(format!(
            "{label}: only {trials} eligible reads — run too short to check the ε band"
        ));
    }
    if wilson_lo > p.epsilon_upper {
        violations.push(format!(
            "{label}: measured stale rate {:.5} (Wilson ≥ {:.5}) exceeds the predicted \
             upper band {:.5}",
            est.estimate(),
            wilson_lo,
            p.epsilon_upper
        ));
    }
    if !diffusion_on && wilson_hi < p.epsilon_lower {
        violations.push(format!(
            "{label}: measured stale rate {:.5} (Wilson ≤ {:.5}) falls below the predicted \
             lower band {:.5} — the analysis is too pessimistic somewhere",
            est.estimate(),
            wilson_hi,
            p.epsilon_lower
        ));
    }

    // p99: relative band anchored on the [p99_lower, p99_upper] bracket
    // (the crash draw is one Binomial realization per run, so the live
    // universe — and with it the quantile — varies seed to seed), plus
    // absolute slack.
    let measured_p99 = report.p99_latency();
    let band_lo = p.p99_lower * (1.0 - tolerance::P99_REL_TOL) - tolerance::P99_ABS_TOL;
    let band_hi = p.p99_upper * (1.0 + tolerance::P99_REL_TOL) + tolerance::P99_ABS_TOL;
    if !(band_lo..=band_hi).contains(&measured_p99) {
        violations.push(format!(
            "{label}: measured p99 {:.4}s outside the predicted band \
             [{band_lo:.4}s, {band_hi:.4}s] (prediction {:.4}s, bracket \
             [{:.4}s, {:.4}s] ± {:.0}%)",
            measured_p99,
            p.p99_latency,
            p.p99_lower,
            p.p99_upper,
            tolerance::P99_REL_TOL * 100.0
        ));
    }

    // Unavailability: operations that never got a reply must stay inside
    // the timeout budget (Wilson lower bound, so short runs don't flap).
    let total_ops = report.completed_reads + report.completed_writes + report.unavailable_ops;
    let unavail = BernoulliEstimator::from_counts(report.unavailable_ops, total_ops.max(1));
    let (unavail_lo, _) = unavail.wilson_interval(tolerance::EPS_CONFIDENCE_Z);
    if unavail_lo > tolerance::TIMEOUT_BUDGET {
        violations.push(format!(
            "{label}: unavailability {:.5} exceeds the timeout budget {:.5}",
            unavail.estimate(),
            tolerance::TIMEOUT_BUDGET
        ));
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqs_math::plan;

    #[test]
    fn scenarios_are_named_and_solvable() {
        for s in scenarios() {
            let solved = plan::solve(&s.input)
                .unwrap_or_else(|e| panic!("scenario {} must solve: {e}", s.name));
            assert!(solved.n >= 2, "{}", s.name);
            assert!(
                solved.predicted.epsilon_upper <= s.input.slo.epsilon + 1e-12,
                "{}",
                s.name
            );
            assert!(scenario_by_name(s.name).is_some());
        }
        assert!(scenario_by_name("nonesuch").is_none());
    }

    #[test]
    fn emitted_configs_round_trip_through_the_builder() {
        for s in scenarios() {
            let solved = plan::solve(&s.input).unwrap();
            for diffusion_on in [false, true] {
                let config = plan_config(&s.input, &solved, 7, 30.0, diffusion_on);
                assert!(builder_round_trips(&config), "{} round trip", s.name);
                assert_eq!(
                    config.diffusion.is_some(),
                    diffusion_on && solved.gossip.is_some()
                );
                assert_eq!(config.probe_margin as u64, solved.probe_margin);
            }
        }
    }

    #[test]
    fn duration_scales_with_rarity_and_quick_mode() {
        let s = scenario_by_name("directory").unwrap();
        let solved = plan::solve(&s.input).unwrap();
        let full = duration_for(&s.input, &solved, false);
        let quick = duration_for(&s.input, &solved, true);
        assert!(full >= DURATION_RANGE.0 && full <= DURATION_RANGE.1);
        assert!(quick < full);
        // Tighter ε ⇒ rarer events ⇒ never a shorter run.
        let mut tighter = s.input;
        tighter.slo.epsilon = 0.005;
        let solved_tight = plan::solve(&tighter).unwrap();
        assert!(duration_for(&tighter, &solved_tight, false) >= full);
    }

    #[test]
    fn latency_and_keyspace_mappings_are_isomorphic() {
        assert_eq!(
            latency_model(&ProbeLatency::Fixed(0.001)),
            LatencyModel::Fixed(0.001)
        );
        assert_eq!(
            latency_model(&ProbeLatency::Pareto {
                scale: 1e-3,
                shape: 2.0
            }),
            LatencyModel::Pareto {
                scale: 1e-3,
                shape: 2.0
            }
        );
        let mut w = scenario_by_name("directory").unwrap().input.workload;
        assert_eq!(keyspace_for(&w), KeySpace::zipf(64, 0.8));
        w.zipf_exponent = 0.0;
        assert_eq!(keyspace_for(&w), KeySpace::uniform(64));
        w.keys = 1;
        assert_eq!(keyspace_for(&w), KeySpace::single());
    }

    #[test]
    fn check_prediction_flags_band_misses() {
        let s = scenario_by_name("directory").unwrap();
        let solved = plan::solve(&s.input).unwrap();
        // A healthy synthetic report: stale rate mid-band, p99 on target.
        let mut report = SimReport {
            completed_reads: 10_000,
            completed_writes: 1_000,
            stale_reads: (0.5
                * (solved.predicted.epsilon_lower + solved.predicted.epsilon_upper)
                * 10_000.0) as u64,
            ..SimReport::default()
        };
        report
            .read_latency
            .record(solved.predicted.p99_latency * 0.99);
        assert_eq!(
            check_prediction("demo", &solved, &report, false),
            Vec::<String>::new()
        );
        // Stale rate far above the band trips the one-sided check.
        report.stale_reads = 4_000;
        let caught = check_prediction("demo", &solved, &report, true);
        assert!(
            caught.iter().any(|v| v.contains("upper band")),
            "{caught:?}"
        );
        // A measured p99 far above the prediction trips the latency band.
        let mut slow = SimReport {
            completed_reads: 10_000,
            ..SimReport::default()
        };
        slow.read_latency.record(solved.predicted.p99_latency * 3.0);
        let caught = check_prediction("demo", &solved, &slow, true);
        assert!(caught.iter().any(|v| v.contains("p99")), "{caught:?}");
    }
}
