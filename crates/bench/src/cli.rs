//! The unified command line shared by every `validate_*` binary.
//!
//! Before this module each validator hand-rolled its own `--seed` loop;
//! flags, help text and exit codes drifted apart.  Now all nine accept the
//! same four flags with the same semantics:
//!
//! * `--seed N` — base RNG seed mixed into every simulation/sampling seed
//!   (default 0).  The paper's bounds must hold for *every* seed, so the CI
//!   smoke job varies this run to run.
//! * `--quick` — shrink sweeps and shorten simulated time for smoke runs.
//! * `--threads N` — worker threads for sharded simulation runs (only
//!   observable where a validator runs the multi-shard engine; the merged
//!   report is bit-identical for every thread count, so this is a speed
//!   knob, never a results knob).
//! * `--out-dir PATH` — write CSV artifacts under `PATH` instead of the
//!   [`crate::output_dir`] default.
//! * `--ops N` / `--soak` — target event count for validators with a soak
//!   lane (currently `validate_parallel`); `--soak` is shorthand for
//!   `--ops 100000000`.  Validators without a soak lane ignore it.
//!
//! Exit codes are uniform across the fleet: [`EXIT_OK`] (0) for a clean run
//! or `--help`, [`EXIT_VALIDATION_FAILED`] (1) when a checked bound is
//! violated, [`EXIT_USAGE`] (2) for a malformed command line.

use std::path::PathBuf;

/// Process exit code for a successful validation (or `--help`).
pub const EXIT_OK: i32 = 0;
/// Process exit code when one or more checked bounds are violated.
pub const EXIT_VALIDATION_FAILED: i32 = 1;
/// Process exit code for a malformed command line.
pub const EXIT_USAGE: i32 = 2;

/// Parsed command line shared by every `validate_*` binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidatorCli {
    /// Base RNG seed mixed into every simulation/sampling seed.
    pub seed: u64,
    /// Shrink sweeps / shorten simulated time for smoke runs.
    pub quick: bool,
    /// Worker threads for sharded simulation runs.
    pub threads: u32,
    /// CSV output directory override (`--out-dir`).
    pub out_dir: Option<PathBuf>,
    /// Target engine-event count for soak lanes (`--ops N`, or `--soak`
    /// for [`SOAK_OPS`]).  `None` skips the soak lane.
    pub ops: Option<u64>,
}

/// The event target `--soak` expands to: a 10⁸-event endurance run.
pub const SOAK_OPS: u64 = 100_000_000;

impl Default for ValidatorCli {
    fn default() -> Self {
        ValidatorCli {
            seed: 0,
            quick: false,
            threads: 1,
            out_dir: None,
            ops: None,
        }
    }
}

/// What a parse produced: a run configuration, or a help request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// Run the validator with these options.
    Run(ValidatorCli),
    /// `--help`/`-h` was given; print usage and exit 0.
    Help,
}

/// Declaration of one extra `--flag VALUE` option a binary accepts beyond
/// the shared validator set (the `plan` bin's workload/SLO knobs, say).
/// Extras always take a value; collected values come back as
/// `(flag, value)` pairs from [`parse_with_extras`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtraFlag {
    /// The flag spelling including the leading dashes, e.g. `"--epsilon"`.
    pub flag: &'static str,
    /// Placeholder shown in help text, e.g. `"EPS"`.
    pub value_name: &'static str,
    /// One-line help description.
    pub help: &'static str,
}

/// What [`parse_with_extras`] produced: a run configuration plus the
/// collected extra-flag values, or a help request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedWithExtras {
    /// Run with these options and these `(flag, value)` extras, in the
    /// order given on the command line (later spellings override earlier
    /// ones by convention — the consumer folds the list).
    Run(ValidatorCli, Vec<(String, String)>),
    /// `--help`/`-h` was given; print usage and exit 0.
    Help,
}

/// Parses a validator command line (testable core of
/// [`ValidatorCli::from_env`]).  Accepts both `--flag value` and
/// `--flag=value` spellings; unknown arguments are errors.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Parsed, String> {
    match parse_with_extras(args, &[])? {
        ParsedWithExtras::Run(cli, _) => Ok(Parsed::Run(cli)),
        ParsedWithExtras::Help => Ok(Parsed::Help),
    }
}

/// Parses a command line that accepts the shared validator flags *plus* the
/// given [`ExtraFlag`]s, keeping the fleet-wide flag semantics and exit
/// codes uniform for binaries with bespoke knobs.
pub fn parse_with_extras<I: IntoIterator<Item = String>>(
    args: I,
    extras: &[ExtraFlag],
) -> Result<ParsedWithExtras, String> {
    let mut cli = ValidatorCli::default();
    let mut collected: Vec<(String, String)> = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg.clone(), None),
        };
        let value = |args: &mut I::IntoIter| -> Result<String, String> {
            match inline.clone() {
                Some(v) => Ok(v),
                None => args
                    .next()
                    .ok_or_else(|| format!("{flag} requires a value, e.g. {flag} 42")),
            }
        };
        match flag.as_str() {
            "--help" | "-h" => return Ok(ParsedWithExtras::Help),
            "--quick" => {
                if inline.is_some() {
                    return Err("--quick takes no value".to_string());
                }
                cli.quick = true;
            }
            "--seed" => {
                let v = value(&mut args)?;
                cli.seed = v
                    .parse()
                    .map_err(|_| format!("--seed expects an unsigned integer, got {v:?}"))?;
            }
            "--threads" => {
                let v = value(&mut args)?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("--threads expects a positive integer, got {v:?}"))?;
                if n == 0 {
                    return Err("--threads expects a positive integer, got 0".to_string());
                }
                cli.threads = n;
            }
            "--out-dir" => {
                cli.out_dir = Some(PathBuf::from(value(&mut args)?));
            }
            "--ops" => {
                let v = value(&mut args)?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("--ops expects a positive integer, got {v:?}"))?;
                if n == 0 {
                    return Err("--ops expects a positive integer, got 0".to_string());
                }
                cli.ops = Some(n);
            }
            "--soak" => {
                if inline.is_some() {
                    return Err("--soak takes no value (use --ops N for a custom target)".into());
                }
                cli.ops = Some(SOAK_OPS);
            }
            other => {
                if extras.iter().any(|e| e.flag == other) {
                    collected.push((other.to_string(), value(&mut args)?));
                } else {
                    return Err(format!("unknown argument {other:?}"));
                }
            }
        }
    }
    Ok(ParsedWithExtras::Run(cli, collected))
}

/// Renders the uniform help text for a validator binary.
pub fn help_text(bin: &str, about: &str) -> String {
    help_text_with(bin, about, &[])
}

/// Renders the uniform help text plus a section for the binary's
/// [`ExtraFlag`]s (omitted when there are none).
pub fn help_text_with(bin: &str, about: &str, extras: &[ExtraFlag]) -> String {
    let mut extra_usage = String::new();
    let mut extra_lines = String::new();
    for e in extras {
        extra_usage.push_str(&format!(" [{} {}]", e.flag, e.value_name));
        let spelled = format!("{} {}", e.flag, e.value_name);
        extra_lines.push_str(&format!("\x20 {spelled:<15} {}\n", e.help));
    }
    base_help_text(bin, about, &extra_usage, &extra_lines)
}

fn base_help_text(bin: &str, about: &str, extra_usage: &str, extra_lines: &str) -> String {
    format!(
        "{bin}: {about}\n\
         \n\
         usage: {bin} [--seed N] [--quick] [--threads N] [--out-dir PATH] \
         [--ops N | --soak]{extra_usage}\n\
         \n\
         options:\n\
         \x20 --seed N        base RNG seed mixed into every simulation (default 0)\n\
         \x20 --quick         shrink sweeps / shorten runs for smoke testing\n\
         \x20 --threads N     worker threads for sharded simulation runs (default 1)\n\
         \x20 --out-dir PATH  directory for CSV artifacts (default: target/experiments)\n\
         \x20 --ops N         soak-lane engine-event target (validators without a\n\
         \x20                 soak lane ignore it)\n\
         \x20 --soak          shorthand for --ops 100000000 (a 10^8-event soak)\n\
         {extra_lines}\
         \x20 -h, --help      print this help\n\
         \n\
         exit codes: 0 = all checks passed, 1 = a checked bound was violated,\n\
         2 = bad usage"
    )
}

impl ValidatorCli {
    /// Parses the process command line, handling `--help` (exit 0) and
    /// usage errors (exit 2).  A `--out-dir` override is installed into
    /// [`crate::output_dir`] before returning.
    pub fn from_env(bin: &str, about: &str) -> ValidatorCli {
        match parse(std::env::args().skip(1)) {
            Ok(Parsed::Run(cli)) => {
                if let Some(dir) = &cli.out_dir {
                    crate::set_output_dir(dir.clone());
                }
                cli
            }
            Ok(Parsed::Help) => {
                println!("{}", help_text(bin, about));
                std::process::exit(EXIT_OK);
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{}", help_text(bin, about));
                std::process::exit(EXIT_USAGE);
            }
        }
    }

    /// Like [`ValidatorCli::from_env`], for binaries that accept
    /// [`ExtraFlag`]s on top of the shared set; returns the collected
    /// `(flag, value)` pairs alongside the parsed options.
    pub fn from_env_with(
        bin: &str,
        about: &str,
        extras: &[ExtraFlag],
    ) -> (ValidatorCli, Vec<(String, String)>) {
        match parse_with_extras(std::env::args().skip(1), extras) {
            Ok(ParsedWithExtras::Run(cli, collected)) => {
                if let Some(dir) = &cli.out_dir {
                    crate::set_output_dir(dir.clone());
                }
                (cli, collected)
            }
            Ok(ParsedWithExtras::Help) => {
                println!("{}", help_text_with(bin, about, extras));
                std::process::exit(EXIT_OK);
            }
            Err(msg) => {
                eprintln!("error: {msg}\n\n{}", help_text_with(bin, about, extras));
                std::process::exit(EXIT_USAGE);
            }
        }
    }
}

/// Standard epilogue for a validator: prints the verdict and exits with
/// [`EXIT_OK`] or [`EXIT_VALIDATION_FAILED`].
pub fn finish(bin: &str, seed: u64, violations: &[String]) -> ! {
    if violations.is_empty() {
        println!("{bin}: all checks passed (seed {seed})");
        std::process::exit(EXIT_OK);
    }
    eprintln!(
        "{bin}: {} violated check(s) (seed {seed}):",
        violations.len()
    );
    for v in violations {
        eprintln!("  - {v}");
    }
    std::process::exit(EXIT_VALIDATION_FAILED);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<Parsed, String> {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_args() {
        assert_eq!(run(&[]), Ok(Parsed::Run(ValidatorCli::default())));
    }

    #[test]
    fn parses_every_flag_in_both_spellings() {
        let expect = ValidatorCli {
            seed: 17,
            quick: true,
            threads: 4,
            out_dir: Some(PathBuf::from("/tmp/exp")),
            ops: Some(5000),
        };
        assert_eq!(
            run(&[
                "--seed",
                "17",
                "--quick",
                "--threads",
                "4",
                "--out-dir",
                "/tmp/exp",
                "--ops",
                "5000"
            ]),
            Ok(Parsed::Run(expect.clone()))
        );
        assert_eq!(
            run(&[
                "--seed=17",
                "--quick",
                "--threads=4",
                "--out-dir=/tmp/exp",
                "--ops=5000"
            ]),
            Ok(Parsed::Run(expect))
        );
    }

    #[test]
    fn soak_is_shorthand_for_the_canonical_ops_target() {
        let soak = run(&["--soak"]);
        assert_eq!(
            soak,
            Ok(Parsed::Run(ValidatorCli {
                ops: Some(SOAK_OPS),
                ..ValidatorCli::default()
            }))
        );
        // An explicit --ops spelling of the same target parses identically.
        assert_eq!(soak, run(&["--ops", &SOAK_OPS.to_string()]));
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(run(&["--help"]), Ok(Parsed::Help));
        assert_eq!(run(&["-h"]), Ok(Parsed::Help));
        assert_eq!(run(&["--seed", "3", "--help"]), Ok(Parsed::Help));
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(run(&["--seed"]).is_err());
        assert!(run(&["--seed", "banana"]).is_err());
        assert!(run(&["--threads", "0"]).is_err());
        assert!(run(&["--quick=yes"]).is_err());
        assert!(run(&["--ops"]).is_err());
        assert!(run(&["--ops", "0"]).is_err());
        assert!(run(&["--soak=1"]).is_err());
        assert!(run(&["--frobnicate"]).is_err());
    }

    const DEMO_EXTRAS: &[ExtraFlag] = &[
        ExtraFlag {
            flag: "--epsilon",
            value_name: "EPS",
            help: "target staleness bound",
        },
        ExtraFlag {
            flag: "--p99-slo",
            value_name: "SECS",
            help: "target p99 latency",
        },
    ];

    #[test]
    fn extras_collect_in_order_and_compose_with_shared_flags() {
        let parsed = parse_with_extras(
            ["--epsilon", "0.01", "--seed=9", "--p99-slo=0.03", "--quick"]
                .iter()
                .map(|s| s.to_string()),
            DEMO_EXTRAS,
        )
        .unwrap();
        match parsed {
            ParsedWithExtras::Run(cli, extras) => {
                assert_eq!(cli.seed, 9);
                assert!(cli.quick);
                assert_eq!(
                    extras,
                    vec![
                        ("--epsilon".to_string(), "0.01".to_string()),
                        ("--p99-slo".to_string(), "0.03".to_string()),
                    ]
                );
            }
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn extras_still_require_values_and_unknown_flags_still_fail() {
        assert!(
            parse_with_extras(["--epsilon"].iter().map(|s| s.to_string()), DEMO_EXTRAS).is_err()
        );
        assert!(parse_with_extras(
            ["--frobnicate", "1"].iter().map(|s| s.to_string()),
            DEMO_EXTRAS
        )
        .is_err());
        // Extras are per-binary: without the declaration the flag is unknown.
        assert!(run(&["--epsilon", "0.01"]).is_err());
    }

    #[test]
    fn help_text_with_extras_names_them() {
        let text = help_text_with("plan", "solves for a capacity plan", DEMO_EXTRAS);
        assert!(text.contains("--epsilon EPS"));
        assert!(text.contains("target staleness bound"));
        assert!(text.contains("[--p99-slo SECS]"));
        // No extras: byte-identical to the classic help.
        assert_eq!(help_text_with("v", "a", &[]), help_text("v", "a"));
    }

    #[test]
    fn help_text_names_every_flag() {
        let text = help_text("validate_demo", "checks a demo bound");
        for needle in [
            "--seed",
            "--quick",
            "--threads",
            "--out-dir",
            "--ops",
            "--soak",
            "--help",
            "exit codes",
        ] {
            assert!(text.contains(needle), "help text lacks {needle}");
        }
    }
}
