//! Regenerates Table 4: quorum size and fault tolerance of (b, ε)-masking
//! systems vs the strict masking threshold and grid constructions, for
//! b = (√n − 1)/2 and ε ≤ 0.001.

use pqs_bench::{
    section_6_byzantine_threshold, ExperimentTable, SECTION_6_EPSILON, SECTION_6_SIZES,
};
use pqs_core::prelude::*;
use pqs_core::probabilistic::params::exact_epsilon_masking;
use pqs_math::bounds::masking_threshold_k;

/// The ℓ values published in Table 4 of the paper (ℓ = q/√n there).
const PAPER_ELL: [(u32, f64); 6] = [
    (25, 3.00),
    (100, 3.80),
    (225, 4.27),
    (400, 4.70),
    (625, 4.92),
    (900, 5.07),
];

fn main() {
    let mut table = ExperimentTable::new(
        "table4_masking_systems",
        &[
            "n",
            "b",
            "paper l",
            "paper q",
            "paper q eps",
            "q* (exact<=1e-3)",
            "k*",
            "prob FT",
            "threshold q",
            "threshold FT",
            "grid q",
            "grid FT",
        ],
    );
    for (n, paper_ell) in PAPER_ELL {
        assert!(SECTION_6_SIZES.contains(&n));
        let b = section_6_byzantine_threshold(n);
        let paper_q = (paper_ell * (n as f64).sqrt()).round() as u32;
        let paper_k = masking_threshold_k(n as u64, paper_q as u64) as u32;
        let paper_eps = exact_epsilon_masking(n, paper_q, b, paper_k).expect("valid parameters");
        let exact = ProbabilisticMasking::with_target_epsilon(n, b, SECTION_6_EPSILON)
            .expect("target achievable");
        let threshold = MaskingThreshold::new(n, b).expect("within resilience bound");
        let grid = MaskingGrid::new(n, b).expect("perfect square");
        table.push_row(vec![
            n.to_string(),
            b.to_string(),
            format!("{paper_ell:.2}"),
            paper_q.to_string(),
            pqs_bench::fmt_prob(paper_eps),
            exact.quorum_size().to_string(),
            exact.read_threshold().to_string(),
            exact.fault_tolerance().to_string(),
            threshold.min_quorum_size().to_string(),
            threshold.fault_tolerance().to_string(),
            grid.min_quorum_size().to_string(),
            grid.fault_tolerance().to_string(),
        ]);
    }
    table.emit();
    println!(
        "Paper's Table 4 rows (quorum size / fault tolerance): (b,eps)-masking 15/11, 38/63, \
         64/162, 94/307, 123/503, 152/749; threshold 15/11, 55/46, 120/106, 210/191, 325/301, \
         465/436; grid 16/5, 51/10, 81/15, 144/20, 184/25, 224/30."
    );
}
