//! Regenerates Figure 2: failure probabilities of probabilistic
//! dissemination quorum systems (b = √n) against the strict lower bound and
//! the strict dissemination threshold construction of size ⌈(n+b+1)/2⌉.

use pqs_bench::{fmt_prob, ExperimentTable, SECTION_6_EPSILON};
use pqs_core::prelude::*;
use pqs_math::bounds::strict_failure_probability_floor;

fn main() {
    let configs: Vec<(u32, u32)> = vec![(100, 10), (300, 17)]; // (n, b = sqrt(n))
    let mut probabilistic = Vec::new();
    for &(n, b) in &configs {
        let sys = ProbabilisticDissemination::with_target_epsilon(n, b, SECTION_6_EPSILON)
            .expect("target achievable");
        println!(
            "{}: quorum size {}, exact epsilon {:.2e}",
            sys.name(),
            sys.quorum_size(),
            sys.epsilon()
        );
        probabilistic.push(sys);
    }
    let strict: Vec<DisseminationThreshold> = configs
        .iter()
        .map(|&(n, b)| DisseminationThreshold::new(n, b).expect("within bound"))
        .collect();

    let mut table = ExperimentTable::new(
        "figure2_failure_probability_dissemination",
        &[
            "p",
            "prob(100,b=10) F_p",
            "prob(300,b=17) F_p",
            "strict lower bound (n<=300)",
            "threshold(100,b=10) F_p",
            "threshold(300,b=17) F_p",
        ],
    );
    for step in 0..=50 {
        let p = step as f64 / 50.0;
        table.push_row(vec![
            format!("{p:.2}"),
            fmt_prob(probabilistic[0].failure_probability(p)),
            fmt_prob(probabilistic[1].failure_probability(p)),
            fmt_prob(strict_failure_probability_floor(300, p)),
            fmt_prob(strict[0].failure_probability(p)),
            fmt_prob(strict[1].failure_probability(p)),
        ]);
    }
    table.emit();
    println!(
        "Shape to compare with the paper's Figure 2: the strict dissemination threshold needs \
         quorums of ~(n+b)/2 servers, so its failure probability rises before p reaches 1/2, \
         while the probabilistic construction keeps F_p ~ 0 well beyond p = 1/2."
    );
}
