//! Experiment V2: validates Lemma 4.3 / Theorem 4.4 (b = n/3) and
//! Lemma 4.5 / Theorem 4.6 (b = αn).
//!
//! Compares the exact probability that `Q ∩ Q′ ⊆ B`, a Monte-Carlo estimate,
//! and the corresponding analytical bound.
//!
//! Accepts the shared validator flags ([`pqs_bench::cli`]); `--seed N` is
//! mixed into the Monte-Carlo RNG.

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::{fmt_prob, ExperimentTable};
use pqs_core::analysis::intersection::estimate_contained_in_faulty;
use pqs_core::prelude::*;
use pqs_core::system::{ProbabilisticQuorumSystem, QuorumSystem};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_dissemination",
        "Lemma 4.3 / Theorems 4.4 and 4.6: dissemination epsilon bounds",
    );
    let mut violations: Vec<String> = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0xd15 ^ cli.seed);
    let mut table = ExperimentTable::new(
        "validate_dissemination_lemmas_4_3_and_4_5",
        &[
            "n",
            "alpha",
            "b",
            "l",
            "q",
            "exact eps",
            "monte-carlo eps",
            "analytic bound",
            "bound holds",
        ],
    );
    let trials = if cli.quick { 10_000u32 } else { 100_000 };
    for &n in &[300u32, 900] {
        for &alpha in &[1.0 / 3.0, 0.45, 0.6] {
            let b = (alpha * n as f64).round() as u32;
            for &ell in &[2.5f64, 3.5, 5.0] {
                let Ok(sys) = ProbabilisticDissemination::with_ell(n, ell, b) else {
                    continue; // quorum too large for this alpha
                };
                let faulty =
                    pqs_core::quorum::Quorum::from_indices(sys.universe(), 0..b).expect("b < n");
                let est = estimate_contained_in_faulty(&sys, &faulty, trials, &mut rng)
                    .expect("trials > 0");
                let bound = sys.epsilon_bound();
                if sys.epsilon() > bound + 1e-12 {
                    violations.push(format!(
                        "n={n} alpha={alpha:.2} l={ell:.1}: exact eps {} above bound {}",
                        fmt_prob(sys.epsilon()),
                        fmt_prob(bound)
                    ));
                }
                table.push_row(vec![
                    n.to_string(),
                    format!("{alpha:.2}"),
                    b.to_string(),
                    format!("{ell:.1}"),
                    sys.quorum_size().to_string(),
                    fmt_prob(sys.epsilon()),
                    fmt_prob(est.estimate()),
                    fmt_prob(bound),
                    (sys.epsilon() <= bound + 1e-12).to_string(),
                ]);
            }
        }
    }
    table.emit();
    println!(
        "Theorem 4.4 / 4.6: every exact epsilon must sit below its analytic bound, and the \
         construction keeps working for Byzantine fractions far beyond the strict (n-1)/3 limit."
    );
    cli::finish("validate_dissemination", cli.seed, &violations);
}
