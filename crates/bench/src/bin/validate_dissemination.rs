//! Experiment V2: validates Lemma 4.3 / Theorem 4.4 (b = n/3) and
//! Lemma 4.5 / Theorem 4.6 (b = αn).
//!
//! Compares the exact probability that `Q ∩ Q′ ⊆ B`, a Monte-Carlo estimate,
//! and the corresponding analytical bound.
//!
//! Accepts `--seed N` (default 0), mixed into the Monte-Carlo RNG.

use pqs_bench::{cli_seed, fmt_prob, ExperimentTable};
use pqs_core::analysis::intersection::estimate_contained_in_faulty;
use pqs_core::prelude::*;
use pqs_core::system::{ProbabilisticQuorumSystem, QuorumSystem};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xd15 ^ cli_seed());
    let mut table = ExperimentTable::new(
        "validate_dissemination_lemmas_4_3_and_4_5",
        &[
            "n",
            "alpha",
            "b",
            "l",
            "q",
            "exact eps",
            "monte-carlo eps",
            "analytic bound",
            "bound holds",
        ],
    );
    let trials = 100_000u32;
    for &n in &[300u32, 900] {
        for &alpha in &[1.0 / 3.0, 0.45, 0.6] {
            let b = (alpha * n as f64).round() as u32;
            for &ell in &[2.5f64, 3.5, 5.0] {
                let Ok(sys) = ProbabilisticDissemination::with_ell(n, ell, b) else {
                    continue; // quorum too large for this alpha
                };
                let faulty =
                    pqs_core::quorum::Quorum::from_indices(sys.universe(), 0..b).expect("b < n");
                let est = estimate_contained_in_faulty(&sys, &faulty, trials, &mut rng)
                    .expect("trials > 0");
                let bound = sys.epsilon_bound();
                table.push_row(vec![
                    n.to_string(),
                    format!("{alpha:.2}"),
                    b.to_string(),
                    format!("{ell:.1}"),
                    sys.quorum_size().to_string(),
                    fmt_prob(sys.epsilon()),
                    fmt_prob(est.estimate()),
                    fmt_prob(bound),
                    (sys.epsilon() <= bound + 1e-12).to_string(),
                ]);
            }
        }
    }
    table.emit();
    println!(
        "Theorem 4.4 / 4.6: every exact epsilon must sit below its analytic bound, and the \
         construction keeps working for Byzantine fractions far beyond the strict (n-1)/3 limit."
    );
}
