//! Experiment V9: the multi-core sharded event engine.
//!
//! With `num_shards ≥ 2` the simulator partitions the key space by
//! `variable % num_shards`, drains each shard's event queue on a worker
//! thread, and reconciles cross-shard gossip on a sequenced spine at
//! deterministic time-window barriers.  The design claim is sharp: the
//! merged report is **bit-identical for every shard count ≥ 2 and every
//! thread count** — parallelism is a speed knob, never a results knob.
//! (`num_shards = 1` is the separate sequential family and is pinned
//! against its own golden fingerprints in the determinism suite.)
//!
//! This validator re-checks the claim end to end under a digest/delta
//! gossip workload with a mid-run crash wave, then measures wall-clock
//! throughput as the thread count grows.  The equality checks always run;
//! the speedup check only engages when the host actually has ≥ 4 cores
//! (`std::thread::available_parallelism`), so the binary stays green on
//! single-core containers while CI's multi-core runners enforce it.
//!
//! With `--ops N` (or `--soak`, = 10⁸ events) an additional **soak lane**
//! runs a gossip-dominated endurance cell: a short calibration run
//! measures the configuration's event density, the duration is sized to
//! hit the requested event count, and the run's per-stage wall-clock
//! breakdown (drain / sync / plan / route) is reported.  Under `--quick`
//! the target is scaled down 100× so the CI smoke job exercises the lane
//! in seconds.
//!
//! Accepts the shared validator flags ([`pqs_bench::cli`]); `--threads N`
//! caps the thread sweep.

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::ExperimentTable;
use pqs_core::prelude::*;
use pqs_sim::latency::LatencyModel;
use pqs_sim::runner::{DiffusionPolicy, ProtocolKind, SimConfig, Simulation};
use pqs_sim::workload::KeySpace;
use std::time::Instant;

fn sharded_config(seed: u64, duration: f64, num_shards: u32, threads: u32) -> SimConfig {
    SimConfig::builder()
        .with_duration(duration)
        .with_arrival_rate(400.0)
        .with_read_fraction(0.8)
        .with_keyspace(KeySpace::zipf(64, 1.0))
        .with_latency(LatencyModel::Exponential { mean: 2e-3 })
        .with_probe_margin(2)
        .with_op_timeout(0.05)
        .with_max_retries(2)
        .with_crash_probability(0.1)
        .with_diffusion(
            DiffusionPolicy::digest_delta(0.2, 2)
                .with_push_latency(LatencyModel::Exponential { mean: 2e-3 }),
        )
        .with_seed(seed)
        .with_num_shards(num_shards)
        .with_threads(threads)
        .build()
}

/// The soak cell: gossip-dominated on purpose.  A 20 Hz full-push round
/// over 64 keys and 100 servers generates ~10⁵ engine events per simulated
/// second from diffusion alone, so a 10⁸-event run needs only a few
/// hundred simulated seconds — and a few tens of thousands of foreground
/// ops — keeping memory flat while the event count scales.
fn soak_config(seed: u64, duration: f64, threads: u32) -> SimConfig {
    SimConfig::builder()
        .with_duration(duration)
        .with_arrival_rate(100.0)
        .with_read_fraction(0.8)
        .with_keyspace(KeySpace::zipf(64, 1.0))
        .with_latency(LatencyModel::Exponential { mean: 2e-3 })
        .with_probe_margin(2)
        .with_op_timeout(0.05)
        .with_max_retries(2)
        .with_diffusion(
            DiffusionPolicy::full_push(0.05, 3)
                .with_push_latency(LatencyModel::Exponential { mean: 2e-3 }),
        )
        .with_seed(seed)
        .with_num_shards(8)
        .with_threads(threads)
        .build()
}

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_parallel",
        "sharded engine: bit-identical reports across shard/thread counts, plus speedup",
    );
    let base_seed = cli.seed;
    let duration = if cli.quick { 8.0 } else { 20.0 };
    let sys = EpsilonIntersecting::with_target_epsilon(100, 1e-3).expect("valid system");
    let mut violations: Vec<String> = Vec::new();

    // The determinism claim: every (shards ≥ 2, threads) pair produces the
    // same report, so any cell works as the reference.
    let reference = Simulation::new(
        &sys,
        ProtocolKind::Safe,
        sharded_config(base_seed, duration, 2, 1),
    )
    .run();
    if reference.completed_reads + reference.completed_writes == 0 {
        violations.push("reference run completed no operations".to_string());
    }

    let mut table = ExperimentTable::new(
        "validate_parallel_shard_x_thread_equality",
        &["shards", "threads", "events", "identical to reference"],
    );
    let grid: &[(u32, u32)] = if cli.quick {
        &[(2, 2), (4, 4), (8, 2)]
    } else {
        &[(2, 2), (4, 1), (4, 4), (8, 2), (8, 8)]
    };
    for &(shards, threads) in grid {
        let report = Simulation::new(
            &sys,
            ProtocolKind::Safe,
            sharded_config(base_seed, duration, shards, threads),
        )
        .run();
        let identical = report == reference;
        if !identical {
            violations.push(format!(
                "shards={shards} threads={threads}: report differs from the \
                 2-shard single-thread reference"
            ));
        }
        table.push_row(vec![
            shards.to_string(),
            threads.to_string(),
            report.events_processed.to_string(),
            identical.to_string(),
        ]);
    }
    table.emit();

    // Throughput: the same 8-shard run drained by 1..=N worker threads.
    // Reports must stay identical while wall-clock time falls.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get() as u32);
    let max_threads = cli.threads.clamp(1, 8);
    let mut speed_table = ExperimentTable::new(
        "validate_parallel_thread_throughput",
        &["threads", "events", "wall (s)", "events/sec"],
    );
    let mut rates: Vec<(u32, f64)> = Vec::new();
    for threads in 1..=max_threads {
        let config = sharded_config(base_seed, duration, 8, threads);
        let start = Instant::now();
        let report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        let wall = start.elapsed().as_secs_f64();
        if report != reference {
            violations.push(format!(
                "throughput run with {threads} thread(s) changed the report"
            ));
        }
        let rate = report.events_processed as f64 / wall.max(1e-9);
        speed_table.push_row(vec![
            threads.to_string(),
            report.events_processed.to_string(),
            format!("{wall:.3}"),
            format!("{rate:.0}"),
        ]);
        rates.push((threads, rate));
    }
    speed_table.emit();

    // The speedup claim only binds where the hardware can express it.
    if cores >= 4 && max_threads >= 4 {
        let single = rates[0].1;
        let best = rates
            .iter()
            .filter(|(t, _)| *t >= 4)
            .map(|(_, r)| *r)
            .fold(0.0f64, f64::max);
        if best < 1.5 * single {
            violations.push(format!(
                "4+ worker threads reached only {:.2}x the single-thread rate",
                best / single.max(1e-9)
            ));
        }
    } else {
        println!(
            "speedup check skipped: {cores} core(s) available, \
             thread sweep capped at {max_threads} (pass --threads 4 on a \
             multi-core host to engage it)"
        );
    }

    // Soak lane: an endurance run sized to the requested event count, with
    // the engine's per-stage wall-clock breakdown.
    if let Some(requested) = cli.ops {
        let target = if cli.quick {
            (requested / 100).max(100_000)
        } else {
            requested
        };
        // Two-point calibration: full-push event density ramps up while
        // records are still spreading (a cold Zipf key only starts
        // circulating after its first write), so a cold-start average
        // undersizes the density and oversizes the run badly.  Fitting
        // `events(t) = density·t + offset` through a short and a longer
        // horizon captures both the steady-state (marginal) density and
        // the ramp's one-time event deficit; solving it for the target
        // (plus a 5% pad) lands the sized run at or slightly above the
        // target for small and huge targets alike.
        let (calib_short, calib_long) = (5.0, 30.0);
        let short = Simulation::new(
            &sys,
            ProtocolKind::Safe,
            soak_config(base_seed, calib_short, cli.threads),
        )
        .run();
        let long = Simulation::new(
            &sys,
            ProtocolKind::Safe,
            soak_config(base_seed, calib_long, cli.threads),
        )
        .run();
        let events_per_sim_sec = ((long.events_processed - short.events_processed) as f64
            / (calib_long - calib_short))
            .max(1.0);
        let ramp_offset = short.events_processed as f64 - events_per_sim_sec * calib_short;
        let duration = ((1.05 * target as f64 - ramp_offset) / events_per_sim_sec).max(calib_short);
        println!(
            "soak: calibrated {events_per_sim_sec:.0} events/sim-sec, \
             running {duration:.1} simulated seconds for a {target}-event target"
        );
        let start = Instant::now();
        let (report, stages) = Simulation::new(
            &sys,
            ProtocolKind::Safe,
            soak_config(base_seed, duration, cli.threads),
        )
        .run_with_stats();
        let wall = start.elapsed().as_secs_f64();
        let mut soak_table = ExperimentTable::new(
            "validate_parallel_soak",
            &[
                "events",
                "target",
                "wall (s)",
                "events/sec",
                "drain (s)",
                "sync (s)",
                "plan (s)",
                "route (s)",
                "spine fraction",
            ],
        );
        soak_table.push_row(vec![
            report.events_processed.to_string(),
            target.to_string(),
            format!("{wall:.2}"),
            format!("{:.0}", report.events_processed as f64 / wall.max(1e-9)),
            format!("{:.3}", stages.drain_seconds),
            format!("{:.3}", stages.sync_seconds),
            format!("{:.3}", stages.plan_seconds),
            format!("{:.3}", stages.route_seconds),
            format!("{:.4}", stages.spine_fraction()),
        ]);
        soak_table.emit();
        if (report.events_processed as f64) < 0.8 * target as f64 {
            violations.push(format!(
                "soak run processed {} events, under 80% of the {target}-event target",
                report.events_processed
            ));
        }
        if report.completed_reads + report.completed_writes == 0 {
            violations.push("soak run completed no operations".to_string());
        }
    }

    cli::finish("validate_parallel", base_seed, &violations);
}
