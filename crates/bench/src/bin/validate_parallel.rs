//! Experiment V9: the multi-core sharded event engine.
//!
//! With `num_shards ≥ 2` the simulator partitions the key space by
//! `variable % num_shards`, drains each shard's event queue on a worker
//! thread, and reconciles cross-shard gossip on a sequenced spine at
//! deterministic time-window barriers.  The design claim is sharp: the
//! merged report is **bit-identical for every shard count ≥ 2 and every
//! thread count** — parallelism is a speed knob, never a results knob.
//! (`num_shards = 1` is the separate sequential family and is pinned
//! against its own golden fingerprints in the determinism suite.)
//!
//! This validator re-checks the claim end to end under a digest/delta
//! gossip workload with a mid-run crash wave, then measures wall-clock
//! throughput as the thread count grows.  The equality checks always run;
//! the speedup check only engages when the host actually has ≥ 4 cores
//! (`std::thread::available_parallelism`), so the binary stays green on
//! single-core containers while CI's multi-core runners enforce it.
//!
//! Accepts the shared validator flags ([`pqs_bench::cli`]); `--threads N`
//! caps the thread sweep.

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::ExperimentTable;
use pqs_core::prelude::*;
use pqs_sim::latency::LatencyModel;
use pqs_sim::runner::{DiffusionPolicy, ProtocolKind, SimConfig, Simulation};
use pqs_sim::workload::KeySpace;
use std::time::Instant;

fn sharded_config(seed: u64, duration: f64, num_shards: u32, threads: u32) -> SimConfig {
    SimConfig::builder()
        .with_duration(duration)
        .with_arrival_rate(400.0)
        .with_read_fraction(0.8)
        .with_keyspace(KeySpace::zipf(64, 1.0))
        .with_latency(LatencyModel::Exponential { mean: 2e-3 })
        .with_probe_margin(2)
        .with_op_timeout(0.05)
        .with_max_retries(2)
        .with_crash_probability(0.1)
        .with_diffusion(
            DiffusionPolicy::digest_delta(0.2, 2)
                .with_push_latency(LatencyModel::Exponential { mean: 2e-3 }),
        )
        .with_seed(seed)
        .with_num_shards(num_shards)
        .with_threads(threads)
        .build()
}

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_parallel",
        "sharded engine: bit-identical reports across shard/thread counts, plus speedup",
    );
    let base_seed = cli.seed;
    let duration = if cli.quick { 8.0 } else { 20.0 };
    let sys = EpsilonIntersecting::with_target_epsilon(100, 1e-3).expect("valid system");
    let mut violations: Vec<String> = Vec::new();

    // The determinism claim: every (shards ≥ 2, threads) pair produces the
    // same report, so any cell works as the reference.
    let reference = Simulation::new(
        &sys,
        ProtocolKind::Safe,
        sharded_config(base_seed, duration, 2, 1),
    )
    .run();
    if reference.completed_reads + reference.completed_writes == 0 {
        violations.push("reference run completed no operations".to_string());
    }

    let mut table = ExperimentTable::new(
        "validate_parallel_shard_x_thread_equality",
        &["shards", "threads", "events", "identical to reference"],
    );
    let grid: &[(u32, u32)] = if cli.quick {
        &[(2, 2), (4, 4), (8, 2)]
    } else {
        &[(2, 2), (4, 1), (4, 4), (8, 2), (8, 8)]
    };
    for &(shards, threads) in grid {
        let report = Simulation::new(
            &sys,
            ProtocolKind::Safe,
            sharded_config(base_seed, duration, shards, threads),
        )
        .run();
        let identical = report == reference;
        if !identical {
            violations.push(format!(
                "shards={shards} threads={threads}: report differs from the \
                 2-shard single-thread reference"
            ));
        }
        table.push_row(vec![
            shards.to_string(),
            threads.to_string(),
            report.events_processed.to_string(),
            identical.to_string(),
        ]);
    }
    table.emit();

    // Throughput: the same 8-shard run drained by 1..=N worker threads.
    // Reports must stay identical while wall-clock time falls.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get() as u32);
    let max_threads = cli.threads.clamp(1, 8);
    let mut speed_table = ExperimentTable::new(
        "validate_parallel_thread_throughput",
        &["threads", "events", "wall (s)", "events/sec"],
    );
    let mut rates: Vec<(u32, f64)> = Vec::new();
    for threads in 1..=max_threads {
        let config = sharded_config(base_seed, duration, 8, threads);
        let start = Instant::now();
        let report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        let wall = start.elapsed().as_secs_f64();
        if report != reference {
            violations.push(format!(
                "throughput run with {threads} thread(s) changed the report"
            ));
        }
        let rate = report.events_processed as f64 / wall.max(1e-9);
        speed_table.push_row(vec![
            threads.to_string(),
            report.events_processed.to_string(),
            format!("{wall:.3}"),
            format!("{rate:.0}"),
        ]);
        rates.push((threads, rate));
    }
    speed_table.emit();

    // The speedup claim only binds where the hardware can express it.
    if cores >= 4 && max_threads >= 4 {
        let single = rates[0].1;
        let best = rates
            .iter()
            .filter(|(t, _)| *t >= 4)
            .map(|(_, r)| *r)
            .fold(0.0f64, f64::max);
        if best < 1.5 * single {
            violations.push(format!(
                "4+ worker threads reached only {:.2}x the single-thread rate",
                best / single.max(1e-9)
            ));
        }
    } else {
        println!(
            "speedup check skipped: {cores} core(s) available, \
             thread sweep capped at {max_threads} (pass --threads 4 on a \
             multi-core host to engage it)"
        );
    }

    cli::finish("validate_parallel", base_seed, &violations);
}
