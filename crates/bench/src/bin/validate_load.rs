//! Experiment V5: load — measured vs analytic vs lower bounds.
//!
//! * Theorem 3.9 / Corollary 3.12: the load of an ε-intersecting system is
//!   at least `(1 − √ε)/√n`; the `R(n, ℓ√n)` construction meets it within
//!   the constant ℓ.
//! * Theorem 5.5 and Section 5.5: for `b = ω(√n)` the masking construction's
//!   load `ℓb/n` beats the strict masking lower bound `√((2b+1)/n)` while
//!   respecting the probabilistic lower bound `((1−2ε)/(1−ε))·b/n`
//!   (e.g. `b = √n`, `ℓ = n^{1/5}` gives load `O(n^{-0.3})`).
//!
//! Accepts the shared validator flags ([`pqs_bench::cli`]); `--seed N` is
//! mixed into the Monte-Carlo RNG.

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::{fmt_prob, ExperimentTable};
use pqs_core::analysis::intersection::estimate_empirical_load;
use pqs_core::analysis::lower_bounds::{
    corollary_3_12_bound, masking_load_lower_bound, masking_probabilistic_load_lower_bound,
    strict_load_lower_bound,
};
use pqs_core::prelude::*;
use pqs_core::system::{ProbabilisticQuorumSystem, QuorumSystem};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_load",
        "Theorems 3.9 and 5.5 plus Table I: load bounds and the masking separation",
    );
    let mut violations: Vec<String> = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0x10ad ^ cli.seed);

    let load_trials = if cli.quick { 4_000 } else { 40_000 };
    let mut table = ExperimentTable::new(
        "validate_load_epsilon_intersecting",
        &[
            "n",
            "q",
            "analytic load q/n",
            "measured load",
            "thm 3.9 bound",
            "cor 3.12 bound",
            "strict bound 1/sqrt(n)",
        ],
    );
    for &n in &[100u32, 400, 900, 2500] {
        let sys = EpsilonIntersecting::with_target_epsilon(n, 1e-3).expect("achievable");
        let measured = estimate_empirical_load(&sys, load_trials, &mut rng).expect("trials > 0");
        let thm_3_9 = pqs_core::measures::probabilistic_load_lower_bound(
            n,
            sys.expected_quorum_size(),
            sys.epsilon(),
        );
        if sys.load() < thm_3_9 {
            violations.push(format!(
                "n={n}: analytic load {:.4} below the Theorem 3.9 lower bound {thm_3_9:.4}",
                sys.load()
            ));
        }
        if (measured - sys.load()).abs() > 0.05 {
            violations.push(format!(
                "n={n}: measured load {measured:.4} strays from analytic q/n {:.4}",
                sys.load()
            ));
        }
        table.push_row(vec![
            n.to_string(),
            sys.quorum_size().to_string(),
            format!("{:.4}", sys.load()),
            format!("{measured:.4}"),
            format!("{thm_3_9:.4}"),
            format!("{:.4}", corollary_3_12_bound(n, sys.epsilon())),
            format!("{:.4}", strict_load_lower_bound(n)),
        ]);
    }
    table.emit();

    let mut masking_table = ExperimentTable::new(
        "validate_load_masking_beats_strict_bound",
        &[
            "n",
            "b",
            "l",
            "q",
            "exact eps",
            "load l*b/n",
            "strict bound sqrt((2b+1)/n)",
            "beats strict",
            "thm 5.5 bound",
        ],
    );
    for &n in &[2_500u32, 10_000, 40_000] {
        let b = (n as f64).sqrt() as u32;
        let ell = (n as f64).powf(0.2);
        let sys = ProbabilisticMasking::with_ell(n, ell, b).expect("valid parameters");
        let strict_bound = masking_load_lower_bound(n, b);
        if sys.load() >= strict_bound {
            violations.push(format!(
                "n={n} b={b}: masking load {:.4} fails to beat the strict bound {strict_bound:.4}",
                sys.load()
            ));
        }
        if sys.load() < masking_probabilistic_load_lower_bound(n, b, sys.epsilon()) {
            violations.push(format!(
                "n={n} b={b}: masking load {:.4} below its probabilistic lower bound",
                sys.load()
            ));
        }
        masking_table.push_row(vec![
            n.to_string(),
            b.to_string(),
            format!("{ell:.2}"),
            sys.quorum_size().to_string(),
            fmt_prob(sys.epsilon()),
            format!("{:.4}", sys.load()),
            format!("{strict_bound:.4}"),
            (sys.load() < strict_bound).to_string(),
            format!(
                "{:.5}",
                masking_probabilistic_load_lower_bound(n, b, sys.epsilon())
            ),
        ]);
    }
    masking_table.emit();
    println!(
        "Expected shape: measured load matches q/n; every load sits above its probabilistic \
         lower bound; and for b = sqrt(n), l = n^0.2 the masking construction's load falls \
         below the strict masking bound (the 'beats strict' column is true), reproducing the \
         O(n^-0.3) vs Omega(n^-0.25) separation of Section 5.5."
    );
    cli::finish("validate_load", cli.seed, &violations);
}
