//! Experiment V7: write-diffusion scheduled inside the discrete-event
//! engine.
//!
//! Section 1.1 argues a probabilistic-quorum system "can be strengthened by
//! a properly designed diffusion mechanism" that propagates updates lazily,
//! off the critical path (\[DGH+87\]).  This validator measures exactly
//! that claim under foreground load: a loose ε-intersecting system (ε large
//! enough that stale reads are common) serves a Zipf-skewed key space while
//! the engine interleaves server-to-server gossip pushes with the client
//! probes, sweeping the `DiffusionPolicy` period × fanout grid.
//!
//! The checks are sharp because gossip draws from its own RNG stream:
//! every cell of the sweep replays the *identical* foreground trajectory
//! (same workload, same probe sets, same per-server accesses) as the
//! diffusion-off baseline, and gossip can only freshen server state, so
//! per-key staleness is dominated read by read.  The binary exits nonzero
//! if any invariant fails — in particular if diffusion fails to cut the
//! measured stale-read rate on the hottest Zipf key.
//!
//! Accepts the shared validator flags ([`pqs_bench::cli`]); `--seed N` is
//! mixed into the simulation seed so the CI smoke job can vary the
//! randomness run to run.

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::ExperimentTable;
use pqs_core::prelude::*;
use pqs_core::system::ProbabilisticQuorumSystem;
use pqs_sim::latency::LatencyModel;
use pqs_sim::metrics::SimReport;
use pqs_sim::runner::{DiffusionPolicy, ProtocolKind, SimConfig, Simulation};
use pqs_sim::workload::KeySpace;

fn sim_config(seed: u64) -> SimConfig {
    SimConfig::builder()
        .with_duration(60.0)
        .with_arrival_rate(80.0)
        .with_read_fraction(0.9)
        .with_keyspace(KeySpace::zipf(16, 1.2))
        .with_latency(LatencyModel::Exponential { mean: 2e-3 })
        .with_op_timeout(5.0)
        .with_seed(seed)
        .build()
}

fn hot_stats(report: &SimReport) -> (u64, u64, f64) {
    let hot = &report.per_variable[0];
    (
        hot.stale_reads + hot.empty_reads,
        hot.completed_reads.saturating_sub(hot.concurrent_reads),
        hot.stale_read_rate(),
    )
}

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_diffusion",
        "Section 1.1 write-diffusion: hot-key stale-read cut and per-key convergence",
    );
    let base_seed = cli.seed;
    // Deliberately loose: ε ≈ 0.3, so the baseline has plenty of stale
    // reads for diffusion to eliminate.
    let sys = EpsilonIntersecting::new(64, 8).expect("valid system");
    let eps = sys.epsilon();
    let config = sim_config(base_seed.wrapping_mul(0x9e37) ^ 0xd1f);
    let mut violations: Vec<String> = Vec::new();

    let baseline = Simulation::new(&sys, ProtocolKind::Safe, config).run();
    let replay = Simulation::new(&sys, ProtocolKind::Safe, config).run();
    if baseline != replay {
        violations.push("diffusion-off runs are not bit-identical".to_string());
    }
    if baseline.gossip_rounds != 0 || baseline.gossip_pushes != 0 {
        violations.push("diffusion-off run scheduled gossip events".to_string());
    }
    let (base_hot_stale, base_hot_reads, base_hot_rate) = hot_stats(&baseline);
    if base_hot_stale < 30 {
        violations.push(format!(
            "baseline hot key has only {base_hot_stale} stale reads — \
             the experiment cannot measure a reduction"
        ));
    }

    let mut table = ExperimentTable::new(
        "validate_diffusion_period_x_fanout",
        &[
            "period (s)",
            "fanout",
            "rounds",
            "pushes",
            "stores",
            "hot stale rate",
            "hot reduction",
            "aggregate stale rate",
            "hot rounds-to-cover",
        ],
    );
    table.push_row(vec![
        "off".to_string(),
        "-".to_string(),
        "0".to_string(),
        "0".to_string(),
        "0".to_string(),
        format!("{base_hot_rate:.4}"),
        "1.00x".to_string(),
        format!("{:.4}", baseline.stale_read_rate()),
        "-".to_string(),
    ]);

    // In quick mode only the aggressive gossip period runs (the headline
    // 40%-cut check needs it); the baseline and its invariants are
    // untouched, the sweep just has fewer cells.
    let periods: &[f64] = if cli.quick { &[0.1] } else { &[0.4, 0.1] };
    let fanouts = [1u32, 3];
    let mut per_period_hot: Vec<Vec<u64>> = Vec::new();
    let mut best_hot_stale = u64::MAX;
    for &period in periods {
        let mut row_hot = Vec::new();
        for &fanout in &fanouts {
            let mut cell = config;
            cell.diffusion = Some(
                DiffusionPolicy::full_push(period, fanout)
                    .with_push_latency(LatencyModel::Exponential { mean: 2e-3 }),
            );
            let report = Simulation::new(&sys, ProtocolKind::Safe, cell).run();

            // Invariant 1: the foreground trajectory is untouched — gossip
            // lives on its own RNG stream and answers no client probe.
            if report.completed_reads != baseline.completed_reads
                || report.completed_writes != baseline.completed_writes
                || report.per_server_accesses != baseline.per_server_accesses
            {
                violations.push(format!(
                    "period {period} fanout {fanout}: foreground trajectory \
                     diverged from the diffusion-off baseline"
                ));
            }
            // Invariant 2: domination — gossip only freshens servers, so
            // staleness can only drop, per key and in aggregate.
            let (hot_stale, hot_reads, hot_rate) = hot_stats(&report);
            if hot_reads != base_hot_reads {
                violations.push(format!(
                    "period {period} fanout {fanout}: hot-key read count changed"
                ));
            }
            if hot_stale > base_hot_stale
                || report.stale_reads + report.empty_reads
                    > baseline.stale_reads + baseline.empty_reads
            {
                violations.push(format!(
                    "period {period} fanout {fanout}: staleness rose above the \
                     baseline ({hot_stale} vs {base_hot_stale} on the hot key)"
                ));
            }
            // Invariant 3: gossip actually ran and did work.
            if report.gossip_rounds == 0 || report.gossip_stores == 0 {
                violations.push(format!(
                    "period {period} fanout {fanout}: no gossip work recorded"
                ));
            }
            let reduction = if hot_stale == 0 {
                f64::INFINITY
            } else {
                base_hot_stale as f64 / hot_stale as f64
            };
            let hot = &report.per_variable[0];
            table.push_row(vec![
                format!("{period}"),
                fanout.to_string(),
                report.gossip_rounds.to_string(),
                report.gossip_pushes.to_string(),
                report.gossip_stores.to_string(),
                format!("{hot_rate:.4}"),
                format!("{reduction:.2}x"),
                format!("{:.4}", report.stale_read_rate()),
                match hot.mean_rounds_to_coverage() {
                    Some(r) => format!("{r:.2}"),
                    None => "-".to_string(),
                },
            ]);
            best_hot_stale = best_hot_stale.min(hot_stale);
            row_hot.push(hot_stale);
        }
        per_period_hot.push(row_hot);
    }
    table.emit();

    // The headline claim: an aggressive policy (fast rounds, wide fanout)
    // must cut the hot key's stale-read count substantially — not just
    // within noise (and the domination invariant already rules noise out).
    if (best_hot_stale as f64) > 0.6 * base_hot_stale as f64 {
        violations.push(format!(
            "best diffusion cell leaves {best_hot_stale} hot-key stale reads \
             of {base_hot_stale} baseline — less than a 40% cut"
        ));
    }
    // Coverage is monotone in fanout at fixed period (generous slack: the
    // two cells use different gossip draws, so allow sampling noise).
    for (row, &period) in per_period_hot.iter().zip(periods) {
        let (narrow, wide) = (row[0] as f64, row[1] as f64);
        if wide > narrow + 3.0 * narrow.sqrt() + 3.0 {
            violations.push(format!(
                "period {period}: fanout 3 left more hot-key stale reads \
                 ({wide}) than fanout 1 ({narrow})"
            ));
        }
    }

    println!(
        "baseline: epsilon {eps:.4}, hot-key stale rate {base_hot_rate:.4} \
         ({base_hot_stale}/{base_hot_reads} non-concurrent reads)"
    );
    cli::finish("validate_diffusion", base_seed, &violations);
}
