//! Regenerates Table 3: quorum size and fault tolerance of
//! (b, ε)-dissemination systems vs the strict dissemination threshold and
//! grid constructions, for b = (√n − 1)/2 and ε ≤ 0.001.

use pqs_bench::{
    section_6_byzantine_threshold, ExperimentTable, SECTION_6_EPSILON, SECTION_6_SIZES,
};
use pqs_core::prelude::*;
use pqs_core::probabilistic::params::exact_epsilon_dissemination;

/// The ℓ values published in Table 3 of the paper.
const PAPER_ELL: [(u32, f64); 6] = [
    (25, 2.20),
    (100, 2.40),
    (225, 2.47),
    (400, 2.50),
    (625, 2.52),
    (900, 2.57),
];

fn main() {
    let mut table = ExperimentTable::new(
        "table3_dissemination_systems",
        &[
            "n",
            "b",
            "paper l",
            "paper q",
            "paper q eps",
            "q* (exact<=1e-3)",
            "prob FT",
            "threshold q",
            "threshold FT",
            "grid q",
            "grid FT",
        ],
    );
    for (n, paper_ell) in PAPER_ELL {
        assert!(SECTION_6_SIZES.contains(&n));
        let b = section_6_byzantine_threshold(n);
        let paper_q = (paper_ell * (n as f64).sqrt()).round() as u32;
        let paper_eps = exact_epsilon_dissemination(n, paper_q, b).expect("valid parameters");
        let exact = ProbabilisticDissemination::with_target_epsilon(n, b, SECTION_6_EPSILON)
            .expect("target achievable");
        let threshold = DisseminationThreshold::new(n, b).expect("within resilience bound");
        let grid = DisseminationGrid::new(n, b).expect("perfect square");
        table.push_row(vec![
            n.to_string(),
            b.to_string(),
            format!("{paper_ell:.2}"),
            paper_q.to_string(),
            pqs_bench::fmt_prob(paper_eps),
            exact.quorum_size().to_string(),
            exact.fault_tolerance().to_string(),
            threshold.min_quorum_size().to_string(),
            threshold.fault_tolerance().to_string(),
            grid.min_quorum_size().to_string(),
            grid.fault_tolerance().to_string(),
        ]);
    }
    table.emit();
    println!(
        "Paper's Table 3 rows (quorum size / fault tolerance): (b,eps)-dissemination 11/15, \
         24/77, 37/189, 50/351, 63/563, 77/824; threshold 14/12, 53/48, 117/109, 205/196, \
         319/307, 458/443; grid 16/5, 36/10, 56/15, 111/20, 141/25, 171/30 \
         (the n=225 and n=900 threshold/grid entries in the scanned paper contain typographic \
         errors; values here follow the constructions)."
    );
}
