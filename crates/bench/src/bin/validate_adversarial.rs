//! The graceful-degradation contract for the adversarial scenario engine:
//! churn, healing partitions and adaptive Byzantine attackers must bend the
//! measured ε, never break it.
//!
//! For every scenario (steady / membership churn / healing partitions /
//! both) × protocol (safe, dissemination) × engine (sequential, sharded)
//! this validator runs a **same-seed twin pair** — the static-adversary
//! baseline and the adaptive run — and enforces:
//!
//! * **replay invariance** — the adaptive adversary is evaluated at
//!   probe-reply time from foreground-only statistics, so the diffusion-off
//!   twin pair must agree on every foreground count (completions, events,
//!   per-server accesses); only staleness may move;
//! * **monotonicity** — an adaptive sleeper set can only *raise* the
//!   eligible stale-read rate over the same-seed static baseline;
//! * **graceful degradation** — the adaptive rate stays inside a
//!   quantified band of the baseline:
//!   `adaptive ≤ max(FACTOR · static, static + SLACK)`;
//! * **the masking bound for signed registers** — in unpartitioned
//!   scenarios the dissemination protocol's measured rate (static *and*
//!   adaptive) must sit below the Lemma 4.3-style Monte-Carlo probability
//!   that two quorums intersect only inside the worst-case faulty set
//!   (static Byzantine servers plus every sleeper), plus sampling slack —
//!   signed data cannot be forged, so that is all the adversary can buy;
//! * **heal re-convergence** — the diffusion-on partition lanes must
//!   observe their heals and report a monotone post-heal coverage curve.
//!
//! Exits nonzero on any miss.  Accepts the shared validator flags;
//! `--quick` sweeps 10 seeds at a short duration (the CI smoke
//! configuration), the full run sweeps fewer seeds at full length.

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::{fmt_prob, ExperimentTable};
use pqs_core::analysis::intersection::estimate_contained_in_faulty;
use pqs_core::prelude::*;
use pqs_sim::failure::{ByzantineStrategy, FailurePlan};
use pqs_sim::latency::LatencyModel;
use pqs_sim::metrics::SimReport;
use pqs_sim::runner::{DiffusionPolicy, ProtocolKind, SimConfig, Simulation};
use pqs_sim::workload::KeySpace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Universe size of the validation system.
const N: u32 = 60;
/// Quorum size — the paper's `ℓ√n` regime, where non-intersection (and so
/// baseline staleness) is actually observable.
const Q: u32 = 12;
/// Statically Byzantine servers (ids `0..BYZANTINE`).
const BYZANTINE: u32 = 4;
/// Adaptive sleepers (ids `BYZANTINE..BYZANTINE + SLEEPERS`), correct until
/// their strategy predicate fires.
const SLEEPERS: u32 = 6;
/// Graceful-degradation band: the adaptive rate may not exceed
/// `max(FACTOR · static, static + SLACK)`.
const DEGRADATION_FACTOR: f64 = 8.0;
/// Absolute arm of the degradation band, sized to finite-sample noise at
/// the quick duration.
const DEGRADATION_SLACK: f64 = 0.08;
/// Sampling slack on the Monte-Carlo masking bound.
const MASKING_SLACK: f64 = 0.08;

/// One scenario of the sweep: which schedule families the failure plan
/// carries.
struct Scenario {
    name: &'static str,
    churn: bool,
    partition: bool,
}

const SCENARIOS: [Scenario; 4] = [
    Scenario {
        name: "steady",
        churn: false,
        partition: false,
    },
    Scenario {
        name: "churn",
        churn: true,
        partition: false,
    },
    Scenario {
        name: "partition",
        churn: false,
        partition: true,
    },
    Scenario {
        name: "churn+partition",
        churn: true,
        partition: true,
    },
];

fn sleeper_ids() -> Vec<ServerId> {
    (BYZANTINE..BYZANTINE + SLEEPERS)
        .map(ServerId::new)
        .collect()
}

/// The scenario's failure plan, schedules scaled to the run duration:
/// churn takes two servers down mid-run and brings them (plus one
/// initially-absent joiner) back; partitions split the cluster twice, into
/// two then three components, each window healing before the run ends.
fn scenario_plan(scenario: &Scenario, d: f64, strategy: ByzantineStrategy) -> FailurePlan {
    let mut plan = FailurePlan::none();
    plan.byzantine = (0..BYZANTINE).map(ServerId::new).collect();
    if scenario.churn {
        plan = plan
            .with_join(0.15 * d, ServerId::new(22)) // first event is a join: initially absent
            .with_leave(0.25 * d, ServerId::new(20))
            .with_leave(0.30 * d, ServerId::new(21))
            .with_join(0.60 * d, ServerId::new(20))
            .with_join(0.65 * d, ServerId::new(21));
    }
    if scenario.partition {
        plan = plan
            .with_partition(0.25 * d, 0.55 * d, 2)
            .with_partition(0.70 * d, 0.85 * d, 3);
    }
    plan.with_strategy(strategy)
}

fn config(seed: u64, duration: f64, shards: u32, threads: u32) -> SimConfig {
    SimConfig::builder()
        .with_duration(duration)
        .with_arrival_rate(80.0)
        .with_read_fraction(0.8)
        .with_keyspace(KeySpace::zipf(16, 1.0))
        .with_latency(LatencyModel::Exponential { mean: 2e-3 })
        .with_probe_margin(2)
        .with_op_timeout(0.05)
        .with_max_retries(2)
        .with_num_shards(shards)
        .with_threads(threads)
        .with_seed(seed)
        .build()
}

fn run(
    system: &EpsilonIntersecting,
    kind: ProtocolKind,
    config: SimConfig,
    plan: FailurePlan,
) -> SimReport {
    Simulation::new(system, kind, config)
        .with_failure_plan(plan)
        .run()
}

/// The quantified degradation ceiling for a given static baseline.
fn degradation_ceiling(baseline: f64) -> f64 {
    (baseline * DEGRADATION_FACTOR).max(baseline + DEGRADATION_SLACK)
}

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_adversarial",
        "sweeps churn/partition scenarios against adaptive Byzantine adversaries and \
         enforces replay invariance, stale-rate monotonicity, the quantified \
         graceful-degradation band and the signed-register masking bound",
    );
    let mut violations: Vec<String> = Vec::new();
    let mut table = ExperimentTable::new(
        "validate_adversarial_graceful_degradation",
        &[
            "scenario",
            "protocol",
            "engine",
            "adversary",
            "static eps",
            "adaptive eps",
            "ceiling",
            "activations",
            "dropped probes",
            "membership events",
        ],
    );

    let system = EpsilonIntersecting::new(N, Q).expect("n=60, q=12 is a valid PQS");
    let duration = if cli.quick { 6.0 } else { 30.0 };
    let seed_base = cli
        .seed
        .wrapping_mul(0x9e37_79b9)
        .wrapping_add("validate_adversarial".len() as u64);
    let seeds: Vec<u64> = if cli.quick {
        (0..10).map(|i| seed_base.wrapping_add(i)).collect()
    } else {
        (0..3).map(|i| seed_base.wrapping_add(i)).collect()
    };

    // The Lemma 4.3-style ceiling for signed registers: the probability
    // that two quorums intersect only inside the worst-case faulty set —
    // every static Byzantine server plus every sleeper.  Signed data
    // cannot be forged, so no adaptive strategy buys more than this.
    let faulty = Quorum::from_indices(system.universe(), 0..BYZANTINE + SLEEPERS)
        .expect("faulty set smaller than the universe");
    let mc_trials = if cli.quick { 20_000 } else { 100_000 };
    let mut mc_rng = ChaCha8Rng::seed_from_u64(0xadb ^ cli.seed);
    let masking_bound = estimate_contained_in_faulty(&system, &faulty, mc_trials, &mut mc_rng)
        .expect("trials > 0")
        .estimate()
        + MASKING_SLACK;

    let protocols: [(&str, ProtocolKind); 2] = [
        ("safe", ProtocolKind::Safe),
        ("dissemination", ProtocolKind::Dissemination),
    ];
    let adversaries: [(&str, ByzantineStrategy); 2] = [
        (
            "hot-key",
            ByzantineStrategy::HotKeyTargeting {
                sleepers: sleeper_ids(),
                min_writes: 3,
            },
        ),
        (
            "stale-signed",
            ByzantineStrategy::StaleSigned {
                sleepers: sleeper_ids(),
                window: 0.5,
            },
        ),
    ];
    let engines: [(&str, u32, u32); 2] = [("sequential", 1, 1), ("sharded", 4, 2)];

    for scenario in &SCENARIOS {
        for (proto_name, kind) in protocols {
            for &seed in &seeds {
                for (engine_name, shards, threads) in engines {
                    let cfg = config(seed, duration, shards, threads);
                    let static_plan = scenario_plan(scenario, duration, ByzantineStrategy::Static);
                    let baseline = run(&system, kind, cfg, static_plan.clone());
                    let tag = |adv: &str| {
                        format!(
                            "{}/{proto_name}/{engine_name}/{adv} seed {seed}",
                            scenario.name
                        )
                    };

                    if scenario.churn
                        && baseline.membership_events != static_plan.memberships.len() as u64
                    {
                        violations.push(format!(
                            "{}: {} membership events applied, schedule has {}",
                            tag("static"),
                            baseline.membership_events,
                            static_plan.memberships.len()
                        ));
                    }
                    if scenario.partition && baseline.dropped_probes == 0 {
                        violations.push(format!(
                            "{}: partition windows dropped no probes",
                            tag("static")
                        ));
                    }

                    for (adv_name, strategy) in &adversaries {
                        let plan = scenario_plan(scenario, duration, strategy.clone());
                        let adaptive = run(&system, kind, cfg, plan);
                        let s_rate = baseline.eligible_stale_read_rate();
                        let a_rate = adaptive.eligible_stale_read_rate();
                        let ceiling = degradation_ceiling(s_rate);

                        // Replay invariance: foreground-only adversary
                        // evaluation leaves every foreground count of the
                        // diffusion-off twin untouched.
                        if adaptive.completed_reads != baseline.completed_reads
                            || adaptive.completed_writes != baseline.completed_writes
                            || adaptive.events_processed != baseline.events_processed
                            || adaptive.per_server_accesses != baseline.per_server_accesses
                        {
                            violations.push(format!(
                                "{}: adaptive run diverged from the static twin's \
                                 foreground trajectory",
                                tag(adv_name)
                            ));
                        }
                        if adaptive.adaptive_activations == 0 {
                            violations.push(format!(
                                "{}: adaptive adversary never activated",
                                tag(adv_name)
                            ));
                        }
                        if a_rate + 1e-12 < s_rate {
                            violations.push(format!(
                                "{}: adaptive rate {} below static baseline {} — \
                                 monotonicity broken",
                                tag(adv_name),
                                fmt_prob(a_rate),
                                fmt_prob(s_rate)
                            ));
                        }
                        if a_rate > ceiling {
                            violations.push(format!(
                                "{}: adaptive rate {} above degradation ceiling {} \
                                 (static {})",
                                tag(adv_name),
                                fmt_prob(a_rate),
                                fmt_prob(ceiling),
                                fmt_prob(s_rate)
                            ));
                        }
                        if kind == ProtocolKind::Dissemination && !scenario.partition {
                            for (label, rate) in [("static", s_rate), ("adaptive", a_rate)] {
                                if rate > masking_bound {
                                    violations.push(format!(
                                        "{}: signed {label} rate {} above the masking \
                                         bound {}",
                                        tag(adv_name),
                                        fmt_prob(rate),
                                        fmt_prob(masking_bound)
                                    ));
                                }
                            }
                        }
                        let component_sum: u64 = adaptive.per_component_stale_reads.iter().sum();
                        if component_sum > adaptive.stale_reads + adaptive.empty_reads {
                            violations.push(format!(
                                "{}: per-component staleness {} exceeds total stale+empty {}",
                                tag(adv_name),
                                component_sum,
                                adaptive.stale_reads + adaptive.empty_reads
                            ));
                        }

                        if seed == seeds[0] {
                            table.push_row(vec![
                                scenario.name.to_string(),
                                proto_name.to_string(),
                                engine_name.to_string(),
                                adv_name.to_string(),
                                fmt_prob(s_rate),
                                fmt_prob(a_rate),
                                fmt_prob(ceiling),
                                adaptive.adaptive_activations.to_string(),
                                adaptive.dropped_probes.to_string(),
                                adaptive.membership_events.to_string(),
                            ]);
                        }
                    }
                }

                // Diffusion-on lane (sequential): gossip crosses components
                // only after heal time, heals must be observed and the
                // post-heal coverage curve must be monotone.  Gossip RNG
                // streams diverge between the twins once stored records
                // differ, so only the degradation band (not replay
                // equality or exact monotonicity) is asserted here.
                let cfg = SimConfig {
                    diffusion: Some(DiffusionPolicy::full_push(0.1, 3)),
                    ..config(seed, duration, 1, 1)
                };
                let baseline = run(
                    &system,
                    kind,
                    cfg,
                    scenario_plan(scenario, duration, ByzantineStrategy::Static),
                );
                let adaptive = run(
                    &system,
                    kind,
                    cfg,
                    scenario_plan(scenario, duration, adversaries[0].1.clone()),
                );
                let s_rate = baseline.eligible_stale_read_rate();
                let a_rate = adaptive.eligible_stale_read_rate();
                let tag = format!("{}/{proto_name}/gossip/hot-key seed {seed}", scenario.name);
                if a_rate > degradation_ceiling(s_rate) {
                    violations.push(format!(
                        "{tag}: adaptive rate {} above degradation ceiling {} (static {})",
                        fmt_prob(a_rate),
                        fmt_prob(degradation_ceiling(s_rate)),
                        fmt_prob(s_rate)
                    ));
                }
                if scenario.partition {
                    for (label, report) in [("static", &baseline), ("adaptive", &adaptive)] {
                        if report.heals_observed == 0 {
                            violations
                                .push(format!("{tag}: {label} run observed no partition heals"));
                        }
                        if report.post_heal_coverage.windows(2).any(|w| w[1] < w[0]) {
                            violations.push(format!(
                                "{tag}: {label} post-heal coverage curve is not monotone"
                            ));
                        }
                    }
                }
                if seed == seeds[0] {
                    table.push_row(vec![
                        scenario.name.to_string(),
                        proto_name.to_string(),
                        "gossip".to_string(),
                        "hot-key".to_string(),
                        fmt_prob(s_rate),
                        fmt_prob(a_rate),
                        fmt_prob(degradation_ceiling(s_rate)),
                        adaptive.adaptive_activations.to_string(),
                        adaptive.dropped_probes.to_string(),
                        adaptive.membership_events.to_string(),
                    ]);
                }
            }
        }
    }

    table.emit();
    println!(
        "Graceful degradation: an adaptive adversary may bend the measured epsilon — \
         never beyond a quantified multiple of the static baseline, never below it, and \
         never past the masking bound on signed registers."
    );
    cli::finish("validate_adversarial", cli.seed, &violations);
}
