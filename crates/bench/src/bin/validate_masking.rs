//! Experiment V3: validates Lemmas 5.7 and 5.9 and Theorem 5.10.
//!
//! For masking parameters `q = ℓ·b`, compares the exact tail probabilities
//! `P(X ≥ k)` and `P(Y < k)` (with `k = ⌈q²/2n⌉`) against the Chernoff
//! bounds `exp(−ψ₁ q²/n)` and `exp(−ψ₂ q²/n)`, and the resulting exact ε
//! against the Theorem 5.10 bound; a Monte-Carlo estimate of the full
//! Definition 5.1 event is included as a cross-check.
//!
//! Accepts the shared validator flags ([`pqs_bench::cli`]); `--seed N` is
//! mixed into the Monte-Carlo RNG.

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::{fmt_prob, ExperimentTable};
use pqs_core::analysis::intersection::estimate_masking_failure;
use pqs_core::prelude::*;
use pqs_core::system::{ProbabilisticQuorumSystem, QuorumSystem};
use pqs_math::bounds::{masking_threshold_k, masking_x_tail_bound, masking_y_tail_bound};
use pqs_math::hypergeometric::Hypergeometric;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_masking",
        "Lemmas 5.7/5.9 and Theorem 5.10: masking tail and epsilon bounds",
    );
    let mut violations: Vec<String> = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0x3a5 ^ cli.seed);
    let mut table = ExperimentTable::new(
        "validate_masking_lemmas_5_7_5_9",
        &[
            "n",
            "b",
            "l=q/b",
            "q",
            "k",
            "P(X>=k) exact",
            "psi1 bound",
            "P(Z<k) exact",
            "psi2 bound",
            "exact eps",
            "mc eps",
            "thm 5.10 bound",
        ],
    );
    let trials = if cli.quick { 6_000u32 } else { 60_000 };
    for &(n, b) in &[(400u32, 20u32), (900, 30), (2500, 50)] {
        for &ell in &[3.0f64, 4.0, 6.0, 8.0] {
            let q = (ell * b as f64).round() as u32;
            if q > n / 2 {
                continue;
            }
            let k = masking_threshold_k(n as u64, q as u64) as u32;
            let Ok(sys) = ProbabilisticMasking::new(n, q, b) else {
                continue;
            };
            // Lemma 5.7: X = |Q ∩ B| ~ H(n, b, q).
            let x = Hypergeometric::new(n as u64, b as u64, q as u64).expect("valid");
            let x_tail = x.at_least(k as u64);
            let x_bound = masking_x_tail_bound(n as u64, q as u64, ell);
            // Lemma 5.9: Z ~ H(n, q - b, q) lower tail.
            let z = Hypergeometric::new(n as u64, (q - b) as u64, q as u64).expect("valid");
            let z_tail = z.less_than(k as u64);
            let z_bound = masking_y_tail_bound(n as u64, q as u64, ell);
            let faulty =
                pqs_core::quorum::Quorum::from_indices(sys.universe(), 0..b).expect("b < n");
            let est = estimate_masking_failure(&sys, &faulty, k as usize, trials, &mut rng)
                .expect("trials > 0");
            if x_tail > x_bound + 1e-12 {
                violations.push(format!(
                    "n={n} b={b} l={ell:.1}: P(X>=k) {} above the psi1 bound {}",
                    fmt_prob(x_tail),
                    fmt_prob(x_bound)
                ));
            }
            if z_tail > z_bound + 1e-12 {
                violations.push(format!(
                    "n={n} b={b} l={ell:.1}: P(Z<k) {} above the psi2 bound {}",
                    fmt_prob(z_tail),
                    fmt_prob(z_bound)
                ));
            }
            if sys.epsilon() > sys.epsilon_bound() + 1e-12 {
                violations.push(format!(
                    "n={n} b={b} l={ell:.1}: exact eps {} above the Theorem 5.10 bound {}",
                    fmt_prob(sys.epsilon()),
                    fmt_prob(sys.epsilon_bound())
                ));
            }
            table.push_row(vec![
                n.to_string(),
                b.to_string(),
                format!("{ell:.1}"),
                q.to_string(),
                k.to_string(),
                fmt_prob(x_tail),
                fmt_prob(x_bound),
                fmt_prob(z_tail),
                fmt_prob(z_bound),
                fmt_prob(sys.epsilon()),
                fmt_prob(est.estimate()),
                fmt_prob(sys.epsilon_bound()),
            ]);
        }
    }
    table.emit();
    println!(
        "Lemmas 5.7/5.9: each exact tail must sit below its psi bound; Theorem 5.10: the exact \
         epsilon must sit below 2 exp(-(q^2/n) min(psi1, psi2)), and it vanishes as l grows."
    );
    cli::finish("validate_masking", cli.seed, &violations);
}
