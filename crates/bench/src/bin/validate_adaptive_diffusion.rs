//! Experiment V8: digest/delta adaptive write-diffusion.
//!
//! PR 4's engine-scheduled gossip pushes *every* held record to every
//! fanout peer each round; measured on the `validate_diffusion` reference
//! cell, ~85% of those transfers freshen nobody.  The digest/delta
//! protocol (`GossipMode::DigestDelta`) replaces the blind push with a
//! two-leg exchange — a per-key version summary out, only the records the
//! summary's sender provably lacks back — and a `KeyGossipPolicy` that can
//! gossip hot or recently-written keys faster than cold ones.
//!
//! This validator sweeps policy × period × fanout over the digest mode and
//! holds it against the frozen PR 4 full-push reference cell (period 0.1 s,
//! fanout 3).  It exits nonzero unless:
//!
//! * every cell replays the identical foreground trajectory (gossip stays
//!   on its own RNG stream) and dominates the gossip-free baseline's
//!   staleness per key,
//! * the full-push reference keeps the digest machinery completely cold
//!   (no digests, no avoided-push accounting), and
//! * at least one digest cell cuts the record-transfer volume by **≥ 60%**
//!   versus full-push while matching or beating its hot-key stale-read
//!   count *and* its hot-key wall-clock time to 90% coverage — the
//!   adaptive protocol must be cheaper without being weaker where it
//!   matters most.
//!
//! Accepts the shared validator flags ([`pqs_bench::cli`]); `--seed N` is
//! mixed into the simulation seed so the CI smoke job can vary the
//! randomness run to run.

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::ExperimentTable;
use pqs_core::prelude::*;
use pqs_core::system::ProbabilisticQuorumSystem;
use pqs_sim::latency::LatencyModel;
use pqs_sim::metrics::SimReport;
use pqs_sim::runner::{DiffusionPolicy, KeyGossipPolicy, ProtocolKind, SimConfig, Simulation};
use pqs_sim::workload::KeySpace;

fn sim_config(seed: u64) -> SimConfig {
    SimConfig::builder()
        .with_duration(60.0)
        .with_arrival_rate(80.0)
        .with_read_fraction(0.9)
        .with_keyspace(KeySpace::zipf(16, 1.2))
        .with_latency(LatencyModel::Exponential { mean: 2e-3 })
        .with_op_timeout(5.0)
        .with_seed(seed)
        .build()
}

/// Stale + empty reads on the hottest Zipf key — directly comparable
/// across cells because every cell replays the identical foreground.
fn hot_failures(report: &SimReport) -> u64 {
    report.per_variable[0].stale_reads + report.per_variable[0].empty_reads
}

/// Wall-clock seconds for a fresh hot-key record to reach 90% of correct
/// servers: mean rounds to coverage × round period.
fn hot_seconds_to_coverage(report: &SimReport, period: f64) -> Option<f64> {
    report.per_variable[0]
        .mean_rounds_to_coverage()
        .map(|rounds| rounds * period)
}

struct Cell {
    label: String,
    period: f64,
    fanout: u32,
    report: SimReport,
}

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_adaptive_diffusion",
        "digest/delta gossip: >=60% push-volume cut at equal-or-better hot-key staleness",
    );
    let base_seed = cli.seed;
    let sys = EpsilonIntersecting::new(64, 8).expect("valid system");
    let config = sim_config(base_seed.wrapping_mul(0x51ed) ^ 0xace1);
    let gossip_latency = LatencyModel::Exponential { mean: 2e-3 };
    let mut violations: Vec<String> = Vec::new();

    // Gossip-free baseline: the staleness every gossip cell must dominate.
    let off = Simulation::new(&sys, ProtocolKind::Safe, config).run();
    if off.gossip_digests != 0 || off.gossip_redundant_pushes_avoided != 0 {
        violations.push("diffusion-off run recorded digest metrics".to_string());
    }
    if hot_failures(&off) < 30 {
        violations.push(format!(
            "baseline hot key has only {} stale reads — the experiment \
             cannot measure a reduction",
            hot_failures(&off)
        ));
    }

    // The frozen PR 4 reference: blind full-push at period 0.1, fanout 3.
    let push_period = 0.1;
    let mut push_config = config;
    push_config.diffusion =
        Some(DiffusionPolicy::full_push(push_period, 3).with_push_latency(gossip_latency));
    let push = Simulation::new(&sys, ProtocolKind::Safe, push_config).run();
    if push.gossip_digests != 0 || push.gossip_redundant_pushes_avoided != 0 {
        violations.push("full-push mode touched the digest machinery".to_string());
    }
    if push.gossip_pushes == 0 || push.gossip_stores == 0 {
        violations.push("full-push reference did no gossip work".to_string());
    }
    let push_cover = hot_seconds_to_coverage(&push, push_period);
    if push_cover.is_none() {
        violations.push("full-push reference never covered the hot key".to_string());
    }

    let policies: [(&str, KeyGossipPolicy); 3] = [
        ("uniform", KeyGossipPolicy::Uniform),
        (
            "hot-first(4,/8)",
            KeyGossipPolicy::HotFirst {
                hot_keys: 4,
                cold_every: 8,
            },
        ),
        (
            "recent(0.5s,/8)",
            KeyGossipPolicy::RecentWrites {
                window: 0.5,
                cold_every: 8,
            },
        ),
    ];
    // Quick mode drops the faster period: the remaining cells still cover
    // every policy and the full-push reference the headline check needs.
    let periods: &[f64] = if cli.quick { &[0.1] } else { &[0.1, 0.05] };
    let fanouts = [2u32, 3];

    let mut table = ExperimentTable::new(
        "validate_adaptive_diffusion_policy_x_period_x_fanout",
        &[
            "cell",
            "period (s)",
            "fanout",
            "digests",
            "records moved",
            "stores",
            "avoided",
            "volume vs push",
            "hot stale",
            "hot t-cover (s)",
        ],
    );
    table.push_row(vec![
        "off".to_string(),
        "-".to_string(),
        "-".to_string(),
        "0".to_string(),
        "0".to_string(),
        "0".to_string(),
        "0".to_string(),
        "-".to_string(),
        hot_failures(&off).to_string(),
        "-".to_string(),
    ]);
    table.push_row(vec![
        "full-push".to_string(),
        format!("{push_period}"),
        "3".to_string(),
        "0".to_string(),
        push.gossip_pushes.to_string(),
        push.gossip_stores.to_string(),
        "0".to_string(),
        "1.00".to_string(),
        hot_failures(&push).to_string(),
        push_cover.map_or("-".to_string(), |s| format!("{s:.3}")),
    ]);

    let mut cells: Vec<Cell> = Vec::new();
    for (name, key_policy) in &policies {
        for &period in periods {
            for &fanout in &fanouts {
                let mut cell_config = config;
                cell_config.diffusion = Some(
                    DiffusionPolicy::digest_delta(period, fanout)
                        .with_push_latency(gossip_latency)
                        .with_key_policy(*key_policy),
                );
                let report = Simulation::new(&sys, ProtocolKind::Safe, cell_config).run();
                let label = format!("digest {name}");

                // Invariant 1: identical foreground trajectory.
                if report.completed_reads != off.completed_reads
                    || report.completed_writes != off.completed_writes
                    || report.per_server_accesses != off.per_server_accesses
                {
                    violations.push(format!(
                        "{label} period {period} fanout {fanout}: foreground \
                         trajectory diverged from the diffusion-off baseline"
                    ));
                }
                // Invariant 2: domination — gossip only freshens servers.
                if report.stale_reads + report.empty_reads > off.stale_reads + off.empty_reads
                    || hot_failures(&report) > hot_failures(&off)
                {
                    violations.push(format!(
                        "{label} period {period} fanout {fanout}: staleness rose \
                         above the gossip-free baseline"
                    ));
                }
                // Invariant 3: the digest machinery genuinely ran.
                if report.gossip_digests == 0
                    || report.gossip_stores == 0
                    || report.gossip_redundant_pushes_avoided == 0
                {
                    violations.push(format!(
                        "{label} period {period} fanout {fanout}: no digest \
                         gossip work recorded"
                    ));
                }
                if report.gossip_stores > report.gossip_pushes {
                    violations.push(format!(
                        "{label} period {period} fanout {fanout}: more stores \
                         than transferred records"
                    ));
                }

                table.push_row(vec![
                    label.clone(),
                    format!("{period}"),
                    fanout.to_string(),
                    report.gossip_digests.to_string(),
                    report.gossip_pushes.to_string(),
                    report.gossip_stores.to_string(),
                    report.gossip_redundant_pushes_avoided.to_string(),
                    format!(
                        "{:.3}",
                        report.gossip_pushes as f64 / push.gossip_pushes as f64
                    ),
                    hot_failures(&report).to_string(),
                    hot_seconds_to_coverage(&report, period)
                        .map_or("-".to_string(), |s| format!("{s:.3}")),
                ]);
                cells.push(Cell {
                    label,
                    period,
                    fanout,
                    report,
                });
            }
        }
    }
    table.emit();

    // Selective digests advertise fewer keys, so they can only prove less
    // redundancy than complete (uniform) digests at the same settings.
    for &period in periods {
        for &fanout in &fanouts {
            let find = |label: &str| {
                cells
                    .iter()
                    .find(|c| {
                        c.label == format!("digest {label}")
                            && c.period == period
                            && c.fanout == fanout
                    })
                    .map(|c| c.report.gossip_redundant_pushes_avoided)
            };
            if let (Some(uniform), Some(hot)) = (find("uniform"), find("hot-first(4,/8)")) {
                if hot > uniform {
                    violations.push(format!(
                        "period {period} fanout {fanout}: hot-first digests proved \
                         more redundancy ({hot}) than complete digests ({uniform})"
                    ));
                }
            }
        }
    }

    // The headline claim: some digest cell is ≥60% cheaper in record
    // transfers than full-push while matching or beating its hot-key
    // staleness and wall-clock coverage speed.
    let push_hot = hot_failures(&push);
    let winner = cells.iter().find(|c| {
        let volume_ok = (c.report.gossip_pushes as f64) <= 0.4 * push.gossip_pushes as f64;
        let stale_ok = hot_failures(&c.report) <= push_hot;
        let cover_ok = match (hot_seconds_to_coverage(&c.report, c.period), push_cover) {
            (Some(digest), Some(push)) => digest <= push,
            _ => false,
        };
        volume_ok && stale_ok && cover_ok
    });
    match winner {
        Some(c) => println!(
            "winner: {} period {} — {:.1}% of full-push volume, hot stale \
             {} vs {}, hot coverage {:.3}s vs {:.3}s",
            c.label,
            c.period,
            100.0 * c.report.gossip_pushes as f64 / push.gossip_pushes as f64,
            hot_failures(&c.report),
            push_hot,
            hot_seconds_to_coverage(&c.report, c.period).unwrap_or(f64::NAN),
            push_cover.unwrap_or(f64::NAN),
        ),
        None => violations.push(
            "no digest cell achieved a >=60% push-volume cut at \
             equal-or-better hot-key staleness and coverage speed"
                .to_string(),
        ),
    }

    println!(
        "baseline: epsilon {:.4}, hot-key failures {} (off) vs {} (full-push, \
         {} records moved)",
        sys.epsilon(),
        hot_failures(&off),
        push_hot,
        push.gossip_pushes
    );
    cli::finish("validate_adaptive_diffusion", base_seed, &violations);
}
