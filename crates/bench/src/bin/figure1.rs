//! Regenerates Figure 1: failure probabilities of ε-intersecting quorum
//! systems.
//!
//! Left panel: `F_p` of `R(n, ℓ√n)` for n = 100 and n = 300 (ℓ chosen for
//! ε ≤ 0.001) against the lower bound on the failure probability of *any*
//! strict quorum system over at most 300 servers (majority for p < ½,
//! singleton for p ≥ ½).  Right panel: the same probabilistic systems
//! against the threshold (majority) construction of the same size.

use pqs_bench::{fmt_prob, ExperimentTable, SECTION_6_EPSILON};
use pqs_core::prelude::*;
use pqs_math::bounds::strict_failure_probability_floor;

fn main() {
    let sizes = [100u32, 300u32];
    let systems: Vec<EpsilonIntersecting> = sizes
        .iter()
        .map(|&n| {
            EpsilonIntersecting::with_target_epsilon(n, SECTION_6_EPSILON)
                .expect("target achievable")
        })
        .collect();
    for sys in &systems {
        println!(
            "{}: quorum size {}, exact epsilon {:.2e}",
            sys.name(),
            sys.quorum_size(),
            sys.epsilon()
        );
    }

    let mut table = ExperimentTable::new(
        "figure1_failure_probability_epsilon_intersecting",
        &[
            "p",
            "R(100) F_p",
            "R(300) F_p",
            "strict lower bound (n<=300)",
            "threshold(100) F_p",
            "threshold(300) F_p",
        ],
    );
    let majority_100 = Majority::new(100).expect("valid");
    let majority_300 = Majority::new(300).expect("valid");
    for step in 0..=50 {
        let p = step as f64 / 50.0;
        table.push_row(vec![
            format!("{p:.2}"),
            fmt_prob(systems[0].failure_probability(p)),
            fmt_prob(systems[1].failure_probability(p)),
            fmt_prob(strict_failure_probability_floor(300, p)),
            fmt_prob(majority_100.failure_probability(p)),
            fmt_prob(majority_300.failure_probability(p)),
        ]);
    }
    table.emit();
    println!(
        "Shape to compare with the paper's Figure 1: the probabilistic curves stay near zero \
         until p approaches 1 - l/sqrt(n) (~0.75 for n=100, ~0.85 for n=300), beating the strict \
         lower bound for every p in [0.5, 1 - l/sqrt(n)], while the threshold systems' failure \
         probability blows up as soon as p exceeds 1/2."
    );
}
