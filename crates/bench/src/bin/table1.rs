//! Regenerates Table I: lower bounds on the load and caps on the resilience
//! of strict, b-dissemination and b-masking quorum systems, evaluated at the
//! Section 6 system sizes (with b = (√n − 1)/2 as in Tables 3 and 4).

use pqs_bench::{section_6_byzantine_threshold, ExperimentTable, SECTION_6_SIZES};
use pqs_core::analysis::lower_bounds::table_one_row;

fn main() {
    let mut table = ExperimentTable::new(
        "table1_load_and_resilience_bounds",
        &[
            "n",
            "b",
            "strict load >= sqrt(1/n)",
            "dissem load >= sqrt((b+1)/n)",
            "masking load >= sqrt((2b+1)/n)",
            "dissem b <= (n-1)/3",
            "masking b <= (n-1)/4",
        ],
    );
    for n in SECTION_6_SIZES {
        let b = section_6_byzantine_threshold(n);
        let row = table_one_row(n, b);
        table.push_row(vec![
            n.to_string(),
            b.to_string(),
            format!("{:.4}", row.strict_load),
            format!("{:.4}", row.dissemination_load),
            format!("{:.4}", row.masking_load),
            row.dissemination_max_b.to_string(),
            row.masking_max_b.to_string(),
        ]);
    }
    table.emit();
    println!(
        "Paper's Table I states the bounds symbolically: sqrt(1/n), sqrt((b+1)/n), sqrt((2b+1)/n) \
         and resilience caps (n-1)/3, (n-1)/4; the rows above instantiate them."
    );
}
