//! Regenerates Table 2: quorum size and fault tolerance of the
//! ε-intersecting construction vs the strict threshold (majority) and grid
//! systems, for ε ≤ 0.001.
//!
//! Two selections of the probabilistic quorum size are reported: the paper's
//! published ℓ (column `paper l`) and the smallest quorum whose *exact*
//! non-intersection probability is ≤ 0.001 (columns `q*`, `exact eps`);
//! see EXPERIMENTS.md for the comparison.

use pqs_bench::{ExperimentTable, SECTION_6_EPSILON, SECTION_6_SIZES};
use pqs_core::prelude::*;
use pqs_core::probabilistic::params::exact_epsilon_intersecting;

/// The ℓ values published in Table 2 of the paper.
const PAPER_ELL: [(u32, f64); 6] = [
    (25, 1.80),
    (100, 2.20),
    (225, 2.40),
    (400, 2.45),
    (625, 2.48),
    (900, 2.50),
];

fn main() {
    let mut table = ExperimentTable::new(
        "table2_epsilon_intersecting_vs_strict",
        &[
            "n",
            "paper l",
            "paper q",
            "paper q eps",
            "q* (exact<=1e-3)",
            "eps-int FT",
            "threshold q",
            "threshold FT",
            "grid q",
            "grid FT",
        ],
    );
    for (n, paper_ell) in PAPER_ELL {
        assert!(SECTION_6_SIZES.contains(&n));
        let paper_q = (paper_ell * (n as f64).sqrt()).round() as u32;
        let paper_eps = exact_epsilon_intersecting(n, paper_q).expect("valid parameters");
        let exact = EpsilonIntersecting::with_target_epsilon(n, SECTION_6_EPSILON)
            .expect("target epsilon achievable");
        let majority = Majority::new(n).expect("valid n");
        let grid = Grid::new(n).expect("perfect square");
        table.push_row(vec![
            n.to_string(),
            format!("{paper_ell:.2}"),
            paper_q.to_string(),
            pqs_bench::fmt_prob(paper_eps),
            exact.quorum_size().to_string(),
            exact.fault_tolerance().to_string(),
            majority.min_quorum_size().to_string(),
            majority.fault_tolerance().to_string(),
            grid.min_quorum_size().to_string(),
            grid.fault_tolerance().to_string(),
        ]);
    }
    table.emit();
    println!(
        "Paper's Table 2 rows (quorum size / fault tolerance): eps-intersecting 9/17, 22/79, \
         36/190, 49/352, 62/564, 75/826; threshold 13/13, 51/51, 113/113, 201/201, 313/313, \
         451/451; grid 9/5, 19/10, 29/15, 39/20, 49/25, 59/30."
    );
}
