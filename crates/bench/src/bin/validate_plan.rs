//! The prediction contract: every plan the capacity planner emits must
//! survive contact with the simulator.
//!
//! For each scenario preset of [`pqs_bench::planner`] this validator solves
//! the plan, renders it as a `SimConfig` (checking the builder round-trip),
//! runs the discrete-event simulator on it, and holds the measured numbers
//! to the tolerance bands documented in `docs/ANALYSIS.md`:
//!
//! * the Wilson interval of the measured stale-read rate must not exceed
//!   the predicted `epsilon_upper` (one-sided — gossip only freshens);
//! * a diffusion-off twin run must land *inside* the two-sided
//!   `[epsilon_lower, epsilon_upper]` band;
//! * the measured p99 must fall within ±25% (plus absolute slack) of the
//!   predicted p99;
//! * unavailability must stay inside the planner's timeout budget.
//!
//! Exits nonzero on any miss, which is what turns the analysis document
//! into a CI-enforced contract rather than prose.  Accepts the shared
//! validator flags; `--quick` runs the first scenario only, at a quarter of
//! the sized duration (the Wilson bands widen automatically).

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::{fmt_prob, planner, ExperimentTable};
use pqs_core::prelude::*;
use pqs_sim::metrics::SimReport;
use pqs_sim::runner::{ProtocolKind, Simulation};

fn p99_of(report: &SimReport) -> f64 {
    report.p99_latency()
}

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_plan",
        "runs the simulator on every capacity-planner preset and enforces the \
         documented tolerance bands on measured epsilon and p99",
    );
    let mut violations: Vec<String> = Vec::new();
    let mut table = ExperimentTable::new(
        "validate_plan_prediction_contract",
        &[
            "scenario",
            "gossip",
            "n",
            "q",
            "margin",
            "eps predicted band",
            "eps measured",
            "p99 predicted",
            "p99 measured",
            "unavailability",
        ],
    );

    let scenarios = planner::scenarios();
    let active: &[planner::Scenario] = if cli.quick {
        &scenarios[..1]
    } else {
        &scenarios
    };

    for scenario in active {
        let solved = match pqs_math::plan::solve(&scenario.input) {
            Ok(p) => p,
            Err(e) => {
                violations.push(format!(
                    "{}: planner found no feasible plan: {e}",
                    scenario.name
                ));
                continue;
            }
        };
        let system = match EpsilonIntersecting::new(solved.n as u32, solved.q as u32) {
            Ok(s) => s,
            Err(e) => {
                violations.push(format!(
                    "{}: emitted (n={}, q={}) rejected by EpsilonIntersecting: {e}",
                    scenario.name, solved.n, solved.q
                ));
                continue;
            }
        };
        let duration = planner::duration_for(&scenario.input, &solved, cli.quick);
        let seed = cli
            .seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(scenario.name.len() as u64);

        for diffusion_on in [true, false] {
            let config =
                planner::plan_config(&scenario.input, &solved, seed, duration, diffusion_on);
            if !planner::builder_round_trips(&config) {
                violations.push(format!(
                    "{}: emitted config does not round-trip through SimConfig::builder()",
                    scenario.name
                ));
            }
            let label = format!(
                "{} ({})",
                scenario.name,
                if diffusion_on {
                    "gossip on"
                } else {
                    "gossip off"
                }
            );
            let report = Simulation::new(&system, ProtocolKind::Safe, config).run();
            violations.extend(planner::check_prediction(
                &label,
                &solved,
                &report,
                diffusion_on,
            ));
            let p = &solved.predicted;
            table.push_row(vec![
                scenario.name.to_string(),
                if diffusion_on { "on" } else { "off" }.to_string(),
                solved.n.to_string(),
                solved.q.to_string(),
                solved.probe_margin.to_string(),
                format!(
                    "[{}, {}]",
                    fmt_prob(p.epsilon_lower),
                    fmt_prob(p.epsilon_upper)
                ),
                fmt_prob(report.eligible_stale_read_rate()),
                format!("{:.4}s", p.p99_latency),
                format!("{:.4}s", p99_of(&report)),
                fmt_prob(report.unavailability()),
            ]);
        }
    }

    table.emit();
    cli::finish("validate_plan", cli.seed, &violations);
}
