//! Experiment V6: the sharded key–value store over one quorum system.
//!
//! Sweeps key count × popularity skew and checks, for every cell of the
//! sweep, that sharding the workload over many replicated variables leaves
//! the **per-server** load exactly where the paper's analysis puts it
//! (Definition 2.4: the access strategy — not the key popularity — decides
//! which servers are touched), while the **per-key** load follows the
//! workload's popularity law.  Also prints the hot-key p99 table for the
//! most skewed configuration: per-key latency percentiles out of one shared
//! event queue.
//!
//! Accepts the shared validator flags ([`pqs_bench::cli`]); `--seed N` is
//! mixed into every simulation seed so the CI smoke job can vary the
//! randomness run to run.  Like the other validators, the binary *checks*
//! its claims: any violated bound makes it exit nonzero.

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::ExperimentTable;
use pqs_core::prelude::*;
use pqs_core::system::QuorumSystem;
use pqs_sim::latency::LatencyModel;
use pqs_sim::runner::{ProtocolKind, SimConfig, Simulation};
use pqs_sim::workload::KeySpace;

fn sim_config(cli: &ValidatorCli, seed: u64, keyspace: KeySpace) -> SimConfig {
    SimConfig::builder()
        .with_duration(if cli.quick { 40.0 } else { 150.0 })
        .with_arrival_rate(80.0)
        .with_read_fraction(0.8)
        .with_keyspace(keyspace)
        .with_latency(LatencyModel::Exponential { mean: 2e-3 })
        .with_op_timeout(5.0)
        .with_seed(seed)
        .build()
}

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_sharding",
        "per-server load invariance and per-key popularity of the sharded KV store",
    );
    let base_seed = cli.seed;
    let sys = EpsilonIntersecting::with_target_epsilon(100, 1e-3).expect("valid system");
    let analytic_load = sys.load();
    let mut violations: Vec<String> = Vec::new();

    let mut table = ExperimentTable::new(
        "validate_sharding_key_count_x_skew",
        &[
            "keys",
            "skew",
            "ops",
            "hot key share",
            "predicted share",
            "key imbalance",
            "empirical load",
            "analytic load",
            "hot-key p99 (s)",
            "aggregate p99 (s)",
        ],
    );

    let sweep: &[KeySpace] = &[
        KeySpace::single(),
        KeySpace::uniform(16),
        KeySpace::zipf(16, 1.0),
        KeySpace::uniform(256),
        KeySpace::zipf(256, 1.0),
        KeySpace::zipf(1024, 0.8),
        KeySpace::zipf(1024, 1.2),
    ];

    let mut hot_key_report = None;
    for (i, &keyspace) in sweep.iter().enumerate() {
        let config = sim_config(&cli, base_seed ^ (i as u64 + 1), keyspace);
        let report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        let total_ops = report.completed_reads + report.completed_writes + report.unavailable_ops;

        // Invariant 1: the per-key breakdown loses no operations.
        if report.summed_per_variable_ops() != total_ops {
            violations.push(format!(
                "keys={} {}: per-key op sum {} != aggregate {}",
                keyspace.keys,
                keyspace.skew,
                report.summed_per_variable_ops(),
                total_ops
            ));
        }

        // Invariant 2 — the paper's load bound: per-server load only
        // depends on the access strategy, so it must track the analytic
        // load of Theorem 3.9 for every key count and skew.
        let empirical = report.empirical_load();
        if (empirical - analytic_load).abs() > 0.05 {
            violations.push(format!(
                "keys={} {}: empirical server load {:.4} strays from analytic {:.4}",
                keyspace.keys, keyspace.skew, empirical, analytic_load
            ));
        }

        // Invariant 3: the hottest key's measured share tracks the
        // popularity law's predicted mass (4-sigma sampling slack).
        let popularity = keyspace.popularity();
        let predicted = popularity[0];
        let hot = report
            .hottest_variable()
            .expect("per-variable breakdown is populated");
        let share = hot.operations() as f64 / total_ops.max(1) as f64;
        let sigma = (predicted * (1.0 - predicted) / total_ops.max(1) as f64).sqrt();
        if (share - predicted).abs() > 4.0 * sigma + 0.01 {
            violations.push(format!(
                "keys={} {}: hot-key share {:.4} strays from predicted {:.4}",
                keyspace.keys, keyspace.skew, share, predicted
            ));
        }

        table.push_row(vec![
            keyspace.keys.to_string(),
            keyspace.skew.to_string(),
            total_ops.to_string(),
            format!("{share:.4}"),
            format!("{predicted:.4}"),
            format!("{:.2}", report.key_load_imbalance()),
            format!("{empirical:.4}"),
            format!("{analytic_load:.4}"),
            format!("{:.5}", hot.p99_latency()),
            format!("{:.5}", report.p99_latency()),
        ]);

        if keyspace == KeySpace::zipf(1024, 1.2) {
            hot_key_report = Some(report);
        }
    }
    table.emit();

    // The hot-key p99 table: per-key percentiles of the most skewed run.
    let report = hot_key_report.expect("the sweep contains the zipf(1024, 1.2) cell");
    let mut hot_table = ExperimentTable::new(
        "validate_sharding_hot_key_p99_zipf1024",
        &[
            "key rank",
            "key",
            "ops",
            "share",
            "p50 (s)",
            "p99 (s)",
            "stale rate",
        ],
    );
    let mut by_ops: Vec<_> = report.per_variable.iter().collect();
    by_ops.sort_by_key(|v| std::cmp::Reverse(v.operations()));
    let total: u64 = report.summed_per_variable_ops().max(1);
    for (rank, v) in by_ops.iter().take(8).enumerate() {
        let quantiles = v.latency.percentiles(&[50.0, 99.0]);
        hot_table.push_row(vec![
            rank.to_string(),
            v.variable.to_string(),
            v.operations().to_string(),
            format!("{:.4}", v.operations() as f64 / total as f64),
            format!("{:.5}", quantiles[0]),
            format!("{:.5}", quantiles[1]),
            format!("{:.4}", v.stale_read_rate()),
        ]);
        // The Zipf ranking must be visible in the measured ordering for the
        // heaviest keys (rank i is key i for the top of a 1.2-skew law).
        if rank < 3 && v.variable != rank as u64 {
            violations.push(format!(
                "hot-key table rank {rank} is key {} (expected {rank})",
                v.variable
            ));
        }
    }
    hot_table.emit();

    cli::finish("validate_sharding", base_seed, &violations);
}
