//! The capacity planner CLI: solve for `(n, q, margin, gossip)` from SLOs.
//!
//! Inverts the validator bins' parameter sweeps: given a staleness target
//! (`--epsilon`), a latency SLO (`--p99-slo`) and a workload shape, emit
//! the minimal configuration the paper's tail bounds predict will meet
//! them — as a ready-to-run `SimConfig::builder()` chain — together with
//! the predicted report (ε band, p99, per-server load, gossip volume).
//!
//! Start from a named scenario preset (`--scenario directory|hotkey|lock`,
//! see `docs/PLANNER.md`) and override any knob; the `validate_plan` bin
//! holds every emitted plan to the tolerance bands of `docs/ANALYSIS.md`.
//!
//! Exit codes follow the fleet convention: 0 for a solved plan, 1 when the
//! objectives are infeasible within `--max-universe`, 2 for bad usage.

use pqs_bench::cli::{self, ExtraFlag, ValidatorCli};
use pqs_bench::planner;
use pqs_bench::{fmt_prob, ExperimentTable};
use pqs_math::plan::{self, PlanInput, ProbeLatency};

const BIN: &str = "plan";
const ABOUT: &str =
    "solves for the minimal (n, q, probe margin, gossip) meeting an epsilon target and a p99 SLO";

const EXTRAS: &[ExtraFlag] = &[
    ExtraFlag {
        flag: "--scenario",
        value_name: "NAME",
        help: "preset to start from: directory, hotkey or lock (default directory)",
    },
    ExtraFlag {
        flag: "--epsilon",
        value_name: "EPS",
        help: "target staleness bound in (0.002, 1)",
    },
    ExtraFlag {
        flag: "--p99-slo",
        value_name: "SECS",
        help: "target 99th-percentile operation latency, seconds",
    },
    ExtraFlag {
        flag: "--arrival-rate",
        value_name: "OPS",
        help: "offered operations per second",
    },
    ExtraFlag {
        flag: "--read-fraction",
        value_name: "FRAC",
        help: "fraction of operations that are reads, in [0, 1]",
    },
    ExtraFlag {
        flag: "--keys",
        value_name: "N",
        help: "number of distinct keys",
    },
    ExtraFlag {
        flag: "--zipf",
        value_name: "S",
        help: "Zipf exponent of key popularity (0 = uniform)",
    },
    ExtraFlag {
        flag: "--crash",
        value_name: "P",
        help: "per-server time-zero crash probability, in [0, 1)",
    },
    ExtraFlag {
        flag: "--latency-mean",
        value_name: "SECS",
        help: "mean of the exponential per-probe latency law",
    },
    ExtraFlag {
        flag: "--max-server-rate",
        value_name: "OPS",
        help: "per-server probe-rate cap, probes per second",
    },
    ExtraFlag {
        flag: "--max-universe",
        value_name: "N",
        help: "ceiling for the universe-size search (default 4096)",
    },
];

fn usage_error(msg: String) -> ! {
    eprintln!(
        "error: {msg}\n\n{}",
        cli::help_text_with(BIN, ABOUT, EXTRAS)
    );
    std::process::exit(cli::EXIT_USAGE);
}

fn parse_f64(flag: &str, value: &str) -> f64 {
    value
        .parse()
        .unwrap_or_else(|_| usage_error(format!("{flag} expects a number, got {value:?}")))
}

fn parse_u64(flag: &str, value: &str) -> u64 {
    value.parse().unwrap_or_else(|_| {
        usage_error(format!("{flag} expects an unsigned integer, got {value:?}"))
    })
}

/// Folds the collected extra flags over the chosen scenario preset.
fn build_input(extras: &[(String, String)]) -> (String, PlanInput) {
    let scenario_name = extras
        .iter()
        .rev()
        .find(|(f, _)| f == "--scenario")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "directory".to_string());
    let scenario = planner::scenario_by_name(&scenario_name).unwrap_or_else(|| {
        usage_error(format!(
            "unknown scenario {scenario_name:?} (expected directory, hotkey or lock)"
        ))
    });
    let mut input = scenario.input;
    for (flag, value) in extras {
        match flag.as_str() {
            "--scenario" => {}
            "--epsilon" => input.slo.epsilon = parse_f64(flag, value),
            "--p99-slo" => input.slo.p99_latency = parse_f64(flag, value),
            "--arrival-rate" => input.workload.arrival_rate = parse_f64(flag, value),
            "--read-fraction" => input.workload.read_fraction = parse_f64(flag, value),
            "--keys" => input.workload.keys = parse_u64(flag, value),
            "--zipf" => input.workload.zipf_exponent = parse_f64(flag, value),
            "--crash" => input.workload.crash_fraction = parse_f64(flag, value),
            "--latency-mean" => {
                input.latency = ProbeLatency::Exponential {
                    mean: parse_f64(flag, value),
                }
            }
            "--max-server-rate" => input.slo.max_server_rate = parse_f64(flag, value),
            "--max-universe" => input.max_universe = parse_u64(flag, value),
            other => usage_error(format!("unhandled flag {other:?}")),
        }
    }
    (scenario_name, input)
}

fn main() {
    let (cli_opts, extras) = ValidatorCli::from_env_with(BIN, ABOUT, EXTRAS);
    let (scenario_name, input) = build_input(&extras);

    let solved = match plan::solve(&input) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{BIN}: no feasible plan for scenario {scenario_name:?}: {e}");
            std::process::exit(cli::EXIT_VALIDATION_FAILED);
        }
    };

    let duration = planner::duration_for(&input, &solved, cli_opts.quick);
    let config = planner::plan_config(&input, &solved, cli_opts.seed, duration, true);
    let p = &solved.predicted;

    let mut table = ExperimentTable::new(
        format!("plan {scenario_name}"),
        &["quantity", "value", "meaning"],
    );
    let mut row = |q: &str, v: String, m: &str| table.push_row(vec![q.into(), v, m.into()]);
    row("n", solved.n.to_string(), "universe size (servers)");
    row(
        "q",
        solved.q.to_string(),
        "quorum size (complete on first q replies)",
    );
    row(
        "probe_margin",
        solved.probe_margin.to_string(),
        "extra servers probed per op",
    );
    match solved.gossip {
        Some(g) => {
            row(
                "gossip_period",
                format!("{:.3}s", g.period),
                "seconds between rounds",
            );
            row(
                "gossip_fanout",
                g.fanout.to_string(),
                "digest targets per round",
            );
            row(
                "gossip_mode",
                if g.digest_delta {
                    "digest/delta".into()
                } else {
                    "full push".into()
                },
                "what rounds put on the wire",
            );
        }
        None => row(
            "gossip",
            "off".into(),
            "all-read workload: nothing to diffuse",
        ),
    }
    row(
        "epsilon_predicted",
        fmt_prob(p.epsilon),
        "point prediction of the stale-read rate",
    );
    row(
        "epsilon_band",
        format!(
            "[{}, {}]",
            fmt_prob(p.epsilon_lower),
            fmt_prob(p.epsilon_upper)
        ),
        "tolerance band enforced by validate_plan",
    );
    row(
        "epsilon_lemma_bound",
        fmt_prob(p.epsilon_lemma_bound),
        "closed-form e^(-l^2) at the effective l",
    );
    row(
        "p99_predicted",
        format!("{:.4}s", p.p99_latency),
        "99th-pct op latency",
    );
    row(
        "p99_bracket",
        format!("[{:.4}s, {:.4}s]", p.p99_lower, p.p99_upper),
        "quantile across the plausible crash draws",
    );
    row(
        "timeout_probability",
        fmt_prob(p.timeout_probability),
        "P(cannot assemble q live replies)",
    );
    row(
        "op_timeout",
        format!("{:.4}s", p.op_timeout),
        "recommended attempt cutoff",
    );
    row(
        "load_fraction",
        format!("{:.4}", p.load_fraction),
        "(q+margin)/n, the Definition 2.4 load",
    );
    row(
        "server_probe_rate",
        format!("{:.2}/s", p.server_probe_rate),
        "probes per second per server",
    );
    if solved.gossip.is_some() {
        row(
            "gossip_digest_rate",
            format!("{:.1}/s", p.gossip_digest_rate),
            "digests per second, live universe",
        );
        row(
            "gossip_records_per_write",
            format!("{:.0}", p.gossip_records_per_write),
            "upper bound on delta records per write",
        );
        row(
            "gossip_coverage",
            format!("{:.3}s", p.gossip_coverage_seconds),
            "predicted time to full live coverage",
        );
    }
    table.emit();

    println!(
        "emitted SimConfig ({duration:.0}s run, seed {}):",
        cli_opts.seed
    );
    println!("  {}", config.to_builder_chain());
    println!();
    println!(
        "verify with: validate_plan --seed {} {}",
        cli_opts.seed,
        if cli_opts.quick { "--quick" } else { "" }
    );
    std::process::exit(cli::EXIT_OK);
}
