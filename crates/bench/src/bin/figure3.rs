//! Regenerates Figure 3: failure probabilities of probabilistic masking
//! quorum systems (b = √n) against the strict lower bound and the strict
//! masking threshold construction of size ⌈(n+2b+1)/2⌉.

use pqs_bench::{fmt_prob, ExperimentTable, SECTION_6_EPSILON};
use pqs_core::prelude::*;
use pqs_math::bounds::strict_failure_probability_floor;

fn main() {
    let configs: Vec<(u32, u32)> = vec![(100, 10), (300, 17)]; // (n, b = sqrt(n))
    let mut probabilistic = Vec::new();
    for &(n, b) in &configs {
        let sys = ProbabilisticMasking::with_target_epsilon(n, b, SECTION_6_EPSILON)
            .expect("target achievable");
        println!(
            "{}: quorum size {}, threshold k = {}, exact epsilon {:.2e}",
            sys.name(),
            sys.quorum_size(),
            sys.read_threshold(),
            sys.epsilon()
        );
        probabilistic.push(sys);
    }
    let strict: Vec<MaskingThreshold> = configs
        .iter()
        .map(|&(n, b)| MaskingThreshold::new(n, b).expect("within bound"))
        .collect();

    let mut table = ExperimentTable::new(
        "figure3_failure_probability_masking",
        &[
            "p",
            "prob(100,b=10) F_p",
            "prob(300,b=17) F_p",
            "strict lower bound (n<=300)",
            "threshold(100,b=10) F_p",
            "threshold(300,b=17) F_p",
        ],
    );
    for step in 0..=50 {
        let p = step as f64 / 50.0;
        table.push_row(vec![
            format!("{p:.2}"),
            fmt_prob(probabilistic[0].failure_probability(p)),
            fmt_prob(probabilistic[1].failure_probability(p)),
            fmt_prob(strict_failure_probability_floor(300, p)),
            fmt_prob(strict[0].failure_probability(p)),
            fmt_prob(strict[1].failure_probability(p)),
        ]);
    }
    table.emit();
    println!(
        "Shape to compare with the paper's Figure 3: the strict masking threshold uses quorums of \
         ~(n+2b)/2 servers and its availability collapses earliest of all; the probabilistic \
         masking construction, whose quorums stay O(sqrt(n) log-ish), keeps F_p ~ 0 past p = 1/2."
    );
}
