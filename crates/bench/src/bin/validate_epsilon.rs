//! Experiment V1: validates Lemma 3.15 / Theorem 3.16.
//!
//! For a sweep of universe sizes and ℓ values, compares
//! (a) the exact non-intersection probability `C(n−q, q)/C(n, q)`,
//! (b) a Monte-Carlo estimate obtained by sampling quorum pairs, and
//! (c) the analytical bound `e^{−ℓ²}`.
//!
//! Accepts the shared validator flags ([`pqs_bench::cli`]); `--seed N` is
//! mixed into the Monte-Carlo RNG so CI can re-check the bounds under
//! fresh randomness.

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::{fmt_prob, ExperimentTable};
use pqs_core::analysis::intersection::estimate_nonintersection;
use pqs_core::prelude::*;
use pqs_core::system::ProbabilisticQuorumSystem;
use pqs_math::bounds::epsilon_intersecting_bound;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_epsilon",
        "Lemma 3.15 / Theorem 3.16: epsilon-intersecting non-intersection bounds",
    );
    let mut violations: Vec<String> = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0x51e5 ^ cli.seed);
    let mut table = ExperimentTable::new(
        "validate_epsilon_lemma_3_15",
        &[
            "n",
            "l",
            "q",
            "exact eps",
            "monte-carlo eps",
            "mc 95% upper",
            "bound e^{-l^2}",
            "bound holds",
        ],
    );
    let trials = if cli.quick { 20_000u32 } else { 200_000 };
    for &n in &[100u32, 400, 900, 2500] {
        for &ell in &[1.0f64, 1.5, 2.0, 2.5, 3.0] {
            let sys = EpsilonIntersecting::with_ell(n, ell).expect("valid parameters");
            let est = estimate_nonintersection(&sys, trials, &mut rng).expect("trials > 0");
            let bound = epsilon_intersecting_bound(sys.ell());
            if sys.epsilon() > bound + 1e-12 {
                violations.push(format!(
                    "n={n} l={ell:.1}: exact eps {} above bound {}",
                    fmt_prob(sys.epsilon()),
                    fmt_prob(bound)
                ));
            }
            if est.estimate() > bound + 0.01 {
                violations.push(format!(
                    "n={n} l={ell:.1}: monte-carlo eps {} strays above bound {}",
                    fmt_prob(est.estimate()),
                    fmt_prob(bound)
                ));
            }
            table.push_row(vec![
                n.to_string(),
                format!("{ell:.1}"),
                sys.quorum_size().to_string(),
                fmt_prob(sys.epsilon()),
                fmt_prob(est.estimate()),
                fmt_prob(est.wilson_interval(1.96).1),
                fmt_prob(bound),
                (sys.epsilon() <= bound + 1e-12 && est.estimate() <= bound + 0.01).to_string(),
            ]);
        }
    }
    table.emit();
    println!(
        "Every row must show exact <= bound (Lemma 3.15) with the Monte-Carlo estimate \
         agreeing with the exact value up to sampling noise."
    );
    cli::finish("validate_epsilon", cli.seed, &violations);
}
