//! Experiment V4: protocol-level validation of Theorems 3.2, 4.2 and 5.2 by
//! simulation, plus the effect of the Section 1.1 diffusion mechanism.
//!
//! Each row runs the discrete-event simulator with one protocol/system pair
//! and compares the measured stale-read rate against the system's exact ε.
//!
//! Accepts the shared validator flags ([`pqs_bench::cli`]); `--seed N` is
//! mixed into every simulation seed so the CI smoke job can vary the
//! randomness run to run.  The binary *checks* its claims, not just prints
//! them: any measured rate violating its theorem bound (with generous
//! sampling slack) makes it exit nonzero, so the smoke job genuinely
//! re-verifies the paper under every seed.

use pqs_bench::cli::{self, ValidatorCli};
use pqs_bench::{fmt_prob, ExperimentTable};
use pqs_core::prelude::*;
use pqs_core::system::{ProbabilisticQuorumSystem, QuorumSystem};
use pqs_protocols::cluster::Cluster;
use pqs_protocols::diffusion::{diffuse_plain, DiffusionConfig};
use pqs_protocols::register::SafeRegister;
use pqs_protocols::value::Value;
use pqs_sim::latency::LatencyModel;
use pqs_sim::runner::{ProtocolKind, SimConfig, Simulation};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sim_config(cli: &ValidatorCli, seed: u64) -> SimConfig {
    SimConfig::builder()
        .with_duration(if cli.quick { 60.0 } else { 200.0 })
        .with_arrival_rate(40.0)
        .with_read_fraction(0.7)
        .with_latency(LatencyModel::Fixed(1e-6))
        .with_crash_probability(0.0)
        .with_byzantine(0)
        .with_seed(seed)
        .build()
}

fn main() {
    let cli = ValidatorCli::from_env(
        "validate_protocols",
        "Theorems 3.2, 4.2 and 5.2 by simulation, plus diffusion and probe-margin effects",
    );
    let base_seed = cli.seed;
    // Collected bound violations; reported and turned into a nonzero exit
    // at the end so one bad row does not hide the rest of the tables.
    let mut violations: Vec<String> = Vec::new();
    let mut table = ExperimentTable::new(
        "validate_protocols_theorems_3_2_4_2_5_2",
        &[
            "protocol",
            "system",
            "byzantine",
            "exact eps",
            "measured stale rate",
            "unavailability",
            "empirical load",
            "analytic load",
        ],
    );

    // Theorem 3.2 — safe register, crash model, two quorum sizes.
    for &(n, q) in &[(64u32, 8u32), (100, 15), (400, 49)] {
        let sys = EpsilonIntersecting::new(n, q).expect("valid");
        let report =
            Simulation::new(&sys, ProtocolKind::Safe, sim_config(&cli, base_seed ^ 1)).run();
        check_stale_rate(
            &mut violations,
            "safe (Thm 3.2)",
            &sys.name(),
            &report,
            sys.epsilon(),
        );
        table.push_row(vec![
            "safe (Thm 3.2)".into(),
            sys.name(),
            "0".into(),
            fmt_prob(sys.epsilon()),
            fmt_prob(report.stale_read_rate()),
            fmt_prob(report.unavailability()),
            format!("{:.4}", report.empirical_load()),
            format!("{:.4}", sys.load()),
        ]);
    }

    // Theorem 4.2 — dissemination register with Byzantine servers.
    for &(n, b) in &[(100u32, 20u32), (300, 100)] {
        let sys = ProbabilisticDissemination::with_target_epsilon(n, b, 1e-3).expect("valid");
        let mut config = sim_config(&cli, base_seed ^ 2);
        config.byzantine = b;
        let report = Simulation::new(&sys, ProtocolKind::Dissemination, config).run();
        check_stale_rate(
            &mut violations,
            "dissemination (Thm 4.2)",
            &sys.name(),
            &report,
            sys.epsilon(),
        );
        table.push_row(vec![
            "dissemination (Thm 4.2)".into(),
            sys.name(),
            b.to_string(),
            fmt_prob(sys.epsilon()),
            fmt_prob(report.stale_read_rate()),
            fmt_prob(report.unavailability()),
            format!("{:.4}", report.empirical_load()),
            format!("{:.4}", sys.load()),
        ]);
    }

    // Theorem 5.2 — masking register with colluding forgers.
    for &(n, b) in &[(100u32, 5u32), (400, 20)] {
        let sys = ProbabilisticMasking::with_target_epsilon(n, b, 1e-3).expect("valid");
        let mut config = sim_config(&cli, base_seed ^ 3);
        config.byzantine = b;
        let report = Simulation::new(
            &sys,
            ProtocolKind::Masking {
                threshold: sys.read_threshold(),
            },
            config,
        )
        .run();
        check_stale_rate(
            &mut violations,
            "masking (Thm 5.2)",
            &sys.name(),
            &report,
            sys.epsilon(),
        );
        table.push_row(vec![
            "masking (Thm 5.2)".into(),
            sys.name(),
            b.to_string(),
            fmt_prob(sys.epsilon()),
            fmt_prob(report.stale_read_rate()),
            fmt_prob(report.unavailability()),
            format!("{:.4}", report.empirical_load()),
            format!("{:.4}", sys.load()),
        ]);
    }
    table.emit();

    // Diffusion (Section 1.1): write, gossip, read — staleness collapses.
    let mut diffusion_table = ExperimentTable::new(
        "validate_protocols_diffusion_effect",
        &["system", "rounds", "stale rate without", "stale rate with"],
    );
    let sys = EpsilonIntersecting::new(64, 8).expect("valid");
    let mut rng = ChaCha8Rng::seed_from_u64(base_seed ^ 9);
    for &rounds in &[1usize, 3, 5] {
        let mut cluster = Cluster::new(sys.universe());
        let mut register = SafeRegister::new(&sys, 1);
        let trials = if cli.quick { 500u64 } else { 3000 };
        let mut stale_without = 0u64;
        let mut stale_with = 0u64;
        for i in 1..=trials {
            register
                .write(&mut cluster, &mut rng, Value::from_u64(i))
                .expect("servers up");
            match register.read(&mut cluster, &mut rng).expect("servers up") {
                Some(tv) if tv.value == Value::from_u64(i) => {}
                _ => stale_without += 1,
            }
            diffuse_plain(
                &mut cluster,
                0,
                DiffusionConfig { fanout: 2, rounds },
                &mut rng,
            );
            match register.read(&mut cluster, &mut rng).expect("servers up") {
                Some(tv) if tv.value == Value::from_u64(i) => {}
                _ => stale_with += 1,
            }
        }
        diffusion_table.push_row(vec![
            sys.name(),
            rounds.to_string(),
            fmt_prob(stale_without as f64 / trials as f64),
            fmt_prob(stale_with as f64 / trials as f64),
        ]);
    }
    diffusion_table.emit();

    // First-q-of-probed access: under a long-tail (Pareto) latency model,
    // probing q + margin servers and finishing on the first q replies cuts
    // the p99 of quorum-operation latency at a small cost in load.
    let mut margin_table = ExperimentTable::new(
        "validate_protocols_probe_margin_tail_latency",
        &[
            "probe margin",
            "read p50 (s)",
            "read p95 (s)",
            "read p99 (s)",
            "mean in-flight",
            "empirical load",
            "stale rate",
        ],
    );
    let sys = EpsilonIntersecting::new(100, 22).expect("valid");
    let mut margin_p99s: Vec<f64> = Vec::new();
    for &margin in &[0u32, 4, 8] {
        let mut config = sim_config(&cli, base_seed ^ 4);
        config.duration = 60.0;
        config.latency = LatencyModel::Pareto {
            scale: 1e-3,
            shape: 1.8,
        };
        config.op_timeout = 10.0;
        config.probe_margin = margin;
        let report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        let quantiles = report.read_latency.percentiles(&[50.0, 95.0, 99.0]);
        margin_p99s.push(quantiles[2]);
        margin_table.push_row(vec![
            margin.to_string(),
            format!("{:.5}", quantiles[0]),
            format!("{:.5}", quantiles[1]),
            format!("{:.5}", quantiles[2]),
            format!("{:.2}", report.mean_in_flight),
            format!("{:.4}", report.empirical_load()),
            fmt_prob(report.stale_read_rate()),
        ]);
    }
    margin_table.emit();
    // The headline first-q-of-probed claim, with slack for sampling noise:
    // the widest margin must beat margin 0's p99 by a clear factor.
    if margin_p99s[2] >= margin_p99s[0] * 0.8 {
        violations.push(format!(
            "probe margin 8 p99 {} does not beat margin 0 p99 {}",
            margin_p99s[2], margin_p99s[0]
        ));
    }
    println!(
        "Expected shape: each measured stale rate tracks (and does not exceed by more than \
         sampling noise) the system's exact epsilon; diffusion drives it further toward zero; \
         and read p99 falls monotonically as the probe margin grows."
    );
    cli::finish("validate_protocols", base_seed, &violations);
}

/// Records a violation if the measured stale-read rate exceeds the
/// system's exact ε by more than sampling noise, or if any operation was
/// unavailable in these failure-free-availability runs.  The slack
/// (3 standard deviations plus an absolute floor) keeps seed variation
/// from producing false alarms while still catching real regressions.
fn check_stale_rate(
    violations: &mut Vec<String>,
    protocol: &str,
    system: &str,
    report: &pqs_sim::metrics::SimReport,
    epsilon: f64,
) {
    let reads = (report.completed_reads.max(1)) as f64;
    let noise = 3.0 * (epsilon * (1.0 - epsilon) / reads).sqrt();
    let bound = epsilon + noise + 0.01;
    let measured = report.stale_read_rate();
    if measured > bound {
        violations.push(format!(
            "{protocol} over {system}: stale rate {measured} exceeds eps {epsilon} + slack ({bound})"
        ));
    }
    if report.unavailable_ops > 0 {
        violations.push(format!(
            "{protocol} over {system}: {} unavailable ops in a crash-free run",
            report.unavailable_ops
        ));
    }
}
