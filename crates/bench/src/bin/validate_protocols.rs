//! Experiment V4: protocol-level validation of Theorems 3.2, 4.2 and 5.2 by
//! simulation, plus the effect of the Section 1.1 diffusion mechanism.
//!
//! Each row runs the discrete-event simulator with one protocol/system pair
//! and compares the measured stale-read rate against the system's exact ε.

use pqs_bench::{fmt_prob, ExperimentTable};
use pqs_core::prelude::*;
use pqs_core::system::{ProbabilisticQuorumSystem, QuorumSystem};
use pqs_protocols::cluster::Cluster;
use pqs_protocols::diffusion::{diffuse_plain, DiffusionConfig};
use pqs_protocols::register::SafeRegister;
use pqs_protocols::value::Value;
use pqs_sim::latency::LatencyModel;
use pqs_sim::runner::{ProtocolKind, SimConfig, Simulation};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        duration: 200.0,
        arrival_rate: 40.0,
        read_fraction: 0.7,
        latency: LatencyModel::Fixed(1e-6),
        crash_probability: 0.0,
        byzantine: 0,
        seed,
    }
}

fn main() {
    let mut table = ExperimentTable::new(
        "validate_protocols_theorems_3_2_4_2_5_2",
        &[
            "protocol",
            "system",
            "byzantine",
            "exact eps",
            "measured stale rate",
            "unavailability",
            "empirical load",
            "analytic load",
        ],
    );

    // Theorem 3.2 — safe register, crash model, two quorum sizes.
    for &(n, q) in &[(64u32, 8u32), (100, 15), (400, 49)] {
        let sys = EpsilonIntersecting::new(n, q).expect("valid");
        let report = Simulation::new(&sys, ProtocolKind::Safe, sim_config(1)).run();
        table.push_row(vec![
            "safe (Thm 3.2)".into(),
            sys.name(),
            "0".into(),
            fmt_prob(sys.epsilon()),
            fmt_prob(report.stale_read_rate()),
            fmt_prob(report.unavailability()),
            format!("{:.4}", report.empirical_load()),
            format!("{:.4}", sys.load()),
        ]);
    }

    // Theorem 4.2 — dissemination register with Byzantine servers.
    for &(n, b) in &[(100u32, 20u32), (300, 100)] {
        let sys = ProbabilisticDissemination::with_target_epsilon(n, b, 1e-3).expect("valid");
        let mut config = sim_config(2);
        config.byzantine = b;
        let report = Simulation::new(&sys, ProtocolKind::Dissemination, config).run();
        table.push_row(vec![
            "dissemination (Thm 4.2)".into(),
            sys.name(),
            b.to_string(),
            fmt_prob(sys.epsilon()),
            fmt_prob(report.stale_read_rate()),
            fmt_prob(report.unavailability()),
            format!("{:.4}", report.empirical_load()),
            format!("{:.4}", sys.load()),
        ]);
    }

    // Theorem 5.2 — masking register with colluding forgers.
    for &(n, b) in &[(100u32, 5u32), (400, 20)] {
        let sys = ProbabilisticMasking::with_target_epsilon(n, b, 1e-3).expect("valid");
        let mut config = sim_config(3);
        config.byzantine = b;
        let report = Simulation::new(
            &sys,
            ProtocolKind::Masking {
                threshold: sys.read_threshold(),
            },
            config,
        )
        .run();
        table.push_row(vec![
            "masking (Thm 5.2)".into(),
            sys.name(),
            b.to_string(),
            fmt_prob(sys.epsilon()),
            fmt_prob(report.stale_read_rate()),
            fmt_prob(report.unavailability()),
            format!("{:.4}", report.empirical_load()),
            format!("{:.4}", sys.load()),
        ]);
    }
    table.emit();

    // Diffusion (Section 1.1): write, gossip, read — staleness collapses.
    let mut diffusion_table = ExperimentTable::new(
        "validate_protocols_diffusion_effect",
        &["system", "rounds", "stale rate without", "stale rate with"],
    );
    let sys = EpsilonIntersecting::new(64, 8).expect("valid");
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    for &rounds in &[1usize, 3, 5] {
        let mut cluster = Cluster::new(sys.universe());
        let mut register = SafeRegister::new(&sys, 1);
        let trials = 3000u64;
        let mut stale_without = 0u64;
        let mut stale_with = 0u64;
        for i in 1..=trials {
            register
                .write(&mut cluster, &mut rng, Value::from_u64(i))
                .expect("servers up");
            match register.read(&mut cluster, &mut rng).expect("servers up") {
                Some(tv) if tv.value == Value::from_u64(i) => {}
                _ => stale_without += 1,
            }
            diffuse_plain(
                &mut cluster,
                0,
                DiffusionConfig { fanout: 2, rounds },
                &mut rng,
            );
            match register.read(&mut cluster, &mut rng).expect("servers up") {
                Some(tv) if tv.value == Value::from_u64(i) => {}
                _ => stale_with += 1,
            }
        }
        diffusion_table.push_row(vec![
            sys.name(),
            rounds.to_string(),
            fmt_prob(stale_without as f64 / trials as f64),
            fmt_prob(stale_with as f64 / trials as f64),
        ]);
    }
    diffusion_table.emit();
    println!(
        "Expected shape: each measured stale rate tracks (and does not exceed by more than \
         sampling noise) the system's exact epsilon; diffusion drives it further toward zero."
    );
}
