//! The sharded engine's spine: deterministic barriers, gossip planning and
//! crash waves over per-shard worlds.
//!
//! [`run_sharded`] executes a [`Simulation`] with
//! [`SimConfig::num_shards`](crate::runner::SimConfig::num_shards) ≥ 2:
//!
//! 1. The workload trace and failure plan are derived on the main RNG
//!    stream exactly as in the sequential engine, then each
//!    [`ShardWorld`] seeds the arrivals of the variables it owns
//!    (`variable % num_shards`) plus the full crash schedule.
//! 2. With no diffusion configured there is no cross-shard traffic at all:
//!    every shard drains to completion independently (on up to
//!    [`SimConfig::threads`](crate::runner::SimConfig::threads) worker
//!    threads) and the accumulators merge.
//! 3. With diffusion, the gossip round times are the spine's **barriers**:
//!    all shards drain strictly past each barrier, the spine applies the
//!    **incremental sync** — each shard replays only the `(server, key)`
//!    records dirtied since the last barrier (store-if-fresher is
//!    monotone, so this is bit-identical to a full resync; debug builds
//!    assert it) — applies due crash transitions, plans the round on the
//!    dedicated gossip RNG stream — drawing *all* message latencies
//!    eagerly, so the stream never depends on shard outcomes — and
//!    accumulates each message into its destination shard's
//!    [`RoundBatch`], bulk-scheduled in one pre-sorted pass per shard.
//!
//! Everything the spine computes is a function of per-variable outcomes
//! and the seed, never of shard layout or thread interleaving — which is
//! what makes the merged report bit-identical across all shard counts ≥ 2
//! and all thread counts.
//!
//! Steady-state barrier cost is proportional to *work since the last
//! barrier* (dirty records + planned messages), not to total simulation
//! state; [`run_sharded`] reports wall-clock per stage through
//! [`EngineStageTimings`].

use crate::failure::FailurePlan;
use crate::metrics::{merge_shard_reports, EngineStageTimings, SimReport};
use crate::runner::{
    digest_selector, ConvergenceTracker, GossipMode, HealTracking, ProtocolKind, Simulation,
    COVERAGE_TARGET,
};
use crate::shard::{RoundBatch, ShardWorld};
use crate::time::SimTime;
use crate::workload::WorkloadConfig;
use pqs_core::system::QuorumSystem;
#[cfg(debug_assertions)]
use pqs_core::universe::ServerId;
use pqs_protocols::cluster::Cluster;
use pqs_protocols::diffusion;
use pqs_protocols::server::{Behavior, VariableId};
use pqs_protocols::timestamp::Timestamp;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use std::time::Instant;

/// Runs the simulation on the sharded engine.  Called from
/// [`Simulation::run_with_stats`] when `num_shards ≥ 2`.
pub(crate) fn run_sharded<S: QuorumSystem + ?Sized>(
    sim: &Simulation<'_, S>,
) -> (SimReport, EngineStageTimings) {
    let run_start = Instant::now();
    let mut stages = EngineStageTimings::default();
    let config = sim.config;
    let num_shards = config.num_shards as u64;
    debug_assert!(num_shards >= 2);

    // Trace derivation — the exact main-RNG draw order of the sequential
    // engine, so the workload and failure plan are engine-independent.  A
    // caller-supplied plan is borrowed, never cloned: crash waves can
    // carry thousands of transitions and the engine only reads them.
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let derived_plan;
    let plan: &FailurePlan = match &sim.plan {
        Some(plan) => plan,
        None => {
            let mut plan = FailurePlan::none();
            if config.byzantine > 0 {
                plan =
                    plan.with_random_byzantine(sim.system.universe(), config.byzantine, &mut rng);
            }
            if config.crash_probability > 0.0 {
                plan = plan.with_independent_crashes(
                    sim.system.universe(),
                    config.crash_probability,
                    0.0,
                    &mut rng,
                );
            }
            derived_plan = plan;
            &derived_plan
        }
    };
    let byz_behavior = match sim.kind {
        ProtocolKind::Dissemination => Behavior::ByzantineStale,
        _ => Behavior::ByzantineForge,
    };
    let ops = WorkloadConfig {
        duration: config.duration,
        arrival_rate: config.arrival_rate,
        read_fraction: config.read_fraction,
        keyspace: config.keyspace,
    }
    .generate(&mut rng);

    let mut worlds: Vec<ShardWorld<'_, S>> = (0..num_shards)
        .map(|shard| ShardWorld::new(sim, &ops, plan, byz_behavior, shard))
        .collect();
    let threads = (config.threads as usize).min(worlds.len()).max(1);

    let nvars = config.keyspace.keys as usize;
    let mut coverage_rounds_sum = vec![0u64; nvars];
    let mut coverage_events = vec![0u64; nvars];
    let mut rounds: u64 = 0;
    let mut digests_planned: u64 = 0;
    let mut digests_blocked: u64 = 0;
    // Post-heal re-convergence accounting, spine-level like the coverage
    // trackers (no-op without partition windows).
    let mut heals = HealTracking::default();

    if let Some(policy) = config.diffusion {
        assert!(
            policy.period > 0.0 && policy.period.is_finite(),
            "diffusion period must be positive and finite"
        );
        assert!(policy.fanout >= 1, "diffusion fanout must be at least 1");

        // The spine's planning cluster: behaviour timeline plus the union
        // of every shard's per-key records, synchronised at each barrier.
        let mut spine = Cluster::new(sim.system.universe());
        spine.reserve_variables(config.keyspace.keys);
        spine.corrupt_all(plan.byzantine.iter().copied(), byz_behavior);
        for absent in plan.initially_absent() {
            spine.set_behavior(absent, Behavior::Crashed);
        }
        let mut gossip_rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
        let gossip_signed = matches!(sim.kind, ProtocolKind::Dissemination);
        let mut trackers: Vec<ConvergenceTracker> = vec![ConvergenceTracker::default(); nvars];
        let mut crash_cursor = 0usize;
        let mut membership_cursor = 0usize;
        let mut next_gossip_id: u64 = 0;

        // Round-scoped buffers, all reused across barriers: per-shard
        // message batches, per-shard digest-entry buckets, and the
        // write-state snapshots for the digest key policies.
        let mut batches: Vec<RoundBatch> = (0..num_shards).map(|_| RoundBatch::default()).collect();
        let mut entry_buckets: Vec<Vec<(VariableId, Timestamp)>> =
            (0..num_shards).map(|_| Vec::new()).collect();
        let mut write_counts = vec![0u64; nvars];
        let mut last_writes = vec![f64::NEG_INFINITY; nvars];

        // Round `r` fires at `r · period`, accumulated with the sequential
        // engine's own floating-point arithmetic; rounds stop with the
        // foreground arrivals.
        let mut round: u64 = 1;
        let mut t = policy.period;
        loop {
            let drain_start = Instant::now();
            drain_all(&mut worlds, Some(t), threads);
            stages.drain_seconds += drain_start.elapsed().as_secs_f64();

            let sync_start = Instant::now();
            // Crash transitions due by now flip the spine's behaviours —
            // in the sequential engine the upfront-seeded transitions pop
            // before the round event at equal times.
            while crash_cursor < plan.crashes.len() && plan.crashes[crash_cursor].at <= t {
                let c = &plan.crashes[crash_cursor];
                let behavior = if c.crash {
                    Behavior::Crashed
                } else {
                    Behavior::Correct
                };
                spine.set_behavior(c.server, behavior);
                crash_cursor += 1;
            }
            // Membership transitions use a *strict* cursor (`at < t`, not
            // `<= t`): a join resets the spine's copy of the joiner, and
            // the strict bound guarantees every shard has already replayed
            // the event — so the dirty-pair replay below reads the shards'
            // *post-reset* records and the incremental sync stays
            // bit-identical to a full resync (debug builds assert it).
            while membership_cursor < plan.memberships.len()
                && plan.memberships[membership_cursor].at < t
            {
                let m = &plan.memberships[membership_cursor];
                if m.join {
                    spine.join_server(m.server, config.keyspace.keys);
                } else {
                    spine.set_behavior(m.server, Behavior::Crashed);
                }
                membership_cursor += 1;
            }
            for world in worlds.iter_mut() {
                world.sync_dirty_into(&mut spine, gossip_signed);
            }
            #[cfg(debug_assertions)]
            assert_sync_matches_full_resync(sim, &worlds, &spine, gossip_signed);
            stages.sync_seconds += sync_start.elapsed().as_secs_f64();

            let plan_start = Instant::now();
            rounds += 1;
            let (coverage, correct_servers) = match policy.mode {
                GossipMode::PushAll => {
                    let round_plan = diffusion::plan_cluster_round(
                        &spine,
                        policy.fanout as usize,
                        gossip_signed,
                        &mut gossip_rng,
                    );
                    for push in round_plan.pushes {
                        let rtt = policy.push_latency.sample(&mut gossip_rng);
                        let dest = (push.variable % num_shards) as usize;
                        batches[dest].pushes.push((t + rtt, push));
                    }
                    (round_plan.coverage, round_plan.correct_servers)
                }
                GossipMode::DigestDelta => {
                    gather_write_state(&worlds, &mut write_counts, &mut last_writes);
                    let selector =
                        digest_selector(policy.key_policy, round, t, &write_counts, &last_writes);
                    let round_plan = diffusion::plan_digest(
                        &spine,
                        policy.fanout as usize,
                        gossip_signed,
                        &selector,
                        &mut gossip_rng,
                    );
                    for digest in round_plan.digests {
                        // Both legs' latencies are drawn eagerly at
                        // planning time: the gossip stream must never
                        // depend on whether a shard's delta turns out
                        // non-empty.
                        let digest_rtt = policy.push_latency.sample(&mut gossip_rng);
                        let delta_rtt = policy.push_latency.sample(&mut gossip_rng);
                        digests_planned += 1;
                        let id = next_gossip_id;
                        next_gossip_id += 1;
                        // Partition gating for digests happens here on the
                        // spine (one digest fans out to sub-digests on
                        // several shards but is one message), evaluated at
                        // the digest's *delivery* time — the same predicate
                        // the sequential engine applies at delivery.  Both
                        // latencies are already drawn, so the gossip RNG
                        // stream is unaffected.
                        if plan.blocks_link(t + digest_rtt, digest.from, digest.to) {
                            digests_blocked += 1;
                            continue;
                        }
                        // One pass buckets the advertised entries by
                        // owning shard — O(entries + shards) per digest
                        // instead of a per-shard scan of the full list.
                        for &entry in &digest.entries {
                            entry_buckets[(entry.0 % num_shards) as usize].push(entry);
                        }
                        for (bucket, batch) in entry_buckets.iter_mut().zip(batches.iter_mut()) {
                            // An incomplete digest with no entries for this
                            // shard can neither transfer nor avoid
                            // anything; a *complete* one still lets the
                            // receiver volunteer records the sender never
                            // advertised, so it visits every shard.
                            if bucket.is_empty() && !digest.complete {
                                continue;
                            }
                            let sub = diffusion::GossipDigest {
                                from: digest.from,
                                to: digest.to,
                                signed: digest.signed,
                                complete: digest.complete,
                                entries: bucket.clone(),
                            };
                            bucket.clear();
                            batch.digests.push((t + digest_rtt, id, sub, delta_rtt));
                        }
                    }
                    (round_plan.coverage, round_plan.correct_servers)
                }
            };

            // Rounds-to-coverage accounting, identical to the sequential
            // engine's (the snapshot comes from the same planner).
            let target = ((correct_servers as f64 * COVERAGE_TARGET).ceil() as u32).max(1);
            for cov in &coverage {
                let tracker = &mut trackers[cov.variable as usize];
                if cov.freshest > tracker.freshest {
                    tracker.freshest = cov.freshest;
                    tracker.birth_round = round;
                    tracker.covered = false;
                }
                if !tracker.covered && cov.freshest == tracker.freshest && cov.holders >= target {
                    tracker.covered = true;
                    coverage_rounds_sum[cov.variable as usize] += round - tracker.birth_round;
                    coverage_events[cov.variable as usize] += 1;
                }
            }
            heals.on_round(plan, t, round, &coverage, target, nvars);
            stages.plan_seconds += plan_start.elapsed().as_secs_f64();

            let route_start = Instant::now();
            for (world, batch) in worlds.iter_mut().zip(batches.iter_mut()) {
                world.schedule_round_batch(batch);
            }
            stages.route_seconds += route_start.elapsed().as_secs_f64();

            if t + policy.period <= config.duration {
                round += 1;
                t += policy.period;
            } else {
                break;
            }
        }
    }

    // No more cross-shard traffic will ever be injected: drain everything.
    let drain_start = Instant::now();
    drain_all(&mut worlds, None, threads);
    stages.drain_seconds += drain_start.elapsed().as_secs_f64();

    // One delta *event* per digest id that produced any records, matching
    // the sequential engine's one-delta-per-digest message count; blocked
    // deltas likewise deduplicate to one dropped message per id.
    let mut delta_ids: BTreeSet<u64> = BTreeSet::new();
    let mut blocked_delta_ids: BTreeSet<u64> = BTreeSet::new();
    for world in &worlds {
        delta_ids.extend(world.deltas_sent.iter().copied());
        blocked_delta_ids.extend(world.deltas_blocked.iter().copied());
    }

    let mut report = merge_shard_reports(
        worlds
            .into_iter()
            .map(ShardWorld::into_accumulator)
            .collect(),
    );
    report.gossip_rounds = rounds;
    // Like the sequential engine, a digest a partition blocked was planned
    // but never delivered.
    report.gossip_digests = digests_planned - digests_blocked;
    report.partition_blocked_gossip += digests_blocked + blocked_delta_ids.len() as u64;
    report.membership_events = plan.memberships.len() as u64;
    heals.finish_into(&mut report);
    // Spine-level events: crash and membership transitions (replayed per
    // shard but one event each), rounds, digest deliveries and delta
    // deliveries.
    report.events_processed += plan.crashes.len() as u64
        + plan.memberships.len() as u64
        + rounds
        + digests_planned
        + delta_ids.len() as u64;
    for v in 0..nvars {
        report.per_variable[v].coverage_rounds_sum = coverage_rounds_sum[v];
        report.per_variable[v].coverage_events = coverage_events[v];
    }
    stages.total_seconds = run_start.elapsed().as_secs_f64();
    (report, stages)
}

/// Drains every shard up to `barrier` — inline on this thread, or on up to
/// `threads` scoped worker threads.  Purely an execution choice: shards
/// share nothing while draining, so the interleaving cannot matter.
fn drain_all<S: QuorumSystem + ?Sized>(
    worlds: &mut [ShardWorld<'_, S>],
    barrier: Option<SimTime>,
    threads: usize,
) {
    if threads <= 1 || worlds.len() <= 1 {
        for world in worlds {
            world.drain_until(barrier);
        }
        return;
    }
    let chunk = worlds.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for chunk_worlds in worlds.chunks_mut(chunk) {
            scope.spawn(move || {
                for world in chunk_worlds {
                    world.drain_until(barrier);
                }
            });
        }
    });
}

/// Debug-build invariant behind the incremental sync: after every shard
/// replays its dirty `(server, key)` pairs, the spine's record state must
/// be exactly what a from-scratch full resync of every shard record would
/// produce.  Store-if-fresher is monotone and per-key records live only on
/// the key's owning shard, so the dirty pairs — however conservatively
/// over-marked — are sufficient.
#[cfg(debug_assertions)]
fn assert_sync_matches_full_resync<S: QuorumSystem + ?Sized>(
    sim: &Simulation<'_, S>,
    worlds: &[ShardWorld<'_, S>],
    spine: &Cluster,
    signed: bool,
) {
    let mut full = Cluster::new(sim.system.universe());
    full.reserve_variables(sim.config.keyspace.keys);
    for world in worlds {
        let n = world.cluster.len() as u32;
        for i in 0..n {
            let id = ServerId::new(i);
            let src = world.cluster.server(id);
            if signed {
                let vars: Vec<VariableId> = src.signed_variables().collect();
                for var in vars {
                    full.server_mut(id)
                        .store_signed_if_fresher(var, src.stored_signed(var));
                }
            } else {
                let vars: Vec<VariableId> = src.plain_variables().collect();
                for var in vars {
                    full.server_mut(id)
                        .store_plain_if_fresher(var, src.stored_plain(var));
                }
            }
        }
    }
    for i in 0..spine.len() as u32 {
        let id = ServerId::new(i);
        let inc = spine.server(id);
        let ful = full.server(id);
        if signed {
            let mut a: Vec<_> = inc
                .signed_variables()
                .map(|v| (v, inc.stored_signed(v)))
                .collect();
            let mut b: Vec<_> = ful
                .signed_variables()
                .map(|v| (v, ful.stored_signed(v)))
                .collect();
            a.sort_by_key(|e| e.0);
            b.sort_by_key(|e| e.0);
            assert_eq!(
                a, b,
                "incremental spine sync diverged from full resync at server {i}"
            );
        } else {
            let mut a: Vec<_> = inc
                .plain_variables()
                .map(|v| (v, inc.stored_plain(v)))
                .collect();
            let mut b: Vec<_> = ful
                .plain_variables()
                .map(|v| (v, ful.stored_plain(v)))
                .collect();
            a.sort_by_key(|e| e.0);
            b.sort_by_key(|e| e.0);
            assert_eq!(
                a, b,
                "incremental spine sync diverged from full resync at server {i}"
            );
        }
    }
}

/// Gathers the authoritative per-variable write counters and latest write
/// times from each variable's owning shard into the caller's reused
/// buffers, for the digest key policies.
fn gather_write_state<S: QuorumSystem + ?Sized>(
    worlds: &[ShardWorld<'_, S>],
    counts: &mut [u64],
    last: &mut [SimTime],
) {
    let n = worlds.len();
    for (v, (count, at)) in counts.iter_mut().zip(last.iter_mut()).enumerate() {
        let world = &worlds[v % n];
        *count = world.sequences[v];
        *at = world.last_write_at[v];
    }
}
