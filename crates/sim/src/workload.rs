//! Open-loop workload generation.
//!
//! Clients issue operations following a Poisson arrival process with a
//! configurable read/write mix — the standard open-loop model for a
//! replicated service such as the location directory of Section 1.1, where
//! device moves (writes) are far rarer than caller lookups (reads).

use crate::time::SimTime;
use rand::Rng;
use rand::RngCore;

/// The kind of a client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A read of the replicated variable.
    Read,
    /// A write of a fresh value.
    Write,
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Operation {
    /// Arrival (start) time of the operation.
    pub at: SimTime,
    /// Whether it is a read or a write.
    pub kind: OpKind,
}

/// Configuration of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Length of the generated trace (seconds).
    pub duration: SimTime,
    /// Mean operation arrival rate (operations per second).
    pub arrival_rate: f64,
    /// Fraction of operations that are reads (the rest are writes).
    pub read_fraction: f64,
}

impl Default for WorkloadConfig {
    /// 60 seconds, 10 op/s, 90% reads.
    fn default() -> Self {
        WorkloadConfig {
            duration: 60.0,
            arrival_rate: 10.0,
            read_fraction: 0.9,
        }
    }
}

impl WorkloadConfig {
    /// Generates the full operation trace for this configuration.
    ///
    /// Inter-arrival times are exponential with mean `1/arrival_rate`
    /// (Poisson process); each operation is independently a read with
    /// probability `read_fraction`.
    ///
    /// # Panics
    ///
    /// Panics if the duration or rate is non-positive, or the read fraction
    /// is outside `[0, 1]`.
    pub fn generate(&self, rng: &mut dyn RngCore) -> Vec<Operation> {
        assert!(
            self.duration > 0.0 && self.duration.is_finite(),
            "duration must be positive"
        );
        assert!(
            self.arrival_rate > 0.0 && self.arrival_rate.is_finite(),
            "arrival rate must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.read_fraction),
            "read fraction must be in [0,1]"
        );
        let mut ops = Vec::new();
        let mut t = 0.0;
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / self.arrival_rate;
            if t > self.duration {
                break;
            }
            let kind = if rng.gen_bool(self.read_fraction) {
                OpKind::Read
            } else {
                OpKind::Write
            };
            ops.push(Operation { at: t, kind });
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generates_expected_volume_and_mix() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = WorkloadConfig {
            duration: 200.0,
            arrival_rate: 20.0,
            read_fraction: 0.75,
        };
        let ops = config.generate(&mut rng);
        // Expect about 4000 operations.
        assert!((ops.len() as f64 - 4000.0).abs() < 300.0, "{}", ops.len());
        let reads = ops.iter().filter(|o| o.kind == OpKind::Read).count();
        let frac = reads as f64 / ops.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "read fraction {frac}");
        // Arrival times are sorted and within the duration.
        assert!(ops.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(ops.iter().all(|o| o.at > 0.0 && o.at <= 200.0));
    }

    #[test]
    fn all_reads_or_all_writes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let all_reads = WorkloadConfig {
            read_fraction: 1.0,
            ..WorkloadConfig::default()
        }
        .generate(&mut rng);
        assert!(all_reads.iter().all(|o| o.kind == OpKind::Read));
        let all_writes = WorkloadConfig {
            read_fraction: 0.0,
            ..WorkloadConfig::default()
        }
        .generate(&mut rng);
        assert!(all_writes.iter().all(|o| o.kind == OpKind::Write));
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn rejects_zero_duration() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let _ = WorkloadConfig {
            duration: 0.0,
            ..WorkloadConfig::default()
        }
        .generate(&mut rng);
    }

    #[test]
    #[should_panic(expected = "read fraction")]
    fn rejects_bad_read_fraction() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _ = WorkloadConfig {
            read_fraction: 1.5,
            ..WorkloadConfig::default()
        }
        .generate(&mut rng);
    }

    #[test]
    fn default_config_is_sane() {
        let c = WorkloadConfig::default();
        assert_eq!(c.duration, 60.0);
        assert_eq!(c.arrival_rate, 10.0);
        assert_eq!(c.read_fraction, 0.9);
    }
}
