//! Open-loop workload generation over a sharded key space.
//!
//! Clients issue operations following a Poisson arrival process with a
//! configurable read/write mix — the standard open-loop model for a
//! replicated service such as the location directory of Section 1.1, where
//! device moves (writes) are far rarer than caller lookups (reads).
//!
//! Each operation targets one key of a [`KeySpace`]: the directory holds one
//! replicated variable per device, and real key popularity is skewed — a few
//! hot devices absorb most lookups.  The key space models that with a
//! uniform or Zipf popularity law ([`Skew`]); the per-key arrival stream the
//! simulator sees is exactly the per-variable load profile the paper's
//! ε/load analysis is stated against.

use crate::time::SimTime;
use pqs_protocols::server::VariableId;
use rand::Rng;
use rand::RngCore;

/// The kind of a client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A read of a replicated variable.
    Read,
    /// A write of a fresh value.
    Write,
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Operation {
    /// Arrival (start) time of the operation.
    pub at: SimTime,
    /// Whether it is a read or a write.
    pub kind: OpKind,
    /// The key (replicated variable) the operation targets.
    pub variable: VariableId,
}

/// How key popularity is distributed across the key space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Skew {
    /// Every key is equally likely.
    Uniform,
    /// Key `i` (0-based) is drawn with probability proportional to
    /// `1 / (i + 1)^exponent` — the classic Zipf law; exponent 0 is
    /// uniform, exponent 1 the canonical web/cache skew.
    Zipf {
        /// The Zipf exponent (≥ 0).
        exponent: f64,
    },
}

impl std::fmt::Display for Skew {
    /// Canonical short name used in experiment tables: `uniform` or
    /// `zipf(s)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Skew::Uniform => write!(f, "uniform"),
            Skew::Zipf { exponent } => write!(f, "zipf({exponent})"),
        }
    }
}

/// The key space one workload shards over: how many keys exist and how
/// popular each is.
///
/// The single-key space ([`KeySpace::single`], the default) reproduces the
/// one-register workloads exactly: key 0 is assigned without consuming any
/// randomness, so a 1-key trace is RNG-stream-identical to the pre-sharding
/// generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeySpace {
    /// Number of distinct keys (≥ 1).
    pub keys: u64,
    /// Popularity law across the keys.
    pub skew: Skew,
}

impl Default for KeySpace {
    /// One key — the single-register workload.
    fn default() -> Self {
        KeySpace::single()
    }
}

impl KeySpace {
    /// The single-register key space (key 0 only).
    pub fn single() -> Self {
        KeySpace {
            keys: 1,
            skew: Skew::Uniform,
        }
    }

    /// A uniformly popular key space of `keys` keys.
    pub fn uniform(keys: u64) -> Self {
        KeySpace {
            keys,
            skew: Skew::Uniform,
        }
    }

    /// A Zipf-skewed key space of `keys` keys.
    pub fn zipf(keys: u64, exponent: f64) -> Self {
        KeySpace {
            keys,
            skew: Skew::Zipf { exponent },
        }
    }

    /// Validates the key space.
    ///
    /// # Panics
    ///
    /// Panics if there are zero keys or the Zipf exponent is negative or
    /// non-finite.
    fn validate(&self) {
        assert!(self.keys >= 1, "key space must hold at least one key");
        if let Skew::Zipf { exponent } = self.skew {
            assert!(
                exponent >= 0.0 && exponent.is_finite(),
                "zipf exponent must be finite and non-negative, got {exponent}"
            );
        }
    }

    /// The popularity of each key: a probability vector over `0..keys`,
    /// non-increasing in the key index.
    ///
    /// # Panics
    ///
    /// Panics on an invalid key space (see [`sampler`](Self::sampler)).
    pub fn popularity(&self) -> Vec<f64> {
        self.validate();
        match self.skew {
            Skew::Uniform => vec![1.0 / self.keys as f64; self.keys as usize],
            Skew::Zipf { exponent } => {
                let weights: Vec<f64> = (0..self.keys)
                    .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                weights.into_iter().map(|w| w / total).collect()
            }
        }
    }

    /// Builds the per-operation key sampler (precomputes the Zipf CDF once).
    ///
    /// # Panics
    ///
    /// Panics if there are zero keys or the Zipf exponent is invalid.
    pub fn sampler(&self) -> KeySampler {
        self.validate();
        // One key, uniform skew, or a zero Zipf exponent: sampled directly,
        // no CDF table needed.
        let skewed =
            self.keys > 1 && matches!(self.skew, Skew::Zipf { exponent } if exponent > 0.0);
        let cdf = if skewed {
            let mut acc = 0.0;
            let mut cdf = Vec::with_capacity(self.keys as usize);
            for p in self.popularity() {
                acc += p;
                cdf.push(acc);
            }
            cdf
        } else {
            Vec::new()
        };
        // Memoize the hot head of the CDF: the shortest prefix holding at
        // least half the probability mass.  Zipf mass concentrates on the
        // first few keys, so most draws resolve with a short linear scan
        // over a handful of cache-resident entries instead of a binary
        // search across the whole table.
        let head = if cdf.is_empty() {
            0
        } else {
            (cdf.partition_point(|&c| c < 0.5) + 1).min(cdf.len())
        };
        KeySampler {
            keys: self.keys,
            cdf,
            head,
        }
    }
}

/// Draws keys according to a [`KeySpace`]'s popularity law.
///
/// A single-key sampler returns key 0 **without consuming randomness**, so
/// 1-key workloads replay the exact RNG stream of the unsharded generator.
#[derive(Debug, Clone, PartialEq)]
pub struct KeySampler {
    keys: u64,
    /// Cumulative popularity for Zipf draws; empty for the uniform (and
    /// single-key) fast paths.
    cdf: Vec<f64>,
    /// Length of the shortest CDF prefix covering ≥ 50% of the mass — the
    /// hot-key fast path scanned linearly before falling back to binary
    /// search.  Zero when `cdf` is empty.
    head: usize,
}

impl KeySampler {
    /// Number of keys this sampler draws from.
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// Draws one key.
    pub fn sample(&self, rng: &mut dyn RngCore) -> VariableId {
        if self.keys <= 1 {
            return 0;
        }
        if self.cdf.is_empty() {
            return rng.gen_range(0..self.keys);
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        // Hot-key fast path: when the draw lands inside the memoized head
        // (at least half of all draws, by construction) a short linear scan
        // finds the key.  Both branches compute exactly
        // `cdf.partition_point(|&c| c <= u)`, so the drawn key — and the
        // RNG stream — are identical to the plain binary search.
        let idx = if u < self.cdf[self.head - 1] {
            self.cdf[..self.head]
                .iter()
                .position(|&c| c > u)
                .expect("u below the head's last CDF entry") as u64
        } else {
            (self.head + self.cdf[self.head..].partition_point(|&c| c <= u)) as u64
        };
        idx.min(self.keys - 1)
    }
}

/// Configuration of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Length of the generated trace (seconds).
    pub duration: SimTime,
    /// Mean operation arrival rate (operations per second).
    pub arrival_rate: f64,
    /// Fraction of operations that are reads (the rest are writes).
    pub read_fraction: f64,
    /// The key space operations are spread over.
    pub keyspace: KeySpace,
}

impl Default for WorkloadConfig {
    /// 60 seconds, 10 op/s, 90% reads, a single key.
    fn default() -> Self {
        WorkloadConfig {
            duration: 60.0,
            arrival_rate: 10.0,
            read_fraction: 0.9,
            keyspace: KeySpace::single(),
        }
    }
}

impl WorkloadConfig {
    /// Generates the full operation trace for this configuration.
    ///
    /// Inter-arrival times are exponential with mean `1/arrival_rate`
    /// (Poisson process); each operation is independently a read with
    /// probability `read_fraction` and targets a key drawn from the
    /// key space's popularity law.
    ///
    /// # Panics
    ///
    /// Panics if the duration or rate is non-positive, the read fraction is
    /// outside `[0, 1]`, or the key space is invalid.
    pub fn generate(&self, rng: &mut dyn RngCore) -> Vec<Operation> {
        assert!(
            self.duration > 0.0 && self.duration.is_finite(),
            "duration must be positive"
        );
        assert!(
            self.arrival_rate > 0.0 && self.arrival_rate.is_finite(),
            "arrival rate must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.read_fraction),
            "read fraction must be in [0,1]"
        );
        let sampler = self.keyspace.sampler();
        let mut ops = Vec::new();
        let mut t = 0.0;
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / self.arrival_rate;
            if t > self.duration {
                break;
            }
            let kind = if rng.gen_bool(self.read_fraction) {
                OpKind::Read
            } else {
                OpKind::Write
            };
            let variable = sampler.sample(rng);
            ops.push(Operation {
                at: t,
                kind,
                variable,
            });
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn skew_display_names() {
        assert_eq!(Skew::Uniform.to_string(), "uniform");
        assert_eq!(Skew::Zipf { exponent: 1.2 }.to_string(), "zipf(1.2)");
    }

    #[test]
    fn generates_expected_volume_and_mix() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = WorkloadConfig {
            duration: 200.0,
            arrival_rate: 20.0,
            read_fraction: 0.75,
            keyspace: KeySpace::single(),
        };
        let ops = config.generate(&mut rng);
        // Expect about 4000 operations.
        assert!((ops.len() as f64 - 4000.0).abs() < 300.0, "{}", ops.len());
        let reads = ops.iter().filter(|o| o.kind == OpKind::Read).count();
        let frac = reads as f64 / ops.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "read fraction {frac}");
        // Arrival times are sorted and within the duration.
        assert!(ops.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(ops.iter().all(|o| o.at > 0.0 && o.at <= 200.0));
        // Single key: every operation targets variable 0.
        assert!(ops.iter().all(|o| o.variable == 0));
    }

    #[test]
    fn all_reads_or_all_writes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let all_reads = WorkloadConfig {
            read_fraction: 1.0,
            ..WorkloadConfig::default()
        }
        .generate(&mut rng);
        assert!(all_reads.iter().all(|o| o.kind == OpKind::Read));
        let all_writes = WorkloadConfig {
            read_fraction: 0.0,
            ..WorkloadConfig::default()
        }
        .generate(&mut rng);
        assert!(all_writes.iter().all(|o| o.kind == OpKind::Write));
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn rejects_zero_duration() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let _ = WorkloadConfig {
            duration: 0.0,
            ..WorkloadConfig::default()
        }
        .generate(&mut rng);
    }

    #[test]
    #[should_panic(expected = "read fraction")]
    fn rejects_bad_read_fraction() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _ = WorkloadConfig {
            read_fraction: 1.5,
            ..WorkloadConfig::default()
        }
        .generate(&mut rng);
    }

    #[test]
    fn default_config_is_sane() {
        let c = WorkloadConfig::default();
        assert_eq!(c.duration, 60.0);
        assert_eq!(c.arrival_rate, 10.0);
        assert_eq!(c.read_fraction, 0.9);
        assert_eq!(c.keyspace, KeySpace::single());
        assert_eq!(KeySpace::default(), KeySpace::single());
    }

    #[test]
    fn single_key_trace_is_rng_stream_identical_to_multi_field() {
        // The sharded generator with one key must replay the exact stream
        // of the pre-sharding generator: the key draw is skipped entirely.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let base = WorkloadConfig {
            duration: 50.0,
            arrival_rate: 30.0,
            read_fraction: 0.5,
            keyspace: KeySpace::single(),
        };
        let ops = base.generate(&mut a);
        // Replay by hand without any key logic.
        let mut t = 0.0;
        let mut expect = Vec::new();
        loop {
            let u: f64 = b.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / base.arrival_rate;
            if t > base.duration {
                break;
            }
            let kind = if b.gen_bool(base.read_fraction) {
                OpKind::Read
            } else {
                OpKind::Write
            };
            expect.push(Operation {
                at: t,
                kind,
                variable: 0,
            });
        }
        assert_eq!(ops, expect);
    }

    #[test]
    fn uniform_keys_cover_the_space_evenly() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let config = WorkloadConfig {
            duration: 400.0,
            arrival_rate: 25.0,
            read_fraction: 0.5,
            keyspace: KeySpace::uniform(8),
        };
        let ops = config.generate(&mut rng);
        let mut counts = [0u64; 8];
        for op in &ops {
            assert!(op.variable < 8);
            counts[op.variable as usize] += 1;
        }
        let mean = ops.len() as f64 / 8.0;
        for (k, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - mean).abs() < mean * 0.2,
                "key {k}: {c} vs mean {mean}"
            );
        }
    }

    #[test]
    fn zipf_skew_concentrates_on_low_keys() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let keyspace = KeySpace::zipf(64, 1.0);
        let sampler = keyspace.sampler();
        let popularity = keyspace.popularity();
        let mut counts = vec![0u64; 64];
        let draws = 40_000u64;
        for _ in 0..draws {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        // The hottest key's share tracks its predicted mass.
        let hot_share = counts[0] as f64 / draws as f64;
        assert!(
            (hot_share - popularity[0]).abs() < 0.02,
            "hot share {hot_share} vs predicted {}",
            popularity[0]
        );
        // And it dominates the coldest key by an order of magnitude.
        assert!(counts[0] > counts[63] * 10);
    }

    #[test]
    fn popularity_is_a_distribution() {
        for ks in [
            KeySpace::single(),
            KeySpace::uniform(17),
            KeySpace::zipf(33, 0.8),
            KeySpace::zipf(5, 0.0),
        ] {
            let p = ks.popularity();
            assert_eq!(p.len(), ks.keys as usize);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{ks:?}");
            assert!(p.iter().all(|&x| x > 0.0));
            assert!(p.windows(2).all(|w| w[0] >= w[1] - 1e-15), "{ks:?}");
        }
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let zipf0 = KeySpace::zipf(16, 0.0).sampler();
        let uniform = KeySpace::uniform(16).sampler();
        for _ in 0..200 {
            assert_eq!(zipf0.sample(&mut a), uniform.sample(&mut b));
        }
    }

    #[test]
    fn hot_head_fast_path_matches_plain_binary_search() {
        // The memoized-head sampler must be draw-for-draw identical to the
        // plain full-table binary search, including draws that straddle the
        // head boundary and the u == cdf[head-1] equality case.
        for (keys, exponent, seed) in [
            (64u64, 1.0, 10u64),
            (1000, 0.8, 11),
            (7, 2.5, 12),
            (2, 1.0, 13),
        ] {
            let sampler = KeySpace::zipf(keys, exponent).sampler();
            assert!(sampler.head >= 1 && sampler.head <= sampler.cdf.len());
            assert!(sampler.cdf[sampler.head - 1] >= 0.5);
            let mut a = ChaCha8Rng::seed_from_u64(seed);
            let mut b = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..20_000 {
                let got = sampler.sample(&mut a);
                let u: f64 = b.gen_range(0.0..1.0);
                let want = (sampler.cdf.partition_point(|&c| c <= u) as u64).min(keys - 1);
                assert_eq!(got, want);
            }
            // Identical RNG stream: both sides consumed the same draws.
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn rejects_empty_keyspace() {
        let _ = KeySpace::uniform(0).sampler();
    }

    #[test]
    #[should_panic(expected = "zipf exponent")]
    fn rejects_negative_zipf_exponent() {
        let _ = KeySpace::zipf(4, -1.0).sampler();
    }
}
