//! The discrete-event core of the simulator.
//!
//! The seed simulator applied each quorum access atomically at its arrival
//! instant and *derived* a latency afterwards; nothing could interleave.
//! This module provides the machinery for the real thing: every
//! client–server exchange is its own scheduled [`Event`], so many client
//! sessions are in flight at once, server state changes in message-delivery
//! order, and crash/recovery transitions from a
//! [`FailurePlan`](crate::failure::FailurePlan) take effect *between* the
//! probes of an ongoing operation.
//!
//! [`EventEngine`] wraps the deterministic [`EventQueue`] with the
//! accounting the reports need: processed-event counts (the unit of the
//! engine-throughput benchmark) and a time-weighted in-flight operation
//! gauge.
//!
//! # Event vocabulary
//!
//! * [`Event::OpArrival`] — a client starts an operation: sample a probe
//!   set, send one message per probed server.
//! * [`Event::ProbeReply`] — the round trip to one server completes.  The
//!   server's behaviour is evaluated *now*, not at the operation's start:
//!   a server that crashed mid-flight simply fails to answer.
//! * [`Event::OpTimeout`] — the per-operation timer fires; the attempt is
//!   cut short (condense what arrived, or resample a fresh probe set).
//! * [`Event::RetryAttempt`] — an exponentially backed-off retry becomes
//!   due and starts its attempt on a fresh probe set.
//! * [`Event::FailureTransition`] — a scheduled crash or recovery flips a
//!   server's behaviour.
//! * [`Event::GossipRound`] — a periodic anti-entropy round fires: every
//!   correct server plans pushes of its freshest records to random peers
//!   (see [`DiffusionPolicy`](crate::runner::DiffusionPolicy)).
//! * [`Event::GossipPush`] — one server-to-server gossip message arrives
//!   at its receiver after its own latency draw, competing for simulated
//!   time with the foreground client probes.
//! * [`Event::GossipDigest`] / [`Event::GossipDelta`] — the two legs of a
//!   digest/delta anti-entropy exchange
//!   ([`GossipMode::DigestDelta`](crate::runner::GossipMode)): a per-key
//!   version summary travels out, and only the records its sender provably
//!   lacks travel back.

use crate::time::{EventQueue, SimTime};
use pqs_core::universe::ServerId;

/// Identifier of one simulated client operation (its index in the generated
/// workload trace).
pub type OpId = u64;

/// Everything that can happen in the simulated world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A client operation arrives and starts its first attempt.
    OpArrival {
        /// The operation.
        op: OpId,
    },
    /// The round trip of one probe completes at the client.
    ProbeReply {
        /// The operation the probe belongs to.
        op: OpId,
        /// Which attempt of the operation sent the probe; replies of
        /// abandoned attempts still touch the server but no longer feed the
        /// session.
        attempt: u32,
        /// The probed server.
        server: ServerId,
    },
    /// The per-attempt timeout fires.
    OpTimeout {
        /// The operation.
        op: OpId,
        /// The attempt the timer was armed for.
        attempt: u32,
    },
    /// A backed-off retry becomes due: the operation starts the given
    /// attempt on a fresh probe set.  Only scheduled when
    /// [`SimConfig::retry_backoff`](crate::runner::SimConfig::retry_backoff)
    /// is positive — with the default immediate-retry policy the next
    /// attempt starts inline and no such event exists.
    RetryAttempt {
        /// The operation.
        op: OpId,
        /// The attempt to start (the op's attempt counter at scheduling
        /// time; a stale event — e.g. after the op finished — is ignored).
        attempt: u32,
    },
    /// A scheduled crash (`crash == true`) or recovery of one server.
    FailureTransition {
        /// The server.
        server: ServerId,
        /// `true` for a crash, `false` for a recovery.
        crash: bool,
    },
    /// A scheduled membership transition: a joining server comes up
    /// correct with freshly reset record stores (it bootstraps through
    /// gossip); a leaving server goes dark like a crash.  When the
    /// schedule is non-empty the engines also recompute the probe margin
    /// online against the ε budget for the new cluster size.
    MembershipTransition {
        /// The server.
        server: ServerId,
        /// `true` for a join, `false` for a leave.
        join: bool,
    },
    /// A periodic write-diffusion round fires: the scheduler snapshots
    /// every correct server's stored records and turns them into
    /// individually scheduled [`Event::GossipPush`] messages.  Only
    /// scheduled when [`SimConfig::diffusion`](crate::runner::SimConfig::diffusion)
    /// carries a policy — with `None` no gossip event ever exists and the
    /// run is bit-identical to the diffusion-free engine.
    GossipRound {
        /// 1-based index of the round (round `r` fires at `r · period`).
        round: u64,
    },
    /// One server-to-server gossip push arrives at its receiver.  The
    /// payload (sender, receiver, variable, record) lives in the engine's
    /// pending-message slab ([`PendingSlab`]) under this slot; the
    /// receiver's behaviour is evaluated at delivery time, so a server that
    /// crashed while the message was in flight simply drops it.
    GossipPush {
        /// Slot of the pending push being delivered.
        push: u64,
    },
    /// A gossip *digest* — a per-key version summary of its sender's store —
    /// arrives at its receiver (digest/delta mode,
    /// [`GossipMode::DigestDelta`](crate::runner::GossipMode)).  The
    /// receiver, evaluated at delivery time, answers with a
    /// [`Event::GossipDelta`] carrying only the records the digest's sender
    /// provably lacks; crashed and Byzantine receivers never answer.
    GossipDigest {
        /// Slot of the pending digest being delivered (in the engine's
        /// [`PendingSlab`]; the digest's global id, used for cross-shard
        /// delta accounting, travels inside the slab entry).
        digest: u64,
    },
    /// A gossip *delta* — the records a digest's sender provably lacked —
    /// arrives back at that sender, which merges each record by freshest
    /// timestamp (behaviour evaluated at delivery time).
    GossipDelta {
        /// Slot of the pending delta being delivered.
        delta: u64,
    },
}

/// A reusable slot-indexed store for in-flight gossip payloads.
///
/// Gossip events carry a `u64` handle instead of their (heap-allocated)
/// payload so [`Event`] stays small and `Copy`.  The engines used to keep
/// these payloads in per-round `HashMap`s keyed by an ever-growing global
/// id — every message paid a hash, and the map's buckets churned every
/// round.  The slab replaces that with a plain `Vec<Option<T>>` plus a
/// free list: `insert` is a push or a free-slot reuse, `take` is an
/// indexed load, and the backing storage reaches the high-water mark of
/// in-flight messages once and is reused for the rest of the run.
///
/// Slot reuse is safe because every scheduled gossip event is delivered
/// exactly once: a slot is freed only by the `take` of its own delivery,
/// so no two in-flight messages ever share a slot.  Slots never influence
/// event ordering (the queue orders by time and insertion sequence), so
/// switching ids to slots is invisible to the simulated trajectory.
#[derive(Debug)]
pub struct PendingSlab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u64>,
}

impl<T> Default for PendingSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PendingSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        PendingSlab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `value`, returning the slot to embed in its delivery event.
    pub fn insert(&mut self, value: T) -> u64 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(value);
                slot
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u64
            }
        }
    }

    /// Removes and returns the payload at `slot` (`None` if the slot is
    /// vacant or out of range), freeing the slot for reuse.
    pub fn take(&mut self, slot: u64) -> Option<T> {
        let value = self.slots.get_mut(slot as usize)?.take();
        if value.is_some() {
            self.free.push(slot);
        }
        value
    }

    /// Number of occupied slots (in-flight payloads).
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Returns `true` if no payload is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The event loop driver: a deterministic queue plus engine-level metrics.
#[derive(Debug, Default)]
pub struct EventEngine {
    queue: EventQueue<Event>,
    events_processed: u64,
    in_flight: u64,
    max_in_flight: u64,
    in_flight_area: f64,
    last_event_time: SimTime,
    /// Time of the most recent in-flight transition: the denominator of
    /// [`mean_in_flight`](Self::mean_in_flight).  Trailing no-op events
    /// (stale timeouts, far-future failure transitions popped after the
    /// workload drained) must not dilute the gauge.
    busy_until: SimTime,
}

impl EventEngine {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute simulation time `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        self.queue.schedule(time, event);
    }

    /// Bulk-schedules a gossip round's messages via
    /// [`EventQueue::schedule_batch`]: the batch is stably sorted by time
    /// (so the pop order is bit-identical to one-by-one scheduling) and
    /// drained, leaving the buffer's capacity for the next round.
    pub fn schedule_batch(&mut self, batch: &mut Vec<(SimTime, Event)>) {
        self.queue.schedule_batch(batch);
    }

    /// Pops the next event in time order (FIFO among ties), advancing the
    /// clock and the time-weighted in-flight integral.
    pub fn next_event(&mut self) -> Option<(SimTime, Event)> {
        let (time, event) = self.queue.pop()?;
        let now = self.queue.now();
        if now > self.last_event_time {
            self.in_flight_area += self.in_flight as f64 * (now - self.last_event_time);
            self.last_event_time = now;
        }
        self.events_processed += 1;
        Some((time, event))
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Marks one client operation as having entered the system.
    pub fn op_started(&mut self) {
        self.in_flight += 1;
        self.max_in_flight = self.max_in_flight.max(self.in_flight);
        self.busy_until = self.busy_until.max(self.queue.now());
    }

    /// Marks one client operation as having left the system (completed or
    /// given up).
    pub fn op_finished(&mut self) {
        debug_assert!(self.in_flight > 0, "op_finished without matching start");
        self.in_flight = self.in_flight.saturating_sub(1);
        self.busy_until = self.busy_until.max(self.queue.now());
    }

    /// Number of operations currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Largest number of simultaneously in-flight operations observed.
    pub fn max_in_flight(&self) -> u64 {
        self.max_in_flight
    }

    /// Time-weighted mean number of in-flight operations over the span in
    /// which operations existed (0 before any time has passed).  Events
    /// popped after the last operation drained — stale timeouts, failure
    /// transitions scheduled beyond the workload — do not dilute the mean.
    pub fn mean_in_flight(&self) -> f64 {
        if self.busy_until <= 0.0 {
            0.0
        } else {
            self.in_flight_area / self.busy_until
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_and_counts_events() {
        let mut e = EventEngine::new();
        e.schedule(2.0, Event::OpArrival { op: 1 });
        e.schedule(1.0, Event::OpArrival { op: 0 });
        e.schedule(
            3.0,
            Event::FailureTransition {
                server: ServerId::new(4),
                crash: true,
            },
        );
        assert_eq!(e.pending(), 3);
        assert_eq!(e.next_event(), Some((1.0, Event::OpArrival { op: 0 })));
        assert_eq!(e.next_event(), Some((2.0, Event::OpArrival { op: 1 })));
        assert!(matches!(
            e.next_event(),
            Some((3.0, Event::FailureTransition { crash: true, .. }))
        ));
        assert_eq!(e.next_event(), None);
        assert_eq!(e.events_processed(), 3);
        assert_eq!(e.now(), 3.0);
    }

    #[test]
    fn in_flight_gauge_is_time_weighted() {
        let mut e = EventEngine::new();
        e.schedule(1.0, Event::OpArrival { op: 0 });
        e.schedule(2.0, Event::OpArrival { op: 1 });
        e.schedule(4.0, Event::OpTimeout { op: 0, attempt: 0 });
        // t=1: one op enters. t=2: a second enters. t=4: both leave.
        e.next_event();
        e.op_started();
        assert_eq!(e.in_flight(), 1);
        e.next_event();
        e.op_started();
        assert_eq!(e.max_in_flight(), 2);
        e.next_event();
        e.op_finished();
        e.op_finished();
        assert_eq!(e.in_flight(), 0);
        // Area: [0,1): 0, [1,2): 1, [2,4): 2 => 5 over 4 seconds.
        assert!((e.mean_in_flight() - 5.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn trailing_events_do_not_dilute_the_in_flight_mean() {
        let mut e = EventEngine::new();
        e.schedule(1.0, Event::OpArrival { op: 0 });
        e.schedule(3.0, Event::OpTimeout { op: 0, attempt: 0 });
        // A failure transition scheduled long after the workload drains
        // (e.g. a "never" crash wave) and a stale timeout must not stretch
        // the denominator.
        e.schedule(
            1e6,
            Event::FailureTransition {
                server: ServerId::new(0),
                crash: true,
            },
        );
        e.next_event();
        e.op_started();
        e.next_event();
        e.op_finished();
        e.next_event();
        // One op in flight over [1, 3), busy until t=3: mean = 2/3.
        assert!((e.mean_in_flight() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pending_slab_reuses_slots_without_aliasing() {
        let mut slab: PendingSlab<&str> = PendingSlab::new();
        assert!(slab.is_empty());
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.take(a), Some("a"));
        // A vacated or out-of-range slot yields nothing.
        assert_eq!(slab.take(a), None);
        assert_eq!(slab.take(999), None);
        // The freed slot is reused, but never while `b` is still in flight.
        let c = slab.insert("c");
        assert_eq!(c, a);
        assert_ne!(c, b);
        assert_eq!(slab.take(b), Some("b"));
        assert_eq!(slab.take(c), Some("c"));
        assert!(slab.is_empty());
    }

    #[test]
    fn empty_engine_reports_zeroes() {
        let mut e = EventEngine::new();
        assert_eq!(e.next_event(), None);
        assert_eq!(e.mean_in_flight(), 0.0);
        assert_eq!(e.max_in_flight(), 0);
        assert_eq!(e.in_flight(), 0);
        assert_eq!(e.pending(), 0);
    }
}
