//! Simulation time and the pending-event queue.
//!
//! The future-event list is a **calendar queue** (Brown's classic
//! discrete-event-simulation structure, the one ns-2-style simulators
//! use): pending events live in power-of-two time buckets of one "day"
//! each, so `schedule` is an O(1) bucket push and `pop` serves the
//! current day from a presorted buffer — O(1) amortized at a healthy
//! load factor, against the two O(log n) sifts a binary heap pays per
//! event.  The heap survives behind [`QueueKind::Heap`] as a reference
//! backend: property tests replay random interleavings against it, and
//! debug builds shadow every calendar-backed queue with a heap of
//! `(time, sequence)` keys, asserting each pop agrees.
//!
//! Both backends honour the exact same contract: pops are ordered by
//! `(time, insertion sequence)` — strictly by time, FIFO among equal
//! times — which is what every pinned determinism fingerprint in
//! `tests/determinism.rs` rests on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in seconds since the start of the run.
pub type SimTime = f64;

/// Which backend an [`EventQueue`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The calendar queue: O(1) amortized schedule/pop (the default).
    #[default]
    Calendar,
    /// The binary heap: O(log n) sifts, kept as the reference backend
    /// (escape hatch and equivalence oracle).
    Heap,
}

/// An entry in the event queue: a payload scheduled at a given time.
///
/// Entries compare by `(time, sequence)` only — the payload never
/// participates, so the queue accepts any event type.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    sequence: u64,
    event: E,
}

impl<E> Scheduled<E> {
    /// The `(time, insertion sequence)` sort key.  `total_cmp` is safe
    /// here: `schedule` rejects NaN, and for finite floats it agrees
    /// with the usual ordering.
    fn key_cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.sequence.cmp(&other.sequence))
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other) == Ordering::Equal
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key pops first.
        other.key_cmp(self)
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The debug-build equivalence oracle: a heap of `(time, sequence)` keys
/// shadowing a calendar-backed queue, payload-free so it imposes no extra
/// bounds on `E`.
#[cfg(debug_assertions)]
type Shadow = BinaryHeap<Scheduled<()>>;

/// Number of buckets a calendar starts with (and never shrinks below).
const MIN_BUCKETS: usize = 16;

/// Hard cap on the bucket directory, so a pathological backlog cannot
/// grow the directory unboundedly (2^20 buckets ≈ 24 MiB of empty Vecs).
const MAX_BUCKETS: usize = 1 << 20;

/// The bucket a time falls into: its "day" index.  Multiplying by the
/// precomputed reciprocal is monotone in `t` (for `t ≥ 0` and a positive
/// width) and the saturating float→int cast keeps monotonicity at the
/// far end, which is all correctness needs — equal times always share a
/// day, and an earlier time never lands in a later day.
#[inline]
fn day_of(time: SimTime, inv_width: f64) -> u64 {
    (time * inv_width) as u64
}

/// The calendar backend: one `Vec` lane per day modulo the bucket count,
/// plus a presorted buffer for the day currently being served.
#[derive(Debug, Clone)]
struct Calendar<E> {
    /// Power-of-two bucket directory; bucket `d % buckets.len()` holds
    /// every pending event of day `d` (all laps mixed, unsorted).
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Seconds covered by one day/bucket.
    width: SimTime,
    /// `1.0 / width`, precomputed for the hot path.
    inv_width: f64,
    /// The day `pop` is currently serving.
    cursor_day: u64,
    /// The current day's events, served in `(time, sequence)`
    /// **descending** order so the next pop is an O(1) `Vec::pop` off the
    /// tail.  Kept *lazily* sorted: inserts into the live day append and
    /// clear [`Self::day_sorted`], and the next pop/peek re-sorts once —
    /// so a burst of k same-day inserts costs one O(k log k) sort, not k
    /// O(k) memmoves.
    day: Vec<Scheduled<E>>,
    /// Whether `day` is currently in descending key order.
    day_sorted: bool,
    /// Total pending events across buckets and the day buffer.
    len: usize,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1.0,
            inv_width: 1.0,
            cursor_day: 0,
            day: Vec::new(),
            day_sorted: true,
            len: 0,
        }
    }

    /// O(1) insert: push onto the day's bucket — with two cold
    /// exceptions that keep the pop order exact.  An entry landing in
    /// the day currently being served is appended to the day buffer,
    /// which re-sorts lazily on the next pop/peek (so bulk-scheduling a
    /// gossip round into the live day stays O(1) per message).  An entry
    /// landing *before* the cursor (a straggler scheduled in the past)
    /// rewinds the cursor to its day, flushing the live day buffer back
    /// to its buckets first.
    fn insert(&mut self, s: Scheduled<E>) {
        let d = day_of(s.time, self.inv_width);
        if d < self.cursor_day {
            self.flush_day();
            self.cursor_day = d;
        } else if d == self.cursor_day && !self.day.is_empty() {
            // The buffer holds *every* remaining entry of the cursor day
            // (its bucket was emptied when the day was prepared), so the
            // append keeps that invariant and the lazy sort restores the
            // serve order.
            self.day.push(s);
            self.day_sorted = false;
            self.len += 1;
            return;
        }
        let b = (d % self.buckets.len() as u64) as usize;
        self.buckets[b].push(s);
        self.len += 1;
        if self.len > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.resize();
        }
    }

    /// Returns the unserved day buffer to its buckets (order within a
    /// bucket is irrelevant — entries carry their own sort key).
    fn flush_day(&mut self) {
        let nbuckets = self.buckets.len() as u64;
        let inv_width = self.inv_width;
        for s in self.day.drain(..) {
            let b = (day_of(s.time, inv_width) % nbuckets) as usize;
            self.buckets[b].push(s);
        }
        self.day_sorted = true;
    }

    /// Ensures the day buffer ends with the earliest pending entry
    /// (no-op when it already does).  Scans forward from the cursor day;
    /// after one fruitless lap over the directory it jumps straight to
    /// the earliest pending day, so sparse far-future backlogs cost one
    /// O(len) scan instead of an unbounded walk over empty days.
    fn prepare(&mut self) {
        if self.len == 0 {
            return;
        }
        if self.day.is_empty() {
            let nbuckets = self.buckets.len() as u64;
            let mut scanned = 0usize;
            loop {
                let b = (self.cursor_day % nbuckets) as usize;
                if !self.buckets[b].is_empty() {
                    let inv_width = self.inv_width;
                    let cursor = self.cursor_day;
                    let bucket = &mut self.buckets[b];
                    let mut i = 0;
                    while i < bucket.len() {
                        if day_of(bucket[i].time, inv_width) == cursor {
                            self.day.push(bucket.swap_remove(i));
                        } else {
                            i += 1;
                        }
                    }
                    if !self.day.is_empty() {
                        self.day_sorted = false;
                        break;
                    }
                }
                scanned += 1;
                if scanned > self.buckets.len() {
                    // A whole lap found nothing in-day: jump to the
                    // earliest pending day (it exists — len > 0).
                    self.cursor_day = self.min_pending_day();
                    scanned = 0;
                    continue;
                }
                self.cursor_day = self.cursor_day.saturating_add(1);
            }
        }
        if !self.day_sorted {
            // The key is unique (sequence breaks ties), so an unstable
            // sort yields the exact `(time, sequence)` serve order.
            self.day.sort_unstable_by(|a, b| Scheduled::key_cmp(b, a));
            self.day_sorted = true;
        }
    }

    /// Day of the earliest pending entry across all buckets.
    fn min_pending_day(&self) -> u64 {
        let mut min_time = f64::INFINITY;
        for bucket in &self.buckets {
            for s in bucket {
                if s.time < min_time {
                    min_time = s.time;
                }
            }
        }
        debug_assert!(min_time.is_finite(), "min_pending_day on an empty calendar");
        day_of(min_time, self.inv_width)
    }

    /// Pops the earliest pending entry.
    fn pop(&mut self) -> Option<Scheduled<E>> {
        self.prepare();
        let s = self.day.pop()?;
        self.len -= 1;
        if self.len < self.buckets.len() / 8 && self.buckets.len() > MIN_BUCKETS {
            self.resize();
        }
        Some(s)
    }

    /// Time of the earliest pending entry.
    fn peek_time(&mut self) -> Option<SimTime> {
        self.prepare();
        self.day.last().map(|s| s.time)
    }

    /// Rebuilds the directory for the current population: bucket count
    /// tracks `len` (load factor ~1) and the day width tracks the mean
    /// spacing of pending events, so a day holds a small constant number
    /// of entries whether the backlog is clustered or spread out.
    fn resize(&mut self) {
        let mut entries: Vec<Scheduled<E>> = Vec::with_capacity(self.len);
        entries.append(&mut self.day);
        self.day_sorted = true;
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        debug_assert_eq!(entries.len(), self.len);
        let nbuckets = entries
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        if self.buckets.len() != nbuckets {
            self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        }
        if let (Some(min), Some(max)) = (
            entries.iter().map(|s| s.time).min_by(f64::total_cmp),
            entries.iter().map(|s| s.time).max_by(f64::total_cmp),
        ) {
            let span = max - min;
            if span > 0.0 {
                // Two mean gaps per day: ~2 entries per bucket on average.
                let width = span / entries.len() as f64 * 2.0;
                if width.is_finite() && width > 0.0 && width.recip().is_finite() {
                    self.width = width;
                    self.inv_width = width.recip();
                }
            }
            self.cursor_day = day_of(min, self.inv_width);
        }
        for s in entries {
            let b = (day_of(s.time, self.inv_width) % self.buckets.len() as u64) as usize;
            self.buckets[b].push(s);
        }
    }
}

/// The two interchangeable backends (see [`QueueKind`]).
#[derive(Debug, Clone)]
enum Backend<E> {
    Heap(BinaryHeap<Scheduled<E>>),
    Calendar(Calendar<E>),
}

/// A deterministic future-event list ordered by time (FIFO among equal
/// times).
///
/// # Examples
///
/// ```
/// use pqs_sim::time::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    sequence: u64,
    now: SimTime,
    /// Debug builds shadow the calendar with a key-only heap and assert
    /// every pop agrees — the continuous equivalence check the tentpole
    /// refactor is gated on.  `None` on heap-backed queues.
    #[cfg(debug_assertions)]
    shadow: Option<Shadow>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar-backed queue at time zero.
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Calendar)
    }

    /// Creates an empty queue on the chosen backend at time zero.
    pub fn with_kind(kind: QueueKind) -> Self {
        EventQueue {
            backend: match kind {
                QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
                QueueKind::Calendar => Backend::Calendar(Calendar::new()),
            },
            sequence: 0,
            now: 0.0,
            #[cfg(debug_assertions)]
            shadow: match kind {
                QueueKind::Heap => None,
                QueueKind::Calendar => Some(Shadow::new()),
            },
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.backend {
            Backend::Heap(_) => QueueKind::Heap,
            Backend::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// The time of the most recently popped event (0 before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Calendar(cal) => cal.len,
        }
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or negative.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time.is_finite() && time >= 0.0,
            "event time must be finite and non-negative, got {time}"
        );
        self.sequence += 1;
        let s = Scheduled {
            time,
            sequence: self.sequence,
            event,
        };
        #[cfg(debug_assertions)]
        if let Some(shadow) = &mut self.shadow {
            shadow.push(Scheduled {
                time,
                sequence: self.sequence,
                event: (),
            });
        }
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(s),
            Backend::Calendar(cal) => cal.insert(s),
        }
    }

    /// Pops the earliest pending event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = match &mut self.backend {
            Backend::Heap(heap) => heap.pop(),
            Backend::Calendar(cal) => cal.pop(),
        };
        #[cfg(debug_assertions)]
        if let Some(shadow) = &mut self.shadow {
            let expect = shadow.pop();
            match (&popped, &expect) {
                (None, None) => {}
                (Some(got), Some(want)) => debug_assert!(
                    got.time == want.time && got.sequence == want.sequence,
                    "calendar pop ({}, #{}) disagrees with the heap oracle ({}, #{})",
                    got.time,
                    got.sequence,
                    want.time,
                    want.sequence,
                ),
                _ => debug_assert!(false, "calendar and heap oracle disagree on emptiness"),
            }
        }
        popped.map(|s| {
            self.now = self.now.max(s.time);
            (s.time, s.event)
        })
    }

    /// Time of the earliest pending event without popping it.
    ///
    /// The sharded engine drains each shard queue up to a window barrier;
    /// peeking lets the drain loop stop without disturbing the queue.
    /// (Takes `&mut self`: the calendar backend may rotate the earliest
    /// day into its serve buffer — observable state is untouched.)
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.peek().map(|s| s.time),
            Backend::Calendar(cal) => cal.peek_time(),
        }
    }

    /// Drains `batch` into the queue after **stably** sorting it by time.
    ///
    /// This is how a gossip round's messages are bulk-scheduled: inserting
    /// in ascending time order appends to the tail of each calendar day
    /// (and turns a heap backend's pushes into O(1) sifts).  Determinism
    /// is preserved exactly — pops are ordered by `(time, insertion
    /// sequence)` and a stable sort keeps the relative order of equal-time
    /// entries, so the pop order is identical to scheduling the batch
    /// unsorted.  The sort uses `f64::total_cmp`: unlike a
    /// `partial_cmp(..).unwrap_or(Equal)` comparator, a NaN in the batch
    /// cannot scramble the surrounding entries before `schedule`'s
    /// validation rejects it.
    ///
    /// The batch vector is left empty with its capacity intact, ready for
    /// reuse by the next round.
    ///
    /// # Panics
    ///
    /// Panics if any entry's time is NaN or negative.
    pub fn schedule_batch(&mut self, batch: &mut Vec<(SimTime, E)>) {
        batch.sort_by(|a, b| a.0.total_cmp(&b.0));
        if let Backend::Heap(heap) = &mut self.backend {
            heap.reserve(batch.len());
        }
        for (time, event) in batch.drain(..) {
            self.schedule(time, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a1");
        q.schedule(1.0, "a2");
        q.schedule(3.0, "b");
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap().1, "a1");
        assert_eq!(q.pop().unwrap().1, "a2");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.now(), 3.0);
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan_times() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_times() {
        let mut q = EventQueue::new();
        q.schedule(-1.0, ());
    }

    #[test]
    fn clock_is_monotone_even_with_out_of_order_inserts() {
        let mut q = EventQueue::new();
        q.schedule(10.0, 1u32);
        assert_eq!(q.pop().unwrap().0, 10.0);
        // A straggler scheduled in the "past" does not move the clock back.
        q.schedule(4.0, 2u32);
        let _ = q.pop();
        assert_eq!(q.now(), 10.0);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.kind(), QueueKind::Calendar);
        assert_eq!(QueueKind::default(), QueueKind::Calendar);
    }

    #[test]
    fn batch_scheduling_preserves_fifo_among_equal_times() {
        // The same events scheduled one by one and as a sorted batch must
        // pop in the same order — the sort is stable, so equal-time
        // entries keep their relative (insertion) order.
        let entries = [(2.0, "b1"), (1.0, "a1"), (2.0, "b2"), (1.0, "a2")];
        for kind in [QueueKind::Calendar, QueueKind::Heap] {
            let mut one_by_one = EventQueue::with_kind(kind);
            for (t, e) in entries {
                one_by_one.schedule(t, e);
            }
            let mut batched = EventQueue::with_kind(kind);
            let mut batch: Vec<(SimTime, &str)> = entries.to_vec();
            batched.schedule_batch(&mut batch);
            assert!(batch.is_empty(), "the batch buffer is drained for reuse");
            for _ in 0..entries.len() {
                assert_eq!(one_by_one.pop(), batched.pop());
            }
            assert!(batched.pop().is_none());
        }
    }

    #[test]
    fn peek_reports_earliest_time_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(7.0, "later");
        q.schedule(2.0, "sooner");
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "sooner");
        assert_eq!(q.peek_time(), Some(7.0));
    }

    /// Both backends pop the same `(time, event)` stream under an
    /// adversarial mix of clustered, equal and far-future times with
    /// interleaved pops — enough traffic to force calendar resizes in
    /// both directions.
    #[test]
    fn calendar_matches_heap_under_interleaved_load() {
        let mut calendar = EventQueue::with_kind(QueueKind::Calendar);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        // A cheap deterministic scramble (splitmix64) for times.
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut popped = 0u64;
        for i in 0..5000u64 {
            let r = next();
            let t = match r % 4 {
                // Clustered around a handful of centres (many exact ties).
                0 => ((r >> 8) % 8) as f64 * 0.5,
                // Dense sub-millisecond spacing.
                1 => ((r >> 8) % 1000) as f64 * 1e-4,
                // Spread over a wide window.
                2 => ((r >> 8) % 1000) as f64,
                // Far future: forces wide spans and directory jumps.
                _ => 1e6 + ((r >> 8) % 100) as f64 * 1e3,
            };
            calendar.schedule(t, i);
            heap.schedule(t, i);
            if r % 3 == 0 {
                assert_eq!(calendar.peek_time(), heap.peek_time());
                assert_eq!(calendar.pop(), heap.pop());
                popped += 1;
            }
        }
        assert_eq!(calendar.len(), heap.len());
        while let Some(got) = calendar.pop() {
            assert_eq!(Some(got), heap.pop());
            popped += 1;
        }
        assert!(heap.pop().is_none());
        assert_eq!(popped, 5000);
        assert_eq!(calendar.now(), heap.now());
    }

    /// A straggler scheduled before every pending event still pops first
    /// on the calendar backend (the cursor rewinds to its day).
    #[test]
    fn straggler_in_the_past_pops_first() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        for i in 0..100u32 {
            q.schedule(1000.0 + i as f64, i);
        }
        assert_eq!(q.pop(), Some((1000.0, 0)));
        q.schedule(1.5, 999);
        assert_eq!(q.peek_time(), Some(1.5));
        assert_eq!(q.pop(), Some((1.5, 999)));
        assert_eq!(q.pop(), Some((1001.0, 1)));
    }
}
