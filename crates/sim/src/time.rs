//! Simulation time and the pending-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in seconds since the start of the run.
pub type SimTime = f64;

/// An entry in the event queue: a payload scheduled at a given time.
#[derive(Debug, Clone, PartialEq)]
struct Scheduled<E> {
    time: SimTime,
    sequence: u64,
    event: E,
}

impl<E: PartialEq> Eq for Scheduled<E> {}

impl<E: PartialEq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops first.
        // Ties are broken by insertion order for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl<E: PartialEq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list ordered by time (FIFO among equal
/// times).
///
/// # Examples
///
/// ```
/// use pqs_sim::time::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    sequence: u64,
    now: SimTime,
}

impl<E: PartialEq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: PartialEq> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            sequence: 0,
            now: 0.0,
        }
    }

    /// The time of the most recently popped event (0 before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or negative.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time.is_finite() && time >= 0.0,
            "event time must be finite and non-negative, got {time}"
        );
        self.sequence += 1;
        self.heap.push(Scheduled {
            time,
            sequence: self.sequence,
            event,
        });
    }

    /// Pops the earliest pending event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.now = self.now.max(s.time);
            (s.time, s.event)
        })
    }

    /// Time of the earliest pending event without popping it.
    ///
    /// The sharded engine drains each shard queue up to a window barrier;
    /// peeking lets the drain loop stop without disturbing the queue.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Drains `batch` into the queue after **stably** sorting it by time.
    ///
    /// This is how a gossip round's messages are bulk-scheduled: inserting
    /// in ascending time order turns each heap push into an O(1) sift
    /// instead of a random-position insertion.  Determinism is preserved
    /// exactly — pops are ordered by `(time, insertion sequence)` and a
    /// stable sort keeps the relative order of equal-time entries, so the
    /// pop order is identical to scheduling the batch unsorted.
    ///
    /// The batch vector is left empty with its capacity intact, ready for
    /// reuse by the next round.
    ///
    /// # Panics
    ///
    /// Panics if any entry's time is NaN or negative.
    pub fn schedule_batch(&mut self, batch: &mut Vec<(SimTime, E)>) {
        batch.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
        self.heap.reserve(batch.len());
        for (time, event) in batch.drain(..) {
            self.schedule(time, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a1");
        q.schedule(1.0, "a2");
        q.schedule(3.0, "b");
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
        assert_eq!(q.pop().unwrap().1, "a1");
        assert_eq!(q.pop().unwrap().1, "a2");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.now(), 3.0);
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan_times() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_times() {
        let mut q = EventQueue::new();
        q.schedule(-1.0, ());
    }

    #[test]
    fn clock_is_monotone_even_with_out_of_order_inserts() {
        let mut q = EventQueue::new();
        q.schedule(10.0, 1u32);
        assert_eq!(q.pop().unwrap().0, 10.0);
        // A straggler scheduled in the "past" does not move the clock back.
        q.schedule(4.0, 2u32);
        let _ = q.pop();
        assert_eq!(q.now(), 10.0);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.now(), 0.0);
    }

    #[test]
    fn batch_scheduling_preserves_fifo_among_equal_times() {
        // The same events scheduled one by one and as a sorted batch must
        // pop in the same order — the sort is stable, so equal-time
        // entries keep their relative (insertion) order.
        let entries = [(2.0, "b1"), (1.0, "a1"), (2.0, "b2"), (1.0, "a2")];
        let mut one_by_one = EventQueue::new();
        for (t, e) in entries {
            one_by_one.schedule(t, e);
        }
        let mut batched = EventQueue::new();
        let mut batch: Vec<(SimTime, &str)> = entries.to_vec();
        batched.schedule_batch(&mut batch);
        assert!(batch.is_empty(), "the batch buffer is drained for reuse");
        for _ in 0..entries.len() {
            assert_eq!(one_by_one.pop(), batched.pop());
        }
        assert!(batched.pop().is_none());
    }

    #[test]
    fn peek_reports_earliest_time_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(7.0, "later");
        q.schedule(2.0, "sooner");
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "sooner");
        assert_eq!(q.peek_time(), Some(7.0));
    }
}
