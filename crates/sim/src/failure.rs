//! Failure plans: who fails, how, and when.

use crate::time::SimTime;
use pqs_core::universe::{ServerId, Universe};
use pqs_math::sampling::sample_k_of_n;
use rand::RngCore;

/// A scheduled crash (or recovery) of one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// Which server.
    pub server: ServerId,
    /// `true` for a crash, `false` for a recovery.
    pub crash: bool,
}

/// A complete failure plan for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailurePlan {
    /// Servers that behave Byzantine from the start of the run.
    pub byzantine: Vec<ServerId>,
    /// Crash / recovery transitions ordered by time.
    pub crashes: Vec<CrashEvent>,
}

impl FailurePlan {
    /// An empty plan: every server stays correct.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Places `count` Byzantine servers uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the universe size.
    pub fn with_random_byzantine(
        mut self,
        universe: Universe,
        count: u32,
        rng: &mut dyn RngCore,
    ) -> Self {
        assert!(
            count <= universe.size(),
            "cannot corrupt {count} of {} servers",
            universe.size()
        );
        self.byzantine = sample_k_of_n(rng, count as u64, universe.size() as u64)
            .expect("count validated")
            .into_iter()
            .map(|i| ServerId::new(i as u32))
            .collect();
        self
    }

    /// Crashes each server independently with probability `p` at time
    /// `at` (the iid model of Definition 2.6).
    pub fn with_independent_crashes(
        mut self,
        universe: Universe,
        p: f64,
        at: SimTime,
        rng: &mut dyn RngCore,
    ) -> Self {
        use rand::Rng;
        let p = p.clamp(0.0, 1.0);
        for i in 0..universe.size() {
            if rng.gen_bool(p) {
                self.crashes.push(CrashEvent {
                    at,
                    server: ServerId::new(i),
                    crash: true,
                });
            }
        }
        self.sort_crashes();
        self
    }

    /// Adds an explicit crash or recovery transition.
    pub fn with_transition(mut self, at: SimTime, server: ServerId, crash: bool) -> Self {
        self.crashes.push(CrashEvent { at, server, crash });
        self.sort_crashes();
        self
    }

    /// Crashes every server in `servers` simultaneously at time `at` — a
    /// correlated "crash wave" (rack power loss, network partition onset).
    /// The event engine honours the wave mid-run: operations in flight when
    /// it hits lose the probes that had not yet been answered.
    pub fn with_crash_wave<I: IntoIterator<Item = ServerId>>(
        mut self,
        at: SimTime,
        servers: I,
    ) -> Self {
        for server in servers {
            self.crashes.push(CrashEvent {
                at,
                server,
                crash: true,
            });
        }
        self.sort_crashes();
        self
    }

    /// Number of servers that are Byzantine from the start.
    pub fn byzantine_count(&self) -> usize {
        self.byzantine.len()
    }

    fn sort_crashes(&mut self) {
        // `total_cmp` so a NaN transition time cannot scramble the
        // schedule; the engine's scheduler rejects it with a clear panic
        // instead.
        self.crashes.sort_by(|a, b| a.at.total_cmp(&b.at));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_plan() {
        let p = FailurePlan::none();
        assert_eq!(p.byzantine_count(), 0);
        assert!(p.crashes.is_empty());
    }

    #[test]
    fn random_byzantine_placement() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let u = Universe::new(50);
        let p = FailurePlan::none().with_random_byzantine(u, 7, &mut rng);
        assert_eq!(p.byzantine_count(), 7);
        let mut unique: Vec<_> = p.byzantine.clone();
        unique.dedup();
        assert_eq!(unique.len(), 7);
        assert!(p.byzantine.iter().all(|s| s.index() < 50));
    }

    #[test]
    #[should_panic(expected = "cannot corrupt")]
    fn byzantine_count_validated() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let _ = FailurePlan::none().with_random_byzantine(Universe::new(5), 6, &mut rng);
    }

    #[test]
    fn independent_crashes_and_ordering() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let u = Universe::new(100);
        let p = FailurePlan::none()
            .with_transition(5.0, ServerId::new(0), true)
            .with_independent_crashes(u, 0.2, 1.0, &mut rng)
            .with_transition(0.5, ServerId::new(1), true);
        // Sorted by time.
        assert!(p.crashes.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(p.crashes.first().unwrap().at, 0.5);
        // Roughly 20 crashes from the independent model (plus the 2 manual).
        let count = p.crashes.len();
        assert!((10..=35).contains(&count), "count={count}");
    }

    #[test]
    fn crash_wave_is_simultaneous_and_sorted() {
        let p = FailurePlan::none()
            .with_transition(1.0, ServerId::new(9), true)
            .with_crash_wave(0.25, (0..4).map(ServerId::new));
        assert_eq!(p.crashes.len(), 5);
        assert!(p.crashes[..4].iter().all(|c| c.at == 0.25 && c.crash));
        assert_eq!(p.crashes[4].at, 1.0);
    }

    #[test]
    fn recovery_transitions_are_supported() {
        let p = FailurePlan::none()
            .with_transition(1.0, ServerId::new(3), true)
            .with_transition(2.0, ServerId::new(3), false);
        assert!(p.crashes[0].crash);
        assert!(!p.crashes[1].crash);
    }
}
