//! Failure plans: who fails, how, and when — crash schedules, membership
//! churn, healing partitions and adaptive Byzantine strategies.

use crate::time::SimTime;
use pqs_core::universe::{ServerId, Universe};
use pqs_math::sampling::sample_k_of_n;
use pqs_protocols::server::VariableId;
use rand::RngCore;

/// A scheduled crash (or recovery) of one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// Which server.
    pub server: ServerId,
    /// `true` for a crash, `false` for a recovery.
    pub crash: bool,
}

/// A scheduled membership transition: a server joining or leaving the
/// cluster mid-run.  A server whose *first* membership event is a join is
/// absent (crashed, empty stores) from the start of the run; a joiner
/// always comes up with freshly reset record stores and bootstraps its
/// state through gossip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// Which server.
    pub server: ServerId,
    /// `true` for a join, `false` for a leave.
    pub join: bool,
}

/// A healing partition: from `from` until `heals_at` the universe is split
/// into `components` groups (server `s` belongs to component
/// `s.index() % components`); probes and gossip cross component borders
/// only after the heal time.  Clients are attributed to components by the
/// variable they operate on (`variable % components`), so a probe is
/// delivered only when the server sits in the client's component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionWindow {
    /// Partition onset (inclusive).
    pub from: SimTime,
    /// Heal time (exclusive — the window is `[from, heals_at)`).
    pub heals_at: SimTime,
    /// Number of components the universe splits into (≥ 2 to have any
    /// effect; component of server `s` is `s.index() % components`).
    pub components: u32,
}

/// How the Byzantine set behaves over the run.
///
/// The static set in [`FailurePlan::byzantine`] always misbehaves.  The
/// adaptive strategies add *sleeper* servers that act correct until a
/// foreground-observable predicate fires for the probed variable, then
/// answer that probe stale-but-signed ([`Behavior::ByzantineStale`]
/// semantics).  Predicates read only the engines' foreground write
/// statistics (per-variable write counts and last-write times), never
/// gossip state or RNG draws, so diffusion-off replay invariants and the
/// gossip-stream isolation survive unchanged.
///
/// [`Behavior::ByzantineStale`]: pqs_protocols::server::Behavior::ByzantineStale
#[derive(Debug, Clone, Default, PartialEq)]
pub enum ByzantineStrategy {
    /// The frozen PR ≤ 9 model: only [`FailurePlan::byzantine`] misbehaves.
    #[default]
    Static,
    /// Sleepers watch the foreground write volume and re-aim at the
    /// observed hottest keys: a sleeper answers a probe stale once the
    /// probed variable has accumulated at least `min_writes` completed
    /// writes — the adversary concentrates on exactly the keys whose probe
    /// windows matter most.
    HotKeyTargeting {
        /// Servers that flip to stale replies on hot keys.
        sleepers: Vec<ServerId>,
        /// Foreground write count at which a key counts as hot.
        min_writes: u64,
    },
    /// Sleepers maximize `stale_read_rate` directly: a sleeper answers a
    /// probe stale whenever the probed variable was written within the
    /// last `window` seconds — exactly the reads where a stale (but
    /// correctly signed) record is still plausible enough to win a quorum.
    StaleSigned {
        /// Servers that flip to stale replies inside the write window.
        sleepers: Vec<ServerId>,
        /// Seconds after a write during which sleepers reply stale.
        window: SimTime,
    },
}

impl ByzantineStrategy {
    /// The sleeper set of the adaptive strategies (empty for `Static`).
    pub fn sleepers(&self) -> &[ServerId] {
        match self {
            ByzantineStrategy::Static => &[],
            ByzantineStrategy::HotKeyTargeting { sleepers, .. } => sleepers,
            ByzantineStrategy::StaleSigned { sleepers, .. } => sleepers,
        }
    }
}

/// A complete failure plan for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailurePlan {
    /// Servers that behave Byzantine from the start of the run.
    pub byzantine: Vec<ServerId>,
    /// Crash / recovery transitions ordered by time.
    pub crashes: Vec<CrashEvent>,
    /// Membership churn: join / leave transitions ordered by time.
    pub memberships: Vec<MembershipEvent>,
    /// Healing partitions ordered by onset time.
    pub partitions: Vec<PartitionWindow>,
    /// How the Byzantine set adapts over the run.
    pub strategy: ByzantineStrategy,
}

impl FailurePlan {
    /// An empty plan: every server stays correct.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Places `count` Byzantine servers uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the universe size.
    pub fn with_random_byzantine(
        mut self,
        universe: Universe,
        count: u32,
        rng: &mut dyn RngCore,
    ) -> Self {
        assert!(
            count <= universe.size(),
            "cannot corrupt {count} of {} servers",
            universe.size()
        );
        self.byzantine = sample_k_of_n(rng, count as u64, universe.size() as u64)
            .expect("count validated")
            .into_iter()
            .map(|i| ServerId::new(i as u32))
            .collect();
        self
    }

    /// Crashes each server independently with probability `p` at time
    /// `at` (the iid model of Definition 2.6).
    pub fn with_independent_crashes(
        mut self,
        universe: Universe,
        p: f64,
        at: SimTime,
        rng: &mut dyn RngCore,
    ) -> Self {
        use rand::Rng;
        let p = p.clamp(0.0, 1.0);
        for i in 0..universe.size() {
            if rng.gen_bool(p) {
                self.crashes.push(CrashEvent {
                    at,
                    server: ServerId::new(i),
                    crash: true,
                });
            }
        }
        self.sort_crashes();
        self
    }

    /// Adds an explicit crash or recovery transition.
    pub fn with_transition(mut self, at: SimTime, server: ServerId, crash: bool) -> Self {
        self.crashes.push(CrashEvent { at, server, crash });
        self.sort_crashes();
        self
    }

    /// Crashes every server in `servers` simultaneously at time `at` — a
    /// correlated "crash wave" (rack power loss, network partition onset).
    /// The event engine honours the wave mid-run: operations in flight when
    /// it hits lose the probes that had not yet been answered.
    pub fn with_crash_wave<I: IntoIterator<Item = ServerId>>(
        mut self,
        at: SimTime,
        servers: I,
    ) -> Self {
        for server in servers {
            self.crashes.push(CrashEvent {
                at,
                server,
                crash: true,
            });
        }
        self.sort_crashes();
        self
    }

    /// Schedules `server` to join the cluster at time `at`.  If this is
    /// the server's first membership event it is absent (crashed) from the
    /// start of the run; the join resets its record stores and it
    /// bootstraps through gossip.
    pub fn with_join(mut self, at: SimTime, server: ServerId) -> Self {
        self.memberships.push(MembershipEvent {
            at,
            server,
            join: true,
        });
        self.sort_memberships();
        self
    }

    /// Schedules `server` to leave the cluster at time `at`.
    pub fn with_leave(mut self, at: SimTime, server: ServerId) -> Self {
        self.memberships.push(MembershipEvent {
            at,
            server,
            join: false,
        });
        self.sort_memberships();
        self
    }

    /// Adds a healing partition window `[from, heals_at)` splitting the
    /// universe into `components` groups.
    ///
    /// # Panics
    ///
    /// Panics on an empty or inverted window or fewer than two components.
    pub fn with_partition(mut self, from: SimTime, heals_at: SimTime, components: u32) -> Self {
        assert!(
            from < heals_at,
            "partition window [{from}, {heals_at}) is empty"
        );
        assert!(components >= 2, "a partition needs at least 2 components");
        self.partitions.push(PartitionWindow {
            from,
            heals_at,
            components,
        });
        self.partitions.sort_by(|a, b| a.from.total_cmp(&b.from));
        self
    }

    /// Sets the Byzantine strategy for the run.
    pub fn with_strategy(mut self, strategy: ByzantineStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Number of servers that are Byzantine from the start.
    pub fn byzantine_count(&self) -> usize {
        self.byzantine.len()
    }

    /// Servers whose first membership event is a join: they are absent
    /// (crashed, empty stores) from the start of the run.
    pub fn initially_absent(&self) -> Vec<ServerId> {
        let mut seen: Vec<ServerId> = Vec::new();
        let mut absent: Vec<ServerId> = Vec::new();
        for m in &self.memberships {
            if seen.contains(&m.server) {
                continue;
            }
            seen.push(m.server);
            if m.join {
                absent.push(m.server);
            }
        }
        absent
    }

    /// The partition window active at time `t`, if any.
    pub fn active_partition(&self, t: SimTime) -> Option<&PartitionWindow> {
        if self.partitions.is_empty() {
            return None;
        }
        self.partitions
            .iter()
            .find(|w| w.from <= t && t < w.heals_at)
    }

    /// Whether a probe on `variable` delivered at time `t` is blocked from
    /// reaching `server`: the client sits in component
    /// `variable % components`, the server in `s.index() % components`.
    pub fn blocks_probe(&self, t: SimTime, variable: VariableId, server: ServerId) -> bool {
        match self.active_partition(t) {
            None => false,
            Some(w) => {
                let c = w.components as u64;
                variable % c != server.index() as u64 % c
            }
        }
    }

    /// Whether a gossip message delivered at time `t` is blocked on the
    /// server-to-server link `a → b` (distinct components cannot talk).
    pub fn blocks_link(&self, t: SimTime, a: ServerId, b: ServerId) -> bool {
        match self.active_partition(t) {
            None => false,
            Some(w) => {
                let c = w.components as u64;
                a.index() as u64 % c != b.index() as u64 % c
            }
        }
    }

    /// The sleeper servers of the adaptive strategy (empty for `Static`).
    pub fn sleepers(&self) -> &[ServerId] {
        self.strategy.sleepers()
    }

    fn sort_crashes(&mut self) {
        // `total_cmp` so a NaN transition time cannot scramble the
        // schedule; the engine's scheduler rejects it with a clear panic
        // instead.
        self.crashes.sort_by(|a, b| a.at.total_cmp(&b.at));
    }

    fn sort_memberships(&mut self) {
        self.memberships.sort_by(|a, b| a.at.total_cmp(&b.at));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_plan() {
        let p = FailurePlan::none();
        assert_eq!(p.byzantine_count(), 0);
        assert!(p.crashes.is_empty());
        assert!(p.memberships.is_empty());
        assert!(p.partitions.is_empty());
        assert_eq!(p.strategy, ByzantineStrategy::Static);
        assert!(p.sleepers().is_empty());
        assert!(p.initially_absent().is_empty());
        assert!(p.active_partition(1.0).is_none());
    }

    #[test]
    fn random_byzantine_placement() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let u = Universe::new(50);
        let p = FailurePlan::none().with_random_byzantine(u, 7, &mut rng);
        assert_eq!(p.byzantine_count(), 7);
        let mut unique: Vec<_> = p.byzantine.clone();
        unique.dedup();
        assert_eq!(unique.len(), 7);
        assert!(p.byzantine.iter().all(|s| s.index() < 50));
    }

    #[test]
    #[should_panic(expected = "cannot corrupt")]
    fn byzantine_count_validated() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let _ = FailurePlan::none().with_random_byzantine(Universe::new(5), 6, &mut rng);
    }

    #[test]
    fn independent_crashes_and_ordering() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let u = Universe::new(100);
        let p = FailurePlan::none()
            .with_transition(5.0, ServerId::new(0), true)
            .with_independent_crashes(u, 0.2, 1.0, &mut rng)
            .with_transition(0.5, ServerId::new(1), true);
        // Sorted by time.
        assert!(p.crashes.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(p.crashes.first().unwrap().at, 0.5);
        // Roughly 20 crashes from the independent model (plus the 2 manual).
        let count = p.crashes.len();
        assert!((10..=35).contains(&count), "count={count}");
    }

    #[test]
    fn crash_wave_is_simultaneous_and_sorted() {
        let p = FailurePlan::none()
            .with_transition(1.0, ServerId::new(9), true)
            .with_crash_wave(0.25, (0..4).map(ServerId::new));
        assert_eq!(p.crashes.len(), 5);
        assert!(p.crashes[..4].iter().all(|c| c.at == 0.25 && c.crash));
        assert_eq!(p.crashes[4].at, 1.0);
    }

    #[test]
    fn recovery_transitions_are_supported() {
        let p = FailurePlan::none()
            .with_transition(1.0, ServerId::new(3), true)
            .with_transition(2.0, ServerId::new(3), false);
        assert!(p.crashes[0].crash);
        assert!(!p.crashes[1].crash);
    }

    #[test]
    fn membership_schedule_is_sorted_and_absence_is_first_event() {
        let p = FailurePlan::none()
            .with_leave(9.0, ServerId::new(2))
            .with_join(5.0, ServerId::new(7))
            .with_join(12.0, ServerId::new(2))
            .with_join(1.0, ServerId::new(9));
        assert!(p.memberships.windows(2).all(|w| w[0].at <= w[1].at));
        // Server 7 and 9 join first → absent at t=0; server 2 leaves first
        // → present at t=0.
        let absent = p.initially_absent();
        assert!(absent.contains(&ServerId::new(7)));
        assert!(absent.contains(&ServerId::new(9)));
        assert!(!absent.contains(&ServerId::new(2)));
        assert_eq!(absent.len(), 2);
    }

    #[test]
    fn partition_windows_gate_probes_and_links() {
        let p = FailurePlan::none().with_partition(2.0, 6.0, 2);
        // Outside the window nothing is blocked.
        assert!(!p.blocks_probe(1.0, 0, ServerId::new(1)));
        assert!(!p.blocks_link(6.0, ServerId::new(0), ServerId::new(1)));
        // Inside, odd servers are cut off from even variables and from
        // even servers; same-component traffic flows.
        assert!(p.blocks_probe(2.0, 0, ServerId::new(1)));
        assert!(!p.blocks_probe(2.0, 0, ServerId::new(2)));
        assert!(p.blocks_link(3.0, ServerId::new(0), ServerId::new(3)));
        assert!(!p.blocks_link(3.0, ServerId::new(1), ServerId::new(3)));
        assert_eq!(p.active_partition(2.0).unwrap().components, 2);
        assert!(p.active_partition(6.0).is_none());
    }

    #[test]
    #[should_panic(expected = "at least 2 components")]
    fn partition_component_count_validated() {
        let _ = FailurePlan::none().with_partition(0.0, 1.0, 1);
    }

    #[test]
    fn strategy_sleepers_are_exposed() {
        let sleepers = vec![ServerId::new(3), ServerId::new(5)];
        let hot = FailurePlan::none().with_strategy(ByzantineStrategy::HotKeyTargeting {
            sleepers: sleepers.clone(),
            min_writes: 4,
        });
        assert_eq!(hot.sleepers(), &sleepers[..]);
        let stale = FailurePlan::none().with_strategy(ByzantineStrategy::StaleSigned {
            sleepers: sleepers.clone(),
            window: 0.5,
        });
        assert_eq!(stale.sleepers(), &sleepers[..]);
        // The new fields default to the frozen static model, so existing
        // plans compare equal to their pre-churn selves.
        assert_eq!(
            FailurePlan::none(),
            FailurePlan {
                byzantine: vec![],
                crashes: vec![],
                memberships: vec![],
                partitions: vec![],
                strategy: ByzantineStrategy::Static,
            }
        );
    }
}
