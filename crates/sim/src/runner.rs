//! The simulation driver: a discrete-event engine over per-message probes.
//!
//! A [`Simulation`] ties together a quorum system, one of the three register
//! protocols, a replica cluster, a latency model, a sharded workload and a
//! failure plan, and produces a [`SimReport`].
//!
//! ## The access model
//!
//! Unlike the seed simulator — which applied each quorum exchange atomically
//! at its arrival instant and merely *derived* a latency — this engine
//! schedules one [`Event`] per client–server message:
//!
//! 1. At [`Event::OpArrival`] the client samples a probe set (a quorum drawn
//!    by the access strategy plus [`SimConfig::probe_margin`] spare servers)
//!    and sends one probe per member, each with its own latency draw.
//! 2. Each [`Event::ProbeReply`] evaluates the server *at the message's
//!    round-trip completion time*: a server crashed by an intervening
//!    [`Event::FailureTransition`] simply fails to answer, and a write probe
//!    mutates the replica at that instant — so concurrent operations
//!    genuinely interleave.
//! 3. The operation completes on the **first `q` responders** (the
//!    incremental sessions of [`pqs_protocols::register::session`]), or —
//!    when the probe set is exhausted or [`SimConfig::op_timeout`] fires —
//!    condenses the partial reply set, exactly like the paper's protocols
//!    under partial quorum responses.
//! 4. An attempt that gathered *zero* replies resamples a fresh probe set
//!    (timeout-and-resample), up to [`SimConfig::max_retries`] times, before
//!    the operation counts as unavailable.  With a positive
//!    [`SimConfig::retry_backoff`] each resample waits an exponentially
//!    growing delay first ([`Event::RetryAttempt`]).
//!
//! ## The key space
//!
//! One run drives **many replicated variables concurrently**: the workload
//! spreads operations over a [`KeySpace`] (uniform or Zipf popularity), and
//! the engine keeps one register client — with its own writer timestamp
//! chain, write log and staleness accounting — per key through a
//! [`RegisterMap`].  Sessions for different keys interleave freely in the
//! event queue; the report carries a per-variable breakdown
//! ([`SimReport::per_variable`]) next to the aggregates.  The default
//! single-key space reproduces the classic one-register runs exactly
//! (bit-identical reports per seed).
//!
//! Many operations are in flight at once; the report's
//! `mean_in_flight`/`max_in_flight` gauges and per-kind latency percentiles
//! quantify exactly the regimes the atomic model could not reach.
//!
//! ## Write diffusion
//!
//! With a [`DiffusionPolicy`] configured, the engine additionally runs the
//! Section 1.1 anti-entropy mechanism *inside* simulated time: every
//! `period` seconds an [`Event::GossipRound`] snapshots the correct
//! servers' stored records ([`pqs_protocols::diffusion::plan_cluster_round`])
//! and turns them into [`Event::GossipPush`] messages — each with its own
//! latency draw, bulk-scheduled per round through a reused batch buffer —
//! so gossip traffic genuinely interleaves with in-flight client probes.  Crashed servers skip rounds
//! and drop in-flight pushes; Byzantine servers receive but never push —
//! the same semantics as the synchronous
//! [`diffuse_plain`](pqs_protocols::diffusion::diffuse_plain) harness.  All
//! three register flavors diffuse (signed records for the dissemination
//! protocol).  Gossip draws come from a **separate** RNG stream, so a
//! diffusion run replays the exact foreground trajectory (same workload,
//! probe sets, latencies and per-server accesses) of the diffusion-off run
//! with the same seed — only the staleness outcomes differ, which is what
//! makes the with/without comparison of [`VariableReport`] stale-read
//! rates meaningful.  `diffusion: None` (the default) schedules no gossip event
//! at all and is bit-identical to the pre-diffusion engine.
//!
//! ## The scenario engine
//!
//! Beyond fail-stop crashes, a [`FailurePlan`] can schedule **membership
//! churn** ([`Event::MembershipTransition`]: joiners come up with wiped
//! record stores and bootstrap through gossip, and the probe margin is
//! re-solved against the ε budget for the new present count), **healing
//! partitions** (component windows that gate probe and gossip *delivery*
//! — never planning, so every RNG draw of the unpartitioned same-seed run
//! still happens and its trajectory is undisturbed; post-heal
//! re-convergence is tracked per gossip round into
//! [`SimReport::post_heal_coverage`]), and an adaptive
//! [`ByzantineStrategy`] (sleeper servers
//! that serve stale data for exactly one probe delivery when a
//! foreground-statistics predicate fires — a pure read-side overlay, so
//! the diffusion-off adaptive run replays its static twin's foreground
//! exactly and staleness is provably monotone).  All scenario machinery
//! defaults off and adds no events or draws to existing configurations.
//!
//! ## The parallel engine
//!
//! With [`SimConfig::num_shards`] ≥ 2 the run executes on the sharded
//! engine instead of this module's sequential loop: per-variable events
//! (arrivals, probe replies, timeouts, retries — all single-key since the
//! key-space refactor) are partitioned into per-shard event queues keyed by
//! `variable % num_shards`, each shard drains independently (optionally on
//! [`SimConfig::threads`] worker threads), and cross-shard traffic — gossip
//! planning and crash waves — runs on a sequenced spine at deterministic
//! time-window barriers.  Every variable carries its own RNG stream derived
//! from the seed, so a sharded run is bit-identical across *all* shard
//! counts ≥ 2 and *all* thread counts.  `num_shards = 1` (the default) runs
//! the sequential engine below unchanged and stays bit-identical to the
//! pre-sharding engine.  See `docs/ARCHITECTURE.md` for the shard map and
//! barrier protocol.

use crate::event::{Event, EventEngine, OpId, PendingSlab};
use crate::failure::{ByzantineStrategy, FailurePlan};
use crate::latency::LatencyModel;
use crate::metrics::{EngineStageTimings, SimReport, VariableReport};
use crate::time::SimTime;
use crate::workload::{KeySpace, OpKind, WorkloadConfig};
use pqs_core::system::QuorumSystem;
use pqs_core::universe::ServerId;
use pqs_math::plan::{smallest_u64_where, timeout_probability, tolerance};
use pqs_protocols::cluster::Cluster;
use pqs_protocols::crypto::KeyRegistry;
use pqs_protocols::diffusion;
use pqs_protocols::register::session::{ReadSession, WriteSession};
use pqs_protocols::register::{RegisterFlavor, RegisterMap, WriteRecord};
use pqs_protocols::server::{Behavior, VariableId};
use pqs_protocols::timestamp::Timestamp;
use pqs_protocols::value::Value;
use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use std::time::Instant;

/// Fraction of correct servers a fresh record must reach for the per-key
/// rounds-to-coverage accounting to call it converged.
pub(crate) const COVERAGE_TARGET: f64 = 0.9;

/// What each gossip round puts on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GossipMode {
    /// Blind push gossip (the classic mechanism): every correct server
    /// pushes every record it holds to `fanout` peers each round.  The
    /// default, bit-identical to the pre-digest engine.
    #[default]
    PushAll,
    /// Digest/delta gossip: every correct server sends a per-key version
    /// *summary* to `fanout` peers; each peer answers with only the records
    /// the summary proves its sender lacks.  The [`KeyGossipPolicy`] shapes
    /// which keys the summaries advertise.
    DigestDelta,
}

/// Which keys digest-mode summaries advertise each round — the per-key
/// gossip rate knob.  Ignored in [`GossipMode::PushAll`], which always
/// pushes everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyGossipPolicy {
    /// Every digest advertises every key its sender holds.
    Uniform,
    /// Gossip hot keys faster: every round advertises the `hot_keys` keys
    /// with the most observed writes so far (foreground state only, so the
    /// policy never perturbs the gossip RNG stream); every `cold_every`-th
    /// round falls back to a complete digest so cold keys still converge.
    HotFirst {
        /// How many of the most-written keys ride in every digest.
        hot_keys: u32,
        /// Period (in rounds, ≥ 1) of the complete catch-up digests; 1
        /// degenerates to [`KeyGossipPolicy::Uniform`].
        cold_every: u64,
    },
    /// Advertise only keys written within the trailing `window` simulated
    /// seconds; every `cold_every`-th round falls back to a complete digest
    /// so keys whose writes predate the window still converge.
    RecentWrites {
        /// Length of the trailing write window in simulated seconds.
        window: SimTime,
        /// Period (in rounds, ≥ 1) of the complete catch-up digests.
        cold_every: u64,
    },
}

/// How the engine schedules epidemic write-diffusion (anti-entropy) rounds
/// between the servers, competing for simulated time with foreground
/// client traffic.  `None` in [`SimConfig::diffusion`] disables the
/// mechanism entirely (and preserves the classic RNG stream and report bit
/// for bit).
///
/// Build one with the builder methods instead of hand-rolling the struct:
///
/// ```rust
/// use pqs_sim::latency::LatencyModel;
/// use pqs_sim::runner::{DiffusionPolicy, KeyGossipPolicy};
///
/// let push = DiffusionPolicy::full_push(0.1, 3);
/// let digest = DiffusionPolicy::digest_delta(0.1, 3)
///     .with_key_policy(KeyGossipPolicy::HotFirst { hot_keys: 4, cold_every: 8 })
///     .with_push_latency(LatencyModel::Exponential { mean: 2e-3 });
/// assert_ne!(push, digest);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffusionPolicy {
    /// Simulated seconds between gossip rounds (> 0); round `r` fires at
    /// `r · period`, and rounds stop firing once foreground arrivals stop
    /// ([`SimConfig::duration`]).
    pub period: SimTime,
    /// Peers each correct server gossips to per round (≥ 1): push targets
    /// in [`GossipMode::PushAll`], digest targets in
    /// [`GossipMode::DigestDelta`].
    pub fanout: u32,
    /// Latency model for individual server-to-server gossip messages
    /// (pushes, digests and deltas; drawn once per message from the
    /// dedicated gossip RNG stream).
    pub push_latency: LatencyModel,
    /// Whether rounds push blindly or run the digest/delta exchange.
    pub mode: GossipMode,
    /// Which keys digest-mode summaries advertise (ignored in
    /// [`GossipMode::PushAll`]).
    pub key_policy: KeyGossipPolicy,
}

impl Default for DiffusionPolicy {
    /// A full-push round every 250 ms, fanout 2, 1 ms fixed push latency.
    fn default() -> Self {
        DiffusionPolicy {
            period: 0.25,
            fanout: 2,
            push_latency: LatencyModel::Fixed(1e-3),
            mode: GossipMode::PushAll,
            key_policy: KeyGossipPolicy::Uniform,
        }
    }
}

impl DiffusionPolicy {
    /// Classic blind-push gossip with the given round period and fanout.
    pub fn full_push(period: SimTime, fanout: u32) -> Self {
        DiffusionPolicy {
            period,
            fanout,
            ..DiffusionPolicy::default()
        }
    }

    /// Digest/delta gossip with the given round period and fanout, under
    /// the [`KeyGossipPolicy::Uniform`] advertisement policy.
    pub fn digest_delta(period: SimTime, fanout: u32) -> Self {
        DiffusionPolicy {
            period,
            fanout,
            mode: GossipMode::DigestDelta,
            ..DiffusionPolicy::default()
        }
    }

    /// Replaces the round period (simulated seconds, > 0).
    pub fn with_period(mut self, period: SimTime) -> Self {
        self.period = period;
        self
    }

    /// Replaces the per-round fanout (≥ 1).
    pub fn with_fanout(mut self, fanout: u32) -> Self {
        self.fanout = fanout;
        self
    }

    /// Replaces the per-message gossip latency model.
    pub fn with_push_latency(mut self, push_latency: LatencyModel) -> Self {
        self.push_latency = push_latency;
        self
    }

    /// Replaces the gossip mode.
    pub fn with_mode(mut self, mode: GossipMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the digest advertisement policy (only meaningful together
    /// with [`GossipMode::DigestDelta`]).
    pub fn with_key_policy(mut self, key_policy: KeyGossipPolicy) -> Self {
        self.key_policy = key_policy;
        self
    }
}

/// Resolves the digest advertisement policy for one round into the concrete
/// key set the digests carry, from foreground-observable state only (write
/// counts and last-write times) — the selection itself never draws
/// randomness, so every policy replays the identical foreground trajectory.
pub(crate) fn digest_selector(
    policy: KeyGossipPolicy,
    round: u64,
    now: SimTime,
    write_counts: &[u64],
    last_write_at: &[SimTime],
) -> diffusion::KeySelector {
    match policy {
        KeyGossipPolicy::Uniform => diffusion::KeySelector::All,
        KeyGossipPolicy::HotFirst {
            hot_keys,
            cold_every,
        } => {
            if cold_every <= 1 || round.is_multiple_of(cold_every) {
                return diffusion::KeySelector::All;
            }
            let mut ranked: Vec<(u64, usize)> = write_counts
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w > 0)
                .map(|(i, &w)| (w, i))
                .collect();
            ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let set: BTreeSet<VariableId> = ranked
                .iter()
                .take(hot_keys as usize)
                .map(|&(_, i)| i as VariableId)
                .collect();
            diffusion::KeySelector::Only(set)
        }
        KeyGossipPolicy::RecentWrites { window, cold_every } => {
            if cold_every <= 1 || round.is_multiple_of(cold_every) {
                return diffusion::KeySelector::All;
            }
            let since = now - window;
            let set: BTreeSet<VariableId> = last_write_at
                .iter()
                .enumerate()
                .filter(|&(_, &at)| at >= since)
                .map(|(i, _)| i as VariableId)
                .collect();
            diffusion::KeySelector::Only(set)
        }
    }
}

/// Per-variable state of the rounds-to-coverage accounting: which record
/// generation is being tracked and when (at which round) it was first seen.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConvergenceTracker {
    pub(crate) freshest: Timestamp,
    pub(crate) birth_round: u64,
    pub(crate) covered: bool,
}

impl Default for ConvergenceTracker {
    fn default() -> Self {
        ConvergenceTracker {
            freshest: Timestamp::ZERO,
            birth_round: 0,
            covered: true,
        }
    }
}

/// Online quorum-parameter recompute for membership churn: the smallest
/// probe margin at (or above) the configured one that keeps the
/// hypergeometric timeout probability within the planner's ε budget
/// ([`tolerance::TIMEOUT_BUDGET`]) for the current count of present
/// servers.  Falls back to probing everything beyond the quorum when no
/// margin satisfies the budget.  Pure arithmetic — both engines (and every
/// shard) call it with identical inputs at identical simulated times, so
/// churn runs stay deterministic.
pub(crate) fn churn_probe_margin(base_margin: u64, n: u64, quorum: u64, present: u64) -> usize {
    let hi = n.saturating_sub(quorum);
    let lo = base_margin.min(hi);
    smallest_u64_where(lo, hi, |m| {
        timeout_probability(n, present, quorum, m) <= tolerance::TIMEOUT_BUDGET
    })
    .unwrap_or(hi) as usize
}

/// Whether an adaptive-adversary sleeper fires for this probe: evaluated at
/// probe-reply time from **foreground-only** statistics (per-variable write
/// sequence counters and last-write arrival times — the same state the
/// digest policies read), so the decision never touches any RNG stream and
/// diffusion-off replay invariants survive.  A firing sleeper answers this
/// one probe as [`Behavior::ByzantineStale`] (ack-without-storing, stale
/// replies) — the strongest *undetectable* deviation, and one that leaves
/// the event flow of the same-seed static run untouched.
pub(crate) fn strategy_fires(
    strategy: &ByzantineStrategy,
    server: ServerId,
    variable: VariableId,
    now: SimTime,
    sequences: &[u64],
    last_write_at: &[SimTime],
) -> bool {
    match strategy {
        ByzantineStrategy::Static => false,
        ByzantineStrategy::HotKeyTargeting {
            sleepers,
            min_writes,
        } => sequences[variable as usize] >= *min_writes && sleepers.contains(&server),
        ByzantineStrategy::StaleSigned { sleepers, window } => {
            sequences[variable as usize] > 0
                && now - last_write_at[variable as usize] <= *window
                && sleepers.contains(&server)
        }
    }
}

/// One healed partition window being watched back to convergence: the
/// per-variable freshest timestamps snapshotted at the first gossip round
/// at (or after) the heal, and which of them the whole cluster has since
/// re-covered.
#[derive(Debug)]
struct HealWatch {
    /// Whether this is the first heal of the run (only the first heal
    /// records the round-by-round [`SimReport::post_heal_coverage`] curve).
    is_first: bool,
    /// The gossip round at which the heal was observed.
    start_round: u64,
    /// Per-variable snapshot timestamp, `None` once re-covered (or never
    /// written).  Covered bits latch, so the curve is monotone.
    pending: Vec<Option<Timestamp>>,
    /// Variables still awaiting re-coverage.
    remaining: usize,
    /// Variables the snapshot started tracking.
    total: usize,
}

/// Spine-level post-heal re-convergence accounting, shared verbatim by the
/// sequential engine's `GossipRound` arm and the sharded engine's spine
/// loop: after each partition window heals, watch the gossip coverage
/// snapshots until every variable written before the heal is again held at
/// its heal-time freshness by [`COVERAGE_TARGET`] of the correct servers.
/// Pure function of the (deterministic) round coverage snapshots, so it
/// never perturbs any RNG stream.
#[derive(Debug, Default)]
pub(crate) struct HealTracking {
    /// Next partition window whose heal is awaiting observation.
    cursor: usize,
    /// The window currently being watched (one at a time; a window healing
    /// while another is watched is observed at a later round).
    active: Option<HealWatch>,
    /// Whether the first-heal coverage curve has been claimed.
    first_used: bool,
    /// Heals observed by a gossip round so far.
    pub(crate) heals_observed: u64,
    /// Sum over completed watches of rounds-to-full-recoverage.
    pub(crate) rounds_sum: u64,
    /// Number of watches that reached full re-coverage.
    pub(crate) completions: u64,
    /// Cumulative re-covered-variable count per round for the first heal.
    pub(crate) curve: Vec<u64>,
}

impl HealTracking {
    /// Feeds one gossip round's coverage snapshot into the tracker.
    pub(crate) fn on_round(
        &mut self,
        plan: &FailurePlan,
        t: SimTime,
        round: u64,
        coverage: &[diffusion::VariableCoverage],
        target: u32,
        nvars: usize,
    ) {
        if plan.partitions.is_empty() {
            return;
        }
        if self.active.is_none()
            && self.cursor < plan.partitions.len()
            && plan.partitions[self.cursor].heals_at <= t
        {
            self.cursor += 1;
            self.heals_observed += 1;
            let mut pending = vec![None; nvars];
            let mut remaining = 0;
            for cov in coverage {
                if cov.freshest > Timestamp::ZERO {
                    pending[cov.variable as usize] = Some(cov.freshest);
                    remaining += 1;
                }
            }
            let is_first = !self.first_used;
            self.first_used = true;
            self.active = Some(HealWatch {
                is_first,
                start_round: round,
                pending,
                remaining,
                total: remaining,
            });
        }
        let Some(watch) = self.active.as_mut() else {
            return;
        };
        for cov in coverage {
            if let Some(slot) = watch.pending.get_mut(cov.variable as usize) {
                if let Some(snap) = *slot {
                    if cov.freshest >= snap && cov.holders >= target {
                        *slot = None;
                        watch.remaining -= 1;
                    }
                }
            }
        }
        if watch.is_first {
            self.curve.push((watch.total - watch.remaining) as u64);
        }
        if watch.remaining == 0 {
            self.rounds_sum += round - watch.start_round;
            self.completions += 1;
            self.active = None;
        }
    }

    /// Copies the accumulated post-heal statistics into the report.
    pub(crate) fn finish_into(self, report: &mut SimReport) {
        report.heals_observed = self.heals_observed;
        report.post_heal_rounds_to_coverage = self.rounds_sum;
        report.post_heal_coverage_completions = self.completions;
        report.post_heal_coverage = self.curve;
    }
}

/// Which register protocol the simulated clients run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The Section 3.1 safe-register protocol (crash failures only).
    Safe,
    /// The Section 4 protocol over self-verifying (signed) data.
    Dissemination,
    /// The Section 5 protocol with read-acceptance threshold `k`.
    Masking {
        /// The read threshold `k` (use the system's
        /// [`read_threshold`](pqs_core::probabilistic::ProbabilisticMasking::read_threshold)
        /// for `R_k(n, q)`, or `b + 1` for a strict masking system).
        threshold: usize,
    },
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Length of the run in simulated seconds (operations stop *arriving*
    /// at this point; in-flight operations still drain).
    pub duration: SimTime,
    /// Mean operation arrival rate (operations per second).
    pub arrival_rate: f64,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// The key space operations shard over: number of replicated variables
    /// and their popularity law.  [`KeySpace::single`] (the default) drives
    /// one variable, reproducing the classic single-register run.
    pub keyspace: KeySpace,
    /// Latency model for individual client–server probes (drawn once per
    /// probe, not once per quorum).
    pub latency: LatencyModel,
    /// Each server crashes independently with this probability at time 0
    /// (the Definition 2.6 model).
    pub crash_probability: f64,
    /// Number of servers made Byzantine at time 0 (random placement).
    pub byzantine: u32,
    /// Extra servers probed beyond the quorum on every attempt; the
    /// operation completes on the first `q` responders.  0 reproduces the
    /// classic access.
    pub probe_margin: u32,
    /// An attempt that has not completed this long after it started is cut
    /// short: the replies gathered so far are condensed, or — if there are
    /// none — the attempt is retried on a fresh probe set.
    pub op_timeout: SimTime,
    /// How many times a zero-reply attempt is resampled onto a fresh probe
    /// set before the operation counts as unavailable.
    pub max_retries: u32,
    /// Exponential-backoff factor between resampled attempts: retry `k`
    /// (1-based) waits `retry_backoff · op_timeout · 2^(k−1)` simulated
    /// seconds before sampling its fresh probe set.  The default `0.0`
    /// retries immediately — the classic behaviour, preserved event for
    /// event.
    pub retry_backoff: f64,
    /// Epidemic write-diffusion between the servers, scheduled as engine
    /// events (see the [module docs](self)).  `None` — the default —
    /// schedules no gossip at all and reproduces the diffusion-free engine
    /// bit for bit.
    pub diffusion: Option<DiffusionPolicy>,
    /// RNG seed; the run is fully deterministic given the seed.
    pub seed: u64,
    /// Number of engine shards (≥ 1).  `1` — the default — runs the
    /// sequential engine, bit-identical to the pre-sharding releases.
    /// With ≥ 2, per-variable events are partitioned by
    /// `variable % num_shards` and cross-shard traffic rides the sequenced
    /// spine (see the [module docs](self)); the report is then
    /// bit-identical for a given seed across all shard counts ≥ 2 and all
    /// thread counts, but belongs to a *different* deterministic family
    /// than the sequential engine (per-variable RNG streams).
    pub num_shards: u32,
    /// Worker threads draining shard queues between spine barriers (≥ 1).
    /// Purely an execution knob: the report never depends on it.  Ignored
    /// by the sequential engine (`num_shards = 1`).
    pub threads: u32,
}

impl Default for SimConfig {
    /// 60 simulated seconds, 10 op/s, 90% reads, one key, 1 ms fixed
    /// latency, no failures, no probe margin, a 1-second timeout with one
    /// immediate retry, no diffusion, seed 0, one shard on one thread.
    fn default() -> Self {
        SimConfig {
            duration: 60.0,
            arrival_rate: 10.0,
            read_fraction: 0.9,
            keyspace: KeySpace::single(),
            latency: LatencyModel::default(),
            crash_probability: 0.0,
            byzantine: 0,
            probe_margin: 0,
            op_timeout: 1.0,
            max_retries: 1,
            retry_backoff: 0.0,
            diffusion: None,
            seed: 0,
            num_shards: 1,
            threads: 1,
        }
    }
}

impl SimConfig {
    /// Starts a fluent builder seeded with [`SimConfig::default`].
    ///
    /// This is the intended way to construct a configuration — the
    /// `with_*` chain names exactly the knobs a run changes, and new
    /// fields default sensibly instead of breaking call sites:
    ///
    /// ```rust
    /// use pqs_sim::runner::SimConfig;
    /// use pqs_sim::workload::KeySpace;
    ///
    /// let config = SimConfig::builder()
    ///     .with_duration(30.0)
    ///     .with_arrival_rate(200.0)
    ///     .with_keyspace(KeySpace::zipf(64, 1.0))
    ///     .with_seed(42)
    ///     .build();
    /// assert_eq!(config.duration, 30.0);
    /// assert_eq!(config.num_shards, 1);
    /// ```
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig::default(),
        }
    }

    /// Renders this configuration as the `SimConfig::builder()` chain that
    /// reconstructs it — one `with_*` call per field that differs from
    /// [`SimConfig::default`], floats printed in round-trip form.
    ///
    /// This is the capacity planner's serialization format: the `plan` bin
    /// emits a ready-to-paste chain alongside its predicted report, and
    /// `validate_plan` rebuilds the configuration through the builder and
    /// checks the rendering agrees with the struct before running it.
    ///
    /// ```rust
    /// use pqs_sim::runner::SimConfig;
    ///
    /// assert_eq!(
    ///     SimConfig::default().to_builder_chain(),
    ///     "SimConfig::builder().build()"
    /// );
    /// let config = SimConfig::builder()
    ///     .with_arrival_rate(200.0)
    ///     .with_seed(7)
    ///     .build();
    /// assert_eq!(
    ///     config.to_builder_chain(),
    ///     "SimConfig::builder().with_arrival_rate(200.0).with_seed(7).build()"
    /// );
    /// ```
    pub fn to_builder_chain(&self) -> String {
        fn latency(model: &LatencyModel) -> String {
            match *model {
                LatencyModel::Fixed(v) => format!("LatencyModel::Fixed({v:?})"),
                LatencyModel::Uniform { min, max } => {
                    format!("LatencyModel::Uniform {{ min: {min:?}, max: {max:?} }}")
                }
                LatencyModel::Exponential { mean } => {
                    format!("LatencyModel::Exponential {{ mean: {mean:?} }}")
                }
                LatencyModel::Pareto { scale, shape } => {
                    format!("LatencyModel::Pareto {{ scale: {scale:?}, shape: {shape:?} }}")
                }
            }
        }
        fn keyspace(ks: &KeySpace) -> String {
            match ks.skew {
                crate::workload::Skew::Uniform if ks.keys == 1 => "KeySpace::single()".into(),
                crate::workload::Skew::Uniform => format!("KeySpace::uniform({})", ks.keys),
                crate::workload::Skew::Zipf { exponent } => {
                    format!("KeySpace::zipf({}, {exponent:?})", ks.keys)
                }
            }
        }
        fn diffusion_policy(p: &DiffusionPolicy) -> String {
            let defaults = DiffusionPolicy::default();
            let mut out = match p.mode {
                GossipMode::PushAll => {
                    format!("DiffusionPolicy::full_push({:?}, {})", p.period, p.fanout)
                }
                GossipMode::DigestDelta => {
                    format!(
                        "DiffusionPolicy::digest_delta({:?}, {})",
                        p.period, p.fanout
                    )
                }
            };
            if p.push_latency != defaults.push_latency {
                out.push_str(&format!(".with_push_latency({})", latency(&p.push_latency)));
            }
            match p.key_policy {
                KeyGossipPolicy::Uniform => {}
                KeyGossipPolicy::HotFirst {
                    hot_keys,
                    cold_every,
                } => out.push_str(&format!(
                    ".with_key_policy(KeyGossipPolicy::HotFirst {{ \
                     hot_keys: {hot_keys}, cold_every: {cold_every} }})"
                )),
                KeyGossipPolicy::RecentWrites { window, cold_every } => out.push_str(&format!(
                    ".with_key_policy(KeyGossipPolicy::RecentWrites {{ \
                     window: {window:?}, cold_every: {cold_every} }})"
                )),
            }
            out
        }

        let defaults = SimConfig::default();
        let mut chain = String::from("SimConfig::builder()");
        if self.duration != defaults.duration {
            chain.push_str(&format!(".with_duration({:?})", self.duration));
        }
        if self.arrival_rate != defaults.arrival_rate {
            chain.push_str(&format!(".with_arrival_rate({:?})", self.arrival_rate));
        }
        if self.read_fraction != defaults.read_fraction {
            chain.push_str(&format!(".with_read_fraction({:?})", self.read_fraction));
        }
        if self.keyspace != defaults.keyspace {
            chain.push_str(&format!(".with_keyspace({})", keyspace(&self.keyspace)));
        }
        if self.latency != defaults.latency {
            chain.push_str(&format!(".with_latency({})", latency(&self.latency)));
        }
        if self.crash_probability != defaults.crash_probability {
            chain.push_str(&format!(
                ".with_crash_probability({:?})",
                self.crash_probability
            ));
        }
        if self.byzantine != defaults.byzantine {
            chain.push_str(&format!(".with_byzantine({})", self.byzantine));
        }
        if self.probe_margin != defaults.probe_margin {
            chain.push_str(&format!(".with_probe_margin({})", self.probe_margin));
        }
        if self.op_timeout != defaults.op_timeout {
            chain.push_str(&format!(".with_op_timeout({:?})", self.op_timeout));
        }
        if self.max_retries != defaults.max_retries {
            chain.push_str(&format!(".with_max_retries({})", self.max_retries));
        }
        if self.retry_backoff != defaults.retry_backoff {
            chain.push_str(&format!(".with_retry_backoff({:?})", self.retry_backoff));
        }
        if let Some(policy) = &self.diffusion {
            chain.push_str(&format!(".with_diffusion({})", diffusion_policy(policy)));
        }
        if self.seed != defaults.seed {
            chain.push_str(&format!(".with_seed({})", self.seed));
        }
        if self.num_shards != defaults.num_shards {
            chain.push_str(&format!(".with_num_shards({})", self.num_shards));
        }
        if self.threads != defaults.threads {
            chain.push_str(&format!(".with_threads({})", self.threads));
        }
        chain.push_str(".build()");
        chain
    }
}

/// Fluent builder for [`SimConfig`], following the [`DiffusionPolicy`]
/// `with_*` idiom.  Obtained from [`SimConfig::builder`]; finished with
/// [`build`](SimConfigBuilder::build), which validates the combination.
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Replaces the run length in simulated seconds (> 0, finite).
    pub fn with_duration(mut self, duration: SimTime) -> Self {
        self.config.duration = duration;
        self
    }

    /// Replaces the mean operation arrival rate (operations/second, > 0).
    pub fn with_arrival_rate(mut self, arrival_rate: f64) -> Self {
        self.config.arrival_rate = arrival_rate;
        self
    }

    /// Replaces the fraction of operations that are reads (within [0, 1]).
    pub fn with_read_fraction(mut self, read_fraction: f64) -> Self {
        self.config.read_fraction = read_fraction;
        self
    }

    /// Replaces the key space operations shard over.
    pub fn with_keyspace(mut self, keyspace: KeySpace) -> Self {
        self.config.keyspace = keyspace;
        self
    }

    /// Replaces the per-probe latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.config.latency = latency;
        self
    }

    /// Replaces the independent time-0 crash probability (within [0, 1]).
    pub fn with_crash_probability(mut self, crash_probability: f64) -> Self {
        self.config.crash_probability = crash_probability;
        self
    }

    /// Replaces the number of servers made Byzantine at time 0.
    pub fn with_byzantine(mut self, byzantine: u32) -> Self {
        self.config.byzantine = byzantine;
        self
    }

    /// Replaces the probe margin (extra servers probed beyond the quorum).
    pub fn with_probe_margin(mut self, probe_margin: u32) -> Self {
        self.config.probe_margin = probe_margin;
        self
    }

    /// Replaces the per-attempt timeout in simulated seconds (≥ 0, finite).
    pub fn with_op_timeout(mut self, op_timeout: SimTime) -> Self {
        self.config.op_timeout = op_timeout;
        self
    }

    /// Replaces the zero-reply retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.config.max_retries = max_retries;
        self
    }

    /// Replaces the exponential retry-backoff factor (≥ 0, finite).
    pub fn with_retry_backoff(mut self, retry_backoff: f64) -> Self {
        self.config.retry_backoff = retry_backoff;
        self
    }

    /// Enables epidemic write-diffusion under the given policy.
    pub fn with_diffusion(mut self, policy: DiffusionPolicy) -> Self {
        self.config.diffusion = Some(policy);
        self
    }

    /// Disables write-diffusion (the default).
    pub fn without_diffusion(mut self) -> Self {
        self.config.diffusion = None;
        self
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Replaces the engine shard count (≥ 1; see
    /// [`SimConfig::num_shards`]).
    pub fn with_num_shards(mut self, num_shards: u32) -> Self {
        self.config.num_shards = num_shards;
        self
    }

    /// Replaces the worker-thread count (≥ 1; see [`SimConfig::threads`]).
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.config.threads = threads;
        self
    }

    /// Validates the configuration and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the duration or arrival rate is not positive and finite,
    /// a probability (`read_fraction`, `crash_probability`) leaves [0, 1],
    /// the timeout or backoff factor is negative or non-finite, the shard
    /// or thread count is 0, or a configured diffusion policy has a
    /// non-positive period or zero fanout.
    pub fn build(self) -> SimConfig {
        let c = &self.config;
        assert!(
            c.duration > 0.0 && c.duration.is_finite(),
            "duration must be positive and finite, got {}",
            c.duration
        );
        assert!(
            c.arrival_rate > 0.0 && c.arrival_rate.is_finite(),
            "arrival_rate must be positive and finite, got {}",
            c.arrival_rate
        );
        assert!(
            (0.0..=1.0).contains(&c.read_fraction),
            "read_fraction must lie in [0, 1], got {}",
            c.read_fraction
        );
        assert!(
            (0.0..=1.0).contains(&c.crash_probability),
            "crash_probability must lie in [0, 1], got {}",
            c.crash_probability
        );
        assert!(
            c.op_timeout >= 0.0 && c.op_timeout.is_finite(),
            "op_timeout must be non-negative and finite, got {}",
            c.op_timeout
        );
        assert!(
            c.retry_backoff >= 0.0 && c.retry_backoff.is_finite(),
            "retry_backoff must be non-negative and finite, got {}",
            c.retry_backoff
        );
        assert!(c.num_shards >= 1, "num_shards must be at least 1");
        assert!(c.threads >= 1, "threads must be at least 1");
        if let Some(policy) = &c.diffusion {
            assert!(
                policy.period > 0.0 && policy.period.is_finite(),
                "diffusion period must be positive and finite"
            );
            assert!(policy.fanout >= 1, "diffusion fanout must be at least 1");
        }
        self.config
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
#[derive(Debug)]
pub struct Simulation<'a, S: QuorumSystem + ?Sized> {
    pub(crate) system: &'a S,
    pub(crate) kind: ProtocolKind,
    pub(crate) config: SimConfig,
    pub(crate) plan: Option<FailurePlan>,
}

/// Record of a write operation used for staleness accounting.  `end` stays
/// `+∞` while the write is in flight, so overlapping reads classify as
/// concurrent.
#[derive(Debug, Clone, Copy)]
struct WriteWindow {
    start: SimTime,
    end: SimTime,
    sequence: u64,
    failed: bool,
}

/// The write windows of one variable, pruned as simulated time advances so
/// the per-read staleness checks scan only windows that can still matter —
/// without pruning the event loop would be O(reads × writes), quadratic in
/// run duration.  The sharded engine keeps one log per key: staleness is a
/// per-variable property (a write of key 3 cannot make a read of key 5
/// stale).
#[derive(Debug, Default)]
pub(crate) struct WriteLog {
    windows: Vec<WriteWindow>,
    /// Windows before this index are archived: they ended at or before
    /// every start time a still-unfinished operation can have, so they can
    /// never again classify as concurrent; their freshest sequence is kept
    /// in `archived_max_seq`.
    frontier: usize,
    archived_max_seq: Option<u64>,
}

impl WriteLog {
    /// Opens an in-flight window (end `+∞`); returns its handle.
    pub(crate) fn open(&mut self, start: SimTime, sequence: u64) -> usize {
        self.windows.push(WriteWindow {
            start,
            end: f64::INFINITY,
            sequence,
            failed: false,
        });
        self.windows.len() - 1
    }

    /// Marks a write completed at `end`.
    pub(crate) fn close(&mut self, handle: usize, end: SimTime) {
        self.windows[handle].end = end;
    }

    /// Marks a write failed (stored nowhere): excluded from accounting.
    pub(crate) fn fail(&mut self, handle: usize, end: SimTime) {
        self.windows[handle].end = end;
        self.windows[handle].failed = true;
    }

    /// Archives every leading window that ended at or before `horizon`
    /// (the earliest start time any in-flight or future operation can
    /// have).  Amortised O(1) per write over the run.
    pub(crate) fn advance(&mut self, horizon: SimTime) {
        while let Some(w) = self.windows.get(self.frontier) {
            if w.end > horizon {
                break;
            }
            if !w.failed {
                self.archived_max_seq = Some(match self.archived_max_seq {
                    Some(m) => m.max(w.sequence),
                    None => w.sequence,
                });
            }
            self.frontier += 1;
        }
    }

    /// Whether any (non-failed) write window overlaps the read interval
    /// `(start, end)` — archived windows cannot, by construction.
    pub(crate) fn concurrent_with(&self, start: SimTime, end: SimTime) -> bool {
        self.windows[self.frontier..]
            .iter()
            .any(|w| !w.failed && w.start < end && w.end > start)
    }

    /// Sequence number of the freshest write completed before `start`.
    pub(crate) fn latest_completed_before(&self, start: SimTime) -> Option<u64> {
        let recent = self.windows[self.frontier..]
            .iter()
            .filter(|w| !w.failed && w.end <= start)
            .map(|w| w.sequence)
            .max();
        match (self.archived_max_seq, recent) {
            (Some(a), Some(r)) => Some(a.max(r)),
            (a, r) => a.or(r),
        }
    }
}

/// What one in-flight operation sends to servers and how it tracks replies.
/// The write record is plain or signed according to the protocol flavor
/// ([`WriteRecord`]), so one variant covers all three protocols.
#[derive(Debug)]
pub(crate) enum OpSession {
    Read(ReadSession),
    Write(WriteRecord, WriteSession),
}

/// Book-keeping for one client operation across its attempts.
#[derive(Debug)]
pub(crate) struct OpState {
    pub(crate) kind: OpKind,
    /// The key the operation targets.
    pub(crate) variable: VariableId,
    pub(crate) start: SimTime,
    pub(crate) attempt: u32,
    pub(crate) outstanding: usize,
    pub(crate) done: bool,
    pub(crate) session: Option<OpSession>,
    /// The value a write pushes: its variable's write sequence number,
    /// assigned at arrival (reads leave it 0).
    pub(crate) sequence: u64,
    /// Handle into the variable's write log (writes only).
    pub(crate) window: Option<usize>,
}

impl<'a, S: QuorumSystem + ?Sized> Simulation<'a, S> {
    /// Creates a simulation over the given system and protocol.
    pub fn new(system: &'a S, kind: ProtocolKind, config: SimConfig) -> Self {
        Simulation {
            system,
            kind,
            config,
            plan: None,
        }
    }

    /// Overrides the failure plan derived from the configuration with an
    /// explicit one (Byzantine placement and crash schedule).
    pub fn with_failure_plan(mut self, plan: FailurePlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Runs the simulation to completion and returns its report.
    pub fn run(&self) -> SimReport {
        self.run_with_stats().0
    }

    /// Runs the simulation and additionally returns the engine's
    /// wall-clock stage timings.
    ///
    /// On the sequential engine the whole run is one event-loop drain
    /// (`drain_seconds == total_seconds`, spine stages zero); the sharded
    /// engine splits each barrier into drain / sync / plan / route.  The
    /// report half is bit-identical to [`Simulation::run`]; the timings
    /// half is wall-clock measurement and never feeds back into the
    /// simulation.
    pub fn run_with_stats(&self) -> (SimReport, EngineStageTimings) {
        if self.config.num_shards > 1 {
            return crate::parallel::run_sharded(self);
        }
        let run_start = Instant::now();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut cluster = Cluster::new(self.system.universe());
        cluster.reserve_variables(self.config.keyspace.keys);

        // Failure plan: either explicit (borrowed — crash waves can carry
        // thousands of transitions) or derived from the config.
        let derived_plan;
        let plan: &FailurePlan = match &self.plan {
            Some(plan) => plan,
            None => {
                let mut plan = FailurePlan::none();
                if self.config.byzantine > 0 {
                    plan = plan.with_random_byzantine(
                        self.system.universe(),
                        self.config.byzantine,
                        &mut rng,
                    );
                }
                if self.config.crash_probability > 0.0 {
                    plan = plan.with_independent_crashes(
                        self.system.universe(),
                        self.config.crash_probability,
                        0.0,
                        &mut rng,
                    );
                }
                derived_plan = plan;
                &derived_plan
            }
        };
        let byz_behavior = match self.kind {
            // Against self-verifying data the strongest undetectable attack
            // is suppression / stale replay; against plain data it is a
            // colluding forgery.
            ProtocolKind::Dissemination => Behavior::ByzantineStale,
            _ => Behavior::ByzantineForge,
        };
        cluster.corrupt_all(plan.byzantine.iter().copied(), byz_behavior);
        // Servers whose first membership event is a join have not joined
        // yet: they start dark and bootstrap through gossip when they do.
        for absent in plan.initially_absent() {
            cluster.set_behavior(absent, Behavior::Crashed);
        }

        // Workload, sharded over the key space.
        let ops = WorkloadConfig {
            duration: self.config.duration,
            arrival_rate: self.config.arrival_rate,
            read_fraction: self.config.read_fraction,
            keyspace: self.config.keyspace,
        }
        .generate(&mut rng);

        // The per-variable session table: one register client per key,
        // instantiated lazily on the key's first operation.
        let mut registry = KeyRegistry::new();
        let signing_key = registry.register(1, self.config.seed ^ 0xabcdef);
        let flavor = match self.kind {
            ProtocolKind::Safe => RegisterFlavor::Safe,
            ProtocolKind::Dissemination => RegisterFlavor::Dissemination {
                key: signing_key,
                registry: registry.clone(),
            },
            ProtocolKind::Masking { threshold } => RegisterFlavor::Masking { threshold },
        };
        let mut registers = RegisterMap::new(self.system, flavor, 1)
            .with_probe_margin(self.config.probe_margin as usize);

        // Seed the event queue: every arrival and every failure transition.
        let mut engine = EventEngine::new();
        for (i, op) in ops.iter().enumerate() {
            engine.schedule(op.at, Event::OpArrival { op: i as OpId });
        }
        for transition in &plan.crashes {
            engine.schedule(
                transition.at,
                Event::FailureTransition {
                    server: transition.server,
                    crash: transition.crash,
                },
            );
        }
        for membership in &plan.memberships {
            engine.schedule(
                membership.at,
                Event::MembershipTransition {
                    server: membership.server,
                    join: membership.join,
                },
            );
        }
        // Membership churn recomputes the probe margin online against the
        // ε budget; the present-server mask tracks the inputs.  Empty when
        // the schedule is empty, so churn-free runs never touch the margin.
        let universe_n = self.system.universe().size() as u64;
        let min_quorum = self.system.min_quorum_size() as u64;
        let mut present: Vec<bool> = Vec::new();
        let mut present_count = 0u64;
        if !plan.memberships.is_empty() {
            present = vec![true; universe_n as usize];
            for absent in plan.initially_absent() {
                present[absent.index() as usize] = false;
            }
            present_count = present.iter().filter(|&&p| p).count() as u64;
        }

        // Write diffusion: gossip draws come from their own RNG stream so a
        // diffusion run replays the diffusion-off foreground trajectory
        // exactly; with `None` no gossip event is ever scheduled and the
        // main stream is untouched.
        let mut gossip_rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x9e37_79b9_7f4a_7c15);
        let gossip_signed = matches!(self.kind, ProtocolKind::Dissemination);
        let mut pending_pushes: PendingSlab<diffusion::GossipPush> = PendingSlab::new();
        let mut pending_digests: PendingSlab<diffusion::GossipDigest> = PendingSlab::new();
        let mut pending_deltas: PendingSlab<diffusion::GossipDelta> = PendingSlab::new();
        // One reused buffer per run bulk-schedules each gossip round's
        // messages in ascending-time order (O(1) heap sifts; the stable
        // sort keeps equal-time plan order, so pops are bit-identical to
        // one-by-one scheduling).
        let mut round_batch: Vec<(SimTime, Event)> = Vec::new();
        if let Some(policy) = self.config.diffusion {
            assert!(
                policy.period > 0.0 && policy.period.is_finite(),
                "diffusion period must be positive and finite"
            );
            assert!(policy.fanout >= 1, "diffusion fanout must be at least 1");
            engine.schedule(policy.period, Event::GossipRound { round: 1 });
        }

        let mut states: Vec<OpState> = ops
            .iter()
            .map(|op| OpState {
                kind: op.kind,
                variable: op.variable,
                start: op.at,
                attempt: 0,
                outstanding: 0,
                done: false,
                session: None,
                sequence: 0,
                window: None,
            })
            .collect();

        let nvars = self.config.keyspace.keys as usize;
        let mut report = SimReport {
            per_variable: (0..nvars)
                .map(|i| VariableReport {
                    variable: i as VariableId,
                    ..VariableReport::default()
                })
                .collect(),
            // Sized to the widest partition window upfront so the
            // per-component attribution in `finalize` can index directly.
            per_component_stale_reads: vec![
                0;
                plan.partitions
                    .iter()
                    .map(|w| w.components as usize)
                    .max()
                    .unwrap_or(0)
            ],
            ..SimReport::default()
        };
        // Post-heal re-convergence accounting (no-op without partitions).
        let mut heals = HealTracking::default();
        // One write log and sequence counter per variable: staleness and
        // write ordering are per-key properties.
        let mut writes: Vec<WriteLog> = (0..nvars).map(|_| WriteLog::default()).collect();
        let mut sequences: Vec<u64> = vec![0; nvars];
        // Arrival time of the latest write per variable — foreground state
        // only, so the recent-writes digest policy never touches any RNG
        // stream.
        let mut last_write_at: Vec<SimTime> = vec![f64::NEG_INFINITY; nvars];
        // Rounds-to-coverage accounting, one tracker per variable.
        let mut trackers: Vec<ConvergenceTracker> = vec![ConvergenceTracker::default(); nvars];
        // Ops arrive in time order, so the first not-done entry bounds the
        // earliest start any unfinished operation can have — the pruning
        // horizon for the write logs.
        let mut oldest_active: usize = 0;

        while let Some((t, event)) = engine.next_event() {
            match event {
                Event::OpArrival { op } => {
                    engine.op_started();
                    let idx = op as usize;
                    while oldest_active < states.len() && states[oldest_active].done {
                        oldest_active += 1;
                    }
                    let horizon = states[oldest_active.min(idx)].start;
                    let var = states[idx].variable as usize;
                    writes[var].advance(horizon);
                    if states[idx].kind == OpKind::Write {
                        sequences[var] += 1;
                        states[idx].sequence = sequences[var];
                        last_write_at[var] = t;
                        let handle = writes[var].open(t, sequences[var]);
                        states[idx].window = Some(handle);
                    }
                    self.start_attempt(
                        op,
                        t,
                        &mut states[idx],
                        &mut registers,
                        &mut cluster,
                        &mut engine,
                        &mut rng,
                    );
                }
                Event::ProbeReply {
                    op,
                    attempt,
                    server,
                } => {
                    let idx = op as usize;
                    let fed = if plan.blocks_probe(t, states[idx].variable, server) {
                        // The message never crossed the partition: no
                        // server-side effect, and the client sees one more
                        // silent server (exactly like a crashed replier).
                        report.dropped_probes += 1;
                        !states[idx].done && states[idx].attempt == attempt
                    } else {
                        // An adaptive sleeper answers exactly this probe as
                        // a stale replier when its foreground predicate
                        // fires; the behavior swap is scoped to the one
                        // delivery, so the event flow (and every RNG
                        // stream) matches the same-seed static run.
                        let flip = !matches!(plan.strategy, ByzantineStrategy::Static)
                            && cluster.server(server).behavior() == Behavior::Correct
                            && strategy_fires(
                                &plan.strategy,
                                server,
                                states[idx].variable,
                                t,
                                &sequences,
                                &last_write_at,
                            );
                        if flip {
                            cluster.set_behavior(server, Behavior::ByzantineStale);
                            report.adaptive_activations += 1;
                        }
                        // The probe's server-side effect happens regardless
                        // of whether the client still cares: the message
                        // was sent.
                        let fed =
                            deliver_probe::<S>(&mut states[idx], server, &mut cluster, attempt);
                        if flip {
                            cluster.set_behavior(server, Behavior::Correct);
                        }
                        fed
                    };
                    if fed {
                        let state = &mut states[idx];
                        state.outstanding -= 1;
                        let complete = match state.session.as_ref() {
                            Some(OpSession::Read(s)) => s.is_complete(),
                            Some(OpSession::Write(_, s)) => s.is_complete(),
                            None => false,
                        };
                        if complete {
                            self.finalize(t, &mut states[idx], &mut writes, &mut report);
                            engine.op_finished();
                        } else if states[idx].outstanding == 0 {
                            self.end_attempt(
                                op,
                                t,
                                &mut states[idx],
                                &mut registers,
                                &mut cluster,
                                &mut engine,
                                &mut rng,
                                &mut writes,
                                &mut report,
                            );
                        }
                    }
                }
                Event::OpTimeout { op, attempt } => {
                    let idx = op as usize;
                    if !states[idx].done && states[idx].attempt == attempt {
                        report.timed_out_attempts += 1;
                        report.per_variable[states[idx].variable as usize].timed_out_attempts += 1;
                        self.end_attempt(
                            op,
                            t,
                            &mut states[idx],
                            &mut registers,
                            &mut cluster,
                            &mut engine,
                            &mut rng,
                            &mut writes,
                            &mut report,
                        );
                    }
                }
                Event::RetryAttempt { op, attempt } => {
                    let idx = op as usize;
                    // Stale retry events (the op finished meanwhile, or a
                    // newer attempt superseded this one) are ignored.
                    if !states[idx].done && states[idx].attempt == attempt {
                        self.start_attempt(
                            op,
                            t,
                            &mut states[idx],
                            &mut registers,
                            &mut cluster,
                            &mut engine,
                            &mut rng,
                        );
                    }
                }
                Event::FailureTransition { server, crash } => {
                    let behavior = if crash {
                        Behavior::Crashed
                    } else {
                        Behavior::Correct
                    };
                    cluster.set_behavior(server, behavior);
                }
                Event::MembershipTransition { server, join } => {
                    report.membership_events += 1;
                    let si = server.index() as usize;
                    if join {
                        cluster.join_server(server, self.config.keyspace.keys);
                        if !present[si] {
                            present[si] = true;
                            present_count += 1;
                        }
                    } else {
                        cluster.set_behavior(server, Behavior::Crashed);
                        if present[si] {
                            present[si] = false;
                            present_count -= 1;
                        }
                    }
                    // Recompute the quorum access parameters online against
                    // the ε budget for the new cluster size.
                    registers.set_probe_margin(churn_probe_margin(
                        self.config.probe_margin as u64,
                        universe_n,
                        min_quorum,
                        present_count,
                    ));
                }
                Event::GossipRound { round } => {
                    let policy = self
                        .config
                        .diffusion
                        .expect("gossip rounds are only scheduled with a policy");
                    // Plan the round and schedule its messages, each with
                    // its own latency draw.  The full-push arm is the
                    // pre-digest code path, RNG draw for draw.
                    let (coverage, correct_servers) = match policy.mode {
                        GossipMode::PushAll => {
                            let round_plan = diffusion::plan_cluster_round(
                                &cluster,
                                policy.fanout as usize,
                                gossip_signed,
                                &mut gossip_rng,
                            );
                            for push in round_plan.pushes {
                                let rtt = policy.push_latency.sample(&mut gossip_rng);
                                let slot = pending_pushes.insert(push);
                                round_batch.push((t + rtt, Event::GossipPush { push: slot }));
                            }
                            (round_plan.coverage, round_plan.correct_servers)
                        }
                        GossipMode::DigestDelta => {
                            let selector = digest_selector(
                                policy.key_policy,
                                round,
                                t,
                                &sequences,
                                &last_write_at,
                            );
                            let round_plan = diffusion::plan_digest(
                                &cluster,
                                policy.fanout as usize,
                                gossip_signed,
                                &selector,
                                &mut gossip_rng,
                            );
                            for digest in round_plan.digests {
                                let rtt = policy.push_latency.sample(&mut gossip_rng);
                                let slot = pending_digests.insert(digest);
                                round_batch.push((t + rtt, Event::GossipDigest { digest: slot }));
                            }
                            (round_plan.coverage, round_plan.correct_servers)
                        }
                    };
                    engine.schedule_batch(&mut round_batch);
                    report.gossip_rounds += 1;
                    // Convergence accounting against the planner's coverage
                    // snapshot: a fresher record restarts its variable's
                    // clock; reaching the target closes it.
                    let target = ((correct_servers as f64 * COVERAGE_TARGET).ceil() as u32).max(1);
                    for cov in &coverage {
                        let tracker = &mut trackers[cov.variable as usize];
                        if cov.freshest > tracker.freshest {
                            tracker.freshest = cov.freshest;
                            tracker.birth_round = round;
                            tracker.covered = false;
                        }
                        // The holder count only speaks for the tracked
                        // generation if it is still the freshest one: when
                        // every correct holder of a newer record crashes,
                        // the snapshot regresses to an older timestamp
                        // whose coverage must not close the newer clock.
                        if !tracker.covered
                            && cov.freshest == tracker.freshest
                            && cov.holders >= target
                        {
                            tracker.covered = true;
                            let pv = &mut report.per_variable[cov.variable as usize];
                            pv.coverage_rounds_sum += round - tracker.birth_round;
                            pv.coverage_events += 1;
                        }
                    }
                    // Post-heal re-convergence accounting against the same
                    // coverage snapshot (no-op without partition windows).
                    heals.on_round(plan, t, round, &coverage, target, nvars);
                    // Rounds stop with the foreground arrivals; in-flight
                    // pushes still drain.
                    if t + policy.period <= self.config.duration {
                        engine.schedule(t + policy.period, Event::GossipRound { round: round + 1 });
                    }
                }
                Event::GossipPush { push } => {
                    if let Some(p) = pending_pushes.take(push) {
                        // Partitions gate gossip at delivery time only, so
                        // planning (and the gossip RNG stream) is untouched.
                        if plan.blocks_link(t, p.from, p.to) {
                            report.partition_blocked_gossip += 1;
                            continue;
                        }
                        let var = p.variable as usize;
                        report.gossip_pushes += 1;
                        report.per_variable[var].gossip_pushes += 1;
                        if diffusion::deliver(&mut cluster, &p) {
                            report.gossip_stores += 1;
                            report.per_variable[var].gossip_stores += 1;
                        }
                    }
                }
                Event::GossipDigest { digest } => {
                    if let Some(d) = pending_digests.take(digest) {
                        if plan.blocks_link(t, d.from, d.to) {
                            report.partition_blocked_gossip += 1;
                            continue;
                        }
                        let policy = self
                            .config
                            .diffusion
                            .expect("gossip digests are only scheduled with a policy");
                        report.gossip_digests += 1;
                        // The receiver is evaluated now: crashed or
                        // Byzantine receivers never answer.
                        if let Some(diff) = diffusion::diff_digest(&cluster, &d) {
                            for &var in &diff.avoided {
                                report.gossip_redundant_pushes_avoided += 1;
                                report.per_variable[var as usize]
                                    .gossip_redundant_pushes_avoided += 1;
                            }
                            if !diff.delta.records.is_empty() {
                                // The delta's latency draw stays *lazy*
                                // (here, at digest delivery) — that is this
                                // engine's pinned RNG draw order.
                                let rtt = policy.push_latency.sample(&mut gossip_rng);
                                let slot = pending_deltas.insert(diff.delta);
                                engine.schedule(t + rtt, Event::GossipDelta { delta: slot });
                            }
                        }
                    }
                }
                Event::GossipDelta { delta } => {
                    if let Some(d) = pending_deltas.take(delta) {
                        // Re-checked at delivery: the delta may cross a
                        // window boundary its digest did not.
                        if plan.blocks_link(t, d.from, d.to) {
                            report.partition_blocked_gossip += 1;
                            continue;
                        }
                        // Each delta record counts into the push volume, so
                        // gossip_pushes compares across modes; the original
                        // digest sender is evaluated at delivery time.
                        for (var, record) in &d.records {
                            let vi = *var as usize;
                            report.gossip_pushes += 1;
                            report.per_variable[vi].gossip_pushes += 1;
                            report.per_variable[vi].gossip_delta_records += 1;
                            if diffusion::deliver_record(&mut cluster, d.to, *var, record) {
                                report.gossip_stores += 1;
                                report.per_variable[vi].gossip_stores += 1;
                            }
                        }
                    }
                }
            }
        }

        heals.finish_into(&mut report);
        report.events_processed = engine.events_processed();
        report.max_in_flight = engine.max_in_flight();
        report.mean_in_flight = engine.mean_in_flight();
        report.per_server_accesses = cluster.access_counts().to_vec();
        report.total_operations = cluster.total_accesses();
        let total = run_start.elapsed().as_secs_f64();
        (
            report,
            EngineStageTimings {
                drain_seconds: total,
                total_seconds: total,
                ..EngineStageTimings::default()
            },
        )
    }

    /// Samples a probe set, creates the attempt's session through the
    /// per-variable register table, and schedules one probe-reply event per
    /// probed server plus the attempt timeout.
    #[allow(clippy::too_many_arguments)]
    fn start_attempt(
        &self,
        op: OpId,
        now: SimTime,
        state: &mut OpState,
        registers: &mut RegisterMap<'a, S>,
        cluster: &mut Cluster,
        engine: &mut EventEngine,
        rng: &mut dyn RngCore,
    ) {
        cluster.note_operation();
        let probe = registers.sample_probe_set(rng);
        match state.kind {
            OpKind::Write => {
                // A retried write re-sends its original record under its
                // original timestamp (it is the *same* logical write, aimed
                // at a fresh probe set); only the first attempt issues a
                // fresh record through the variable's timestamp chain.
                let (record, session) = match state.session.take() {
                    Some(OpSession::Write(record, old)) => {
                        let session =
                            WriteSession::new(old.timestamp(), probe.needed, probe.probed());
                        (record, session)
                    }
                    _ => registers.begin_write(
                        state.variable,
                        Value::from_u64(state.sequence),
                        probe.needed,
                        probe.probed(),
                    ),
                };
                state.session = Some(OpSession::Write(record, session));
            }
            OpKind::Read => {
                state.session = Some(OpSession::Read(registers.begin_read(probe.needed)));
            }
        }
        state.outstanding = probe.probed();
        for &server in &probe.servers {
            let rtt = self.config.latency.sample(rng);
            engine.schedule(
                now + rtt,
                Event::ProbeReply {
                    op,
                    attempt: state.attempt,
                    server,
                },
            );
        }
        engine.schedule(
            now + self.config.op_timeout.max(0.0),
            Event::OpTimeout {
                op,
                attempt: state.attempt,
            },
        );
    }

    /// The simulated-seconds delay before retry number `attempt` (1-based)
    /// starts — see [`retry_delay`].
    fn retry_delay(&self, attempt: u32) -> SimTime {
        retry_delay(&self.config, attempt)
    }

    /// An attempt ran out of probes or timed out: condense partial replies,
    /// retry on a fresh probe set (immediately or after the backoff delay),
    /// or give up.
    #[allow(clippy::too_many_arguments)]
    fn end_attempt(
        &self,
        op: OpId,
        now: SimTime,
        state: &mut OpState,
        registers: &mut RegisterMap<'a, S>,
        cluster: &mut Cluster,
        engine: &mut EventEngine,
        rng: &mut dyn RngCore,
        writes: &mut [WriteLog],
        report: &mut SimReport,
    ) {
        let responders = match state.session.as_ref() {
            Some(OpSession::Read(s)) => s.responders(),
            Some(OpSession::Write(_, s)) => s.acks(),
            None => 0,
        };
        if responders > 0 {
            self.finalize(now, state, writes, report);
            engine.op_finished();
        } else if state.attempt < self.config.max_retries {
            state.attempt += 1;
            report.retries += 1;
            report.per_variable[state.variable as usize].retries += 1;
            let delay = self.retry_delay(state.attempt);
            if delay > 0.0 {
                engine.schedule(
                    now + delay,
                    Event::RetryAttempt {
                        op,
                        attempt: state.attempt,
                    },
                );
            } else {
                self.start_attempt(op, now, state, registers, cluster, engine, rng);
            }
        } else {
            state.done = true;
            engine.op_finished();
            report.unavailable_ops += 1;
            report.per_variable[state.variable as usize].unavailable_ops += 1;
            if let Some(handle) = state.window {
                writes[state.variable as usize].fail(handle, now);
            }
        }
    }

    /// A session gathered its replies (all `q`, or a non-empty partial set):
    /// close the operation and account for it, in the aggregates and in the
    /// variable's own breakdown.
    fn finalize(
        &self,
        now: SimTime,
        state: &mut OpState,
        writes: &mut [WriteLog],
        report: &mut SimReport,
    ) {
        state.done = true;
        let latency = now - state.start;
        let var = state.variable as usize;
        match state.session.as_ref() {
            Some(OpSession::Write(_, _)) => {
                report.completed_writes += 1;
                report.latency.record(latency);
                report.write_latency.record(latency);
                let pv = &mut report.per_variable[var];
                pv.completed_writes += 1;
                pv.latency.record(latency);
                if let Some(handle) = state.window {
                    writes[var].close(handle, now);
                }
            }
            Some(OpSession::Read(session)) => {
                let result = session
                    .finish()
                    .expect("finalize is only called with at least one responder");
                report.completed_reads += 1;
                report.latency.record(latency);
                report.read_latency.record(latency);
                let pv = &mut report.per_variable[var];
                pv.completed_reads += 1;
                pv.latency.record(latency);
                let read_start = state.start;
                let read_end = now;
                if writes[var].concurrent_with(read_start, read_end) {
                    report.concurrent_reads += 1;
                    report.per_variable[var].concurrent_reads += 1;
                } else {
                    // The freshest write of this variable completed before
                    // this read started is the expected result.
                    let expected = writes[var].latest_completed_before(read_start);
                    match (expected, result) {
                        (None, _) => {
                            report.unwritten_reads += 1;
                            report.per_variable[var].unwritten_reads += 1;
                        }
                        (Some(seq), Some(tv)) => {
                            let got = tv.value.as_u64().unwrap_or(0);
                            if got < seq {
                                report.stale_reads += 1;
                                report.per_variable[var].stale_reads += 1;
                                self.note_component_staleness(now, var, report);
                            }
                        }
                        (Some(_), None) => {
                            report.empty_reads += 1;
                            report.per_variable[var].empty_reads += 1;
                            self.note_component_staleness(now, var, report);
                        }
                    }
                }
            }
            None => unreachable!("finalized operation must have a session"),
        }
    }

    /// Attributes one stale/empty read finalized inside an active partition
    /// window to its client's component (`variable % components`), so
    /// reports break consistency loss down by partition side.  A no-op
    /// outside partition windows (and for derived plans, which never carry
    /// partitions).
    fn note_component_staleness(&self, now: SimTime, var: usize, report: &mut SimReport) {
        let Some(plan) = self.plan.as_ref() else {
            return;
        };
        let Some(window) = plan.active_partition(now) else {
            return;
        };
        report.per_component_stale_reads[(var as u64 % window.components as u64) as usize] += 1;
    }
}

/// Applies one probe's server-side effect and, if the client still cares
/// about this attempt, feeds the reply into the session.  Returns whether
/// the session consumed the probe.  Shared verbatim between the sequential
/// engine above and the sharded engine (`crate::shard`), so the two can
/// never drift in per-probe semantics.
pub(crate) fn deliver_probe<S: QuorumSystem + ?Sized>(
    state: &mut OpState,
    server: ServerId,
    cluster: &mut Cluster,
    attempt: u32,
) -> bool {
    let live = !state.done && state.attempt == attempt;
    let variable = state.variable;
    match state.session.as_mut() {
        Some(OpSession::Write(record, session)) => {
            let acked = RegisterMap::<S>::apply_write(cluster, server, variable, record);
            if live {
                session.on_ack(acked);
            }
            live
        }
        Some(OpSession::Read(session)) => {
            // A `None` probe result is a resolved-but-silent server
            // (crashed): the attempt's outstanding count still drops.
            if session.wants_signed() {
                if let Some(sv) = cluster.probe_read_signed(server, variable) {
                    if live {
                        session.on_signed_reply(server, sv);
                    }
                }
            } else if let Some(tv) = cluster.probe_read_plain(server, variable) {
                if live {
                    session.on_plain_reply(server, tv);
                }
            }
            live
        }
        None => false,
    }
}

/// The simulated-seconds delay before retry number `attempt` (1-based)
/// starts: `retry_backoff · op_timeout · 2^(attempt−1)`, 0 with the
/// default immediate-retry policy.  Shared between both engines.
pub(crate) fn retry_delay(config: &SimConfig, attempt: u32) -> SimTime {
    if config.retry_backoff <= 0.0 {
        return 0.0;
    }
    let doublings = attempt.saturating_sub(1).min(62);
    config.retry_backoff * config.op_timeout.max(0.0) * (1u64 << doublings) as f64
}

/// Convenience helper: run the same configuration against several systems
/// and collect `(name, report)` pairs — used by the comparison experiments.
pub fn compare_systems(
    systems: &[&dyn QuorumSystem],
    kind: ProtocolKind,
    config: SimConfig,
) -> Vec<(String, SimReport)> {
    systems
        .iter()
        .map(|sys| {
            let report = Simulation::new(*sys, kind, config).run();
            (sys.name(), report)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqs_core::probabilistic::{
        EpsilonIntersecting, ProbabilisticDissemination, ProbabilisticMasking,
    };
    use pqs_core::strict::Majority;
    use pqs_core::system::ProbabilisticQuorumSystem;
    use pqs_core::universe::ServerId;

    fn quick_config(seed: u64) -> SimConfig {
        SimConfig::builder()
            .with_duration(50.0)
            .with_arrival_rate(20.0)
            .with_read_fraction(0.8)
            .with_latency(LatencyModel::Uniform {
                min: 1e-4,
                max: 1e-3,
            })
            .with_crash_probability(0.0)
            .with_byzantine(0)
            .with_seed(seed)
            .build()
    }

    #[test]
    fn failure_free_safe_run_has_no_stale_reads_beyond_epsilon() {
        let sys = EpsilonIntersecting::with_target_epsilon(100, 1e-3).unwrap();
        let report = Simulation::new(&sys, ProtocolKind::Safe, quick_config(1)).run();
        assert!(report.completed_reads > 500);
        assert!(report.completed_writes > 100);
        assert_eq!(report.unavailable_ops, 0);
        assert!(report.stale_read_rate() < 0.01);
        assert!(report.mean_latency() > 0.0);
        assert!(report.empirical_load() > 0.0);
        // Every op probes |Q| servers and the engine processes one event per
        // probe plus arrival and timeout events.
        assert!(report.events_processed > report.total_operations);
        // The single-key run books everything under variable 0.
        assert_eq!(report.per_variable.len(), 1);
        assert_eq!(
            report.summed_per_variable_ops(),
            report.completed_reads + report.completed_writes + report.unavailable_ops
        );
    }

    #[test]
    fn determinism_per_seed() {
        let sys = EpsilonIntersecting::new(64, 16).unwrap();
        let a = Simulation::new(&sys, ProtocolKind::Safe, quick_config(7)).run();
        let b = Simulation::new(&sys, ProtocolKind::Safe, quick_config(7)).run();
        assert_eq!(a, b, "same seed must give bit-identical reports");
        let c = Simulation::new(&sys, ProtocolKind::Safe, quick_config(8)).run();
        assert_ne!(a.per_server_accesses, c.per_server_accesses);
    }

    #[test]
    fn loose_system_shows_staleness_tight_system_does_not() {
        let mut config = quick_config(3);
        config.read_fraction = 0.5;
        config.latency = LatencyModel::Fixed(1e-6);
        let loose = EpsilonIntersecting::new(64, 8).unwrap();
        let loose_report = Simulation::new(&loose, ProtocolKind::Safe, config).run();
        let majority = Majority::new(64).unwrap();
        let strict_report = Simulation::new(&majority, ProtocolKind::Safe, config).run();
        assert_eq!(strict_report.stale_reads, 0);
        assert!(
            loose_report.stale_read_rate() > strict_report.stale_read_rate(),
            "loose {} vs strict {}",
            loose_report.stale_read_rate(),
            strict_report.stale_read_rate()
        );
        // And the loose rate tracks epsilon.
        assert!((loose_report.stale_read_rate() - loose.epsilon()).abs() < 0.05);
    }

    #[test]
    fn operations_keep_completing_under_heavy_crashes() {
        // Half of the servers crash at time 0. Because the protocols accept
        // partial quorum responses, both systems keep completing operations;
        // consistency degrades (stale reads appear) but availability of the
        // small-quorum probabilistic system stays near-perfect.
        let mut config = quick_config(4);
        config.crash_probability = 0.5;
        config.read_fraction = 0.5;
        let majority = Majority::new(25).unwrap();
        let strict_report = Simulation::new(&majority, ProtocolKind::Safe, config).run();
        let sys = EpsilonIntersecting::with_target_epsilon(25, 1e-2).unwrap();
        let prob_report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        assert!(strict_report.completed_writes > 0);
        assert!(prob_report.completed_writes > 0);
        assert!(prob_report.unavailability() < 0.05);
        // Staleness rises well above the failure-free epsilon for both, but
        // stays far from total inconsistency.
        assert!(strict_report.stale_read_rate() < 0.6);
        assert!(prob_report.stale_read_rate() < 0.6);
    }

    #[test]
    fn byzantine_masking_run_returns_no_forgeries() {
        let sys = ProbabilisticMasking::with_target_epsilon(100, 5, 1e-3).unwrap();
        let mut config = quick_config(5);
        config.byzantine = 5;
        let report = Simulation::new(
            &sys,
            ProtocolKind::Masking {
                threshold: sys.read_threshold(),
            },
            config,
        )
        .run();
        assert!(report.completed_reads > 0);
        // Forgeries would show up as stale reads with absurd sequence
        // numbers; the rate must stay near epsilon.
        assert!(
            report.stale_read_rate() < 0.02,
            "{}",
            report.stale_read_rate()
        );
    }

    #[test]
    fn byzantine_dissemination_run_stays_consistent() {
        let sys = ProbabilisticDissemination::with_target_epsilon(100, 20, 1e-3).unwrap();
        let mut config = quick_config(6);
        config.byzantine = 20;
        let report = Simulation::new(&sys, ProtocolKind::Dissemination, config).run();
        assert!(report.completed_reads > 0);
        assert!(
            report.stale_read_rate() < 0.02,
            "{}",
            report.stale_read_rate()
        );
    }

    #[test]
    fn empirical_load_tracks_analytic_load() {
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let mut config = quick_config(9);
        config.duration = 100.0;
        config.arrival_rate = 50.0;
        let report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        use pqs_core::system::QuorumSystem;
        assert!(
            (report.empirical_load() - sys.load()).abs() < 0.05,
            "empirical {} analytic {}",
            report.empirical_load(),
            sys.load()
        );
    }

    #[test]
    fn compare_systems_helper_names_outputs() {
        let a = EpsilonIntersecting::new(49, 14).unwrap();
        let b = Majority::new(49).unwrap();
        let systems: Vec<&dyn QuorumSystem> = vec![&a, &b];
        let mut config = quick_config(10);
        config.duration = 10.0;
        let results = compare_systems(&systems, ProtocolKind::Safe, config);
        assert_eq!(results.len(), 2);
        assert!(results[0].0.contains("R(n=49"));
        assert!(results[1].0.contains("threshold"));
    }

    #[test]
    fn explicit_failure_plan_with_recovery() {
        use crate::failure::FailurePlan;
        let sys = Majority::new(9).unwrap();
        // Crash 7 of 9 servers at t=10, recover at t=30: inside the window a
        // noticeable fraction of 5-server quorums contains no live server at
        // all, so some operations fail outright (even after a resample);
        // outside the window none do.
        let mut plan = FailurePlan::none();
        for i in 0..7 {
            plan = plan
                .with_transition(10.0, ServerId::new(i), true)
                .with_transition(30.0, ServerId::new(i), false);
        }
        let mut config = quick_config(11);
        config.duration = 60.0;
        let report = Simulation::new(&sys, ProtocolKind::Safe, config)
            .with_failure_plan(plan)
            .run();
        assert!(report.unavailable_ops > 0);
        assert!(report.unavailability() < 0.5);
        assert!(report.retries > 0, "zero-reply attempts must resample");
    }

    #[test]
    fn mid_run_crash_wave_changes_the_report() {
        // The acceptance scenario: an identical plan applied at t = D/2
        // versus applied never (after the run ends). The mid-run wave must
        // observably raise unavailability.
        let sys = Majority::new(15).unwrap();
        let mut config = quick_config(12);
        config.duration = 40.0;
        config.read_fraction = 0.5;
        let wave_servers = || (0..15).map(ServerId::new);
        let mid = FailurePlan::none().with_crash_wave(20.0, wave_servers());
        let never = FailurePlan::none().with_crash_wave(1e6, wave_servers());
        let hit = Simulation::new(&sys, ProtocolKind::Safe, config)
            .with_failure_plan(mid)
            .run();
        let clean = Simulation::new(&sys, ProtocolKind::Safe, config)
            .with_failure_plan(never)
            .run();
        assert_eq!(clean.unavailable_ops, 0);
        assert!(
            hit.unavailable_ops > 100,
            "every op after the wave must fail, got {}",
            hit.unavailable_ops
        );
        assert!(hit.unavailability() > clean.unavailability());
        // Before the wave the runs are identical: same seed, same draws.
        assert_eq!(
            hit.completed_writes + hit.completed_reads + hit.unavailable_ops,
            clean.completed_writes + clean.completed_reads
        );
    }

    #[test]
    fn probe_margin_cuts_tail_latency_under_long_tails() {
        // The second acceptance scenario: under a heavy-tailed latency
        // model, probing q + margin servers and finishing on the first q
        // replies yields a lower p99 than probing exactly q (which must wait
        // for its slowest member).
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let mut config = quick_config(13);
        config.latency = LatencyModel::Pareto {
            scale: 1e-3,
            shape: 1.8,
        };
        config.op_timeout = 10.0;
        let exact = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        config.probe_margin = 8;
        let margined = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        assert!(exact.completed_reads > 500 && margined.completed_reads > 500);
        assert!(
            margined.p99_latency() < exact.p99_latency(),
            "margin 8 p99 {} should beat margin 0 p99 {}",
            margined.p99_latency(),
            exact.p99_latency()
        );
        assert!(margined.read_latency.p99() < exact.read_latency.p99());
        // The price is load: more probes per op on the wire.
        assert!(margined.total_operations <= exact.total_operations + exact.retries);
        let margined_accesses: u64 = margined.per_server_accesses.iter().sum();
        let exact_accesses: u64 = exact.per_server_accesses.iter().sum();
        assert!(margined_accesses > exact_accesses);
    }

    #[test]
    fn concurrent_sessions_overlap_in_flight() {
        // 500 op/s against millisecond-scale probe latency: many operations
        // must be in flight simultaneously — the regime the atomic-loop
        // simulator could not express.
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let config = SimConfig::builder()
            .with_duration(20.0)
            .with_arrival_rate(500.0)
            .with_read_fraction(0.9)
            .with_latency(LatencyModel::Exponential { mean: 5e-3 })
            .with_seed(14)
            .build();
        let report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        assert!(report.max_in_flight > 1, "ops must overlap");
        assert!(report.mean_in_flight > 0.5, "{}", report.mean_in_flight);
        assert!(report.concurrent_reads > 0, "reads must overlap writes");
        assert_eq!(report.unavailable_ops, 0);
        // Percentiles are ordered and populated.
        assert!(report.read_latency.p50() <= report.read_latency.p95());
        assert!(report.read_latency.p95() <= report.read_latency.p99());
        assert!(report.write_latency.p99() > 0.0);
    }

    #[test]
    fn per_probe_latency_is_the_qth_order_statistic() {
        // With fixed latency every probe takes the same time, so operation
        // latency equals the fixed value regardless of quorum size.
        let sys = EpsilonIntersecting::new(64, 16).unwrap();
        let mut config = quick_config(15);
        config.latency = LatencyModel::Fixed(2e-3);
        let report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        assert!((report.mean_latency() - 2e-3).abs() < 1e-9);
        assert!((report.read_latency.p99() - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn sharded_run_books_every_op_under_its_variable() {
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let mut config = quick_config(16);
        config.duration = 100.0;
        config.arrival_rate = 60.0;
        config.read_fraction = 0.7;
        config.keyspace = KeySpace::zipf(64, 1.0);
        let report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        assert_eq!(report.per_variable.len(), 64);
        // No operation is lost or double-counted across the breakdown.
        assert_eq!(
            report.summed_per_variable_ops(),
            report.completed_reads + report.completed_writes + report.unavailable_ops
        );
        let sum_reads: u64 = report.per_variable.iter().map(|v| v.completed_reads).sum();
        let sum_writes: u64 = report.per_variable.iter().map(|v| v.completed_writes).sum();
        let sum_stale: u64 = report.per_variable.iter().map(|v| v.stale_reads).sum();
        let sum_concurrent: u64 = report.per_variable.iter().map(|v| v.concurrent_reads).sum();
        assert_eq!(sum_reads, report.completed_reads);
        assert_eq!(sum_writes, report.completed_writes);
        assert_eq!(sum_stale, report.stale_reads);
        assert_eq!(sum_concurrent, report.concurrent_reads);
        // Zipf(1) over 64 keys: the hottest key dominates the mean share.
        let hot = report.hottest_variable().unwrap();
        assert_eq!(hot.variable, 0, "Zipf rank 0 must be hottest");
        assert!(
            report.key_load_imbalance() > 5.0,
            "imbalance {}",
            report.key_load_imbalance()
        );
        // Cross-key isolation: per-key staleness stays near epsilon even
        // though 64 write chains interleave in one event queue.
        assert!(report.stale_read_rate() < 0.05);
    }

    #[test]
    fn sharding_does_not_change_server_load_balance() {
        // The paper's load bound is per-server; spreading the same op
        // stream over many keys must leave the per-server empirical load
        // unchanged (all keys share the access strategy).
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let mut config = quick_config(17);
        config.duration = 100.0;
        config.arrival_rate = 50.0;
        let one = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        config.keyspace = KeySpace::zipf(256, 1.2);
        let many = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        use pqs_core::system::QuorumSystem;
        assert!((one.empirical_load() - sys.load()).abs() < 0.05);
        assert!((many.empirical_load() - sys.load()).abs() < 0.05);
    }

    #[test]
    fn retry_backoff_delays_resamples_through_an_outage() {
        // All servers down from t=10 to t=30. Immediate retries burn every
        // attempt inside the outage and the op dies; backed-off retries
        // reach past the recovery and complete.
        let sys = Majority::new(9).unwrap();
        let wave = || {
            let mut plan = FailurePlan::none();
            for i in 0..9 {
                plan = plan
                    .with_transition(10.0, ServerId::new(i), true)
                    .with_transition(30.0, ServerId::new(i), false);
            }
            plan
        };
        let mut config = quick_config(18);
        config.duration = 60.0;
        config.op_timeout = 0.5;
        config.max_retries = 6;
        let immediate = Simulation::new(&sys, ProtocolKind::Safe, config)
            .with_failure_plan(wave())
            .run();
        config.retry_backoff = 2.0;
        let backed_off = Simulation::new(&sys, ProtocolKind::Safe, config)
            .with_failure_plan(wave())
            .run();
        assert!(immediate.unavailable_ops > 0, "immediate retries give up");
        assert!(
            backed_off.unavailable_ops < immediate.unavailable_ops,
            "backoff {} vs immediate {}",
            backed_off.unavailable_ops,
            immediate.unavailable_ops
        );
        assert!(backed_off.retries > 0);
        // Ops that waited out the outage pay for it in latency.
        assert!(backed_off.p99_latency() > immediate.p99_latency());
    }

    #[test]
    fn diffusion_cuts_stale_reads_without_touching_the_foreground() {
        // A loose system (epsilon ~ 0.3) over a skewed key space: gossip
        // must cut staleness, and because it draws from its own RNG stream
        // the foreground trajectory (completions, accesses, latencies) of
        // the diffusion run replays the diffusion-off run exactly.
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let mut config = quick_config(30);
        config.duration = 40.0;
        config.arrival_rate = 50.0;
        config.read_fraction = 0.85;
        config.keyspace = KeySpace::zipf(8, 1.0);
        config.latency = LatencyModel::Exponential { mean: 2e-3 };
        let off = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        config.diffusion = Some(DiffusionPolicy::full_push(0.1, 3));
        let on = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        // Identical foreground: gossip never consumes main-stream RNG,
        // never answers client probes and never counts as an access.
        assert_eq!(on.completed_reads, off.completed_reads);
        assert_eq!(on.completed_writes, off.completed_writes);
        assert_eq!(on.unavailable_ops, off.unavailable_ops);
        assert_eq!(on.retries, off.retries);
        assert_eq!(on.per_server_accesses, off.per_server_accesses);
        assert_eq!(on.total_operations, off.total_operations);
        // Gossip genuinely ran and did work.
        assert!(on.gossip_rounds > 100, "rounds {}", on.gossip_rounds);
        assert!(on.gossip_pushes > on.gossip_rounds);
        assert!(on.gossip_stores > 0);
        assert!(on.events_processed > off.events_processed);
        // Staleness: dominated per read (gossip only freshens servers), so
        // the cut is deterministic, and it must be substantial.
        assert!(off.stale_reads > 50, "baseline stale {}", off.stale_reads);
        assert!(
            (on.stale_reads as f64) < 0.7 * off.stale_reads as f64,
            "diffusion stale {} vs baseline {}",
            on.stale_reads,
            off.stale_reads
        );
        // Per-key: the hot key converges and its metrics are populated.
        let hot = &on.per_variable[0];
        assert!(hot.gossip_pushes > 0 && hot.gossip_stores > 0);
        assert!(hot.coverage_events > 0);
        assert!(hot.mean_rounds_to_coverage().is_some());
        assert!(hot.stale_reads <= off.per_variable[0].stale_reads);
    }

    #[test]
    fn digest_mode_cuts_staleness_like_full_push_at_a_fraction_of_the_volume() {
        // Same loose system, same period and fanout: the digest/delta
        // exchange must match full-push's consistency benefit while
        // transferring far fewer records — the ~85% of blind pushes that
        // freshen nobody never go on the wire.
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let mut config = quick_config(33);
        config.duration = 40.0;
        config.arrival_rate = 50.0;
        config.read_fraction = 0.85;
        config.keyspace = KeySpace::zipf(8, 1.0);
        config.latency = LatencyModel::Exponential { mean: 2e-3 };
        let off = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        config.diffusion = Some(DiffusionPolicy::full_push(0.1, 3));
        let push = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        config.diffusion = Some(DiffusionPolicy::digest_delta(0.1, 3));
        let digest = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        // Identical foreground across all three runs.
        assert_eq!(digest.completed_reads, off.completed_reads);
        assert_eq!(digest.completed_writes, off.completed_writes);
        assert_eq!(digest.per_server_accesses, off.per_server_accesses);
        // Digest traffic ran: summaries out, deltas back, redundancy
        // proven instead of transferred.
        assert!(digest.gossip_digests > 0);
        assert!(digest.gossip_pushes > 0);
        assert!(digest.gossip_redundant_pushes_avoided > digest.gossip_pushes);
        assert_eq!(push.gossip_digests, 0);
        assert_eq!(push.gossip_redundant_pushes_avoided, 0);
        // The volume cut is massive at equal policy settings...
        assert!(
            (digest.gossip_pushes as f64) < 0.25 * push.gossip_pushes as f64,
            "digest transferred {} records vs full-push {}",
            digest.gossip_pushes,
            push.gossip_pushes
        );
        // ...while consistency stays in the same band: both dominate the
        // gossip-free baseline, and digest stays within 2x of full-push's
        // residual staleness (both tiny against the baseline).
        assert!(off.stale_reads > 50);
        assert!(digest.stale_reads + digest.empty_reads <= off.stale_reads + off.empty_reads);
        assert!(
            (digest.stale_reads as f64) <= (2.0 * push.stale_reads as f64).max(10.0),
            "digest stale {} vs full-push stale {}",
            digest.stale_reads,
            push.stale_reads
        );
        // Nearly every digest-mode transfer freshens its receiver (the
        // whole point); blind pushes mostly do not.
        let digest_hit = digest.gossip_stores as f64 / digest.gossip_pushes as f64;
        let push_hit = push.gossip_stores as f64 / push.gossip_pushes as f64;
        assert!(
            digest_hit > 0.5 && digest_hit > 5.0 * push_hit,
            "digest hit rate {digest_hit:.3} vs push {push_hit:.3}"
        );
        // Per-key delta accounting sums to the aggregate volume.
        let deltas: u64 = digest
            .per_variable
            .iter()
            .map(|v| v.gossip_delta_records)
            .sum();
        assert_eq!(deltas, digest.gossip_pushes);
        assert!(digest.per_variable[0].mean_rounds_to_coverage().is_some());
    }

    #[test]
    fn selective_policies_gossip_fewer_records_and_still_converge_hot_keys() {
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let mut config = quick_config(34);
        config.duration = 40.0;
        config.arrival_rate = 50.0;
        config.read_fraction = 0.85;
        config.keyspace = KeySpace::zipf(16, 1.2);
        config.latency = LatencyModel::Exponential { mean: 2e-3 };
        config.diffusion = Some(DiffusionPolicy::digest_delta(0.1, 3));
        let uniform = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        config.diffusion = Some(DiffusionPolicy::digest_delta(0.1, 3).with_key_policy(
            KeyGossipPolicy::HotFirst {
                hot_keys: 2,
                cold_every: 16,
            },
        ));
        let hot_first = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        config.diffusion = Some(DiffusionPolicy::digest_delta(0.1, 3).with_key_policy(
            KeyGossipPolicy::RecentWrites {
                window: 0.3,
                cold_every: 16,
            },
        ));
        let recent = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        // All three replay the same foreground (selection is RNG-free).
        assert_eq!(uniform.completed_reads, hot_first.completed_reads);
        assert_eq!(uniform.per_server_accesses, recent.per_server_accesses);
        // Selective digests advertise fewer keys, so fewer redundant
        // transfers are even possible — and the hot key still converges.
        for (name, run) in [("hot-first", &hot_first), ("recent", &recent)] {
            assert!(run.gossip_digests > 0, "{name}");
            assert!(run.gossip_stores > 0, "{name}");
            assert!(
                run.per_variable[0].coverage_events > 0,
                "{name}: hot key never converged"
            );
            assert!(
                run.gossip_redundant_pushes_avoided < uniform.gossip_redundant_pushes_avoided,
                "{name}: selective digests must prove less redundancy than complete ones"
            );
        }
        // The hot key's staleness stays comparable to uniform digests even
        // though cold keys gossip 16x less often.
        let hot_uniform = uniform.per_variable[0].stale_reads;
        for run in [&hot_first, &recent] {
            assert!(
                run.per_variable[0].stale_reads <= hot_uniform + 10,
                "hot key staleness {} vs uniform {}",
                run.per_variable[0].stale_reads,
                hot_uniform
            );
        }
    }

    #[test]
    fn signed_records_flow_through_digest_gossip_in_dissemination_runs() {
        let sys = ProbabilisticDissemination::with_target_epsilon(100, 10, 1e-3).unwrap();
        let mut config = quick_config(35);
        config.byzantine = 10;
        config.diffusion = Some(DiffusionPolicy::digest_delta(0.25, 2));
        let report = Simulation::new(&sys, ProtocolKind::Dissemination, config).run();
        assert!(report.completed_reads > 0);
        assert!(report.gossip_digests > 0);
        assert!(
            report.gossip_stores > 0,
            "signed records must spread through digest gossip"
        );
    }

    #[test]
    fn digest_selector_resolves_policies_from_foreground_state() {
        use pqs_protocols::diffusion::KeySelector;
        let writes = [5u64, 0, 9, 2];
        let last = [10.0, f64::NEG_INFINITY, 11.8, 4.0];
        assert_eq!(
            digest_selector(KeyGossipPolicy::Uniform, 3, 12.0, &writes, &last),
            KeySelector::All
        );
        // Hot-first: top keys by write count, never-written keys excluded;
        // every cold_every-th round is a complete catch-up digest.
        let hot = KeyGossipPolicy::HotFirst {
            hot_keys: 2,
            cold_every: 4,
        };
        assert_eq!(
            digest_selector(hot, 3, 12.0, &writes, &last),
            KeySelector::Only(BTreeSet::from([2, 0]))
        );
        assert_eq!(
            digest_selector(hot, 4, 12.0, &writes, &last),
            KeySelector::All
        );
        // A hot_keys budget beyond the written keys takes what exists.
        let wide = KeyGossipPolicy::HotFirst {
            hot_keys: 10,
            cold_every: 4,
        };
        assert_eq!(
            digest_selector(wide, 1, 12.0, &writes, &last),
            KeySelector::Only(BTreeSet::from([0, 2, 3]))
        );
        // Recent-writes: only keys written inside the trailing window.
        let recent = KeyGossipPolicy::RecentWrites {
            window: 1.0,
            cold_every: 4,
        };
        assert_eq!(
            digest_selector(recent, 2, 12.0, &writes, &last),
            KeySelector::Only(BTreeSet::from([2]))
        );
        assert_eq!(
            digest_selector(recent, 8, 12.0, &writes, &last),
            KeySelector::All
        );
        // cold_every <= 1 degenerates to uniform for both policies.
        let degenerate = KeyGossipPolicy::HotFirst {
            hot_keys: 1,
            cold_every: 1,
        };
        assert_eq!(
            digest_selector(degenerate, 3, 12.0, &writes, &last),
            KeySelector::All
        );
    }

    #[test]
    fn diffusion_policy_builders_compose() {
        let policy = DiffusionPolicy::default();
        assert_eq!(policy.mode, GossipMode::PushAll);
        assert_eq!(policy.key_policy, KeyGossipPolicy::Uniform);
        assert_eq!(DiffusionPolicy::full_push(0.25, 2), policy);
        let digest = DiffusionPolicy::digest_delta(0.1, 3)
            .with_key_policy(KeyGossipPolicy::RecentWrites {
                window: 0.5,
                cold_every: 8,
            })
            .with_push_latency(LatencyModel::Fixed(5e-4));
        assert_eq!(digest.mode, GossipMode::DigestDelta);
        assert_eq!(digest.period, 0.1);
        assert_eq!(digest.fanout, 3);
        let retuned = digest
            .with_period(0.2)
            .with_fanout(1)
            .with_mode(GossipMode::PushAll);
        assert_eq!(retuned.period, 0.2);
        assert_eq!(retuned.fanout, 1);
        assert_eq!(retuned.mode, GossipMode::PushAll);
        // The key policy survives unrelated builder calls.
        assert_eq!(
            retuned.key_policy,
            KeyGossipPolicy::RecentWrites {
                window: 0.5,
                cold_every: 8
            }
        );
    }

    #[test]
    fn diffusion_off_schedules_no_gossip_and_stays_bit_identical() {
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let config = quick_config(31);
        assert_eq!(config.diffusion, None, "off is the default");
        let a = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        let b = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        assert_eq!(a, b);
        assert_eq!(a.gossip_rounds, 0);
        assert_eq!(a.gossip_pushes, 0);
        assert_eq!(a.gossip_stores, 0);
        assert!(a.per_variable[0].mean_rounds_to_coverage().is_none());
    }

    #[test]
    fn signed_records_diffuse_in_dissemination_runs() {
        // The dissemination protocol stores signed records; the engine's
        // gossip must diffuse those (the plain path would find nothing).
        let sys = ProbabilisticDissemination::with_target_epsilon(100, 10, 1e-3).unwrap();
        let mut config = quick_config(32);
        config.byzantine = 10;
        config.diffusion = Some(DiffusionPolicy::default());
        let report = Simulation::new(&sys, ProtocolKind::Dissemination, config).run();
        assert!(report.completed_reads > 0);
        assert!(report.gossip_rounds > 0);
        assert!(
            report.gossip_stores > 0,
            "signed records must spread through gossip"
        );
    }

    #[test]
    fn larger_backoff_factors_stretch_the_retry_schedule() {
        // Same 20-second outage, same retry budget: a larger factor spreads
        // the budget over a longer horizon, so more operations survive into
        // the recovery instead of burning every attempt inside the outage.
        let sys = Majority::new(9).unwrap();
        let wave = || {
            let mut plan = FailurePlan::none();
            for i in 0..9 {
                plan = plan
                    .with_transition(10.0, ServerId::new(i), true)
                    .with_transition(30.0, ServerId::new(i), false);
            }
            plan
        };
        let mut config = quick_config(19);
        config.duration = 60.0;
        config.op_timeout = 0.5;
        config.max_retries = 4;
        let mut unavailable = Vec::new();
        for factor in [1.0, 8.0] {
            config.retry_backoff = factor;
            let report = Simulation::new(&sys, ProtocolKind::Safe, config)
                .with_failure_plan(wave())
                .run();
            assert!(report.retries > 0, "factor {factor} must retry");
            unavailable.push(report.unavailable_ops);
        }
        assert!(
            unavailable[1] < unavailable[0],
            "factor 8 unavailable {} must beat factor 1 {}",
            unavailable[1],
            unavailable[0]
        );
    }

    #[test]
    fn builder_chain_renders_only_non_default_fields() {
        assert_eq!(
            SimConfig::default().to_builder_chain(),
            "SimConfig::builder().build()"
        );
        let chain = SimConfig::builder()
            .with_duration(30.0)
            .with_keyspace(KeySpace::zipf(64, 1.2))
            .with_probe_margin(4)
            .build()
            .to_builder_chain();
        assert_eq!(
            chain,
            "SimConfig::builder().with_duration(30.0)\
             .with_keyspace(KeySpace::zipf(64, 1.2)).with_probe_margin(4).build()"
        );
        assert!(!chain.contains("with_seed"), "default seed must not render");
    }

    #[test]
    fn builder_chain_round_trips_a_planner_style_config() {
        let config = SimConfig::builder()
            .with_duration(45.0)
            .with_arrival_rate(200.0)
            .with_read_fraction(0.9)
            .with_keyspace(KeySpace::zipf(64, 0.8))
            .with_latency(LatencyModel::Exponential { mean: 5e-3 })
            .with_crash_probability(0.02)
            .with_probe_margin(6)
            .with_op_timeout(0.08)
            .with_diffusion(
                DiffusionPolicy::digest_delta(0.05, 3)
                    .with_push_latency(LatencyModel::Exponential { mean: 5e-3 }),
            )
            .with_seed(42)
            .build();
        let chain = config.to_builder_chain();
        // The rendered chain names exactly the non-default knobs…
        for needle in [
            ".with_duration(45.0)",
            ".with_arrival_rate(200.0)",
            ".with_keyspace(KeySpace::zipf(64, 0.8))",
            ".with_latency(LatencyModel::Exponential { mean: 0.005 })",
            ".with_crash_probability(0.02)",
            ".with_probe_margin(6)",
            ".with_op_timeout(0.08)",
            ".with_diffusion(DiffusionPolicy::digest_delta(0.05, 3)\
             .with_push_latency(LatencyModel::Exponential { mean: 0.005 }))",
            ".with_seed(42)",
        ] {
            assert!(chain.contains(needle), "missing {needle} in {chain}");
        }
        // …and rebuilding from the struct's own fields reproduces both the
        // config and its rendering (the round-trip contract validate_plan
        // re-checks on every emitted plan).
        let rebuilt = SimConfig::builder()
            .with_duration(config.duration)
            .with_arrival_rate(config.arrival_rate)
            .with_read_fraction(config.read_fraction)
            .with_keyspace(config.keyspace)
            .with_latency(config.latency)
            .with_crash_probability(config.crash_probability)
            .with_probe_margin(config.probe_margin)
            .with_op_timeout(config.op_timeout)
            .with_diffusion(config.diffusion.unwrap())
            .with_seed(config.seed)
            .build();
        assert_eq!(rebuilt, config);
        assert_eq!(rebuilt.to_builder_chain(), chain);
    }

    #[test]
    fn builder_chain_renders_every_latency_and_policy_shape() {
        let uniform = SimConfig::builder()
            .with_latency(LatencyModel::Uniform {
                min: 1e-4,
                max: 2e-3,
            })
            .build()
            .to_builder_chain();
        assert!(uniform.contains("LatencyModel::Uniform { min: 0.0001, max: 0.002 }"));
        let pareto = SimConfig::builder()
            .with_latency(LatencyModel::Pareto {
                scale: 1e-3,
                shape: 2.5,
            })
            .build()
            .to_builder_chain();
        assert!(pareto.contains("LatencyModel::Pareto { scale: 0.001, shape: 2.5 }"));
        let push = SimConfig::builder()
            .with_diffusion(DiffusionPolicy::full_push(0.1, 2).with_key_policy(
                KeyGossipPolicy::HotFirst {
                    hot_keys: 4,
                    cold_every: 8,
                },
            ))
            .build()
            .to_builder_chain();
        assert!(push.contains(
            "DiffusionPolicy::full_push(0.1, 2)\
             .with_key_policy(KeyGossipPolicy::HotFirst { hot_keys: 4, cold_every: 8 })"
        ));
        let recent = SimConfig::builder()
            .with_diffusion(DiffusionPolicy::digest_delta(0.25, 2).with_key_policy(
                KeyGossipPolicy::RecentWrites {
                    window: 1.5,
                    cold_every: 4,
                },
            ))
            .build()
            .to_builder_chain();
        assert!(recent.contains("KeyGossipPolicy::RecentWrites { window: 1.5, cold_every: 4 }"));
        assert!(
            KeySpace::uniform(16) == KeySpace::uniform(16)
                && SimConfig::builder()
                    .with_keyspace(KeySpace::uniform(16))
                    .build()
                    .to_builder_chain()
                    .contains(".with_keyspace(KeySpace::uniform(16))")
        );
    }
}
