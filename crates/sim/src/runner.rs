//! The simulation driver.
//!
//! A [`Simulation`] ties together a quorum system, one of the three register
//! protocols, a replica cluster, a latency model, a workload and a failure
//! plan, and produces a [`SimReport`].
//!
//! The model is deliberately simple and documented: operations are applied
//! to the replica state at their arrival instant (the quorum exchange itself
//! is atomic), while their *latency* is the maximum of per-server response
//! latencies drawn from the latency model — i.e. network delay affects
//! client-observed latency and concurrency accounting, not the order in
//! which server state changes.  This is sufficient for the paper-level
//! questions the simulator answers (stale-read rates vs ε, empirical load,
//! availability under crashes) without implementing a full asynchronous
//! message scheduler.

use crate::failure::FailurePlan;
use crate::latency::LatencyModel;
use crate::metrics::SimReport;
use crate::time::SimTime;
use crate::workload::{OpKind, WorkloadConfig};
use pqs_core::system::QuorumSystem;
use pqs_protocols::cluster::Cluster;
use pqs_protocols::crypto::KeyRegistry;
use pqs_protocols::register::{DisseminationRegister, MaskingRegister, SafeRegister};
use pqs_protocols::server::Behavior;
use pqs_protocols::value::Value;
use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which register protocol the simulated clients run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The Section 3.1 safe-register protocol (crash failures only).
    Safe,
    /// The Section 4 protocol over self-verifying (signed) data.
    Dissemination,
    /// The Section 5 protocol with read-acceptance threshold `k`.
    Masking {
        /// The read threshold `k` (use the system's
        /// [`read_threshold`](pqs_core::probabilistic::ProbabilisticMasking::read_threshold)
        /// for `R_k(n, q)`, or `b + 1` for a strict masking system).
        threshold: usize,
    },
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Length of the run in simulated seconds.
    pub duration: SimTime,
    /// Mean operation arrival rate (operations per second).
    pub arrival_rate: f64,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// Latency model for client–server exchanges.
    pub latency: LatencyModel,
    /// Each server crashes independently with this probability at time 0
    /// (the Definition 2.6 model).
    pub crash_probability: f64,
    /// Number of servers made Byzantine at time 0 (random placement).
    pub byzantine: u32,
    /// RNG seed; the run is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for SimConfig {
    /// 60 simulated seconds, 10 op/s, 90% reads, 1 ms fixed latency, no
    /// failures, seed 0.
    fn default() -> Self {
        SimConfig {
            duration: 60.0,
            arrival_rate: 10.0,
            read_fraction: 0.9,
            latency: LatencyModel::default(),
            crash_probability: 0.0,
            byzantine: 0,
            seed: 0,
        }
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
#[derive(Debug)]
pub struct Simulation<'a, S: QuorumSystem + ?Sized> {
    system: &'a S,
    kind: ProtocolKind,
    config: SimConfig,
    plan: Option<FailurePlan>,
}

/// Record of a write operation used for staleness accounting.
#[derive(Debug, Clone, Copy)]
struct WriteWindow {
    start: SimTime,
    end: SimTime,
    sequence: u64,
}

impl<'a, S: QuorumSystem + ?Sized> Simulation<'a, S> {
    /// Creates a simulation over the given system and protocol.
    pub fn new(system: &'a S, kind: ProtocolKind, config: SimConfig) -> Self {
        Simulation {
            system,
            kind,
            config,
            plan: None,
        }
    }

    /// Overrides the failure plan derived from the configuration with an
    /// explicit one (Byzantine placement and crash schedule).
    pub fn with_failure_plan(mut self, plan: FailurePlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Runs the simulation to completion and returns its report.
    pub fn run(&self) -> SimReport {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut cluster = Cluster::new(self.system.universe());

        // Failure plan: either explicit or derived from the config.
        let plan = match &self.plan {
            Some(plan) => plan.clone(),
            None => {
                let mut plan = FailurePlan::none();
                if self.config.byzantine > 0 {
                    plan = plan.with_random_byzantine(
                        self.system.universe(),
                        self.config.byzantine,
                        &mut rng,
                    );
                }
                if self.config.crash_probability > 0.0 {
                    plan = plan.with_independent_crashes(
                        self.system.universe(),
                        self.config.crash_probability,
                        0.0,
                        &mut rng,
                    );
                }
                plan
            }
        };
        let byz_behavior = match self.kind {
            // Against self-verifying data the strongest undetectable attack
            // is suppression / stale replay; against plain data it is a
            // colluding forgery.
            ProtocolKind::Dissemination => Behavior::ByzantineStale,
            _ => Behavior::ByzantineForge,
        };
        cluster.corrupt_all(plan.byzantine.iter().copied(), byz_behavior);
        let mut pending_crashes = plan.crashes.clone();

        // Workload.
        let ops = WorkloadConfig {
            duration: self.config.duration,
            arrival_rate: self.config.arrival_rate,
            read_fraction: self.config.read_fraction,
        }
        .generate(&mut rng);

        // Protocol clients.
        let mut registry = KeyRegistry::new();
        let signing_key = registry.register(1, self.config.seed ^ 0xabcdef);
        let mut safe = SafeRegister::new(self.system, 1);
        let mut dissemination =
            DisseminationRegister::new(self.system, signing_key, registry.clone());
        let mut masking = match self.kind {
            ProtocolKind::Masking { threshold } => {
                Some(MaskingRegister::new(self.system, threshold, 1))
            }
            _ => None,
        };

        let mut report = SimReport::default();
        let mut writes: Vec<WriteWindow> = Vec::new();
        let mut next_value: u64 = 0;

        for op in ops {
            // Apply any crash/recovery transitions due before this arrival.
            while let Some(transition) = pending_crashes.first().copied() {
                if transition.at > op.at {
                    break;
                }
                let behavior = if transition.crash {
                    Behavior::Crashed
                } else {
                    Behavior::Correct
                };
                cluster.set_behavior(transition.server, behavior);
                pending_crashes.remove(0);
            }

            let latency = self.operation_latency(&mut rng);
            let end = op.at + latency;
            match op.kind {
                OpKind::Write => {
                    next_value += 1;
                    let value = Value::from_u64(next_value);
                    let outcome = match self.kind {
                        ProtocolKind::Safe => safe.write(&mut cluster, &mut rng, value),
                        ProtocolKind::Dissemination => {
                            dissemination.write(&mut cluster, &mut rng, value)
                        }
                        ProtocolKind::Masking { .. } => masking
                            .as_mut()
                            .expect("masking client exists for masking runs")
                            .write(&mut cluster, &mut rng, value),
                    };
                    match outcome {
                        Ok(_) => {
                            report.completed_writes += 1;
                            report.latency.record(latency);
                            writes.push(WriteWindow {
                                start: op.at,
                                end,
                                sequence: next_value,
                            });
                        }
                        Err(_) => report.unavailable_ops += 1,
                    }
                }
                OpKind::Read => {
                    let outcome = match self.kind {
                        ProtocolKind::Safe => safe.read(&mut cluster, &mut rng),
                        ProtocolKind::Dissemination => dissemination.read(&mut cluster, &mut rng),
                        ProtocolKind::Masking { .. } => masking
                            .as_mut()
                            .expect("masking client exists for masking runs")
                            .read(&mut cluster, &mut rng),
                    };
                    match outcome {
                        Ok(result) => {
                            report.completed_reads += 1;
                            report.latency.record(latency);
                            let concurrent = writes.iter().any(|w| w.start < end && w.end > op.at);
                            if concurrent {
                                report.concurrent_reads += 1;
                            } else {
                                // The freshest write completed before this
                                // read started is the expected result.
                                let expected = writes
                                    .iter()
                                    .filter(|w| w.end <= op.at)
                                    .map(|w| w.sequence)
                                    .max();
                                match (expected, result) {
                                    (None, _) => {}
                                    (Some(seq), Some(tv)) => {
                                        let got = tv.value.as_u64().unwrap_or(0);
                                        if got < seq {
                                            report.stale_reads += 1;
                                        }
                                    }
                                    (Some(_), None) => report.empty_reads += 1,
                                }
                            }
                        }
                        Err(_) => report.unavailable_ops += 1,
                    }
                }
            }
        }

        report.per_server_accesses = cluster.access_counts().to_vec();
        report.total_operations = cluster.total_accesses();
        report
    }

    /// Latency of one quorum operation: the slowest of `|Q|` per-server
    /// exchanges.
    fn operation_latency(&self, rng: &mut dyn RngCore) -> SimTime {
        let q = self.system.min_quorum_size().max(1);
        (0..q)
            .map(|_| self.config.latency.sample(rng))
            .fold(0.0, f64::max)
    }
}

/// Convenience helper: run the same configuration against several systems
/// and collect `(name, report)` pairs — used by the comparison experiments.
pub fn compare_systems(
    systems: &[&dyn QuorumSystem],
    kind: ProtocolKind,
    config: SimConfig,
) -> Vec<(String, SimReport)> {
    systems
        .iter()
        .map(|sys| {
            let report = Simulation::new(*sys, kind, config).run();
            (sys.name(), report)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqs_core::probabilistic::{
        EpsilonIntersecting, ProbabilisticDissemination, ProbabilisticMasking,
    };
    use pqs_core::strict::Majority;
    use pqs_core::system::ProbabilisticQuorumSystem;
    use pqs_core::universe::ServerId;

    fn quick_config(seed: u64) -> SimConfig {
        SimConfig {
            duration: 50.0,
            arrival_rate: 20.0,
            read_fraction: 0.8,
            latency: LatencyModel::Uniform {
                min: 1e-4,
                max: 1e-3,
            },
            crash_probability: 0.0,
            byzantine: 0,
            seed,
        }
    }

    #[test]
    fn failure_free_safe_run_has_no_stale_reads_beyond_epsilon() {
        let sys = EpsilonIntersecting::with_target_epsilon(100, 1e-3).unwrap();
        let report = Simulation::new(&sys, ProtocolKind::Safe, quick_config(1)).run();
        assert!(report.completed_reads > 500);
        assert!(report.completed_writes > 100);
        assert_eq!(report.unavailable_ops, 0);
        assert!(report.stale_read_rate() < 0.01);
        assert!(report.mean_latency() > 0.0);
        assert!(report.empirical_load() > 0.0);
    }

    #[test]
    fn determinism_per_seed() {
        let sys = EpsilonIntersecting::new(64, 16).unwrap();
        let a = Simulation::new(&sys, ProtocolKind::Safe, quick_config(7)).run();
        let b = Simulation::new(&sys, ProtocolKind::Safe, quick_config(7)).run();
        assert_eq!(a.completed_reads, b.completed_reads);
        assert_eq!(a.stale_reads, b.stale_reads);
        assert_eq!(a.per_server_accesses, b.per_server_accesses);
        let c = Simulation::new(&sys, ProtocolKind::Safe, quick_config(8)).run();
        assert_ne!(a.per_server_accesses, c.per_server_accesses);
    }

    #[test]
    fn loose_system_shows_staleness_tight_system_does_not() {
        let mut config = quick_config(3);
        config.read_fraction = 0.5;
        config.latency = LatencyModel::Fixed(1e-6);
        let loose = EpsilonIntersecting::new(64, 8).unwrap();
        let loose_report = Simulation::new(&loose, ProtocolKind::Safe, config).run();
        let majority = Majority::new(64).unwrap();
        let strict_report = Simulation::new(&majority, ProtocolKind::Safe, config).run();
        assert_eq!(strict_report.stale_reads, 0);
        assert!(
            loose_report.stale_read_rate() > strict_report.stale_read_rate(),
            "loose {} vs strict {}",
            loose_report.stale_read_rate(),
            strict_report.stale_read_rate()
        );
        // And the loose rate tracks epsilon.
        assert!((loose_report.stale_read_rate() - loose.epsilon()).abs() < 0.05);
    }

    #[test]
    fn operations_keep_completing_under_heavy_crashes() {
        // Half of the servers crash at time 0. Because the protocols accept
        // partial quorum responses, both systems keep completing operations;
        // consistency degrades (stale reads appear) but availability of the
        // small-quorum probabilistic system stays near-perfect.
        let mut config = quick_config(4);
        config.crash_probability = 0.5;
        config.read_fraction = 0.5;
        let majority = Majority::new(25).unwrap();
        let strict_report = Simulation::new(&majority, ProtocolKind::Safe, config).run();
        let sys = EpsilonIntersecting::with_target_epsilon(25, 1e-2).unwrap();
        let prob_report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        assert!(strict_report.completed_writes > 0);
        assert!(prob_report.completed_writes > 0);
        assert!(prob_report.unavailability() < 0.05);
        // Staleness rises well above the failure-free epsilon for both, but
        // stays far from total inconsistency.
        assert!(strict_report.stale_read_rate() < 0.6);
        assert!(prob_report.stale_read_rate() < 0.6);
    }

    #[test]
    fn byzantine_masking_run_returns_no_forgeries() {
        let sys = ProbabilisticMasking::with_target_epsilon(100, 5, 1e-3).unwrap();
        let mut config = quick_config(5);
        config.byzantine = 5;
        let report = Simulation::new(
            &sys,
            ProtocolKind::Masking {
                threshold: sys.read_threshold(),
            },
            config,
        )
        .run();
        assert!(report.completed_reads > 0);
        // Forgeries would show up as stale reads with absurd sequence
        // numbers; the rate must stay near epsilon.
        assert!(
            report.stale_read_rate() < 0.02,
            "{}",
            report.stale_read_rate()
        );
    }

    #[test]
    fn byzantine_dissemination_run_stays_consistent() {
        let sys = ProbabilisticDissemination::with_target_epsilon(100, 20, 1e-3).unwrap();
        let mut config = quick_config(6);
        config.byzantine = 20;
        let report = Simulation::new(&sys, ProtocolKind::Dissemination, config).run();
        assert!(report.completed_reads > 0);
        assert!(
            report.stale_read_rate() < 0.02,
            "{}",
            report.stale_read_rate()
        );
    }

    #[test]
    fn empirical_load_tracks_analytic_load() {
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let mut config = quick_config(9);
        config.duration = 100.0;
        config.arrival_rate = 50.0;
        let report = Simulation::new(&sys, ProtocolKind::Safe, config).run();
        use pqs_core::system::QuorumSystem;
        assert!(
            (report.empirical_load() - sys.load()).abs() < 0.05,
            "empirical {} analytic {}",
            report.empirical_load(),
            sys.load()
        );
    }

    #[test]
    fn compare_systems_helper_names_outputs() {
        let a = EpsilonIntersecting::new(49, 14).unwrap();
        let b = Majority::new(49).unwrap();
        let systems: Vec<&dyn QuorumSystem> = vec![&a, &b];
        let mut config = quick_config(10);
        config.duration = 10.0;
        let results = compare_systems(&systems, ProtocolKind::Safe, config);
        assert_eq!(results.len(), 2);
        assert!(results[0].0.contains("R(n=49"));
        assert!(results[1].0.contains("threshold"));
    }

    #[test]
    fn explicit_failure_plan_with_recovery() {
        use crate::failure::FailurePlan;
        let sys = Majority::new(9).unwrap();
        // Crash 7 of 9 servers at t=10, recover at t=30: inside the window a
        // noticeable fraction of 5-server quorums contains no live server at
        // all, so some operations fail outright; outside the window none do.
        let mut plan = FailurePlan::none();
        for i in 0..7 {
            plan = plan
                .with_transition(10.0, ServerId::new(i), true)
                .with_transition(30.0, ServerId::new(i), false);
        }
        let mut config = quick_config(11);
        config.duration = 60.0;
        let report = Simulation::new(&sys, ProtocolKind::Safe, config)
            .with_failure_plan(plan)
            .run();
        assert!(report.unavailable_ops > 0);
        assert!(report.unavailability() < 0.5);
    }
}
