//! # pqs-sim
//!
//! A discrete-event simulation substrate for quorum-replicated services.
//!
//! The paper's evaluation (Section 6) is analytical; this crate provides the
//! dynamic counterpart used by the protocol-level experiments (V4/V5 in
//! DESIGN.md): clients issue read and write operations over time against a
//! replica cluster, messages take time governed by a latency model, servers
//! crash or behave Byzantine according to a failure plan, and the simulator
//! records operation latencies, stale-read rates, per-server load and
//! availability.
//!
//! ## Layout
//!
//! * [`time`] — simulation time and the event queue.
//! * [`latency`] — per-message latency models (fixed, uniform, exponential).
//! * [`workload`] — open-loop workload generation (Poisson arrivals,
//!   read/write mix).
//! * [`failure`] — failure plans: initial Byzantine placement, crash
//!   schedules and independent crash probabilities.
//! * [`metrics`] — what the simulator measures.
//! * [`runner`] — the simulation driver tying a quorum system, a protocol
//!   and a cluster together.
//!
//! ## Example
//!
//! ```rust
//! use pqs_core::probabilistic::EpsilonIntersecting;
//! use pqs_sim::latency::LatencyModel;
//! use pqs_sim::runner::{ProtocolKind, SimConfig, Simulation};
//!
//! let system = EpsilonIntersecting::with_target_epsilon(100, 1e-3).unwrap();
//! let config = SimConfig {
//!     duration: 100.0,
//!     arrival_rate: 5.0,
//!     read_fraction: 0.9,
//!     latency: LatencyModel::Uniform { min: 1e-3, max: 5e-3 },
//!     crash_probability: 0.1,
//!     byzantine: 0,
//!     seed: 42,
//! };
//! let report = Simulation::new(&system, ProtocolKind::Safe, config).run();
//! assert!(report.completed_reads + report.completed_writes > 0);
//! assert!(report.stale_read_rate() <= 0.05);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod failure;
pub mod latency;
pub mod metrics;
pub mod runner;
pub mod time;
pub mod workload;
