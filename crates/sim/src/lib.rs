//! # pqs-sim
//!
//! A discrete-event simulator for quorum-replicated services.
//!
//! The paper's evaluation (Section 6) is analytical; this crate provides the
//! dynamic counterpart used by the protocol-level experiments (V4/V5 in
//! DESIGN.md): clients issue read and write operations over time against a
//! replica cluster, every client–server probe is an individually scheduled
//! message with its own latency draw, servers crash or recover **mid-run**
//! according to a failure plan, and the simulator records per-kind latency
//! percentiles, stale-read rates, per-server load, in-flight concurrency
//! and availability.  One run drives a whole *key space* of replicated
//! variables (uniform or Zipf popularity), each with its own writer and
//! per-key metrics, so the simulator is a key–value store under test, not
//! just a register.
//!
//! ## Layout
//!
//! * [`time`] — simulation time and the deterministic event queue.
//! * [`event`] — the event vocabulary (`OpArrival`, `ProbeReply`,
//!   `OpTimeout`, `RetryAttempt`, `FailureTransition`) and the
//!   [`event::EventEngine`] driver with its throughput/concurrency
//!   accounting.
//! * [`latency`] — per-message latency models (fixed, uniform, exponential,
//!   Pareto long-tail).
//! * [`workload`] — open-loop workload generation (Poisson arrivals,
//!   read/write mix) sharded over a [`workload::KeySpace`].
//! * [`failure`] — failure plans: initial Byzantine placement, crash
//!   schedules, crash waves and independent crash probabilities.
//! * [`metrics`] — what the simulator measures, including p50/p95/p99 and
//!   the per-key breakdown ([`metrics::VariableReport`]).
//! * [`runner`] — the simulation driver: many concurrent client sessions
//!   over a per-variable register table, first-`q`-of-probed quorum access,
//!   timeout-and-resample retry with optional exponential backoff, and
//!   engine-scheduled write diffusion ([`runner::DiffusionPolicy`]) in
//!   either full-push or digest/delta gossip mode with per-key
//!   advertisement policies ([`runner::KeyGossipPolicy`]).  With
//!   [`runner::SimConfig::num_shards`] ≥ 2 the run executes on the
//!   multi-core sharded engine (per-variable event queues drained on
//!   worker threads between deterministic spine barriers) with a
//!   bit-identical report for any shard count ≥ 2 and any thread count.
//!
//! ## Example
//!
//! ```rust
//! use pqs_core::probabilistic::EpsilonIntersecting;
//! use pqs_sim::latency::LatencyModel;
//! use pqs_sim::runner::{ProtocolKind, SimConfig, Simulation};
//!
//! let system = EpsilonIntersecting::with_target_epsilon(100, 1e-3).unwrap();
//! let config = SimConfig::builder()
//!     .with_duration(100.0)
//!     .with_arrival_rate(5.0)
//!     .with_read_fraction(0.9)
//!     .with_latency(LatencyModel::Uniform { min: 1e-3, max: 5e-3 })
//!     .with_crash_probability(0.1)
//!     // Probe two spare servers per operation and finish on the first
//!     // q replies: lower tail latency, crash masking.
//!     .with_probe_margin(2)
//!     .with_seed(42)
//!     .build();
//! let report = Simulation::new(&system, ProtocolKind::Safe, config).run();
//! assert!(report.completed_reads + report.completed_writes > 0);
//! assert!(report.stale_read_rate() <= 0.05);
//! assert!(report.read_latency.p99() >= report.read_latency.p50());
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod failure;
pub mod latency;
pub mod metrics;
pub(crate) mod parallel;
pub mod runner;
pub(crate) mod shard;
pub mod time;
pub mod workload;
