//! One shard of the parallel engine: a self-contained event world for the
//! variables it owns.
//!
//! The sharded engine (see [`crate::parallel`]) partitions the key space by
//! `variable % num_shards`.  Each [`ShardWorld`] owns a full event queue, a
//! full replica-cluster copy and the per-key client state for its
//! variables, and drains independently between spine barriers — no locks,
//! no channels, no shared mutable state.  Per-variable events (arrivals,
//! probe replies, timeouts, retries) never leave their shard; cross-shard
//! traffic (gossip messages, crash waves) is injected by the spine.
//!
//! Every variable draws all of its randomness (probe sets, probe
//! latencies) from its **own** ChaCha8 stream seeded by
//! [`key_stream_seed`], so a variable's trajectory is a function of the
//! seed and its own event history alone — the property that makes the
//! merged report bit-identical across all shard counts ≥ 2 and all thread
//! counts.

use crate::event::{Event, OpId, PendingSlab};
use crate::failure::{ByzantineStrategy, FailurePlan};
use crate::metrics::VariableReport;
use crate::metrics::{CompletionRecord, FlightTransition, ShardAccumulator, SimReport};
use crate::runner::{
    churn_probe_margin, deliver_probe, retry_delay, strategy_fires, OpSession, OpState,
    ProtocolKind, SimConfig, Simulation, WriteLog,
};
use crate::time::{EventQueue, SimTime};
use crate::workload::{OpKind, Operation};
use pqs_core::system::QuorumSystem;
use pqs_core::universe::ServerId;
use pqs_protocols::cluster::Cluster;
use pqs_protocols::crypto::KeyRegistry;
use pqs_protocols::diffusion;
use pqs_protocols::register::session::WriteSession;
use pqs_protocols::register::{RegisterFlavor, RegisterMap};
use pqs_protocols::server::{Behavior, VariableId};
use pqs_protocols::value::Value;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// Seed of variable `var`'s private RNG stream: a splitmix64-style mix of
/// the run seed and the variable id, so neighbouring variables get
/// statistically independent streams and the mapping is stable across
/// shard counts (it depends on the *variable*, never on the shard).
pub(crate) fn key_stream_seed(seed: u64, var: VariableId) -> u64 {
    let mut z = seed ^ var.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A digest injected by the spine, waiting for its delivery event: the
/// sub-digest itself, its **global** digest id (events carry slab slots,
/// so the id used for the cross-shard one-delta-per-digest accounting
/// rides here) and the pre-drawn latency of the answering delta (drawn on
/// the spine so the gossip RNG stream never depends on shard outcomes).
#[derive(Debug)]
struct PendingDigest {
    global_id: u64,
    digest: diffusion::GossipDigest,
    delta_rtt: SimTime,
}

/// One gossip round's cross-shard traffic bound for a single shard,
/// accumulated by the spine during planning and bulk-scheduled by
/// [`ShardWorld::schedule_round_batch`].  The buffers are drained each
/// round and keep their capacity, so steady-state routing allocates
/// nothing.
#[derive(Debug, Default)]
pub(crate) struct RoundBatch {
    /// `(delivery time, push)` in plan order.
    pub(crate) pushes: Vec<(SimTime, diffusion::GossipPush)>,
    /// `(delivery time, global digest id, sub-digest, delta latency)` in
    /// plan order.
    pub(crate) digests: Vec<(SimTime, u64, diffusion::GossipDigest, SimTime)>,
}

/// One shard's complete simulation state.
#[derive(Debug)]
pub(crate) struct ShardWorld<'a, S: QuorumSystem + ?Sized> {
    config: SimConfig,
    queue: EventQueue<Event>,
    /// The shard's replica-cluster copy.  Per-key server records live only
    /// on the key's owning shard; failure transitions are replayed in
    /// every shard so behaviour timelines agree everywhere.
    pub(crate) cluster: Cluster,
    registers: RegisterMap<'a, S>,
    /// Compact op table: one entry per *owned* op, in arrival order.  A
    /// shard never inspects other shards' op states, so a full-size table
    /// would cost `num_shards×` the memory and cold-page time for nothing.
    states: Vec<OpState>,
    /// Global op id → index into `states` (meaningful for owned ops only).
    local: Vec<OpId>,
    writes: Vec<WriteLog>,
    /// Per-variable write sequence counters (authoritative for owned
    /// variables; the spine gathers them for the digest key policies).
    pub(crate) sequences: Vec<u64>,
    /// Per-variable latest write arrival time (authoritative for owned
    /// variables).
    pub(crate) last_write_at: Vec<SimTime>,
    /// One private RNG stream per variable.
    key_rngs: Vec<ChaCha8Rng>,
    acc: ShardAccumulator,
    pending_pushes: PendingSlab<diffusion::GossipPush>,
    pending_digests: PendingSlab<PendingDigest>,
    /// Answering deltas in flight, each carrying its global digest id so
    /// blocked deliveries can be attributed once per message.
    pending_deltas: PendingSlab<(u64, diffusion::GossipDelta)>,
    /// Global ids of digests this shard answered with a non-empty delta;
    /// the spine counts the union as delta *events* (a digest's delta is
    /// one message in the sequential engine, however many shards
    /// contribute records to it).
    pub(crate) deltas_sent: BTreeSet<u64>,
    /// Global ids of deltas whose delivery a partition window blocked;
    /// the spine counts the union once per id (a blocked delta is one
    /// dropped message, however many shards its records span).
    pub(crate) deltas_blocked: BTreeSet<u64>,
    /// Scenario state the shard consults at delivery time: the partition
    /// windows and adversary strategy.  Crash, Byzantine and membership
    /// entries are applied or seeded at construction and left empty here.
    plan: FailurePlan,
    /// Present-server mask for the membership-churn margin recompute
    /// (empty when the membership schedule is — churn-free runs never
    /// touch the probe margin).
    present: Vec<bool>,
    /// Count of `true` entries in `present`.
    present_count: u64,
    /// Universe size, for the margin recompute.
    universe_n: u64,
    /// The system's minimum quorum size, for the margin recompute.
    min_quorum: u64,
    /// `(server index, variable)` pairs whose stored record may have
    /// changed since the last spine barrier — the write-probe, push and
    /// delta delivery sites append here.  Marking is conservative (a write
    /// probe to a crashed server changes nothing) but store-if-fresher is
    /// monotone, so re-syncing an unchanged record is a no-op and the
    /// incremental spine sync stays bit-identical to a full resync.
    dirty: Vec<(u32, VariableId)>,
    oldest_active: usize,
}

impl<'a, S: QuorumSystem + ?Sized> ShardWorld<'a, S> {
    /// Builds shard `shard` of `sim`: seeds owned arrivals (in op order)
    /// and the full crash schedule, and derives the per-variable RNG
    /// streams from the run seed.
    pub(crate) fn new(
        sim: &Simulation<'a, S>,
        ops: &[Operation],
        plan: &FailurePlan,
        byz_behavior: Behavior,
        shard: u64,
    ) -> Self {
        let config = sim.config;
        let num_shards = config.num_shards as u64;
        let mut cluster = Cluster::new(sim.system.universe());
        cluster.reserve_variables(config.keyspace.keys);
        cluster.corrupt_all(plan.byzantine.iter().copied(), byz_behavior);
        // Servers whose first membership event is a join start dark and
        // bootstrap through gossip when they do (same as the sequential
        // engine's setup).
        for absent in plan.initially_absent() {
            cluster.set_behavior(absent, Behavior::Crashed);
        }

        let mut registry = KeyRegistry::new();
        let signing_key = registry.register(1, config.seed ^ 0xabcdef);
        let flavor = match sim.kind {
            ProtocolKind::Safe => RegisterFlavor::Safe,
            ProtocolKind::Dissemination => RegisterFlavor::Dissemination {
                key: signing_key,
                registry: registry.clone(),
            },
            ProtocolKind::Masking { threshold } => RegisterFlavor::Masking { threshold },
        };
        let registers =
            RegisterMap::new(sim.system, flavor, 1).with_probe_margin(config.probe_margin as usize);

        let mut queue = EventQueue::new();
        let mut local = vec![0 as OpId; ops.len()];
        let mut states = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if op.variable % num_shards == shard {
                local[i] = states.len() as OpId;
                queue.schedule(op.at, Event::OpArrival { op: i as OpId });
                states.push(OpState {
                    kind: op.kind,
                    variable: op.variable,
                    start: op.at,
                    attempt: 0,
                    outstanding: 0,
                    done: false,
                    session: None,
                    sequence: 0,
                    window: None,
                });
            }
        }
        for transition in &plan.crashes {
            queue.schedule(
                transition.at,
                Event::FailureTransition {
                    server: transition.server,
                    crash: transition.crash,
                },
            );
        }
        // Membership transitions are replayed in every shard, like crash
        // transitions: each shard applies them to its own cluster copy and
        // recomputes the same probe margin from the same pure inputs.
        for membership in &plan.memberships {
            queue.schedule(
                membership.at,
                Event::MembershipTransition {
                    server: membership.server,
                    join: membership.join,
                },
            );
        }
        let universe_n = sim.system.universe().size() as u64;
        let min_quorum = sim.system.min_quorum_size() as u64;
        let mut present: Vec<bool> = Vec::new();
        let mut present_count = 0u64;
        if !plan.memberships.is_empty() {
            present = vec![true; universe_n as usize];
            for absent in plan.initially_absent() {
                present[absent.index() as usize] = false;
            }
            present_count = present.iter().filter(|&&p| p).count() as u64;
        }

        let nvars = config.keyspace.keys as usize;
        let report = SimReport {
            per_variable: (0..nvars)
                .map(|i| VariableReport {
                    variable: i as VariableId,
                    ..VariableReport::default()
                })
                .collect(),
            per_component_stale_reads: vec![
                0;
                plan.partitions
                    .iter()
                    .map(|w| w.components as usize)
                    .max()
                    .unwrap_or(0)
            ],
            ..SimReport::default()
        };
        ShardWorld {
            config,
            queue,
            cluster,
            registers,
            states,
            local,
            writes: (0..nvars).map(|_| WriteLog::default()).collect(),
            sequences: vec![0; nvars],
            last_write_at: vec![f64::NEG_INFINITY; nvars],
            key_rngs: (0..nvars as u64)
                .map(|v| ChaCha8Rng::seed_from_u64(key_stream_seed(config.seed, v)))
                .collect(),
            acc: ShardAccumulator {
                report,
                ..ShardAccumulator::default()
            },
            pending_pushes: PendingSlab::new(),
            pending_digests: PendingSlab::new(),
            pending_deltas: PendingSlab::new(),
            deltas_sent: BTreeSet::new(),
            deltas_blocked: BTreeSet::new(),
            plan: FailurePlan {
                partitions: plan.partitions.clone(),
                strategy: plan.strategy.clone(),
                ..FailurePlan::none()
            },
            present,
            present_count,
            universe_n,
            min_quorum,
            dirty: Vec::new(),
            oldest_active: 0,
        }
    }

    /// Drains this shard's queue up to (strictly before) `barrier`, or
    /// completely with `None`.  Events *at* the barrier belong to the next
    /// window: the spine's own work at a barrier time (crash application,
    /// round planning) happens before them, matching the sequential
    /// engine's FIFO order in which upfront-seeded transitions and round
    /// events precede same-time foreground events scheduled later.
    pub(crate) fn drain_until(&mut self, barrier: Option<SimTime>) {
        while let Some(next) = self.queue.peek_time() {
            if let Some(b) = barrier {
                if next >= b {
                    break;
                }
            }
            let (t, event) = self.queue.pop().expect("peeked event must pop");
            self.handle(t, event);
        }
    }

    /// Bulk-schedules one spine-planned round of cross-shard gossip:
    /// payloads go into the pending slabs and delivery events are inserted
    /// in ascending-time order (an O(1) append each, whichever queue
    /// backend serves), replacing the old one-call-per-message injection.
    ///
    /// Determinism: the queue pops by `(time, insertion sequence)` and the
    /// sort is **stable**, so equal-time messages keep their plan order —
    /// the pop order is bit-identical to unsorted per-message injection.
    /// The batch buffers are drained with capacity kept for the next round.
    pub(crate) fn schedule_round_batch(&mut self, batch: &mut RoundBatch) {
        // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: a NaN draw
        // must not scramble the sort before `schedule`'s validation
        // rejects it.
        batch.pushes.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (at, push) in batch.pushes.drain(..) {
            let slot = self.pending_pushes.insert(push);
            self.queue.schedule(at, Event::GossipPush { push: slot });
        }
        batch.digests.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (at, global_id, digest, delta_rtt) in batch.digests.drain(..) {
            let slot = self.pending_digests.insert(PendingDigest {
                global_id,
                digest,
                delta_rtt,
            });
            self.queue
                .schedule(at, Event::GossipDigest { digest: slot });
        }
    }

    /// Applies this shard's record changes since the last barrier to the
    /// spine's planning cluster and clears the dirty list.
    ///
    /// The list is sorted and deduplicated first (a hot key can be marked
    /// many times per window); each surviving `(server, variable)` pair
    /// re-stores the shard's current record into the spine.  Because
    /// stores are strictly-fresher-wins and shard records are monotone in
    /// time, replaying only the dirty pairs leaves the spine bit-identical
    /// to a from-scratch full resync — an invariant the debug builds check
    /// at every barrier and the property suite exercises under random
    /// interleavings.
    pub(crate) fn sync_dirty_into(&mut self, spine: &mut Cluster, signed: bool) {
        self.dirty.sort_unstable();
        self.dirty.dedup();
        for &(server, var) in &self.dirty {
            let id = ServerId::new(server);
            let src = self.cluster.server(id);
            if signed {
                spine
                    .server_mut(id)
                    .store_signed_if_fresher(var, src.stored_signed(var));
            } else {
                spine
                    .server_mut(id)
                    .store_plain_if_fresher(var, src.stored_plain(var));
            }
        }
        self.dirty.clear();
    }

    /// Finishes the shard: stamps the cluster-side tallies into the report
    /// and releases the accumulator for merging.
    pub(crate) fn into_accumulator(mut self) -> ShardAccumulator {
        self.acc.report.per_server_accesses = self.cluster.access_counts().to_vec();
        self.acc.report.total_operations = self.cluster.total_accesses();
        self.acc
    }

    /// Processes one event — the sequential engine's match arms, verbatim
    /// in per-probe/per-session semantics (the probe and retry helpers are
    /// literally shared), with two sharding differences: randomness comes
    /// from the event's variable's own stream, and round planning lives on
    /// the spine (a [`Event::GossipRound`] can never appear here).
    fn handle(&mut self, t: SimTime, event: Event) {
        match event {
            Event::OpArrival { op } => {
                self.acc.logical_events += 1;
                let idx = self.local[op as usize] as usize;
                self.acc.transitions.push(FlightTransition {
                    time: t,
                    op,
                    start: true,
                });
                // The compact table holds owned ops in arrival order, so
                // the first not-done entry bounds the earliest start of
                // any unfinished op this shard's write logs care about
                // (staleness is per-variable and variables never cross
                // shards).
                while self.oldest_active < self.states.len() && self.states[self.oldest_active].done
                {
                    self.oldest_active += 1;
                }
                let horizon = self.states[self.oldest_active.min(idx)].start;
                let var = self.states[idx].variable as usize;
                self.writes[var].advance(horizon);
                if self.states[idx].kind == OpKind::Write {
                    self.sequences[var] += 1;
                    self.states[idx].sequence = self.sequences[var];
                    self.last_write_at[var] = t;
                    let handle = self.writes[var].open(t, self.sequences[var]);
                    self.states[idx].window = Some(handle);
                }
                self.start_attempt(op, t);
            }
            Event::ProbeReply {
                op,
                attempt,
                server,
            } => {
                self.acc.logical_events += 1;
                let idx = self.local[op as usize] as usize;
                let fed = if self.plan.blocks_probe(t, self.states[idx].variable, server) {
                    // The message never crossed the partition: no
                    // server-side effect, and the client sees one more
                    // silent server (exactly like a crashed replier).
                    self.acc.report.dropped_probes += 1;
                    !self.states[idx].done && self.states[idx].attempt == attempt
                } else {
                    if self.states[idx].kind == OpKind::Write {
                        // The probe's server-side store (which happens
                        // whether or not the client still cares) may
                        // freshen this record; non-correct receivers store
                        // nothing, but the over-mark is harmless — see
                        // `dirty`.
                        self.dirty.push((server.index(), self.states[idx].variable));
                    }
                    // An adaptive sleeper answers exactly this probe as a
                    // stale replier when its foreground predicate fires —
                    // `sequences`/`last_write_at` are authoritative here,
                    // on the variable's owning shard.
                    let flip = !matches!(self.plan.strategy, ByzantineStrategy::Static)
                        && self.cluster.server(server).behavior() == Behavior::Correct
                        && strategy_fires(
                            &self.plan.strategy,
                            server,
                            self.states[idx].variable,
                            t,
                            &self.sequences,
                            &self.last_write_at,
                        );
                    if flip {
                        self.cluster.set_behavior(server, Behavior::ByzantineStale);
                        self.acc.report.adaptive_activations += 1;
                    }
                    let fed = deliver_probe::<S>(
                        &mut self.states[idx],
                        server,
                        &mut self.cluster,
                        attempt,
                    );
                    if flip {
                        self.cluster.set_behavior(server, Behavior::Correct);
                    }
                    fed
                };
                if fed {
                    let state = &mut self.states[idx];
                    state.outstanding -= 1;
                    let complete = match state.session.as_ref() {
                        Some(OpSession::Read(s)) => s.is_complete(),
                        Some(OpSession::Write(_, s)) => s.is_complete(),
                        None => false,
                    };
                    if complete {
                        self.finalize(op, t);
                        self.acc.transitions.push(FlightTransition {
                            time: t,
                            op,
                            start: false,
                        });
                    } else if self.states[idx].outstanding == 0 {
                        self.end_attempt(op, t);
                    }
                }
            }
            Event::OpTimeout { op, attempt } => {
                self.acc.logical_events += 1;
                let idx = self.local[op as usize] as usize;
                if !self.states[idx].done && self.states[idx].attempt == attempt {
                    let var = self.states[idx].variable as usize;
                    self.acc.report.timed_out_attempts += 1;
                    self.acc.report.per_variable[var].timed_out_attempts += 1;
                    self.end_attempt(op, t);
                }
            }
            Event::RetryAttempt { op, attempt } => {
                self.acc.logical_events += 1;
                let idx = self.local[op as usize] as usize;
                if !self.states[idx].done && self.states[idx].attempt == attempt {
                    self.start_attempt(op, t);
                }
            }
            Event::FailureTransition { server, crash } => {
                // Replayed in every shard (each owns a full cluster copy);
                // counted once, by the spine.
                let behavior = if crash {
                    Behavior::Crashed
                } else {
                    Behavior::Correct
                };
                self.cluster.set_behavior(server, behavior);
            }
            Event::MembershipTransition { server, join } => {
                // Replayed in every shard, like crash transitions (and
                // counted once, by the spine): a joiner comes up correct
                // with reset stores, a leaver goes dark, and the probe
                // margin is recomputed online against the ε budget — pure
                // arithmetic, so every shard lands on the same margin at
                // the same simulated time.
                let si = server.index() as usize;
                if join {
                    self.cluster.join_server(server, self.config.keyspace.keys);
                    if !self.present[si] {
                        self.present[si] = true;
                        self.present_count += 1;
                    }
                } else {
                    self.cluster.set_behavior(server, Behavior::Crashed);
                    if self.present[si] {
                        self.present[si] = false;
                        self.present_count -= 1;
                    }
                }
                self.registers.set_probe_margin(churn_probe_margin(
                    self.config.probe_margin as u64,
                    self.universe_n,
                    self.min_quorum,
                    self.present_count,
                ));
            }
            Event::GossipRound { .. } => {
                unreachable!("the sharded engine plans gossip rounds on the spine")
            }
            Event::GossipPush { push } => {
                self.acc.logical_events += 1;
                if let Some(p) = self.pending_pushes.take(push) {
                    // Partitions gate gossip at delivery time only, so
                    // spine planning (and the gossip RNG stream) is
                    // untouched.  A push is one message on one shard, so
                    // the per-shard counter sums exactly.
                    if self.plan.blocks_link(t, p.from, p.to) {
                        self.acc.report.partition_blocked_gossip += 1;
                        return;
                    }
                    let var = p.variable as usize;
                    self.acc.report.gossip_pushes += 1;
                    self.acc.report.per_variable[var].gossip_pushes += 1;
                    if diffusion::deliver(&mut self.cluster, &p) {
                        self.acc.report.gossip_stores += 1;
                        self.acc.report.per_variable[var].gossip_stores += 1;
                        self.dirty.push((p.to.index(), p.variable));
                    }
                }
            }
            Event::GossipDigest { digest } => {
                // Digest deliveries are spine-level events (counted there:
                // one digest may fan out to several shards but is one
                // message); only its per-variable outcomes happen here.
                if let Some(p) = self.pending_digests.take(digest) {
                    if let Some(diff) = diffusion::diff_digest(&self.cluster, &p.digest) {
                        for &var in &diff.avoided {
                            self.acc.report.gossip_redundant_pushes_avoided += 1;
                            self.acc.report.per_variable[var as usize]
                                .gossip_redundant_pushes_avoided += 1;
                        }
                        if !diff.delta.records.is_empty() {
                            self.deltas_sent.insert(p.global_id);
                            let slot = self.pending_deltas.insert((p.global_id, diff.delta));
                            self.queue
                                .schedule(t + p.delta_rtt, Event::GossipDelta { delta: slot });
                        }
                    }
                }
            }
            Event::GossipDelta { delta } => {
                // Likewise counted as one spine-level event per digest id;
                // the per-record push/store accounting happens here.
                if let Some((global_id, d)) = self.pending_deltas.take(delta) {
                    // Re-checked at delivery (the delta may cross a window
                    // boundary its digest did not); blocked ids are
                    // deduplicated on the spine into one dropped message.
                    if self.plan.blocks_link(t, d.from, d.to) {
                        self.deltas_blocked.insert(global_id);
                        return;
                    }
                    for (var, record) in &d.records {
                        let vi = *var as usize;
                        self.acc.report.gossip_pushes += 1;
                        self.acc.report.per_variable[vi].gossip_pushes += 1;
                        self.acc.report.per_variable[vi].gossip_delta_records += 1;
                        if diffusion::deliver_record(&mut self.cluster, d.to, *var, record) {
                            self.acc.report.gossip_stores += 1;
                            self.acc.report.per_variable[vi].gossip_stores += 1;
                            self.dirty.push((d.to.index(), *var));
                        }
                    }
                }
            }
        }
    }

    /// [`Simulation::start_attempt`]'s sharded twin: identical session and
    /// scheduling logic, drawing from the operation's variable's stream.
    fn start_attempt(&mut self, op: OpId, now: SimTime) {
        self.cluster.note_operation();
        let state = &mut self.states[self.local[op as usize] as usize];
        let rng = &mut self.key_rngs[state.variable as usize];
        let probe = self.registers.sample_probe_set(rng);
        match state.kind {
            OpKind::Write => {
                let (record, session) = match state.session.take() {
                    Some(OpSession::Write(record, old)) => {
                        let session =
                            WriteSession::new(old.timestamp(), probe.needed, probe.probed());
                        (record, session)
                    }
                    _ => self.registers.begin_write(
                        state.variable,
                        Value::from_u64(state.sequence),
                        probe.needed,
                        probe.probed(),
                    ),
                };
                state.session = Some(OpSession::Write(record, session));
            }
            OpKind::Read => {
                state.session = Some(OpSession::Read(self.registers.begin_read(probe.needed)));
            }
        }
        state.outstanding = probe.probed();
        for &server in &probe.servers {
            let rtt = self.config.latency.sample(rng);
            self.queue.schedule(
                now + rtt,
                Event::ProbeReply {
                    op,
                    attempt: state.attempt,
                    server,
                },
            );
        }
        self.queue.schedule(
            now + self.config.op_timeout.max(0.0),
            Event::OpTimeout {
                op,
                attempt: state.attempt,
            },
        );
    }

    /// [`Simulation::end_attempt`]'s sharded twin.
    fn end_attempt(&mut self, op: OpId, now: SimTime) {
        let idx = self.local[op as usize] as usize;
        let responders = match self.states[idx].session.as_ref() {
            Some(OpSession::Read(s)) => s.responders(),
            Some(OpSession::Write(_, s)) => s.acks(),
            None => 0,
        };
        if responders > 0 {
            self.finalize(op, now);
            self.acc.transitions.push(FlightTransition {
                time: now,
                op,
                start: false,
            });
        } else if self.states[idx].attempt < self.config.max_retries {
            self.states[idx].attempt += 1;
            let attempt = self.states[idx].attempt;
            let var = self.states[idx].variable as usize;
            self.acc.report.retries += 1;
            self.acc.report.per_variable[var].retries += 1;
            let delay = retry_delay(&self.config, attempt);
            if delay > 0.0 {
                self.queue
                    .schedule(now + delay, Event::RetryAttempt { op, attempt });
            } else {
                self.start_attempt(op, now);
            }
        } else {
            let var = self.states[idx].variable as usize;
            self.states[idx].done = true;
            self.acc.transitions.push(FlightTransition {
                time: now,
                op,
                start: false,
            });
            self.acc.report.unavailable_ops += 1;
            self.acc.report.per_variable[var].unavailable_ops += 1;
            if let Some(handle) = self.states[idx].window {
                self.writes[var].fail(handle, now);
            }
        }
    }

    /// [`Simulation::finalize`]'s sharded twin: the order-sensitive
    /// aggregate latencies go into the completion log (replayed canonically
    /// by the merge); per-variable stats record directly, their order being
    /// the variable's own completion order regardless of sharding.
    fn finalize(&mut self, op: OpId, now: SimTime) {
        let idx = self.local[op as usize] as usize;
        let state = &mut self.states[idx];
        state.done = true;
        let latency = now - state.start;
        let var = state.variable as usize;
        match state.session.as_ref() {
            Some(OpSession::Write(_, _)) => {
                self.acc.report.completed_writes += 1;
                self.acc.completions.push(CompletionRecord {
                    time: now,
                    op,
                    read: false,
                    latency,
                });
                let pv = &mut self.acc.report.per_variable[var];
                pv.completed_writes += 1;
                pv.latency.record(latency);
                if let Some(handle) = state.window {
                    self.writes[var].close(handle, now);
                }
            }
            Some(OpSession::Read(session)) => {
                let result = session
                    .finish()
                    .expect("finalize is only called with at least one responder");
                self.acc.report.completed_reads += 1;
                self.acc.completions.push(CompletionRecord {
                    time: now,
                    op,
                    read: true,
                    latency,
                });
                let pv = &mut self.acc.report.per_variable[var];
                pv.completed_reads += 1;
                pv.latency.record(latency);
                let read_start = state.start;
                let read_end = now;
                if self.writes[var].concurrent_with(read_start, read_end) {
                    self.acc.report.concurrent_reads += 1;
                    self.acc.report.per_variable[var].concurrent_reads += 1;
                } else {
                    let expected = self.writes[var].latest_completed_before(read_start);
                    match (expected, result) {
                        (None, _) => {
                            self.acc.report.unwritten_reads += 1;
                            self.acc.report.per_variable[var].unwritten_reads += 1;
                        }
                        (Some(seq), Some(tv)) => {
                            let got = tv.value.as_u64().unwrap_or(0);
                            if got < seq {
                                self.acc.report.stale_reads += 1;
                                self.acc.report.per_variable[var].stale_reads += 1;
                                note_component_staleness(
                                    &self.plan,
                                    now,
                                    var,
                                    &mut self.acc.report,
                                );
                            }
                        }
                        (Some(_), None) => {
                            self.acc.report.empty_reads += 1;
                            self.acc.report.per_variable[var].empty_reads += 1;
                            note_component_staleness(&self.plan, now, var, &mut self.acc.report);
                        }
                    }
                }
            }
            None => unreachable!("finalized operation must have a session"),
        }
    }
}

/// The sequential engine's per-component staleness attribution, as a free
/// function so the shard's `finalize` can call it while its op state is
/// borrowed: a stale/empty read finalized inside an active partition window
/// counts against its client's component (`variable % components`).
fn note_component_staleness(plan: &FailurePlan, now: SimTime, var: usize, report: &mut SimReport) {
    let Some(window) = plan.active_partition(now) else {
        return;
    };
    report.per_component_stale_reads[(var as u64 % window.components as u64) as usize] += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_streams_differ_per_variable_and_per_seed() {
        let a = key_stream_seed(42, 0);
        let b = key_stream_seed(42, 1);
        let c = key_stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And the mapping is a pure function of (seed, variable).
        assert_eq!(a, key_stream_seed(42, 0));
    }
}
