//! What a simulation run measures.

use pqs_math::mc::RunningStats;

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Reads that completed (returned a value or ⊥).
    pub completed_reads: u64,
    /// Writes that completed (stored at at least one server).
    pub completed_writes: u64,
    /// Reads that returned a value older than the latest completed,
    /// non-concurrent write (the Theorem 3.2 / 4.2 / 5.2 failure event).
    pub stale_reads: u64,
    /// Reads that returned ⊥ (no acceptable value) even though a write had
    /// completed.
    pub empty_reads: u64,
    /// Operations that failed because no server of the chosen quorum
    /// answered.
    pub unavailable_ops: u64,
    /// Reads that were concurrent with a write (excluded from the staleness
    /// accounting, as in the theorems' hypotheses).
    pub concurrent_reads: u64,
    /// Latency statistics over completed operations (seconds).
    pub latency: RunningStats,
    /// Per-server access counts.
    pub per_server_accesses: Vec<u64>,
    /// Total quorum operations issued (for load normalisation).
    pub total_operations: u64,
}

impl SimReport {
    /// Fraction of non-concurrent reads that were stale or empty —
    /// the empirical counterpart of ε.
    pub fn stale_read_rate(&self) -> f64 {
        let eligible = self.completed_reads.saturating_sub(self.concurrent_reads);
        if eligible == 0 {
            0.0
        } else {
            (self.stale_reads + self.empty_reads) as f64 / eligible as f64
        }
    }

    /// Fraction of issued operations that found no live server in their
    /// quorum — the empirical counterpart of the failure probability.
    pub fn unavailability(&self) -> f64 {
        let total = self.completed_reads + self.completed_writes + self.unavailable_ops;
        if total == 0 {
            0.0
        } else {
            self.unavailable_ops as f64 / total as f64
        }
    }

    /// Empirical load: the busiest server's share of all per-server accesses
    /// normalised by the number of quorum operations (Definition 2.4
    /// measured on the wire).
    pub fn empirical_load(&self) -> f64 {
        if self.total_operations == 0 {
            return 0.0;
        }
        let max = self.per_server_accesses.iter().copied().max().unwrap_or(0);
        max as f64 / self.total_operations as f64
    }

    /// Mean operation latency in seconds.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_with_no_operations_are_zero() {
        let r = SimReport::default();
        assert_eq!(r.stale_read_rate(), 0.0);
        assert_eq!(r.unavailability(), 0.0);
        assert_eq!(r.empirical_load(), 0.0);
        assert_eq!(r.mean_latency(), 0.0);
    }

    #[test]
    fn rates_compute_from_counts() {
        let mut r = SimReport {
            completed_reads: 100,
            completed_writes: 50,
            stale_reads: 3,
            empty_reads: 1,
            unavailable_ops: 10,
            concurrent_reads: 20,
            total_operations: 150,
            per_server_accesses: vec![10, 30, 20],
            ..SimReport::default()
        };
        r.latency.record(0.1);
        r.latency.record(0.3);
        assert!((r.stale_read_rate() - 4.0 / 80.0).abs() < 1e-12);
        assert!((r.unavailability() - 10.0 / 160.0).abs() < 1e-12);
        assert!((r.empirical_load() - 30.0 / 150.0).abs() < 1e-12);
        assert!((r.mean_latency() - 0.2).abs() < 1e-12);
    }
}
