//! What a simulation run measures.

use crate::time::SimTime;
use pqs_math::mc::RunningStats;
use pqs_protocols::server::VariableId;

/// A collection of latency samples supporting percentile queries.
///
/// [`RunningStats`] aggregates on the fly but cannot answer percentile
/// questions; the event engine's tail-latency claims (the whole point of
/// probing `q + margin` servers) need p95/p99, so completed-operation
/// latencies are kept individually.  Sample counts are bounded by the
/// workload size, so memory stays proportional to the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencySamples {
    samples: Vec<f64>,
}

impl LatencySamples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency observation (seconds).
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// The `p`-th percentile (nearest-rank on a sorted copy; `p` in
    /// `[0, 100]`).  Returns 0 when empty.  For several quantiles of the
    /// same collection prefer [`percentiles`](Self::percentiles), which
    /// sorts once.
    pub fn percentile(&self, p: f64) -> f64 {
        self.percentiles(&[p])[0]
    }

    /// Several percentiles from a single sort of the samples (0 for every
    /// entry when the collection is empty).
    pub fn percentiles(&self, ps: &[f64]) -> Vec<f64> {
        if self.samples.is_empty() {
            return vec![0.0; ps.len()];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        ps.iter()
            .map(|p| {
                let p = p.clamp(0.0, 100.0);
                let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
                sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
            })
            .collect()
    }

    /// Median latency.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th-percentile latency — the tail the first-q-of-probed access model
    /// is designed to cut.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Iterates over the raw samples in recording order.
    pub fn samples_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().copied()
    }
}

/// Per-variable (per-key) breakdown of one simulation run.
///
/// The sharded workload spreads operations over a
/// [`KeySpace`](crate::workload::KeySpace); each key's consistency, availability
/// and latency is accounted separately so skewed-popularity runs can show
/// where the hot keys sit.  Summing any op-count field over all variables
/// reproduces the corresponding [`SimReport`] aggregate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VariableReport {
    /// The key this row describes.
    pub variable: VariableId,
    /// Reads of this key that completed.
    pub completed_reads: u64,
    /// Writes of this key that completed.
    pub completed_writes: u64,
    /// Stale reads of this key.
    pub stale_reads: u64,
    /// Reads of this key that returned ⊥ despite a completed write.
    pub empty_reads: u64,
    /// Reads of this key that completed before any write of the key had —
    /// nothing exists to be stale against, so they are structurally
    /// ineligible for the staleness accounting.
    pub unwritten_reads: u64,
    /// Operations on this key that failed outright.
    pub unavailable_ops: u64,
    /// Reads of this key concurrent with a write of the same key.
    pub concurrent_reads: u64,
    /// Zero-reply attempts on this key that were resampled.
    pub retries: u64,
    /// Attempts on this key cut short by the per-operation timeout.
    pub timed_out_attempts: u64,
    /// Gossip pushes carrying this key's records that were delivered
    /// (whether or not they freshened the receiver).
    pub gossip_pushes: u64,
    /// Gossip pushes of this key that actually freshened their receiver's
    /// stored record — the effective anti-entropy work done for the key.
    pub gossip_stores: u64,
    /// Records of this key transferred inside digest-mode deltas (a subset
    /// of `gossip_pushes`: every delta record is counted in both, so the
    /// per-key push totals stay comparable across gossip modes).
    pub gossip_delta_records: u64,
    /// Transfers of this key's records that digest mode proved unnecessary:
    /// the digest receiver held the record within the exchange's scope but
    /// the summary showed the digest sender already had it — exactly the
    /// redundant pushes a blind full-push exchange would have made.
    pub gossip_redundant_pushes_avoided: u64,
    /// Summed rounds-to-coverage over this key's coverage events: each time
    /// a fresh record first reaches the coverage target (90% of correct
    /// servers), the number of gossip rounds it took is added here.
    pub coverage_rounds_sum: u64,
    /// Number of records of this key that reached the coverage target.
    pub coverage_events: u64,
    /// Latencies of this key's completed operations (reads and writes).
    pub latency: LatencySamples,
}

impl VariableReport {
    /// Total operations issued against this key (completed + failed).
    pub fn operations(&self) -> u64 {
        self.completed_reads + self.completed_writes + self.unavailable_ops
    }

    /// Fraction of this key's non-concurrent reads that were stale or
    /// empty — the key's empirical ε.
    pub fn stale_read_rate(&self) -> f64 {
        let eligible = self.completed_reads.saturating_sub(self.concurrent_reads);
        if eligible == 0 {
            0.0
        } else {
            (self.stale_reads + self.empty_reads) as f64 / eligible as f64
        }
    }

    /// Mean operation latency on this key in seconds.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// 99th-percentile latency on this key.
    pub fn p99_latency(&self) -> f64 {
        self.latency.p99()
    }

    /// Mean number of gossip rounds it took this key's fresh records to
    /// reach the coverage target (90% of correct servers), or `None` if no
    /// record of this key ever converged (e.g. diffusion was off).  0 means
    /// the foreground write itself already covered the target before the
    /// first round observed it.
    pub fn mean_rounds_to_coverage(&self) -> Option<f64> {
        if self.coverage_events == 0 {
            None
        } else {
            Some(self.coverage_rounds_sum as f64 / self.coverage_events as f64)
        }
    }
}

/// Aggregated results of one simulation run.
///
/// Two reports of the same `SimConfig` + seed compare equal (`PartialEq`):
/// the engine is fully deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Reads that completed (returned a value or ⊥).
    pub completed_reads: u64,
    /// Writes that completed (stored at at least one server).
    pub completed_writes: u64,
    /// Reads that returned a value older than the latest completed,
    /// non-concurrent write (the Theorem 3.2 / 4.2 / 5.2 failure event).
    pub stale_reads: u64,
    /// Reads that returned ⊥ (no acceptable value) even though a write had
    /// completed.
    pub empty_reads: u64,
    /// Reads that completed before any write of their key had: there is
    /// nothing to be stale against, so they can never count as stale or
    /// empty.  [`stale_read_rate`](Self::stale_read_rate) keeps them in its
    /// denominator (the workload-level rate every validator sweeps);
    /// [`eligible_stale_read_rate`](Self::eligible_stale_read_rate)
    /// excludes them, which is the per-read probability the analytic
    /// bounds — and the capacity planner's prediction contract — speak
    /// about.
    pub unwritten_reads: u64,
    /// Operations that failed because no probed server answered within any
    /// attempt.
    pub unavailable_ops: u64,
    /// Reads that were concurrent with a write (excluded from the staleness
    /// accounting, as in the theorems' hypotheses).
    pub concurrent_reads: u64,
    /// Latency statistics over completed operations (seconds).
    pub latency: RunningStats,
    /// Per-sample latencies of completed reads (for percentiles).
    pub read_latency: LatencySamples,
    /// Per-sample latencies of completed writes (for percentiles).
    pub write_latency: LatencySamples,
    /// Operation attempts that were resampled onto a fresh probe set after
    /// gathering zero replies (timeout-and-resample retries).
    pub retries: u64,
    /// Attempts cut short by the per-operation timeout.
    pub timed_out_attempts: u64,
    /// Write-diffusion rounds the engine scheduled (0 with
    /// [`SimConfig::diffusion`](crate::runner::SimConfig::diffusion) off).
    pub gossip_rounds: u64,
    /// Server-to-server record transfers delivered by gossip: full-push
    /// pushes plus digest-mode delta records — the *push volume* the
    /// adaptive policies exist to cut.
    pub gossip_pushes: u64,
    /// Gossip pushes that freshened their receiver's stored record.
    pub gossip_stores: u64,
    /// Digest messages delivered in digest/delta mode (0 in full-push mode
    /// and with diffusion off).  A digest carries per-key timestamps, not
    /// records, so it is counted separately from the push volume.
    pub gossip_digests: u64,
    /// Record transfers the digests proved unnecessary across all keys —
    /// the redundant share of a blind push exchange that digest mode never
    /// put on the wire.
    pub gossip_redundant_pushes_avoided: u64,
    /// Total discrete events processed by the engine.
    pub events_processed: u64,
    /// Largest number of simultaneously in-flight operations.
    pub max_in_flight: u64,
    /// Time-weighted mean number of in-flight operations.
    pub mean_in_flight: f64,
    /// Per-server access counts.
    pub per_server_accesses: Vec<u64>,
    /// Total quorum operations issued (for load normalisation).
    pub total_operations: u64,
    /// Per-key breakdown, one entry per key of the run's
    /// [`KeySpace`](crate::workload::KeySpace) (index == key id).
    pub per_variable: Vec<VariableReport>,
    /// Probe replies dropped because an active partition window separated
    /// the probed server from the operation's component (0 without a
    /// partition schedule; the dropped probe behaves like a silent server).
    pub dropped_probes: u64,
    /// Gossip messages (pushes, digests, deltas) whose delivery an active
    /// partition window blocked at the component border.
    pub partition_blocked_gossip: u64,
    /// Probe replies on which an adaptive-adversary sleeper's predicate
    /// fired and the reply was answered stale (0 under
    /// [`ByzantineStrategy::Static`](crate::failure::ByzantineStrategy)).
    pub adaptive_activations: u64,
    /// Membership transitions (joins + leaves) the run executed.
    pub membership_events: u64,
    /// Stale + empty reads finalized *during* an active partition window,
    /// bucketed by the component of the read's key (`key % components`);
    /// sized to the largest component count over all windows, empty
    /// without a partition schedule.
    pub per_component_stale_reads: Vec<u64>,
    /// Partition windows whose heal time the gossip spine observed (a
    /// round at or after `heals_at` fired while diffusion was on).
    pub heals_observed: u64,
    /// Summed gossip rounds from each observed heal until every key's
    /// freshest-at-heal record reached the coverage target — the
    /// re-convergence debt a healed partition leaves behind.
    pub post_heal_rounds_to_coverage: u64,
    /// Number of observed heals whose post-heal coverage completed before
    /// the run ended (the denominator for the mean of the sum above).
    pub post_heal_coverage_completions: u64,
    /// For the *first* observed heal: the cumulative number of keys whose
    /// freshest-at-heal record had reached the coverage target, one entry
    /// per gossip round after the heal.  Monotone by construction — the
    /// property tests assert it.
    pub post_heal_coverage: Vec<u64>,
}

impl SimReport {
    /// Fraction of non-concurrent reads that were stale or empty —
    /// the empirical counterpart of ε.
    pub fn stale_read_rate(&self) -> f64 {
        let eligible = self.completed_reads.saturating_sub(self.concurrent_reads);
        if eligible == 0 {
            0.0
        } else {
            (self.stale_reads + self.empty_reads) as f64 / eligible as f64
        }
    }

    /// Fraction of *eligible* reads — non-concurrent reads of keys with at
    /// least one completed predecessor write — that were stale or empty.
    /// This is the empirical counterpart of the analytic per-read ε (the
    /// Lemma 3.15 nonintersection probability): each eligible read is one
    /// Bernoulli trial of "did my quorum miss the latest write's probe
    /// set".  Reads of never-written keys are excluded, since they cannot
    /// miss anything; [`stale_read_rate`](Self::stale_read_rate) keeps
    /// them and therefore dilutes toward 0 on sparse key spaces.
    pub fn eligible_stale_read_rate(&self) -> f64 {
        let eligible = self
            .completed_reads
            .saturating_sub(self.concurrent_reads)
            .saturating_sub(self.unwritten_reads);
        if eligible == 0 {
            0.0
        } else {
            (self.stale_reads + self.empty_reads) as f64 / eligible as f64
        }
    }

    /// Fraction of issued operations that found no live server in their
    /// probe set — the empirical counterpart of the failure probability.
    pub fn unavailability(&self) -> f64 {
        let total = self.completed_reads + self.completed_writes + self.unavailable_ops;
        if total == 0 {
            0.0
        } else {
            self.unavailable_ops as f64 / total as f64
        }
    }

    /// Empirical load: the busiest server's share of all per-server accesses
    /// normalised by the number of quorum operations (Definition 2.4
    /// measured on the wire).
    pub fn empirical_load(&self) -> f64 {
        if self.total_operations == 0 {
            return 0.0;
        }
        let max = self.per_server_accesses.iter().copied().max().unwrap_or(0);
        max as f64 / self.total_operations as f64
    }

    /// Mean operation latency in seconds.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// 99th-percentile latency over all completed operations (reads and
    /// writes merged).
    pub fn p99_latency(&self) -> SimTime {
        let mut merged = LatencySamples::new();
        merged.samples.extend(
            self.read_latency
                .samples_iter()
                .chain(self.write_latency.samples_iter()),
        );
        merged.p99()
    }

    /// Total operations summed over the per-key breakdown; equals
    /// `completed_reads + completed_writes + unavailable_ops` on every run
    /// (the sharded accounting must not lose operations).
    pub fn summed_per_variable_ops(&self) -> u64 {
        self.per_variable.iter().map(|v| v.operations()).sum()
    }

    /// The key that absorbed the most operations (ties broken by lowest
    /// key id); `None` when the run recorded no per-key data.
    pub fn hottest_variable(&self) -> Option<&VariableReport> {
        self.per_variable.iter().max_by(|a, b| {
            a.operations()
                .cmp(&b.operations())
                .then(b.variable.cmp(&a.variable))
        })
    }

    /// Hot-key load imbalance: the busiest key's operation count divided by
    /// the mean per-key operation count (1.0 = perfectly balanced; a
    /// Zipf(1) workload over k keys approaches `k / H_k`).  Returns 0 when
    /// no per-key data was recorded.
    pub fn key_load_imbalance(&self) -> f64 {
        if self.per_variable.is_empty() {
            return 0.0;
        }
        let total = self.summed_per_variable_ops();
        if total == 0 {
            return 0.0;
        }
        let max = self
            .per_variable
            .iter()
            .map(|v| v.operations())
            .max()
            .unwrap_or(0);
        let mean = total as f64 / self.per_variable.len() as f64;
        max as f64 / mean
    }
}

/// Wall-clock breakdown of one engine run by pipeline stage, returned by
/// [`Simulation::run_with_stats`](crate::runner::Simulation::run_with_stats).
///
/// The sharded engine alternates between parallel shard drains and serial
/// spine work at each gossip barrier; the split below is exactly the
/// Amdahl decomposition of a run — `drain` scales with worker threads,
/// everything else is the serial fraction.  Timings live **outside**
/// [`SimReport`] on purpose: reports are compared bit-for-bit across
/// shard/thread counts and wall-clock measurements would break that.
///
/// For the sequential engine (`num_shards ≤ 1`) the whole run is one
/// drain: `drain_seconds == total_seconds` and the spine stages are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStageTimings {
    /// Time spent draining shard event queues (parallel across threads).
    pub drain_seconds: f64,
    /// Time spent synchronising shard records into the spine cluster at
    /// barriers (serial).
    pub sync_seconds: f64,
    /// Time spent planning gossip rounds on the spine — RNG draws, digest
    /// assembly, per-shard bucketing (serial).
    pub plan_seconds: f64,
    /// Time spent bulk-scheduling the planned messages into shard queues
    /// (serial).
    pub route_seconds: f64,
    /// Wall-clock time of the whole run, including setup and the final
    /// merge.
    pub total_seconds: f64,
}

impl EngineStageTimings {
    /// Total serial (spine) time: sync + plan + route.
    pub fn spine_seconds(&self) -> f64 {
        self.sync_seconds + self.plan_seconds + self.route_seconds
    }

    /// Serial fraction of the run: spine time over total wall time (0 for
    /// an instantaneous or sequential run).
    pub fn spine_fraction(&self) -> f64 {
        if self.total_seconds > 0.0 {
            self.spine_seconds() / self.total_seconds
        } else {
            0.0
        }
    }
}

/// One completed operation, as logged by a shard of the parallel engine.
///
/// Latency aggregates ([`SimReport::latency`], the read/write percentile
/// collections) are order-sensitive — floating-point accumulation and the
/// `PartialEq` on raw sample vectors both depend on insertion order — so
/// shards log completions individually and the merge replays them in the
/// canonical `(time, op)` order, which no shard or thread count can
/// perturb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CompletionRecord {
    /// Completion time of the operation.
    pub(crate) time: SimTime,
    /// The operation's global workload index (the canonical tie-breaker).
    pub(crate) op: u64,
    /// Whether the operation was a read (routes the percentile sample).
    pub(crate) read: bool,
    /// The operation's latency in simulated seconds.
    pub(crate) latency: f64,
}

/// One in-flight gauge transition (an operation entering or leaving the
/// system), logged per shard and replayed canonically by the merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FlightTransition {
    /// When the transition happened.
    pub(crate) time: SimTime,
    /// The operation's global workload index.
    pub(crate) op: u64,
    /// `true` when the operation entered the system, `false` when it left.
    pub(crate) start: bool,
}

/// Everything one shard of the parallel engine accumulates: its partial
/// report (order-free counters plus the per-variable rows it owns), the
/// raw completion/flight logs for canonical replay, and the count of
/// logical events it processed.
#[derive(Debug, Default)]
pub(crate) struct ShardAccumulator {
    /// Counters and the owned per-variable rows.  Order-sensitive
    /// aggregates (latency stats, the in-flight gauge) are left at their
    /// defaults here and reconstructed by [`merge_shard_reports`].
    pub(crate) report: SimReport,
    /// Completion log for canonical latency replay.
    pub(crate) completions: Vec<CompletionRecord>,
    /// In-flight transition log for the canonical gauge walk.
    pub(crate) transitions: Vec<FlightTransition>,
    /// Logical events this shard processed (arrivals, probe replies,
    /// timeouts, retries, gossip pushes — the event classes whose count is
    /// shard-count-independent; spine-level events are counted by the
    /// spine).
    pub(crate) logical_events: u64,
}

/// Merges per-shard accumulators into one [`SimReport`], bit-identically
/// for any shard count ≥ 2 and any thread count:
///
/// * `u64` counters, per-server access counts and logical event counts sum
///   (addition is order-free);
/// * per-variable rows are taken verbatim from their owning shard
///   (`variable % num_shards` — ownership is total and disjoint);
/// * latency aggregates are replayed from the union of completion logs in
///   `(time, op)` order, so the floating-point accumulation order is
///   canonical;
/// * the in-flight gauge is rebuilt by an area walk over the union of
///   flight transitions in `(time, op, start-before-end)` order, matching
///   the sequential engine's time-weighted semantics.
///
/// Spine-level quantities (gossip rounds/digests, coverage accounting,
/// spine event counts) are not known here; the caller adds them onto the
/// merged report afterwards.
pub(crate) fn merge_shard_reports(shards: Vec<ShardAccumulator>) -> SimReport {
    let num_shards = shards.len();
    let mut merged = SimReport::default();
    for acc in &shards {
        let r = &acc.report;
        merged.completed_reads += r.completed_reads;
        merged.completed_writes += r.completed_writes;
        merged.stale_reads += r.stale_reads;
        merged.empty_reads += r.empty_reads;
        merged.unwritten_reads += r.unwritten_reads;
        merged.unavailable_ops += r.unavailable_ops;
        merged.concurrent_reads += r.concurrent_reads;
        merged.retries += r.retries;
        merged.timed_out_attempts += r.timed_out_attempts;
        merged.gossip_pushes += r.gossip_pushes;
        merged.gossip_stores += r.gossip_stores;
        merged.gossip_redundant_pushes_avoided += r.gossip_redundant_pushes_avoided;
        merged.dropped_probes += r.dropped_probes;
        merged.partition_blocked_gossip += r.partition_blocked_gossip;
        merged.adaptive_activations += r.adaptive_activations;
        merged.events_processed += acc.logical_events;
        merged.total_operations += r.total_operations;
        if merged.per_component_stale_reads.len() < r.per_component_stale_reads.len() {
            merged
                .per_component_stale_reads
                .resize(r.per_component_stale_reads.len(), 0);
        }
        for (m, s) in merged
            .per_component_stale_reads
            .iter_mut()
            .zip(&r.per_component_stale_reads)
        {
            *m += s;
        }
        if merged.per_server_accesses.is_empty() {
            merged.per_server_accesses = vec![0; r.per_server_accesses.len()];
        }
        for (m, s) in merged
            .per_server_accesses
            .iter_mut()
            .zip(&r.per_server_accesses)
        {
            *m += s;
        }
    }
    let nvars = shards
        .first()
        .map(|a| a.report.per_variable.len())
        .unwrap_or(0);
    merged.per_variable = (0..nvars)
        .map(|v| shards[v % num_shards].report.per_variable[v].clone())
        .collect();

    let mut completions: Vec<CompletionRecord> = Vec::new();
    let mut transitions: Vec<FlightTransition> = Vec::new();
    for mut acc in shards {
        completions.append(&mut acc.completions);
        transitions.append(&mut acc.transitions);
    }
    completions.sort_unstable_by(|a, b| a.time.total_cmp(&b.time).then(a.op.cmp(&b.op)));
    for c in &completions {
        merged.latency.record(c.latency);
        if c.read {
            merged.read_latency.record(c.latency);
        } else {
            merged.write_latency.record(c.latency);
        }
    }
    // Entering transitions sort before leaving ones at equal (time, op):
    // an operation that completes with zero latency still registers.
    transitions.sort_unstable_by(|a, b| {
        a.time
            .total_cmp(&b.time)
            .then(a.op.cmp(&b.op))
            .then(b.start.cmp(&a.start))
    });
    let mut in_flight: u64 = 0;
    let mut area = 0.0;
    let mut prev = 0.0;
    let mut busy_until = 0.0;
    for tr in &transitions {
        if tr.time > prev {
            area += in_flight as f64 * (tr.time - prev);
            prev = tr.time;
        }
        if tr.start {
            in_flight += 1;
            merged.max_in_flight = merged.max_in_flight.max(in_flight);
        } else {
            in_flight = in_flight.saturating_sub(1);
        }
        busy_until = tr.time;
    }
    merged.mean_in_flight = if busy_until <= 0.0 {
        0.0
    } else {
        area / busy_until
    };
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_with_no_operations_are_zero() {
        let r = SimReport::default();
        assert_eq!(r.stale_read_rate(), 0.0);
        assert_eq!(r.unavailability(), 0.0);
        assert_eq!(r.empirical_load(), 0.0);
        assert_eq!(r.mean_latency(), 0.0);
        assert_eq!(r.p99_latency(), 0.0);
    }

    #[test]
    fn rates_compute_from_counts() {
        let mut r = SimReport {
            completed_reads: 100,
            completed_writes: 50,
            stale_reads: 3,
            empty_reads: 1,
            unavailable_ops: 10,
            concurrent_reads: 20,
            total_operations: 150,
            per_server_accesses: vec![10, 30, 20],
            ..SimReport::default()
        };
        r.latency.record(0.1);
        r.latency.record(0.3);
        assert!((r.stale_read_rate() - 4.0 / 80.0).abs() < 1e-12);
        assert!((r.unavailability() - 10.0 / 160.0).abs() < 1e-12);
        assert!((r.empirical_load() - 30.0 / 150.0).abs() < 1e-12);
        assert!((r.mean_latency() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn latency_samples_percentiles() {
        let mut s = LatencySamples::new();
        assert!(s.is_empty());
        assert_eq!(s.percentile(99.0), 0.0);
        for i in 1..=100 {
            s.record(i as f64);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), 50.0);
        assert_eq!(s.p95(), 95.0);
        assert_eq!(s.p99(), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-12);
        // Batch form agrees with single calls and sorts only once.
        assert_eq!(s.percentiles(&[50.0, 95.0, 99.0]), vec![50.0, 95.0, 99.0]);
        assert_eq!(
            LatencySamples::new().percentiles(&[50.0, 99.0]),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn p99_latency_merges_read_and_write_samples() {
        let mut r = SimReport::default();
        for i in 1..=99 {
            r.read_latency.record(i as f64 / 1000.0);
        }
        r.write_latency.record(1.0);
        assert!((r.p99_latency() - 0.099).abs() < 1e-12);
    }

    #[test]
    fn per_variable_breakdown_helpers() {
        let mut r = SimReport::default();
        assert_eq!(r.summed_per_variable_ops(), 0);
        assert!(r.hottest_variable().is_none());
        assert_eq!(r.key_load_imbalance(), 0.0);
        for (i, ops) in [(0u64, 60u64), (1, 30), (2, 10)] {
            let mut v = VariableReport {
                variable: i,
                completed_reads: ops - 2,
                completed_writes: 1,
                unavailable_ops: 1,
                ..VariableReport::default()
            };
            v.latency.record(0.001 * (i + 1) as f64);
            r.per_variable.push(v);
        }
        assert_eq!(r.summed_per_variable_ops(), 100);
        let hot = r.hottest_variable().unwrap();
        assert_eq!(hot.variable, 0);
        assert_eq!(hot.operations(), 60);
        // max 60 over mean 100/3.
        assert!((r.key_load_imbalance() - 60.0 / (100.0 / 3.0)).abs() < 1e-12);
        assert!((hot.mean_latency() - 0.001).abs() < 1e-12);
        assert_eq!(hot.p99_latency(), 0.001);
    }

    #[test]
    fn rounds_to_coverage_is_a_mean_over_coverage_events() {
        let mut v = VariableReport::default();
        assert_eq!(v.mean_rounds_to_coverage(), None);
        v.coverage_rounds_sum = 7;
        v.coverage_events = 2;
        assert_eq!(v.mean_rounds_to_coverage(), Some(3.5));
        // Covered instantly by the foreground write: a genuine 0.
        let instant = VariableReport {
            coverage_events: 4,
            ..VariableReport::default()
        };
        assert_eq!(instant.mean_rounds_to_coverage(), Some(0.0));
    }

    #[test]
    fn variable_report_stale_rate() {
        let v = VariableReport {
            variable: 3,
            completed_reads: 50,
            concurrent_reads: 10,
            stale_reads: 3,
            empty_reads: 1,
            ..VariableReport::default()
        };
        assert!((v.stale_read_rate() - 0.1).abs() < 1e-12);
        assert_eq!(VariableReport::default().stale_read_rate(), 0.0);
    }

    #[test]
    fn merge_replays_completions_canonically_and_sums_counters() {
        // Two shards log the same global history split two ways; the merge
        // must be identical either way and independent of per-shard order.
        let make = |rows: &[(f64, u64, bool, f64)], reads: u64, accesses: Vec<u64>| {
            let mut acc = ShardAccumulator {
                logical_events: 10,
                ..ShardAccumulator::default()
            };
            acc.report.completed_reads = reads;
            acc.report.per_server_accesses = accesses;
            acc.report.per_variable = vec![VariableReport::default(); 2];
            for &(time, op, read, latency) in rows {
                acc.completions.push(CompletionRecord {
                    time,
                    op,
                    read,
                    latency,
                });
            }
            acc
        };
        let a = merge_shard_reports(vec![
            make(&[(1.0, 0, true, 0.5), (3.0, 2, true, 0.1)], 2, vec![1, 0]),
            make(&[(2.0, 1, false, 0.2)], 0, vec![0, 2]),
        ]);
        let b = merge_shard_reports(vec![
            make(&[(2.0, 1, false, 0.2)], 0, vec![0, 2]),
            make(&[(1.0, 0, true, 0.5), (3.0, 2, true, 0.1)], 2, vec![1, 0]),
        ]);
        assert_eq!(a.completed_reads, 2);
        assert_eq!(a.events_processed, 20);
        assert_eq!(a.per_server_accesses, vec![1, 2]);
        assert_eq!(a.read_latency.count(), 2);
        assert_eq!(a.write_latency.count(), 1);
        assert!((a.mean_latency() - (0.5 + 0.2 + 0.1) / 3.0).abs() < 1e-15);
        // Canonical replay: identical regardless of which shard held what.
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.read_latency, b.read_latency);
    }

    #[test]
    fn merge_walks_the_in_flight_gauge_like_the_sequential_engine() {
        // Ops: #0 in flight over [1, 4), #1 over [2, 4): area 5 over busy
        // time 4, exactly the sequential EventEngine's gauge on the same
        // history.
        let mut a = ShardAccumulator::default();
        let mut b = ShardAccumulator::default();
        for (acc, op, start, end) in [(&mut a, 0u64, 1.0, 4.0), (&mut b, 1, 2.0, 4.0)] {
            acc.transitions.push(FlightTransition {
                time: start,
                op,
                start: true,
            });
            acc.transitions.push(FlightTransition {
                time: end,
                op,
                start: false,
            });
        }
        let merged = merge_shard_reports(vec![a, b]);
        assert_eq!(merged.max_in_flight, 2);
        assert!((merged.mean_in_flight - 5.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_takes_per_variable_rows_from_their_owning_shard() {
        let mut shard0 = ShardAccumulator::default();
        let mut shard1 = ShardAccumulator::default();
        for acc in [&mut shard0, &mut shard1] {
            acc.report.per_variable = (0..4)
                .map(|v| VariableReport {
                    variable: v,
                    ..VariableReport::default()
                })
                .collect();
        }
        // Shard 0 owns even keys, shard 1 odd keys.
        shard0.report.per_variable[2].completed_reads = 7;
        shard1.report.per_variable[3].completed_writes = 5;
        let merged = merge_shard_reports(vec![shard0, shard1]);
        assert_eq!(merged.per_variable.len(), 4);
        assert_eq!(merged.per_variable[2].completed_reads, 7);
        assert_eq!(merged.per_variable[3].completed_writes, 5);
        assert_eq!(merged.per_variable[0].completed_reads, 0);
    }

    #[test]
    fn reports_compare_equal_field_by_field() {
        let mut a = SimReport::default();
        let mut b = SimReport::default();
        a.latency.record(0.5);
        b.latency.record(0.5);
        a.read_latency.record(0.5);
        b.read_latency.record(0.5);
        assert_eq!(a, b);
        b.read_latency.record(0.6);
        assert_ne!(a, b);
    }
}
