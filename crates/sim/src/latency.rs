//! Per-message latency models.

use crate::time::SimTime;
use rand::Rng;
use rand::RngCore;

/// Distribution of the one-way latency of a client–server exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long (seconds).
    Fixed(SimTime),
    /// Uniformly distributed in `[min, max]` seconds.
    Uniform {
        /// Minimum latency (seconds).
        min: SimTime,
        /// Maximum latency (seconds).
        max: SimTime,
    },
    /// Exponentially distributed with the given mean (seconds) — a common
    /// heavy-ish tail model for WAN links such as the country-wide voting
    /// deployment of Section 1.1.
    Exponential {
        /// Mean latency (seconds).
        mean: SimTime,
    },
    /// Pareto-distributed with the given scale (minimum latency, seconds)
    /// and shape α: `P(X > x) = (scale/x)^α` for `x ≥ scale`.  A genuine
    /// long tail — for α ≤ 2 the variance is infinite — used to demonstrate
    /// how probing `q + margin` servers and finishing on the first `q`
    /// responders cuts the tail of quorum-operation latency.
    Pareto {
        /// Minimum latency (seconds); samples never fall below it.
        scale: SimTime,
        /// Tail index α (> 0); smaller means heavier tail.
        shape: f64,
    },
}

impl Default for LatencyModel {
    /// One millisecond fixed latency.
    fn default() -> Self {
        LatencyModel::Fixed(1e-3)
    }
}

impl LatencyModel {
    /// Draws one latency sample (always non-negative and finite).
    pub fn sample(&self, rng: &mut dyn RngCore) -> SimTime {
        match *self {
            LatencyModel::Fixed(v) => v.max(0.0),
            LatencyModel::Uniform { min, max } => {
                let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
                if hi <= lo {
                    lo.max(0.0)
                } else {
                    rng.gen_range(lo..=hi).max(0.0)
                }
            }
            LatencyModel::Exponential { mean } => {
                if mean <= 0.0 {
                    return 0.0;
                }
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -mean * u.ln()
            }
            LatencyModel::Pareto { scale, shape } => {
                if scale <= 0.0 || shape <= 0.0 {
                    return scale.max(0.0);
                }
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                // Inverse CDF: scale * u^(-1/shape).
                scale * u.powf(-1.0 / shape)
            }
        }
    }

    /// The mean of the distribution (`+∞` for a Pareto tail with α ≤ 1).
    pub fn mean(&self) -> SimTime {
        match *self {
            LatencyModel::Fixed(v) => v.max(0.0),
            LatencyModel::Uniform { min, max } => (min.max(0.0) + max.max(0.0)) / 2.0,
            LatencyModel::Exponential { mean } => mean.max(0.0),
            LatencyModel::Pareto { scale, shape } => {
                if scale <= 0.0 || shape <= 0.0 {
                    scale.max(0.0)
                } else if shape <= 1.0 {
                    f64::INFINITY
                } else {
                    scale * shape / (shape - 1.0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fixed_is_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = LatencyModel::Fixed(0.25);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 0.25);
        }
        assert_eq!(m.mean(), 0.25);
        assert_eq!(LatencyModel::Fixed(-1.0).sample(&mut rng), 0.0);
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = LatencyModel::Uniform { min: 0.1, max: 0.3 };
        let mut sum = 0.0;
        for _ in 0..5000 {
            let s = m.sample(&mut rng);
            assert!((0.1..=0.3).contains(&s));
            sum += s;
        }
        assert!((sum / 5000.0 - 0.2).abs() < 0.01);
        assert_eq!(m.mean(), 0.2);
        // Swapped bounds are tolerated.
        let swapped = LatencyModel::Uniform { min: 0.3, max: 0.1 };
        let s = swapped.sample(&mut rng);
        assert!((0.1..=0.3).contains(&s));
        // Degenerate interval.
        let point = LatencyModel::Uniform { min: 0.2, max: 0.2 };
        assert_eq!(point.sample(&mut rng), 0.2);
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = LatencyModel::Exponential { mean: 0.05 };
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let s = m.sample(&mut rng);
            assert!(s >= 0.0 && s.is_finite());
            sum += s;
        }
        assert!((sum / 20_000.0 - 0.05).abs() < 0.005);
        assert_eq!(m.mean(), 0.05);
        assert_eq!(
            LatencyModel::Exponential { mean: 0.0 }.sample(&mut rng),
            0.0
        );
    }

    #[test]
    fn pareto_respects_scale_and_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let m = LatencyModel::Pareto {
            scale: 1e-3,
            shape: 2.5,
        };
        let mut sum = 0.0;
        let mut beyond_10x = 0u32;
        for _ in 0..50_000 {
            let s = m.sample(&mut rng);
            assert!(s >= 1e-3 && s.is_finite());
            sum += s;
            if s > 1e-2 {
                beyond_10x += 1;
            }
        }
        // Mean = scale * a/(a-1) = 1e-3 * 2.5/1.5.
        assert!((sum / 50_000.0 - 1e-3 * 2.5 / 1.5).abs() < 2e-4);
        assert!((m.mean() - 1e-3 * 2.5 / 1.5).abs() < 1e-12);
        // P(X > 10*scale) = 10^-2.5 ~ 0.32%: the tail is real.
        assert!(beyond_10x > 50, "tail too thin: {beyond_10x}");
        // Degenerate parameters fall back to the scale.
        assert_eq!(
            LatencyModel::Pareto {
                scale: 0.0,
                shape: 2.0
            }
            .sample(&mut rng),
            0.0
        );
        assert!(LatencyModel::Pareto {
            scale: 1.0,
            shape: 0.5
        }
        .mean()
        .is_infinite());
    }

    #[test]
    fn default_is_one_millisecond() {
        assert_eq!(LatencyModel::default(), LatencyModel::Fixed(1e-3));
    }
}
