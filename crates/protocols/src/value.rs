//! Replicated values and value–timestamp pairs.

use crate::timestamp::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An opaque replicated value.
///
/// Values are byte strings; helpers are provided for the common case of
/// numeric payloads used in tests and experiments.
///
/// # Examples
///
/// ```
/// use pqs_protocols::value::Value;
/// let v = Value::from_u64(7);
/// assert_eq!(v.as_u64(), Some(7));
/// assert_eq!(Value::new(vec![1, 2, 3]).as_bytes(), &[1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Value(Vec<u8>);

impl Value {
    /// Wraps raw bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        Value(bytes)
    }

    /// Encodes a `u64` as a little-endian value.
    pub fn from_u64(v: u64) -> Self {
        Value(v.to_le_bytes().to_vec())
    }

    /// Encodes a string.
    pub fn from_str_value(s: &str) -> Self {
        Value(s.as_bytes().to_vec())
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Decodes the value as a little-endian `u64`, if it is exactly 8 bytes.
    pub fn as_u64(&self) -> Option<u64> {
        self.0.as_slice().try_into().ok().map(u64::from_le_bytes)
    }

    /// Length of the value in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for a zero-length value.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_u64() {
            Some(v) => write!(f, "u64:{v}"),
            None => write!(f, "bytes[{}]", self.0.len()),
        }
    }
}

impl From<Vec<u8>> for Value {
    fn from(bytes: Vec<u8>) -> Self {
        Value(bytes)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::from_u64(v)
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A value together with the timestamp of the write that produced it — the
/// `⟨v, t⟩` pairs exchanged by the Section 3.1 protocols.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaggedValue {
    /// The written value.
    pub value: Value,
    /// The timestamp the writer attached to it.
    pub timestamp: Timestamp,
}

impl TaggedValue {
    /// Creates a value–timestamp pair.
    pub fn new(value: Value, timestamp: Timestamp) -> Self {
        TaggedValue { value, timestamp }
    }

    /// The pair every replica starts with: an empty value at
    /// [`Timestamp::ZERO`].
    pub fn initial() -> Self {
        TaggedValue {
            value: Value::new(Vec::new()),
            timestamp: Timestamp::ZERO,
        }
    }

    /// Returns whichever of the two pairs carries the higher timestamp.
    pub fn fresher(self, other: TaggedValue) -> TaggedValue {
        if other.timestamp > self.timestamp {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for TaggedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.value, self.timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrips() {
        assert_eq!(Value::from_u64(123).as_u64(), Some(123));
        assert_eq!(Value::new(vec![1, 2]).as_u64(), None);
        assert_eq!(Value::from_str_value("hi").as_bytes(), b"hi");
        assert_eq!(Value::from(9u64), Value::from_u64(9));
        assert_eq!(Value::from(vec![3u8]).len(), 1);
        assert!(Value::new(vec![]).is_empty());
        assert_eq!(Value::from_u64(5).as_ref().len(), 8);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::from_u64(4).to_string(), "u64:4");
        assert_eq!(Value::new(vec![1, 2, 3]).to_string(), "bytes[3]");
    }

    #[test]
    fn tagged_value_freshness() {
        let old = TaggedValue::new(Value::from_u64(1), Timestamp::new(1, 0));
        let newer = TaggedValue::new(Value::from_u64(2), Timestamp::new(2, 0));
        assert_eq!(old.clone().fresher(newer.clone()), newer);
        assert_eq!(newer.clone().fresher(old.clone()), newer);
        // Ties keep the receiver (self).
        let tie = TaggedValue::new(Value::from_u64(3), Timestamp::new(2, 0));
        assert_eq!(newer.clone().fresher(tie).value, Value::from_u64(2));
        assert_eq!(TaggedValue::initial().timestamp, Timestamp::ZERO);
        assert!(old.to_string().contains("u64:1"));
    }
}
