//! Writer-local timestamps.
//!
//! The access protocols of Section 3.1 attach a timestamp to every written
//! value: "(the writer) chooses a timestamp `t` greater than any timestamp
//! it has chosen in the past".  Readers pick the value with the highest
//! timestamp among the replies.  With a single writer a plain counter
//! suffices; we also carry the writer id so the same type works in
//! multi-writer experiments (ties broken by writer id, the classical
//! Lamport construction).

use crate::ClientId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A totally ordered logical timestamp `(counter, writer)`.
///
/// # Examples
///
/// ```
/// use pqs_protocols::timestamp::Timestamp;
/// let a = Timestamp::new(1, 7);
/// let b = Timestamp::new(2, 3);
/// assert!(a < b);
/// assert!(Timestamp::ZERO < a);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp {
    counter: u64,
    writer: ClientId,
}

impl Timestamp {
    /// The timestamp smaller than any real write (the initial value of every
    /// replica).
    pub const ZERO: Timestamp = Timestamp {
        counter: 0,
        writer: 0,
    };

    /// Creates a timestamp from a counter and the id of the writing client.
    pub fn new(counter: u64, writer: ClientId) -> Self {
        Timestamp { counter, writer }
    }

    /// The counter component.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// The id of the client that produced this timestamp.
    pub fn writer(&self) -> ClientId {
        self.writer
    }

    /// The next timestamp for the given writer: one larger than `self` in
    /// the counter component.
    pub fn next_for(&self, writer: ClientId) -> Timestamp {
        Timestamp {
            counter: self.counter + 1,
            writer,
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@c{}", self.counter, self.writer)
    }
}

/// A per-writer timestamp generator guaranteeing strict monotonicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimestampIssuer {
    writer: ClientId,
    last: u64,
}

impl TimestampIssuer {
    /// Creates an issuer for the given writer, starting after
    /// [`Timestamp::ZERO`].
    pub fn new(writer: ClientId) -> Self {
        TimestampIssuer { writer, last: 0 }
    }

    /// The writer this issuer belongs to.
    pub fn writer(&self) -> ClientId {
        self.writer
    }

    /// Issues the next timestamp (strictly larger than every previous one).
    ///
    /// Not an [`Iterator`]: issuing is infallible and never exhausts, so an
    /// `Option`-returning iterator impl would misrepresent the contract.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Timestamp {
        self.last += 1;
        Timestamp::new(self.last, self.writer)
    }

    /// Fast-forwards the issuer past an observed timestamp, so a writer that
    /// reads a fresher value (e.g. after recovery) never reuses a counter.
    pub fn observe(&mut self, ts: Timestamp) {
        self.last = self.last.max(ts.counter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_counter_then_writer() {
        assert!(Timestamp::new(1, 9) < Timestamp::new(2, 0));
        assert!(Timestamp::new(3, 1) < Timestamp::new(3, 2));
        assert_eq!(Timestamp::new(3, 2), Timestamp::new(3, 2));
        assert!(Timestamp::ZERO < Timestamp::new(1, 0));
    }

    #[test]
    fn display_and_accessors() {
        let t = Timestamp::new(5, 2);
        assert_eq!(t.counter(), 5);
        assert_eq!(t.writer(), 2);
        assert_eq!(t.to_string(), "5@c2");
        assert_eq!(t.next_for(3), Timestamp::new(6, 3));
    }

    #[test]
    fn issuer_is_strictly_monotone() {
        let mut issuer = TimestampIssuer::new(4);
        assert_eq!(issuer.writer(), 4);
        let mut prev = Timestamp::ZERO;
        for _ in 0..100 {
            let t = issuer.next();
            assert!(t > prev);
            assert_eq!(t.writer(), 4);
            prev = t;
        }
    }

    #[test]
    fn issuer_observe_fast_forwards() {
        let mut issuer = TimestampIssuer::new(1);
        issuer.observe(Timestamp::new(50, 9));
        let t = issuer.next();
        assert_eq!(t.counter(), 51);
        // Observing something older has no effect.
        issuer.observe(Timestamp::new(10, 9));
        assert_eq!(issuer.next().counter(), 52);
    }
}
