//! Epidemic diffusion of updates between servers.
//!
//! Section 1.1 notes that "a system built with probabilistic quorum systems
//! can be strengthened by a properly designed diffusion mechanism, which
//! propagates updates to replicated data lazily, i.e., outside the critical
//! path of client operations", citing the classical anti-entropy / gossip
//! literature (\[DGH+87\], \[MMR99\]).  This module implements push gossip
//! between *correct* servers: in each round every correct server pushes its
//! freshest record for a variable to `fanout` uniformly chosen peers, which
//! keep it if it is newer.  Coupled with the register protocols this drives
//! the probability that a read misses the latest write toward zero once the
//! write has had a few rounds to spread.

use crate::cluster::Cluster;
use crate::server::{Behavior, VariableId};
use crate::timestamp::Timestamp;
use pqs_core::universe::ServerId;
use rand::Rng;
use rand::RngCore;

/// Configuration of the gossip process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffusionConfig {
    /// Number of peers each correct server pushes to per round.
    pub fanout: usize,
    /// Number of gossip rounds to run.
    pub rounds: usize,
}

impl Default for DiffusionConfig {
    /// Two peers per round for five rounds — enough for near-complete
    /// coverage of clusters with a few hundred servers.
    fn default() -> Self {
        DiffusionConfig {
            fanout: 2,
            rounds: 5,
        }
    }
}

/// Runs push-gossip for one variable and returns the number of *correct*
/// servers holding the globally freshest record after the final round.
///
/// Crashed servers neither push nor receive; Byzantine servers receive
/// pushes (harmlessly) but never push, modelling the fact that correct
/// servers cannot rely on them to help dissemination.
pub fn diffuse_plain(
    cluster: &mut Cluster,
    variable: VariableId,
    config: DiffusionConfig,
    rng: &mut dyn RngCore,
) -> usize {
    let n = cluster.len();
    for _ in 0..config.rounds {
        // Snapshot sender states first so a round is a synchronous exchange.
        let snapshot: Vec<_> = (0..n as u32)
            .map(|i| {
                let server = cluster.server(ServerId::new(i));
                (server.behavior(), server.stored_plain(variable))
            })
            .collect();
        for (i, (behavior, record)) in snapshot.iter().enumerate() {
            if *behavior != Behavior::Correct {
                continue;
            }
            for _ in 0..config.fanout {
                let peer = rng.gen_range(0..n);
                if peer == i {
                    continue;
                }
                let peer_id = ServerId::new(peer as u32);
                if cluster.server(peer_id).behavior() == Behavior::Correct {
                    cluster
                        .server_mut(peer_id)
                        .store_plain_if_fresher(variable, record.clone());
                }
            }
        }
    }
    count_fresh_correct(cluster, variable)
}

/// Number of correct servers holding the freshest record currently present
/// anywhere in the cluster for `variable`.
pub fn count_fresh_correct(cluster: &Cluster, variable: VariableId) -> usize {
    let freshest: Timestamp = (0..cluster.len() as u32)
        .map(|i| {
            cluster
                .server(ServerId::new(i))
                .stored_plain(variable)
                .timestamp
        })
        .max()
        .unwrap_or(Timestamp::ZERO);
    if freshest == Timestamp::ZERO {
        return 0;
    }
    (0..cluster.len() as u32)
        .filter(|&i| {
            let s = cluster.server(ServerId::new(i));
            s.behavior() == Behavior::Correct && s.stored_plain(variable).timestamp == freshest
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::SafeRegister;
    use crate::value::Value;
    use pqs_core::probabilistic::EpsilonIntersecting;
    use pqs_core::system::{ProbabilisticQuorumSystem, QuorumSystem};
    use pqs_core::universe::Universe;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn diffusion_spreads_the_latest_write_to_almost_everyone() {
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        reg.write(&mut cluster, &mut rng, Value::from_u64(9))
            .unwrap();
        let before = count_fresh_correct(&cluster, 0);
        assert!(before <= 22);
        let after = diffuse_plain(&mut cluster, 0, DiffusionConfig::default(), &mut rng);
        assert!(after > 90, "only {after} servers fresh after diffusion");
        assert!(after >= before);
    }

    #[test]
    fn diffusion_lowers_stale_read_rate() {
        // Theorem 3.2 gives a stale-read rate of about epsilon without
        // diffusion; with diffusion between write and read it collapses to
        // (essentially) zero.
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let eps = sys.epsilon();
        assert!(eps > 0.05, "test needs a loose system to be meaningful");
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let trials = 500u64;
        let mut stale = 0u64;
        for i in 1..=trials {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            diffuse_plain(
                &mut cluster,
                0,
                DiffusionConfig {
                    fanout: 2,
                    rounds: 4,
                },
                &mut rng,
            );
            match reg.read(&mut cluster, &mut rng).unwrap() {
                Some(tv) if tv.value == Value::from_u64(i) => {}
                _ => stale += 1,
            }
        }
        let rate = stale as f64 / trials as f64;
        assert!(rate < eps / 4.0, "rate {rate} not much below epsilon {eps}");
    }

    #[test]
    fn crashed_and_byzantine_servers_do_not_push() {
        let universe = Universe::new(20);
        let mut cluster = Cluster::new(universe);
        // Server 0 holds the only copy but is Byzantine; server 1 holds it
        // and is crashed; nothing should spread.
        use crate::server::Behavior;
        use crate::timestamp::Timestamp;
        use crate::value::TaggedValue;
        let record = TaggedValue::new(Value::from_u64(5), Timestamp::new(1, 1));
        cluster
            .server_mut(ServerId::new(0))
            .store_plain_if_fresher(0, record.clone());
        cluster
            .server_mut(ServerId::new(1))
            .store_plain_if_fresher(0, record);
        cluster.set_behavior(ServerId::new(0), Behavior::ByzantineStale);
        cluster.set_behavior(ServerId::new(1), Behavior::Crashed);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let fresh = diffuse_plain(
            &mut cluster,
            0,
            DiffusionConfig {
                fanout: 3,
                rounds: 5,
            },
            &mut rng,
        );
        assert_eq!(
            fresh, 0,
            "no correct server should have received the record"
        );
    }

    #[test]
    fn empty_cluster_state_counts_zero_fresh() {
        let cluster = Cluster::new(Universe::new(5));
        assert_eq!(count_fresh_correct(&cluster, 0), 0);
        let mut cluster = cluster;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(
            diffuse_plain(&mut cluster, 0, DiffusionConfig::default(), &mut rng),
            0
        );
    }
}
