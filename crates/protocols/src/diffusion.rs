//! Epidemic diffusion of updates between servers.
//!
//! Section 1.1 notes that "a system built with probabilistic quorum systems
//! can be strengthened by a properly designed diffusion mechanism, which
//! propagates updates to replicated data lazily, i.e., outside the critical
//! path of client operations", citing the classical anti-entropy / gossip
//! literature (\[DGH+87\], \[MMR99\]).  This module implements push gossip
//! between *correct* servers: in each round every correct server pushes its
//! freshest record for a variable to `fanout` uniformly chosen peers, which
//! keep it if it is newer.  Coupled with the register protocols this drives
//! the probability that a read misses the latest write toward zero once the
//! write has had a few rounds to spread.
//!
//! # Two drivers, one mechanism
//!
//! The gossip process is factored into two incremental steps so that both
//! the synchronous harness and the discrete-event engine run the *same*
//! mechanism:
//!
//! * [`plan_round`] / [`plan_cluster_round`] — snapshot the senders and
//!   draw the peers of one round, producing a batch of [`GossipPush`]
//!   messages (no state is mutated while planning, so a round is a
//!   synchronous exchange).
//! * [`deliver`] — apply one push to its receiver, evaluated at delivery
//!   time (the engine delays each push by its own latency draw, so a
//!   receiver that crashed mid-flight simply drops the message).
//!
//! The run-to-completion helpers [`diffuse_plain`] / [`diffuse_signed`]
//! compose the two steps back into the classic synchronous-rounds loop.
//!
//! # Digest/delta gossip
//!
//! Blind push gossip is wasteful once the cluster is mostly converged:
//! almost every push carries a record its receiver already holds.  The
//! digest/delta protocol replaces the blind push with a two-leg exchange
//! (the classic anti-entropy optimisation of the gossip literature):
//!
//! * [`plan_digest`] — each correct server sends a [`GossipDigest`] — a
//!   compact per-key *version summary* of its own store — to `fanout`
//!   uniform peers.  A [`KeySelector`] filters which keys are advertised,
//!   which is how per-key gossip policies (hot-first, recent-writes-only)
//!   plug in.
//! * [`diff_digest`] — the digest receiver compares the summary against its
//!   own store and answers with a [`GossipDelta`] carrying **only the
//!   records the digest sender provably lacks** (its stored timestamp beats
//!   the advertised one).  The records the receiver holds but does *not*
//!   send — because the digest proved them redundant — are counted as
//!   avoided pushes, the savings metric.
//! * [`deliver_delta`] — the delta is applied back at the digest sender,
//!   evaluated at delivery time like every other gossip message.
//!
//! Information therefore flows *toward* the digest sender (pull-style
//! anti-entropy); a fresh write spreads because every correct server keeps
//! digesting random peers each round.  The run-to-completion helpers
//! [`diffuse_digest_plain`] / [`diffuse_digest_signed`] compose the three
//! steps into synchronous rounds, exactly like [`diffuse_plain`] does for
//! the push protocol.
//!
//! Failure semantics are identical in both drivers and both protocols:
//! **crashed** servers neither initiate nor answer, and **Byzantine**
//! servers receive digests and pushes (harmlessly — they drop or suppress
//! them) but never push and never answer with a delta, modelling the fact
//! that correct servers cannot rely on them to help dissemination.  Both
//! the plain records of the safe/masking protocols and the signed,
//! self-verifying records of the dissemination protocol diffuse.

use crate::cluster::Cluster;
use crate::crypto::SignedValue;
use crate::server::{Behavior, VariableId};
use crate::timestamp::Timestamp;
use crate::value::TaggedValue;
use pqs_core::universe::ServerId;
use rand::Rng;
use rand::RngCore;
use std::collections::BTreeSet;

/// Configuration of the gossip process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffusionConfig {
    /// Number of peers each correct server pushes to per round.
    pub fanout: usize,
    /// Number of gossip rounds to run.
    pub rounds: usize,
}

impl Default for DiffusionConfig {
    /// Two peers per round for five rounds — enough for near-complete
    /// coverage of clusters with a few hundred servers.
    fn default() -> Self {
        DiffusionConfig {
            fanout: 2,
            rounds: 5,
        }
    }
}

/// The record one gossip push carries: plain for the safe and masking
/// protocols, signed for dissemination (mirroring
/// [`WriteRecord`](crate::register::WriteRecord) on the client side).
#[derive(Debug, Clone, PartialEq)]
pub enum GossipRecord {
    /// An unsigned value–timestamp pair.
    Plain(TaggedValue),
    /// A signed, self-verifying value–timestamp pair.
    Signed(SignedValue),
}

impl GossipRecord {
    /// The timestamp the record was written under.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            GossipRecord::Plain(tv) => tv.timestamp,
            GossipRecord::Signed(sv) => sv.tagged.timestamp,
        }
    }

    /// Whether the record is the never-written initial value (timestamp
    /// zero) — such records are not worth a message.
    pub fn is_initial(&self) -> bool {
        self.timestamp() == Timestamp::ZERO
    }
}

/// One server-to-server gossip message: `from` pushes its freshest record
/// for `variable` to `to`.  Planned by [`plan_round`] /
/// [`plan_cluster_round`], applied by [`deliver`].
#[derive(Debug, Clone, PartialEq)]
pub struct GossipPush {
    /// The (correct) sender.
    pub from: ServerId,
    /// The receiver.
    pub to: ServerId,
    /// The variable the record belongs to.
    pub variable: VariableId,
    /// The sender's record at planning (send) time.
    pub record: GossipRecord,
}

/// Plans one synchronous round of push gossip for a single `variable`.
///
/// Every *correct* server draws `fanout` uniform peers (self-draws are
/// consumed but skipped, preserving the classic RNG stream); a push is
/// emitted for each draw whose sender actually holds a non-initial record.
/// Nothing is mutated: the returned batch is a snapshot-consistent
/// exchange, to be applied with [`deliver`].
pub fn plan_round(
    cluster: &Cluster,
    variable: VariableId,
    fanout: usize,
    signed: bool,
    rng: &mut dyn RngCore,
) -> Vec<GossipPush> {
    let n = cluster.len();
    let mut pushes = Vec::new();
    for i in 0..n as u32 {
        let sender = cluster.server(ServerId::new(i));
        if sender.behavior() != Behavior::Correct {
            continue;
        }
        let record = if signed {
            GossipRecord::Signed(sender.stored_signed(variable))
        } else {
            GossipRecord::Plain(sender.stored_plain(variable))
        };
        for _ in 0..fanout {
            let peer = rng.gen_range(0..n);
            if peer == i as usize || record.is_initial() {
                continue;
            }
            pushes.push(GossipPush {
                from: ServerId::new(i),
                to: ServerId::new(peer as u32),
                variable,
                record: record.clone(),
            });
        }
    }
    pushes
}

/// The freshest timestamp held by correct servers for one variable, and how
/// many of them hold it — the unit of the engine's per-key
/// rounds-to-coverage accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariableCoverage {
    /// The variable.
    pub variable: VariableId,
    /// The freshest timestamp any correct server holds for it.
    pub freshest: Timestamp,
    /// Number of correct servers holding exactly that timestamp.
    pub holders: u32,
}

/// Dense per-variable coverage accumulator shared by the round planners.
///
/// Variable ids are dense (`0..keys`), so a slot vector replaces the
/// `HashMap` the planners used to rebuild every round: no hash per
/// (sender, key) visit, and the final snapshot falls out in ascending id
/// order without a sort.
struct CoverageScratch {
    slots: Vec<(Timestamp, u32)>,
}

impl CoverageScratch {
    fn new() -> Self {
        CoverageScratch { slots: Vec::new() }
    }

    /// Records that one correct server holds `variable` at `ts`
    /// (non-initial: callers skip [`Timestamp::ZERO`] records).
    fn note(&mut self, variable: VariableId, ts: Timestamp) {
        let idx = variable as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, (Timestamp::ZERO, 0));
        }
        let entry = &mut self.slots[idx];
        if ts > entry.0 {
            *entry = (ts, 1);
        } else if ts == entry.0 {
            entry.1 += 1;
        }
    }

    /// The snapshot, sorted by variable id (slots come out ascending).
    fn into_coverage(self) -> Vec<VariableCoverage> {
        self.slots
            .into_iter()
            .enumerate()
            .filter(|&(_, (_, holders))| holders > 0)
            .map(|(variable, (freshest, holders))| VariableCoverage {
                variable: variable as VariableId,
                freshest,
                holders,
            })
            .collect()
    }
}

/// One planned engine round: the pushes of every correct server for every
/// variable it holds, plus the coverage snapshot the planner computed on
/// the way.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPlan {
    /// The round's messages, in deterministic (sender id, variable) order.
    pub pushes: Vec<GossipPush>,
    /// Per-variable coverage among correct servers at planning time,
    /// sorted by variable id.
    pub coverage: Vec<VariableCoverage>,
    /// Number of correct servers at planning time (the coverage
    /// denominator).
    pub correct_servers: u32,
}

/// Plans one engine round of push gossip over **every** variable held
/// anywhere in the cluster: each correct server pushes its freshest record
/// for each variable it stores to `fanout` uniform peers.
///
/// Variables are visited in sorted order per sender so the RNG consumption
/// (and hence the whole simulation) is deterministic.  The same pass also
/// produces the per-variable [`VariableCoverage`] snapshot used by the
/// convergence metrics.
pub fn plan_cluster_round(
    cluster: &Cluster,
    fanout: usize,
    signed: bool,
    rng: &mut dyn RngCore,
) -> RoundPlan {
    let n = cluster.len();
    let mut pushes = Vec::new();
    let mut coverage = CoverageScratch::new();
    let mut correct_servers = 0u32;
    // One key buffer reused across senders: the planner runs every gossip
    // round, so per-sender allocations would be a steady-state hot spot.
    // The dense store yields held keys already ascending, so the visit
    // order (and hence the RNG stream) needs no per-sender sort.
    let mut variables: Vec<VariableId> = Vec::new();
    for i in 0..n as u32 {
        let sender = cluster.server(ServerId::new(i));
        if sender.behavior() != Behavior::Correct {
            continue;
        }
        correct_servers += 1;
        variables.clear();
        if signed {
            variables.extend(sender.signed_variables());
        } else {
            variables.extend(sender.plain_variables());
        }
        for &variable in &variables {
            let record = if signed {
                GossipRecord::Signed(sender.stored_signed(variable))
            } else {
                GossipRecord::Plain(sender.stored_plain(variable))
            };
            if record.is_initial() {
                continue;
            }
            coverage.note(variable, record.timestamp());
            for _ in 0..fanout {
                let peer = rng.gen_range(0..n);
                if peer == i as usize {
                    continue;
                }
                pushes.push(GossipPush {
                    from: ServerId::new(i),
                    to: ServerId::new(peer as u32),
                    variable,
                    record: record.clone(),
                });
            }
        }
    }
    RoundPlan {
        pushes,
        coverage: coverage.into_coverage(),
        correct_servers,
    }
}

/// Delivers one gossip record to `to`, evaluating the receiver's behaviour
/// *now*: correct receivers merge by freshest-timestamp, crashed receivers
/// are unreachable and Byzantine receivers drop the record (all they can do
/// undetectably is suppress it).  Returns `true` if the receiver's stored
/// record actually became fresher.  The shared core of [`deliver`] (push
/// gossip) and [`deliver_delta`] (digest/delta gossip).
pub fn deliver_record(
    cluster: &mut Cluster,
    to: ServerId,
    variable: VariableId,
    record: &GossipRecord,
) -> bool {
    if cluster.server(to).behavior() != Behavior::Correct {
        return false;
    }
    match record {
        GossipRecord::Plain(tv) => cluster
            .server_mut(to)
            .store_plain_if_fresher(variable, tv.clone()),
        GossipRecord::Signed(sv) => cluster
            .server_mut(to)
            .store_signed_if_fresher(variable, sv.clone()),
    }
}

/// Delivers one gossip push ([`deliver_record`] on the push's payload).
pub fn deliver(cluster: &mut Cluster, push: &GossipPush) -> bool {
    deliver_record(cluster, push.to, push.variable, &push.record)
}

/// Which keys a digest advertises — the hook the per-key gossip policies
/// (uniform, hot-first, recent-writes-only) use to shape digest traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySelector {
    /// Advertise every key the sender holds: the digest is *complete*, so
    /// its receiver may also answer with records for keys the digest never
    /// mentioned (the sender provably holds nothing for them).
    All,
    /// Advertise exactly the listed keys — held or not (an unheld key is
    /// advertised at [`Timestamp::ZERO`], i.e. "send me anything you
    /// have").  The digest is *incomplete*: keys outside the set are not
    /// part of the exchange at all.
    Only(BTreeSet<VariableId>),
}

impl KeySelector {
    /// Whether the digest covers everything its sender holds.
    pub fn is_complete(&self) -> bool {
        matches!(self, KeySelector::All)
    }
}

/// A per-key version summary of one server's store, sent to a peer as a
/// pull request: "here is what I hold — answer with anything fresher".
#[derive(Debug, Clone, PartialEq)]
pub struct GossipDigest {
    /// The (correct) digest sender — the server that will receive the
    /// answering [`GossipDelta`].
    pub from: ServerId,
    /// The receiver, which computes the delta via [`diff_digest`].
    pub to: ServerId,
    /// Whether the exchange covers signed (dissemination) or plain records.
    pub signed: bool,
    /// `true` if `entries` covers every key the sender holds, so an absent
    /// key means "I hold nothing for it" and the receiver may volunteer
    /// records beyond the entries.
    pub complete: bool,
    /// `(key, freshest stored timestamp)` pairs, sorted by key.  Keys the
    /// sender does not hold appear at [`Timestamp::ZERO`] when a
    /// [`KeySelector::Only`] policy advertises them explicitly.
    pub entries: Vec<(VariableId, Timestamp)>,
}

/// The answer to a [`GossipDigest`]: only the records the digest sender
/// provably lacks, plus the count of transfers the digest made unnecessary.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipDelta {
    /// The responder (the digest's receiver).
    pub from: ServerId,
    /// The original digest sender, where [`deliver_delta`] applies the
    /// records.
    pub to: ServerId,
    /// `(key, record)` pairs the digest sender provably lacks, sorted by
    /// key.
    pub records: Vec<(VariableId, GossipRecord)>,
}

/// One planned round of digest gossip: every correct server's digests to
/// its `fanout` drawn peers, plus the same coverage snapshot
/// [`plan_cluster_round`] produces (over **all** held keys, regardless of
/// the selector, so convergence metrics stay comparable across policies).
#[derive(Debug, Clone, PartialEq)]
pub struct DigestRoundPlan {
    /// The round's digest messages, in deterministic sender-id order.
    pub digests: Vec<GossipDigest>,
    /// Per-variable coverage among correct servers at planning time,
    /// sorted by variable id.
    pub coverage: Vec<VariableCoverage>,
    /// Number of correct servers at planning time.
    pub correct_servers: u32,
}

/// Plans one round of digest gossip: each correct server summarises the
/// keys admitted by `selector` and addresses the summary to `fanout`
/// uniformly drawn peers (self-draws are consumed but skipped, like the
/// push planner's).  One digest per (sender, peer) pair covers every
/// advertised key — this is where digest gossip spends messages, instead of
/// one record-bearing push per (sender, peer, key).
///
/// Nothing is mutated; apply the exchange with [`diff_digest`] at each
/// receiver and [`deliver_delta`] back at each sender.
pub fn plan_digest(
    cluster: &Cluster,
    fanout: usize,
    signed: bool,
    selector: &KeySelector,
    rng: &mut dyn RngCore,
) -> DigestRoundPlan {
    let n = cluster.len();
    let mut digests = Vec::new();
    let mut coverage = CoverageScratch::new();
    let mut correct_servers = 0u32;
    // Per-sender scratch buffers, reused across the whole round (the
    // per-digest `entries.clone()` below is inherent — each message owns
    // its entry list — but the scratch itself allocates only once).  The
    // dense store yields held keys already ascending — no per-sender sort.
    let mut held: Vec<VariableId> = Vec::new();
    let mut entries: Vec<(VariableId, Timestamp)> = Vec::new();
    for i in 0..n as u32 {
        let sender = cluster.server(ServerId::new(i));
        if sender.behavior() != Behavior::Correct {
            continue;
        }
        correct_servers += 1;
        held.clear();
        if signed {
            held.extend(sender.signed_variables());
        } else {
            held.extend(sender.plain_variables());
        }
        let timestamp_of = |v: VariableId| {
            if signed {
                sender.stored_signed_timestamp(v)
            } else {
                sender.stored_plain_timestamp(v)
            }
        };
        // One pass builds the coverage snapshot (over everything held,
        // selector or not) and, for complete digests, the entry list —
        // timestamps only, no record is ever cloned while planning.
        entries.clear();
        for &variable in &held {
            let ts = timestamp_of(variable);
            if ts == Timestamp::ZERO {
                continue;
            }
            coverage.note(variable, ts);
            if selector.is_complete() {
                entries.push((variable, ts));
            }
        }
        if let KeySelector::Only(keys) = selector {
            entries.clear();
            entries.extend(keys.iter().map(|&v| (v, timestamp_of(v))));
        }
        for _ in 0..fanout {
            let peer = rng.gen_range(0..n);
            if peer == i as usize {
                continue;
            }
            digests.push(GossipDigest {
                from: ServerId::new(i),
                to: ServerId::new(peer as u32),
                signed,
                complete: selector.is_complete(),
                entries: entries.clone(),
            });
        }
    }
    DigestRoundPlan {
        digests,
        coverage: coverage.into_coverage(),
        correct_servers,
    }
}

/// What [`diff_digest`] computed at a digest's receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct DigestDiff {
    /// The records the digest sender provably lacks, to be sent back.
    pub delta: GossipDelta,
    /// Keys (sorted) whose records the receiver holds within the
    /// exchange's scope but the digest proved the sender already has —
    /// exactly the transfers a blind push round would have wasted on this
    /// pair, at most one per key per exchange.
    pub avoided: Vec<VariableId>,
}

/// Computes the delta a digest's receiver owes its sender, evaluating the
/// receiver's behaviour *now*: a crashed receiver is unreachable and a
/// Byzantine receiver suppresses the exchange (it cannot forge a verifying
/// signed record, and the model conservatively assumes it refuses to help
/// on the plain path too) — both yield `None`, no reply.
///
/// For every advertised key the receiver answers with its stored record iff
/// that record is strictly fresher than the advertised timestamp; when the
/// digest is [`complete`](GossipDigest::complete) it additionally
/// volunteers records for keys it holds that the digest never mentioned
/// (the sender provably holds nothing for them).
pub fn diff_digest(cluster: &Cluster, digest: &GossipDigest) -> Option<DigestDiff> {
    let receiver = cluster.server(digest.to);
    if receiver.behavior() != Behavior::Correct {
        return None;
    }
    let timestamp_of = |variable: VariableId| {
        if digest.signed {
            receiver.stored_signed_timestamp(variable)
        } else {
            receiver.stored_plain_timestamp(variable)
        }
    };
    let stored = |variable: VariableId| -> GossipRecord {
        if digest.signed {
            GossipRecord::Signed(receiver.stored_signed(variable))
        } else {
            GossipRecord::Plain(receiver.stored_plain(variable))
        }
    };
    let mut records = Vec::new();
    let mut avoided = Vec::new();
    // Timestamps decide the diff; a record is cloned only when it actually
    // rides in the delta (proving redundancy — the common case — is free).
    for &(variable, advertised) in &digest.entries {
        let mine = timestamp_of(variable);
        if mine > advertised {
            records.push((variable, stored(variable)));
        } else if mine != Timestamp::ZERO {
            avoided.push(variable);
        }
    }
    if digest.complete {
        let advertised: BTreeSet<VariableId> = digest.entries.iter().map(|&(v, _)| v).collect();
        // The dense store walks held keys in ascending order already.
        let extra: Vec<VariableId> = if digest.signed {
            receiver.signed_variables().collect()
        } else {
            receiver.plain_variables().collect()
        };
        for variable in extra {
            if advertised.contains(&variable) || timestamp_of(variable) == Timestamp::ZERO {
                continue;
            }
            records.push((variable, stored(variable)));
        }
        records.sort_unstable_by_key(|&(v, _)| v);
    }
    Some(DigestDiff {
        delta: GossipDelta {
            from: digest.to,
            to: digest.from,
            records,
        },
        avoided,
    })
}

/// Applies a delta back at the digest sender, evaluating its behaviour at
/// delivery time ([`deliver_record`] per record).  Returns the number of
/// records that actually freshened the receiver's store — with a truthful
/// responder that is every record, unless the sender's store moved while
/// the delta was in flight.
pub fn deliver_delta(cluster: &mut Cluster, delta: &GossipDelta) -> u64 {
    delta
        .records
        .iter()
        .filter(|(variable, record)| deliver_record(cluster, delta.to, *variable, record))
        .count() as u64
}

/// Traffic accounting of one digest-gossip run: what
/// [`diffuse_digest_plain`] / [`diffuse_digest_signed`] did on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DigestDiffusionStats {
    /// Digest messages delivered.
    pub digests: u64,
    /// Records transferred inside deltas.
    pub delta_records: u64,
    /// Delta records that actually freshened their receiver.
    pub stores: u64,
    /// Redundant transfers a blind push exchange would have made that the
    /// digests proved unnecessary.
    pub redundant_avoided: u64,
}

/// Runs synchronous digest/delta gossip of plain records over the whole
/// store (a [`KeySelector::All`] digest per pair) for `config.rounds`
/// rounds, returning the traffic stats.  The same failure semantics as
/// [`diffuse_plain`]: crashed servers neither initiate nor answer,
/// Byzantine servers never answer.
pub fn diffuse_digest_plain(
    cluster: &mut Cluster,
    config: DiffusionConfig,
    rng: &mut dyn RngCore,
) -> DigestDiffusionStats {
    diffuse_digest(cluster, config, false, rng)
}

/// [`diffuse_digest_plain`] over the signed records of the dissemination
/// protocol.
pub fn diffuse_digest_signed(
    cluster: &mut Cluster,
    config: DiffusionConfig,
    rng: &mut dyn RngCore,
) -> DigestDiffusionStats {
    diffuse_digest(cluster, config, true, rng)
}

fn diffuse_digest(
    cluster: &mut Cluster,
    config: DiffusionConfig,
    signed: bool,
    rng: &mut dyn RngCore,
) -> DigestDiffusionStats {
    let mut stats = DigestDiffusionStats::default();
    for _ in 0..config.rounds {
        let plan = plan_digest(cluster, config.fanout, signed, &KeySelector::All, rng);
        for digest in &plan.digests {
            stats.digests += 1;
            if let Some(diff) = diff_digest(cluster, digest) {
                stats.redundant_avoided += diff.avoided.len() as u64;
                stats.delta_records += diff.delta.records.len() as u64;
                stats.stores += deliver_delta(cluster, &diff.delta);
            }
        }
    }
    stats
}

/// Runs synchronous push-gossip of plain records for one variable and
/// returns the number of *correct* servers holding the globally freshest
/// record after the final round.
///
/// Crashed servers neither push nor receive; Byzantine servers receive
/// pushes (harmlessly) but never push, modelling the fact that correct
/// servers cannot rely on them to help dissemination.
pub fn diffuse_plain(
    cluster: &mut Cluster,
    variable: VariableId,
    config: DiffusionConfig,
    rng: &mut dyn RngCore,
) -> usize {
    for _ in 0..config.rounds {
        let pushes = plan_round(cluster, variable, config.fanout, false, rng);
        for push in &pushes {
            deliver(cluster, push);
        }
    }
    count_fresh_correct(cluster, variable)
}

/// [`diffuse_plain`] for the signed records of the dissemination protocol:
/// the same push-gossip process, merging by the timestamp of the signed
/// record.  Byzantine servers cannot forge a verifying record, so the worst
/// they do here is exactly what they do on the plain path — refuse to help.
pub fn diffuse_signed(
    cluster: &mut Cluster,
    variable: VariableId,
    config: DiffusionConfig,
    rng: &mut dyn RngCore,
) -> usize {
    for _ in 0..config.rounds {
        let pushes = plan_round(cluster, variable, config.fanout, true, rng);
        for push in &pushes {
            deliver(cluster, push);
        }
    }
    count_fresh_correct_signed(cluster, variable)
}

/// Number of correct servers holding the freshest record currently present
/// anywhere in the cluster for `variable`.
pub fn count_fresh_correct(cluster: &Cluster, variable: VariableId) -> usize {
    let freshest: Timestamp = (0..cluster.len() as u32)
        .map(|i| {
            cluster
                .server(ServerId::new(i))
                .stored_plain(variable)
                .timestamp
        })
        .max()
        .unwrap_or(Timestamp::ZERO);
    if freshest == Timestamp::ZERO {
        return 0;
    }
    (0..cluster.len() as u32)
        .filter(|&i| {
            let s = cluster.server(ServerId::new(i));
            s.behavior() == Behavior::Correct && s.stored_plain(variable).timestamp == freshest
        })
        .count()
}

/// [`count_fresh_correct`] over the signed storage of the dissemination
/// protocol.
pub fn count_fresh_correct_signed(cluster: &Cluster, variable: VariableId) -> usize {
    let freshest: Timestamp = (0..cluster.len() as u32)
        .map(|i| {
            cluster
                .server(ServerId::new(i))
                .stored_signed(variable)
                .tagged
                .timestamp
        })
        .max()
        .unwrap_or(Timestamp::ZERO);
    if freshest == Timestamp::ZERO {
        return 0;
    }
    (0..cluster.len() as u32)
        .filter(|&i| {
            let s = cluster.server(ServerId::new(i));
            s.behavior() == Behavior::Correct
                && s.stored_signed(variable).tagged.timestamp == freshest
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::KeyRegistry;
    use crate::register::SafeRegister;
    use crate::value::Value;
    use pqs_core::probabilistic::EpsilonIntersecting;
    use pqs_core::system::{ProbabilisticQuorumSystem, QuorumSystem};
    use pqs_core::universe::Universe;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn diffusion_spreads_the_latest_write_to_almost_everyone() {
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        reg.write(&mut cluster, &mut rng, Value::from_u64(9))
            .unwrap();
        let before = count_fresh_correct(&cluster, 0);
        assert!(before <= 22);
        let after = diffuse_plain(&mut cluster, 0, DiffusionConfig::default(), &mut rng);
        assert!(after > 90, "only {after} servers fresh after diffusion");
        assert!(after >= before);
    }

    #[test]
    fn diffusion_lowers_stale_read_rate() {
        // Theorem 3.2 gives a stale-read rate of about epsilon without
        // diffusion; with diffusion between write and read it collapses to
        // (essentially) zero.
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let eps = sys.epsilon();
        assert!(eps > 0.05, "test needs a loose system to be meaningful");
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let trials = 500u64;
        let mut stale = 0u64;
        for i in 1..=trials {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            diffuse_plain(
                &mut cluster,
                0,
                DiffusionConfig {
                    fanout: 2,
                    rounds: 4,
                },
                &mut rng,
            );
            match reg.read(&mut cluster, &mut rng).unwrap() {
                Some(tv) if tv.value == Value::from_u64(i) => {}
                _ => stale += 1,
            }
        }
        let rate = stale as f64 / trials as f64;
        assert!(rate < eps / 4.0, "rate {rate} not much below epsilon {eps}");
    }

    #[test]
    fn crashed_and_byzantine_servers_do_not_push() {
        let universe = Universe::new(20);
        let mut cluster = Cluster::new(universe);
        // Server 0 holds the only copy but is Byzantine; server 1 holds it
        // and is crashed; nothing should spread.
        use crate::server::Behavior;
        use crate::timestamp::Timestamp;
        use crate::value::TaggedValue;
        let record = TaggedValue::new(Value::from_u64(5), Timestamp::new(1, 1));
        cluster
            .server_mut(ServerId::new(0))
            .store_plain_if_fresher(0, record.clone());
        cluster
            .server_mut(ServerId::new(1))
            .store_plain_if_fresher(0, record);
        cluster.set_behavior(ServerId::new(0), Behavior::ByzantineStale);
        cluster.set_behavior(ServerId::new(1), Behavior::Crashed);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let fresh = diffuse_plain(
            &mut cluster,
            0,
            DiffusionConfig {
                fanout: 3,
                rounds: 5,
            },
            &mut rng,
        );
        assert_eq!(
            fresh, 0,
            "no correct server should have received the record"
        );
    }

    #[test]
    fn empty_cluster_state_counts_zero_fresh() {
        let cluster = Cluster::new(Universe::new(5));
        assert_eq!(count_fresh_correct(&cluster, 0), 0);
        assert_eq!(count_fresh_correct_signed(&cluster, 0), 0);
        let mut cluster = cluster;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(
            diffuse_plain(&mut cluster, 0, DiffusionConfig::default(), &mut rng),
            0
        );
        assert_eq!(
            diffuse_signed(&mut cluster, 0, DiffusionConfig::default(), &mut rng),
            0
        );
    }

    #[test]
    fn signed_records_diffuse_like_plain_ones() {
        // Identical initial holders, identical RNG seed: the signed and
        // plain planners draw the same peers (record kind never touches the
        // RNG), so coverage after diffusion is identical.
        use crate::timestamp::Timestamp;
        let universe = Universe::new(40);
        let mut plain_cluster = Cluster::new(universe);
        let mut signed_cluster = Cluster::new(universe);
        let mut registry = KeyRegistry::new();
        let key = registry.register(1, 11);
        let tv = TaggedValue::new(Value::from_u64(7), Timestamp::new(3, 1));
        let sv = SignedValue::create(&key, Value::from_u64(7), Timestamp::new(3, 1));
        for i in [0u32, 5, 9] {
            plain_cluster
                .server_mut(ServerId::new(i))
                .store_plain_if_fresher(2, tv.clone());
            signed_cluster
                .server_mut(ServerId::new(i))
                .store_signed_if_fresher(2, sv.clone());
        }
        let config = DiffusionConfig {
            fanout: 2,
            rounds: 4,
        };
        let mut rng_a = ChaCha8Rng::seed_from_u64(8);
        let mut rng_b = ChaCha8Rng::seed_from_u64(8);
        let plain = diffuse_plain(&mut plain_cluster, 2, config, &mut rng_a);
        let signed = diffuse_signed(&mut signed_cluster, 2, config, &mut rng_b);
        assert_eq!(plain, signed);
        assert!(plain > 3, "diffusion must actually spread, got {plain}");
        // The signed records survive verification after gossip hops.
        for i in 0..40u32 {
            let stored = signed_cluster.server(ServerId::new(i)).stored_signed(2);
            if stored.tagged.timestamp != Timestamp::ZERO {
                assert!(registry.verify_signed(&stored));
            }
        }
    }

    #[test]
    fn byzantine_receivers_drop_pushes_in_both_flavors() {
        use crate::timestamp::Timestamp;
        let mut cluster = Cluster::new(Universe::new(4));
        cluster.set_behavior(ServerId::new(1), Behavior::ByzantineForge);
        cluster.set_behavior(ServerId::new(2), Behavior::Crashed);
        let tv = TaggedValue::new(Value::from_u64(1), Timestamp::new(1, 1));
        let push = |to: u32| GossipPush {
            from: ServerId::new(0),
            to: ServerId::new(to),
            variable: 0,
            record: GossipRecord::Plain(tv.clone()),
        };
        assert!(!deliver(&mut cluster, &push(1)), "byzantine receiver");
        assert!(!deliver(&mut cluster, &push(2)), "crashed receiver");
        assert!(deliver(&mut cluster, &push(3)), "correct receiver stores");
        assert!(!deliver(&mut cluster, &push(3)), "duplicate is a no-op");
        assert_eq!(
            cluster.server(ServerId::new(1)).stored_plain(0).timestamp,
            Timestamp::ZERO
        );
    }

    #[test]
    fn cluster_round_plan_covers_all_variables_and_skips_faulty_senders() {
        use crate::timestamp::Timestamp;
        let mut cluster = Cluster::new(Universe::new(10));
        let record = |v: u64, c: u64| TaggedValue::new(Value::from_u64(v), Timestamp::new(c, 1));
        // Server 0 holds vars 3 and 7; server 1 holds var 3 (staler);
        // server 2 holds var 7 but is Byzantine.
        cluster
            .server_mut(ServerId::new(0))
            .store_plain_if_fresher(3, record(30, 2));
        cluster
            .server_mut(ServerId::new(0))
            .store_plain_if_fresher(7, record(70, 1));
        cluster
            .server_mut(ServerId::new(1))
            .store_plain_if_fresher(3, record(29, 1));
        cluster
            .server_mut(ServerId::new(2))
            .store_plain_if_fresher(7, record(70, 1));
        cluster.set_behavior(ServerId::new(2), Behavior::ByzantineStale);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let plan = plan_cluster_round(&cluster, 2, false, &mut rng);
        assert_eq!(plan.correct_servers, 9);
        // Coverage rows are sorted and count only correct holders of the
        // per-variable freshest timestamp.
        assert_eq!(plan.coverage.len(), 2);
        assert_eq!(plan.coverage[0].variable, 3);
        assert_eq!(plan.coverage[0].freshest, Timestamp::new(2, 1));
        assert_eq!(plan.coverage[0].holders, 1);
        assert_eq!(plan.coverage[1].variable, 7);
        assert_eq!(plan.coverage[1].holders, 1, "byzantine holder not counted");
        // Every push originates from a correct holder of a real record.
        assert!(!plan.pushes.is_empty());
        for push in &plan.pushes {
            assert_ne!(push.from, ServerId::new(2), "byzantine servers never push");
            assert_ne!(push.from, push.to);
            assert!(!push.record.is_initial());
        }
        // Applying the whole plan only ever freshens receivers.
        let before = count_fresh_correct(&cluster, 3);
        for push in &plan.pushes {
            deliver(&mut cluster, push);
        }
        assert!(count_fresh_correct(&cluster, 3) >= before);
    }

    #[test]
    fn digest_diffusion_converges_like_full_push() {
        // One holder of the freshest record per key; after enough digest
        // rounds every correct server holds every key's freshest record —
        // the same fixed point full-push gossip reaches.
        let universe = Universe::new(40);
        let mut cluster = Cluster::new(universe);
        for (var, holder) in [(0u64, 3u32), (5, 11), (9, 27)] {
            cluster
                .server_mut(ServerId::new(holder))
                .store_plain_if_fresher(
                    var,
                    TaggedValue::new(Value::from_u64(var), Timestamp::new(4, 1)),
                );
        }
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let stats = diffuse_digest_plain(
            &mut cluster,
            DiffusionConfig {
                fanout: 3,
                rounds: 8,
            },
            &mut rng,
        );
        for var in [0u64, 5, 9] {
            assert_eq!(count_fresh_correct(&cluster, var), 40, "key {var}");
        }
        assert!(stats.digests > 0);
        // Deltas carried each record at most once per (receiver, key) that
        // lacked it: far fewer transfers than 8 rounds of blind pushes.
        // Every correct (server, key) pair went from empty to fresh exactly
        // once; a few transfers race within a round (two exchanges planned
        // against the same stale snapshot), so transfers ≥ stores.
        assert_eq!(stats.stores, 39 * 3);
        assert!(stats.delta_records >= stats.stores, "{stats:?}");
        assert!(stats.redundant_avoided > 0, "{stats:?}");
        let blind = 8 * 40 * 3 * 3; // rounds x servers x keys x fanout
        assert!(
            stats.delta_records < blind as u64 / 4,
            "digest transfers {} should be far below blind {blind}",
            stats.delta_records
        );
    }

    #[test]
    fn diff_digest_sends_only_what_the_sender_provably_lacks() {
        let mut cluster = Cluster::new(Universe::new(4));
        let record = |v: u64, c: u64| TaggedValue::new(Value::from_u64(v), Timestamp::new(c, 1));
        // Receiver 1 holds: key 0 fresher than advertised, key 1 staler,
        // key 2 equal, key 3 unadvertised.
        let receiver = ServerId::new(1);
        cluster
            .server_mut(receiver)
            .store_plain_if_fresher(0, record(10, 5));
        cluster
            .server_mut(receiver)
            .store_plain_if_fresher(1, record(11, 1));
        cluster
            .server_mut(receiver)
            .store_plain_if_fresher(2, record(12, 2));
        cluster
            .server_mut(receiver)
            .store_plain_if_fresher(3, record(13, 7));
        let digest = GossipDigest {
            from: ServerId::new(0),
            to: receiver,
            signed: false,
            complete: true,
            entries: vec![
                (0, Timestamp::new(2, 1)),
                (1, Timestamp::new(9, 1)),
                (2, Timestamp::new(2, 1)),
            ],
        };
        let diff = diff_digest(&cluster, &digest).unwrap();
        // Keys 0 (fresher) and 3 (volunteered: digest is complete) flow
        // back; keys 1 and 2 are proven redundant.
        let keys: Vec<VariableId> = diff.delta.records.iter().map(|&(v, _)| v).collect();
        assert_eq!(keys, vec![0, 3]);
        assert_eq!(diff.avoided, vec![1, 2]);
        assert_eq!(diff.delta.from, receiver);
        assert_eq!(diff.delta.to, ServerId::new(0));
        // An incomplete digest must not volunteer unadvertised keys.
        let partial = GossipDigest {
            complete: false,
            ..digest.clone()
        };
        let diff = diff_digest(&cluster, &partial).unwrap();
        let keys: Vec<VariableId> = diff.delta.records.iter().map(|&(v, _)| v).collect();
        assert_eq!(keys, vec![0], "key 3 is outside the exchange's scope");
        // Applying the delta freshens the digest sender exactly once.
        let full = diff_digest(&cluster, &digest).unwrap();
        assert_eq!(deliver_delta(&mut cluster, &full.delta), 2);
        assert_eq!(deliver_delta(&mut cluster, &full.delta), 0, "idempotent");
        assert_eq!(
            cluster.server(ServerId::new(0)).stored_plain(3).timestamp,
            Timestamp::new(7, 1)
        );
    }

    #[test]
    fn faulty_receivers_never_answer_digests() {
        let mut cluster = Cluster::new(Universe::new(5));
        let record = TaggedValue::new(Value::from_u64(5), Timestamp::new(3, 1));
        for i in 1..=2u32 {
            cluster
                .server_mut(ServerId::new(i))
                .store_plain_if_fresher(0, record.clone());
        }
        cluster.set_behavior(ServerId::new(1), Behavior::Crashed);
        cluster.set_behavior(ServerId::new(2), Behavior::ByzantineForge);
        let digest = |to: u32| GossipDigest {
            from: ServerId::new(0),
            to: ServerId::new(to),
            signed: false,
            complete: true,
            entries: Vec::new(),
        };
        assert!(diff_digest(&cluster, &digest(1)).is_none(), "crashed");
        assert!(diff_digest(&cluster, &digest(2)).is_none(), "byzantine");
        // A correct but empty receiver answers with an empty delta.
        let diff = diff_digest(&cluster, &digest(3)).unwrap();
        assert!(diff.delta.records.is_empty());
        assert!(diff.avoided.is_empty());
        // A delta aimed at a server that crashed mid-flight stores nothing.
        let fresh = GossipDelta {
            from: ServerId::new(3),
            to: ServerId::new(1),
            records: vec![(0, GossipRecord::Plain(record))],
        };
        assert_eq!(deliver_delta(&mut cluster, &fresh), 0);
    }

    #[test]
    fn selective_digests_advertise_unheld_keys_at_timestamp_zero() {
        use std::collections::BTreeSet;
        let mut cluster = Cluster::new(Universe::new(6));
        // Server 2 holds keys 1 and 4; the policy only admits keys 1 and 7.
        let record = |v: u64, c: u64| TaggedValue::new(Value::from_u64(v), Timestamp::new(c, 1));
        cluster
            .server_mut(ServerId::new(2))
            .store_plain_if_fresher(1, record(1, 2));
        cluster
            .server_mut(ServerId::new(2))
            .store_plain_if_fresher(4, record(4, 3));
        let selector = KeySelector::Only(BTreeSet::from([1u64, 7]));
        assert!(!selector.is_complete());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let plan = plan_digest(&cluster, 2, false, &selector, &mut rng);
        assert_eq!(plan.correct_servers, 6);
        // The coverage snapshot still sees key 4 even though the selector
        // filtered it from the digests (metrics stay policy-blind).
        assert!(plan.coverage.iter().any(|c| c.variable == 4));
        for digest in &plan.digests {
            assert!(!digest.complete);
            let vars: Vec<VariableId> = digest.entries.iter().map(|&(v, _)| v).collect();
            assert_eq!(vars, vec![1, 7], "exactly the selected keys");
            let ts7 = digest.entries.iter().find(|&&(v, _)| v == 7).unwrap().1;
            assert_eq!(ts7, Timestamp::ZERO, "unheld keys pull from scratch");
            if digest.from == ServerId::new(2) {
                assert_eq!(digest.entries[0].1, Timestamp::new(2, 1));
            }
        }
        // Round-trip: a holder of key 7 answers the pull.
        cluster
            .server_mut(ServerId::new(5))
            .store_plain_if_fresher(7, record(7, 9));
        let digest = plan
            .digests
            .iter()
            .find(|d| d.to == ServerId::new(5))
            .cloned()
            .unwrap_or_else(|| GossipDigest {
                from: ServerId::new(0),
                to: ServerId::new(5),
                signed: false,
                complete: false,
                entries: vec![(1, Timestamp::ZERO), (7, Timestamp::ZERO)],
            });
        let diff = diff_digest(&cluster, &digest).unwrap();
        assert!(diff.delta.records.iter().any(|&(v, _)| v == 7));
    }

    #[test]
    fn signed_digest_diffusion_matches_plain() {
        // Mirrored clusters, same seed: record flavor never touches the
        // RNG, so digest gossip spreads identically and the stats agree.
        let universe = Universe::new(30);
        let mut plain_cluster = Cluster::new(universe);
        let mut signed_cluster = Cluster::new(universe);
        let mut registry = KeyRegistry::new();
        let key = registry.register(1, 31);
        let ts = Timestamp::new(6, 1);
        for i in [2u32, 8] {
            plain_cluster
                .server_mut(ServerId::new(i))
                .store_plain_if_fresher(3, TaggedValue::new(Value::from_u64(5), ts));
            signed_cluster
                .server_mut(ServerId::new(i))
                .store_signed_if_fresher(3, SignedValue::create(&key, Value::from_u64(5), ts));
        }
        let config = DiffusionConfig {
            fanout: 2,
            rounds: 6,
        };
        let mut rng_a = ChaCha8Rng::seed_from_u64(14);
        let mut rng_b = ChaCha8Rng::seed_from_u64(14);
        let plain = diffuse_digest_plain(&mut plain_cluster, config, &mut rng_a);
        let signed = diffuse_digest_signed(&mut signed_cluster, config, &mut rng_b);
        assert_eq!(plain, signed);
        assert_eq!(
            count_fresh_correct(&plain_cluster, 3),
            count_fresh_correct_signed(&signed_cluster, 3)
        );
        // Gossip hops preserve signature validity.
        for i in 0..30u32 {
            let stored = signed_cluster.server(ServerId::new(i)).stored_signed(3);
            if stored.tagged.timestamp != Timestamp::ZERO {
                assert!(registry.verify_signed(&stored));
            }
        }
    }

    #[test]
    fn incremental_rounds_match_the_run_to_completion_loop() {
        // Stepping plan_round + deliver by hand is exactly diffuse_plain.
        let universe = Universe::new(30);
        let seed_cluster = || {
            let mut c = Cluster::new(universe);
            c.server_mut(ServerId::new(4)).store_plain_if_fresher(
                1,
                TaggedValue::new(Value::from_u64(9), Timestamp::new(5, 2)),
            );
            c
        };
        let config = DiffusionConfig {
            fanout: 2,
            rounds: 3,
        };
        let mut rng_a = ChaCha8Rng::seed_from_u64(12);
        let mut rng_b = ChaCha8Rng::seed_from_u64(12);
        let mut whole = seed_cluster();
        let fresh = diffuse_plain(&mut whole, 1, config, &mut rng_a);
        let mut stepped = seed_cluster();
        let mut last = 0;
        for _ in 0..config.rounds {
            let pushes = plan_round(&stepped, 1, config.fanout, false, &mut rng_b);
            for push in &pushes {
                deliver(&mut stepped, push);
            }
            let now = count_fresh_correct(&stepped, 1);
            assert!(now >= last, "coverage is monotone in rounds");
            last = now;
        }
        assert_eq!(fresh, last);
    }
}
