//! Epidemic diffusion of updates between servers.
//!
//! Section 1.1 notes that "a system built with probabilistic quorum systems
//! can be strengthened by a properly designed diffusion mechanism, which
//! propagates updates to replicated data lazily, i.e., outside the critical
//! path of client operations", citing the classical anti-entropy / gossip
//! literature (\[DGH+87\], \[MMR99\]).  This module implements push gossip
//! between *correct* servers: in each round every correct server pushes its
//! freshest record for a variable to `fanout` uniformly chosen peers, which
//! keep it if it is newer.  Coupled with the register protocols this drives
//! the probability that a read misses the latest write toward zero once the
//! write has had a few rounds to spread.
//!
//! # Two drivers, one mechanism
//!
//! The gossip process is factored into two incremental steps so that both
//! the synchronous harness and the discrete-event engine run the *same*
//! mechanism:
//!
//! * [`plan_round`] / [`plan_cluster_round`] — snapshot the senders and
//!   draw the peers of one round, producing a batch of [`GossipPush`]
//!   messages (no state is mutated while planning, so a round is a
//!   synchronous exchange).
//! * [`deliver`] — apply one push to its receiver, evaluated at delivery
//!   time (the engine delays each push by its own latency draw, so a
//!   receiver that crashed mid-flight simply drops the message).
//!
//! The run-to-completion helpers [`diffuse_plain`] / [`diffuse_signed`]
//! compose the two steps back into the classic synchronous-rounds loop.
//!
//! Failure semantics are identical in both drivers: **crashed** servers
//! neither push nor receive, and **Byzantine** servers receive pushes
//! (harmlessly — they drop or suppress them) but never push, modelling the
//! fact that correct servers cannot rely on them to help dissemination.
//! Both the plain records of the safe/masking protocols and the signed,
//! self-verifying records of the dissemination protocol diffuse.

use crate::cluster::Cluster;
use crate::crypto::SignedValue;
use crate::server::{Behavior, VariableId};
use crate::timestamp::Timestamp;
use crate::value::TaggedValue;
use pqs_core::universe::ServerId;
use rand::Rng;
use rand::RngCore;
use std::collections::HashMap;

/// Configuration of the gossip process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffusionConfig {
    /// Number of peers each correct server pushes to per round.
    pub fanout: usize,
    /// Number of gossip rounds to run.
    pub rounds: usize,
}

impl Default for DiffusionConfig {
    /// Two peers per round for five rounds — enough for near-complete
    /// coverage of clusters with a few hundred servers.
    fn default() -> Self {
        DiffusionConfig {
            fanout: 2,
            rounds: 5,
        }
    }
}

/// The record one gossip push carries: plain for the safe and masking
/// protocols, signed for dissemination (mirroring
/// [`WriteRecord`](crate::register::WriteRecord) on the client side).
#[derive(Debug, Clone, PartialEq)]
pub enum GossipRecord {
    /// An unsigned value–timestamp pair.
    Plain(TaggedValue),
    /// A signed, self-verifying value–timestamp pair.
    Signed(SignedValue),
}

impl GossipRecord {
    /// The timestamp the record was written under.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            GossipRecord::Plain(tv) => tv.timestamp,
            GossipRecord::Signed(sv) => sv.tagged.timestamp,
        }
    }

    /// Whether the record is the never-written initial value (timestamp
    /// zero) — such records are not worth a message.
    pub fn is_initial(&self) -> bool {
        self.timestamp() == Timestamp::ZERO
    }
}

/// One server-to-server gossip message: `from` pushes its freshest record
/// for `variable` to `to`.  Planned by [`plan_round`] /
/// [`plan_cluster_round`], applied by [`deliver`].
#[derive(Debug, Clone, PartialEq)]
pub struct GossipPush {
    /// The (correct) sender.
    pub from: ServerId,
    /// The receiver.
    pub to: ServerId,
    /// The variable the record belongs to.
    pub variable: VariableId,
    /// The sender's record at planning (send) time.
    pub record: GossipRecord,
}

/// Plans one synchronous round of push gossip for a single `variable`.
///
/// Every *correct* server draws `fanout` uniform peers (self-draws are
/// consumed but skipped, preserving the classic RNG stream); a push is
/// emitted for each draw whose sender actually holds a non-initial record.
/// Nothing is mutated: the returned batch is a snapshot-consistent
/// exchange, to be applied with [`deliver`].
pub fn plan_round(
    cluster: &Cluster,
    variable: VariableId,
    fanout: usize,
    signed: bool,
    rng: &mut dyn RngCore,
) -> Vec<GossipPush> {
    let n = cluster.len();
    let mut pushes = Vec::new();
    for i in 0..n as u32 {
        let sender = cluster.server(ServerId::new(i));
        if sender.behavior() != Behavior::Correct {
            continue;
        }
        let record = if signed {
            GossipRecord::Signed(sender.stored_signed(variable))
        } else {
            GossipRecord::Plain(sender.stored_plain(variable))
        };
        for _ in 0..fanout {
            let peer = rng.gen_range(0..n);
            if peer == i as usize || record.is_initial() {
                continue;
            }
            pushes.push(GossipPush {
                from: ServerId::new(i),
                to: ServerId::new(peer as u32),
                variable,
                record: record.clone(),
            });
        }
    }
    pushes
}

/// The freshest timestamp held by correct servers for one variable, and how
/// many of them hold it — the unit of the engine's per-key
/// rounds-to-coverage accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariableCoverage {
    /// The variable.
    pub variable: VariableId,
    /// The freshest timestamp any correct server holds for it.
    pub freshest: Timestamp,
    /// Number of correct servers holding exactly that timestamp.
    pub holders: u32,
}

/// One planned engine round: the pushes of every correct server for every
/// variable it holds, plus the coverage snapshot the planner computed on
/// the way.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPlan {
    /// The round's messages, in deterministic (sender id, variable) order.
    pub pushes: Vec<GossipPush>,
    /// Per-variable coverage among correct servers at planning time,
    /// sorted by variable id.
    pub coverage: Vec<VariableCoverage>,
    /// Number of correct servers at planning time (the coverage
    /// denominator).
    pub correct_servers: u32,
}

/// Plans one engine round of push gossip over **every** variable held
/// anywhere in the cluster: each correct server pushes its freshest record
/// for each variable it stores to `fanout` uniform peers.
///
/// Variables are visited in sorted order per sender so the RNG consumption
/// (and hence the whole simulation) is deterministic.  The same pass also
/// produces the per-variable [`VariableCoverage`] snapshot used by the
/// convergence metrics.
pub fn plan_cluster_round(
    cluster: &Cluster,
    fanout: usize,
    signed: bool,
    rng: &mut dyn RngCore,
) -> RoundPlan {
    let n = cluster.len();
    let mut pushes = Vec::new();
    let mut coverage: HashMap<VariableId, (Timestamp, u32)> = HashMap::new();
    let mut correct_servers = 0u32;
    for i in 0..n as u32 {
        let sender = cluster.server(ServerId::new(i));
        if sender.behavior() != Behavior::Correct {
            continue;
        }
        correct_servers += 1;
        let mut variables: Vec<VariableId> = if signed {
            sender.signed_variables().collect()
        } else {
            sender.plain_variables().collect()
        };
        variables.sort_unstable();
        for variable in variables {
            let record = if signed {
                GossipRecord::Signed(sender.stored_signed(variable))
            } else {
                GossipRecord::Plain(sender.stored_plain(variable))
            };
            if record.is_initial() {
                continue;
            }
            let entry = coverage.entry(variable).or_insert((Timestamp::ZERO, 0));
            let ts = record.timestamp();
            if ts > entry.0 {
                *entry = (ts, 1);
            } else if ts == entry.0 {
                entry.1 += 1;
            }
            for _ in 0..fanout {
                let peer = rng.gen_range(0..n);
                if peer == i as usize {
                    continue;
                }
                pushes.push(GossipPush {
                    from: ServerId::new(i),
                    to: ServerId::new(peer as u32),
                    variable,
                    record: record.clone(),
                });
            }
        }
    }
    let mut coverage: Vec<VariableCoverage> = coverage
        .into_iter()
        .map(|(variable, (freshest, holders))| VariableCoverage {
            variable,
            freshest,
            holders,
        })
        .collect();
    coverage.sort_unstable_by_key(|c| c.variable);
    RoundPlan {
        pushes,
        coverage,
        correct_servers,
    }
}

/// Delivers one gossip push, evaluating the receiver's behaviour *now*:
/// correct receivers merge by freshest-timestamp, crashed receivers are
/// unreachable and Byzantine receivers drop the record (all they can do
/// undetectably is suppress it).  Returns `true` if the receiver's stored
/// record actually became fresher.
pub fn deliver(cluster: &mut Cluster, push: &GossipPush) -> bool {
    if cluster.server(push.to).behavior() != Behavior::Correct {
        return false;
    }
    match &push.record {
        GossipRecord::Plain(tv) => cluster
            .server_mut(push.to)
            .store_plain_if_fresher(push.variable, tv.clone()),
        GossipRecord::Signed(sv) => cluster
            .server_mut(push.to)
            .store_signed_if_fresher(push.variable, sv.clone()),
    }
}

/// Runs synchronous push-gossip of plain records for one variable and
/// returns the number of *correct* servers holding the globally freshest
/// record after the final round.
///
/// Crashed servers neither push nor receive; Byzantine servers receive
/// pushes (harmlessly) but never push, modelling the fact that correct
/// servers cannot rely on them to help dissemination.
pub fn diffuse_plain(
    cluster: &mut Cluster,
    variable: VariableId,
    config: DiffusionConfig,
    rng: &mut dyn RngCore,
) -> usize {
    for _ in 0..config.rounds {
        let pushes = plan_round(cluster, variable, config.fanout, false, rng);
        for push in &pushes {
            deliver(cluster, push);
        }
    }
    count_fresh_correct(cluster, variable)
}

/// [`diffuse_plain`] for the signed records of the dissemination protocol:
/// the same push-gossip process, merging by the timestamp of the signed
/// record.  Byzantine servers cannot forge a verifying record, so the worst
/// they do here is exactly what they do on the plain path — refuse to help.
pub fn diffuse_signed(
    cluster: &mut Cluster,
    variable: VariableId,
    config: DiffusionConfig,
    rng: &mut dyn RngCore,
) -> usize {
    for _ in 0..config.rounds {
        let pushes = plan_round(cluster, variable, config.fanout, true, rng);
        for push in &pushes {
            deliver(cluster, push);
        }
    }
    count_fresh_correct_signed(cluster, variable)
}

/// Number of correct servers holding the freshest record currently present
/// anywhere in the cluster for `variable`.
pub fn count_fresh_correct(cluster: &Cluster, variable: VariableId) -> usize {
    let freshest: Timestamp = (0..cluster.len() as u32)
        .map(|i| {
            cluster
                .server(ServerId::new(i))
                .stored_plain(variable)
                .timestamp
        })
        .max()
        .unwrap_or(Timestamp::ZERO);
    if freshest == Timestamp::ZERO {
        return 0;
    }
    (0..cluster.len() as u32)
        .filter(|&i| {
            let s = cluster.server(ServerId::new(i));
            s.behavior() == Behavior::Correct && s.stored_plain(variable).timestamp == freshest
        })
        .count()
}

/// [`count_fresh_correct`] over the signed storage of the dissemination
/// protocol.
pub fn count_fresh_correct_signed(cluster: &Cluster, variable: VariableId) -> usize {
    let freshest: Timestamp = (0..cluster.len() as u32)
        .map(|i| {
            cluster
                .server(ServerId::new(i))
                .stored_signed(variable)
                .tagged
                .timestamp
        })
        .max()
        .unwrap_or(Timestamp::ZERO);
    if freshest == Timestamp::ZERO {
        return 0;
    }
    (0..cluster.len() as u32)
        .filter(|&i| {
            let s = cluster.server(ServerId::new(i));
            s.behavior() == Behavior::Correct
                && s.stored_signed(variable).tagged.timestamp == freshest
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::KeyRegistry;
    use crate::register::SafeRegister;
    use crate::value::Value;
    use pqs_core::probabilistic::EpsilonIntersecting;
    use pqs_core::system::{ProbabilisticQuorumSystem, QuorumSystem};
    use pqs_core::universe::Universe;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn diffusion_spreads_the_latest_write_to_almost_everyone() {
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        reg.write(&mut cluster, &mut rng, Value::from_u64(9))
            .unwrap();
        let before = count_fresh_correct(&cluster, 0);
        assert!(before <= 22);
        let after = diffuse_plain(&mut cluster, 0, DiffusionConfig::default(), &mut rng);
        assert!(after > 90, "only {after} servers fresh after diffusion");
        assert!(after >= before);
    }

    #[test]
    fn diffusion_lowers_stale_read_rate() {
        // Theorem 3.2 gives a stale-read rate of about epsilon without
        // diffusion; with diffusion between write and read it collapses to
        // (essentially) zero.
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let eps = sys.epsilon();
        assert!(eps > 0.05, "test needs a loose system to be meaningful");
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let trials = 500u64;
        let mut stale = 0u64;
        for i in 1..=trials {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            diffuse_plain(
                &mut cluster,
                0,
                DiffusionConfig {
                    fanout: 2,
                    rounds: 4,
                },
                &mut rng,
            );
            match reg.read(&mut cluster, &mut rng).unwrap() {
                Some(tv) if tv.value == Value::from_u64(i) => {}
                _ => stale += 1,
            }
        }
        let rate = stale as f64 / trials as f64;
        assert!(rate < eps / 4.0, "rate {rate} not much below epsilon {eps}");
    }

    #[test]
    fn crashed_and_byzantine_servers_do_not_push() {
        let universe = Universe::new(20);
        let mut cluster = Cluster::new(universe);
        // Server 0 holds the only copy but is Byzantine; server 1 holds it
        // and is crashed; nothing should spread.
        use crate::server::Behavior;
        use crate::timestamp::Timestamp;
        use crate::value::TaggedValue;
        let record = TaggedValue::new(Value::from_u64(5), Timestamp::new(1, 1));
        cluster
            .server_mut(ServerId::new(0))
            .store_plain_if_fresher(0, record.clone());
        cluster
            .server_mut(ServerId::new(1))
            .store_plain_if_fresher(0, record);
        cluster.set_behavior(ServerId::new(0), Behavior::ByzantineStale);
        cluster.set_behavior(ServerId::new(1), Behavior::Crashed);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let fresh = diffuse_plain(
            &mut cluster,
            0,
            DiffusionConfig {
                fanout: 3,
                rounds: 5,
            },
            &mut rng,
        );
        assert_eq!(
            fresh, 0,
            "no correct server should have received the record"
        );
    }

    #[test]
    fn empty_cluster_state_counts_zero_fresh() {
        let cluster = Cluster::new(Universe::new(5));
        assert_eq!(count_fresh_correct(&cluster, 0), 0);
        assert_eq!(count_fresh_correct_signed(&cluster, 0), 0);
        let mut cluster = cluster;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(
            diffuse_plain(&mut cluster, 0, DiffusionConfig::default(), &mut rng),
            0
        );
        assert_eq!(
            diffuse_signed(&mut cluster, 0, DiffusionConfig::default(), &mut rng),
            0
        );
    }

    #[test]
    fn signed_records_diffuse_like_plain_ones() {
        // Identical initial holders, identical RNG seed: the signed and
        // plain planners draw the same peers (record kind never touches the
        // RNG), so coverage after diffusion is identical.
        use crate::timestamp::Timestamp;
        let universe = Universe::new(40);
        let mut plain_cluster = Cluster::new(universe);
        let mut signed_cluster = Cluster::new(universe);
        let mut registry = KeyRegistry::new();
        let key = registry.register(1, 11);
        let tv = TaggedValue::new(Value::from_u64(7), Timestamp::new(3, 1));
        let sv = SignedValue::create(&key, Value::from_u64(7), Timestamp::new(3, 1));
        for i in [0u32, 5, 9] {
            plain_cluster
                .server_mut(ServerId::new(i))
                .store_plain_if_fresher(2, tv.clone());
            signed_cluster
                .server_mut(ServerId::new(i))
                .store_signed_if_fresher(2, sv.clone());
        }
        let config = DiffusionConfig {
            fanout: 2,
            rounds: 4,
        };
        let mut rng_a = ChaCha8Rng::seed_from_u64(8);
        let mut rng_b = ChaCha8Rng::seed_from_u64(8);
        let plain = diffuse_plain(&mut plain_cluster, 2, config, &mut rng_a);
        let signed = diffuse_signed(&mut signed_cluster, 2, config, &mut rng_b);
        assert_eq!(plain, signed);
        assert!(plain > 3, "diffusion must actually spread, got {plain}");
        // The signed records survive verification after gossip hops.
        for i in 0..40u32 {
            let stored = signed_cluster.server(ServerId::new(i)).stored_signed(2);
            if stored.tagged.timestamp != Timestamp::ZERO {
                assert!(registry.verify_signed(&stored));
            }
        }
    }

    #[test]
    fn byzantine_receivers_drop_pushes_in_both_flavors() {
        use crate::timestamp::Timestamp;
        let mut cluster = Cluster::new(Universe::new(4));
        cluster.set_behavior(ServerId::new(1), Behavior::ByzantineForge);
        cluster.set_behavior(ServerId::new(2), Behavior::Crashed);
        let tv = TaggedValue::new(Value::from_u64(1), Timestamp::new(1, 1));
        let push = |to: u32| GossipPush {
            from: ServerId::new(0),
            to: ServerId::new(to),
            variable: 0,
            record: GossipRecord::Plain(tv.clone()),
        };
        assert!(!deliver(&mut cluster, &push(1)), "byzantine receiver");
        assert!(!deliver(&mut cluster, &push(2)), "crashed receiver");
        assert!(deliver(&mut cluster, &push(3)), "correct receiver stores");
        assert!(!deliver(&mut cluster, &push(3)), "duplicate is a no-op");
        assert_eq!(
            cluster.server(ServerId::new(1)).stored_plain(0).timestamp,
            Timestamp::ZERO
        );
    }

    #[test]
    fn cluster_round_plan_covers_all_variables_and_skips_faulty_senders() {
        use crate::timestamp::Timestamp;
        let mut cluster = Cluster::new(Universe::new(10));
        let record = |v: u64, c: u64| TaggedValue::new(Value::from_u64(v), Timestamp::new(c, 1));
        // Server 0 holds vars 3 and 7; server 1 holds var 3 (staler);
        // server 2 holds var 7 but is Byzantine.
        cluster
            .server_mut(ServerId::new(0))
            .store_plain_if_fresher(3, record(30, 2));
        cluster
            .server_mut(ServerId::new(0))
            .store_plain_if_fresher(7, record(70, 1));
        cluster
            .server_mut(ServerId::new(1))
            .store_plain_if_fresher(3, record(29, 1));
        cluster
            .server_mut(ServerId::new(2))
            .store_plain_if_fresher(7, record(70, 1));
        cluster.set_behavior(ServerId::new(2), Behavior::ByzantineStale);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let plan = plan_cluster_round(&cluster, 2, false, &mut rng);
        assert_eq!(plan.correct_servers, 9);
        // Coverage rows are sorted and count only correct holders of the
        // per-variable freshest timestamp.
        assert_eq!(plan.coverage.len(), 2);
        assert_eq!(plan.coverage[0].variable, 3);
        assert_eq!(plan.coverage[0].freshest, Timestamp::new(2, 1));
        assert_eq!(plan.coverage[0].holders, 1);
        assert_eq!(plan.coverage[1].variable, 7);
        assert_eq!(plan.coverage[1].holders, 1, "byzantine holder not counted");
        // Every push originates from a correct holder of a real record.
        assert!(!plan.pushes.is_empty());
        for push in &plan.pushes {
            assert_ne!(push.from, ServerId::new(2), "byzantine servers never push");
            assert_ne!(push.from, push.to);
            assert!(!push.record.is_initial());
        }
        // Applying the whole plan only ever freshens receivers.
        let before = count_fresh_correct(&cluster, 3);
        for push in &plan.pushes {
            deliver(&mut cluster, push);
        }
        assert!(count_fresh_correct(&cluster, 3) >= before);
    }

    #[test]
    fn incremental_rounds_match_the_run_to_completion_loop() {
        // Stepping plan_round + deliver by hand is exactly diffuse_plain.
        let universe = Universe::new(30);
        let seed_cluster = || {
            let mut c = Cluster::new(universe);
            c.server_mut(ServerId::new(4)).store_plain_if_fresher(
                1,
                TaggedValue::new(Value::from_u64(9), Timestamp::new(5, 2)),
            );
            c
        };
        let config = DiffusionConfig {
            fanout: 2,
            rounds: 3,
        };
        let mut rng_a = ChaCha8Rng::seed_from_u64(12);
        let mut rng_b = ChaCha8Rng::seed_from_u64(12);
        let mut whole = seed_cluster();
        let fresh = diffuse_plain(&mut whole, 1, config, &mut rng_a);
        let mut stepped = seed_cluster();
        let mut last = 0;
        for _ in 0..config.rounds {
            let pushes = plan_round(&stepped, 1, config.fanout, false, &mut rng_b);
            for push in &pushes {
                deliver(&mut stepped, push);
            }
            let now = count_fresh_correct(&stepped, 1);
            assert!(now >= last, "coverage is monotone in rounds");
            last = now;
        }
        assert_eq!(fresh, last);
    }
}
