//! Simulated digital signatures for self-verifying data.
//!
//! Section 4 assumes "data that servers can suppress but not undetectably
//! alter (such as digitally signed data)".  Deploying a real signature
//! scheme is orthogonal to the quorum analysis, so this workspace simulates
//! one with a keyed hash: each writer holds a secret [`SigningKey`]; a
//! [`KeyRegistry`] plays the role of the public-key infrastructure and lets
//! anyone *verify* a signature, but forging a signature for a key you do not
//! hold requires guessing a 64-bit secret — which the Byzantine server
//! behaviours in this workspace do not do.  This preserves exactly the
//! property the protocol analysis relies on while keeping the workspace
//! dependency-free.  (See DESIGN.md, "Substitutions".)

use crate::timestamp::Timestamp;
use crate::value::{TaggedValue, Value};
use crate::ClientId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A writer's secret signing key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SigningKey {
    owner: ClientId,
    secret: u64,
}

impl SigningKey {
    /// Derives a key for `owner` from a seed (in a real deployment this
    /// would be generated randomly and distributed out of band).
    pub fn derive(owner: ClientId, seed: u64) -> Self {
        SigningKey {
            owner,
            secret: mix(seed ^ 0x9e37_79b9_7f4a_7c15, owner as u64 + 1),
        }
    }

    /// The client this key belongs to.
    pub fn owner(&self) -> ClientId {
        self.owner
    }

    /// Signs a value–timestamp pair.
    pub fn sign(&self, value: &Value, timestamp: Timestamp) -> Signature {
        Signature(tag(self.secret, self.owner, value, timestamp))
    }
}

/// A (simulated) signature over a value–timestamp pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature(u64);

/// The public side of the key registry: maps writers to verification
/// material.
///
/// # Examples
///
/// ```
/// use pqs_protocols::crypto::{KeyRegistry, SigningKey};
/// use pqs_protocols::timestamp::Timestamp;
/// use pqs_protocols::value::Value;
///
/// let mut registry = KeyRegistry::new();
/// let key = registry.register(3, 1234);
/// let v = Value::from_u64(10);
/// let ts = Timestamp::new(1, 3);
/// let sig = key.sign(&v, ts);
/// assert!(registry.verify(3, &v, ts, sig));
/// assert!(!registry.verify(3, &Value::from_u64(11), ts, sig));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeyRegistry {
    secrets: HashMap<ClientId, u64>,
}

impl KeyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a writer and returns its signing key.
    pub fn register(&mut self, owner: ClientId, seed: u64) -> SigningKey {
        let key = SigningKey::derive(owner, seed);
        self.secrets.insert(owner, key.secret);
        key
    }

    /// Returns `true` if `owner` has a registered key.
    pub fn knows(&self, owner: ClientId) -> bool {
        self.secrets.contains_key(&owner)
    }

    /// Verifies a signature allegedly produced by `owner` over the pair.
    pub fn verify(
        &self,
        owner: ClientId,
        value: &Value,
        timestamp: Timestamp,
        signature: Signature,
    ) -> bool {
        match self.secrets.get(&owner) {
            Some(&secret) => Signature(tag(secret, owner, value, timestamp)) == signature,
            None => false,
        }
    }

    /// Verifies a [`SignedValue`] end to end.
    pub fn verify_signed(&self, signed: &SignedValue) -> bool {
        self.verify(
            signed.writer,
            &signed.tagged.value,
            signed.tagged.timestamp,
            signed.signature,
        )
    }
}

/// A self-verifying record: value, timestamp, writer and signature — what
/// servers store under the dissemination protocol of Section 4 ("the
/// timestamps are assumed to be included as part of the self-verifying
/// data").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignedValue {
    /// The value–timestamp pair being certified.
    pub tagged: TaggedValue,
    /// The client that produced (and signed) the pair.
    pub writer: ClientId,
    /// Signature over the pair by the writer's key.
    pub signature: Signature,
}

impl SignedValue {
    /// Signs a value–timestamp pair with the given key.
    pub fn create(key: &SigningKey, value: Value, timestamp: Timestamp) -> Self {
        let signature = key.sign(&value, timestamp);
        SignedValue {
            tagged: TaggedValue::new(value, timestamp),
            writer: key.owner(),
            signature,
        }
    }

    /// The record every replica starts with: an unsigned placeholder at
    /// timestamp zero (it never verifies, so readers ignore it — matching
    /// the "⊥ if V′ is empty" case of the read protocol).
    pub fn unsigned_initial() -> Self {
        SignedValue {
            tagged: TaggedValue::initial(),
            writer: 0,
            signature: Signature(0),
        }
    }
}

/// A keyed tag (64-bit) over the record; plays the role of MAC/signature.
fn tag(secret: u64, owner: ClientId, value: &Value, timestamp: Timestamp) -> u64 {
    let mut acc = mix(secret, 0x517c_c1b7_2722_0a95);
    acc = mix(acc, owner as u64);
    acc = mix(acc, timestamp.counter());
    acc = mix(acc, timestamp.writer() as u64);
    for chunk in value.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = mix(acc, u64::from_le_bytes(word));
    }
    acc = mix(acc, value.as_bytes().len() as u64);
    acc
}

/// A simple 64-bit mixing step (splitmix64 finalizer).
fn mix(state: u64, input: u64) -> u64 {
    let mut z = state ^ input.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KeyRegistry, SigningKey) {
        let mut reg = KeyRegistry::new();
        let key = reg.register(7, 42);
        (reg, key)
    }

    #[test]
    fn sign_and_verify_roundtrip() {
        let (reg, key) = setup();
        let v = Value::from_u64(99);
        let ts = Timestamp::new(3, 7);
        let sig = key.sign(&v, ts);
        assert!(reg.verify(7, &v, ts, sig));
        assert!(reg.knows(7));
        assert!(!reg.knows(8));
    }

    #[test]
    fn verification_fails_on_any_tampering() {
        let (reg, key) = setup();
        let v = Value::from_u64(99);
        let ts = Timestamp::new(3, 7);
        let sig = key.sign(&v, ts);
        // Altered value.
        assert!(!reg.verify(7, &Value::from_u64(100), ts, sig));
        // Altered timestamp (replay at a higher timestamp).
        assert!(!reg.verify(7, &v, Timestamp::new(4, 7), sig));
        // Wrong claimed writer.
        assert!(!reg.verify(6, &v, ts, sig));
        // Unknown writer.
        assert!(!reg.verify(99, &v, ts, sig));
    }

    #[test]
    fn different_writers_produce_different_signatures() {
        let mut reg = KeyRegistry::new();
        let k1 = reg.register(1, 5);
        let k2 = reg.register(2, 5);
        let v = Value::from_u64(1);
        let ts = Timestamp::new(1, 1);
        assert_ne!(k1.sign(&v, ts), k2.sign(&v, ts));
    }

    #[test]
    fn signed_value_roundtrip_and_initial() {
        let (reg, key) = setup();
        let signed = SignedValue::create(&key, Value::from_u64(5), Timestamp::new(2, 7));
        assert!(reg.verify_signed(&signed));
        assert_eq!(signed.writer, 7);
        // Tampering with the stored record is detected.
        let mut forged = signed.clone();
        forged.tagged.value = Value::from_u64(6);
        assert!(!reg.verify_signed(&forged));
        // The initial placeholder never verifies.
        assert!(!reg.verify_signed(&SignedValue::unsigned_initial()));
    }

    #[test]
    fn signature_depends_on_value_length_extension() {
        let (_, key) = setup();
        let ts = Timestamp::new(1, 7);
        let a = key.sign(&Value::new(vec![1, 0]), ts);
        let b = key.sign(&Value::new(vec![1]), ts);
        assert_ne!(a, b, "length must be part of the tag");
    }
}
