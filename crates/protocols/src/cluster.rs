//! A universe of replica servers addressed by quorum.
//!
//! [`Cluster`] owns one [`ReplicaServer`] per element of a
//! [`Universe`], provides quorum-granularity read/write fan-out for the
//! register protocols, failure injection (crashes and Byzantine
//! corruption), and per-server access accounting used to *measure* load
//! (Definition 2.4) empirically.

use crate::crypto::SignedValue;
use crate::server::{Behavior, ReplicaServer, VariableId};
use crate::value::TaggedValue;
use pqs_core::quorum::Quorum;
use pqs_core::universe::{ServerId, Universe};
use rand::Rng;
use rand::RngCore;

/// A collection of replica servers covering a universe.
#[derive(Debug, Clone)]
pub struct Cluster {
    universe: Universe,
    servers: Vec<ReplicaServer>,
    access_counts: Vec<u64>,
    accesses: u64,
}

impl Cluster {
    /// Creates a cluster with one correct server per universe element.
    pub fn new(universe: Universe) -> Self {
        let servers = (0..universe.size())
            .map(|i| ReplicaServer::new(ServerId::new(i)))
            .collect();
        Cluster {
            universe,
            servers,
            access_counts: vec![0; universe.size() as usize],
            accesses: 0,
        }
    }

    /// The universe this cluster covers.
    pub fn universe(&self) -> Universe {
        self.universe
    }

    /// Pre-sizes every server's dense record stores for a key space of
    /// `keys` variables ([`ReplicaServer::reserve_variables`] per
    /// server) — a capacity hint the simulation drivers apply once at
    /// start-up so the hot path never reallocates.
    pub fn reserve_variables(&mut self, keys: u64) {
        for server in &mut self.servers {
            server.reserve_variables(keys);
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Returns `true` if the cluster has no servers (never the case for a
    /// validly constructed cluster).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Immutable access to a server (for assertions and diffusion).
    pub fn server(&self, id: ServerId) -> &ReplicaServer {
        &self.servers[id.as_usize()]
    }

    /// Mutable access to a server.
    pub fn server_mut(&mut self, id: ServerId) -> &mut ReplicaServer {
        &mut self.servers[id.as_usize()]
    }

    /// Sets the behaviour of a single server.
    pub fn set_behavior(&mut self, id: ServerId, behavior: Behavior) {
        self.servers[id.as_usize()].set_behavior(behavior);
    }

    /// Brings a server (back) into membership with freshly reset record
    /// stores sized for `keys` variables: the joiner comes up correct and
    /// must bootstrap its state through gossip (see
    /// [`ReplicaServer::reset_stores`]).
    pub fn join_server(&mut self, id: ServerId, keys: u64) {
        let server = self.server_mut(id);
        server.reset_stores(keys);
        server.set_behavior(Behavior::Correct);
    }

    /// Crashes every server in `ids`.
    pub fn crash_all<I: IntoIterator<Item = ServerId>>(&mut self, ids: I) {
        for id in ids {
            self.set_behavior(id, Behavior::Crashed);
        }
    }

    /// Crashes each server independently with probability `p`
    /// (the failure model of Definition 2.6); returns how many crashed.
    pub fn crash_independently(&mut self, rng: &mut dyn RngCore, p: f64) -> usize {
        let p = p.clamp(0.0, 1.0);
        let mut crashed = 0;
        for i in 0..self.servers.len() {
            if rng.gen_bool(p) {
                self.servers[i].set_behavior(Behavior::Crashed);
                crashed += 1;
            }
        }
        crashed
    }

    /// Makes every server in `ids` Byzantine with the given behaviour.
    pub fn corrupt_all<I: IntoIterator<Item = ServerId>>(&mut self, ids: I, behavior: Behavior) {
        for id in ids {
            self.set_behavior(id, behavior);
        }
    }

    /// Restores every server to correct behaviour (state is kept).
    pub fn heal_all(&mut self) {
        for s in &mut self.servers {
            s.set_behavior(Behavior::Correct);
        }
    }

    /// The set of servers currently exhibiting Byzantine behaviour.
    pub fn byzantine_set(&self) -> Quorum {
        Quorum::from_servers(
            self.universe,
            self.servers
                .iter()
                .filter(|s| s.behavior().is_byzantine())
                .map(|s| s.id()),
        )
        .expect("server ids are in range")
    }

    /// The set of currently crashed servers.
    pub fn crashed_set(&self) -> Quorum {
        Quorum::from_servers(
            self.universe,
            self.servers
                .iter()
                .filter(|s| s.behavior() == Behavior::Crashed)
                .map(|s| s.id()),
        )
        .expect("server ids are in range")
    }

    /// Sends a plain read to a single server; returns its reply, or `None`
    /// if the server does not answer (crashed).  The access is counted
    /// whether or not the server replies, like a quorum-granularity read.
    ///
    /// This is the per-message building block of the session-based access
    /// model ([`crate::register::session`]): the discrete-event simulator
    /// schedules one such probe per `(operation, server)` pair, so a
    /// server's behaviour is evaluated at the *message's* delivery time
    /// rather than at the operation's start.
    pub fn probe_read_plain(&mut self, id: ServerId, var: VariableId) -> Option<TaggedValue> {
        self.note_access(id);
        self.servers[id.as_usize()].handle_read_plain(var)
    }

    /// Sends a plain write to a single server; returns `true` if it
    /// acknowledged.
    pub fn probe_write_plain(&mut self, id: ServerId, var: VariableId, tv: &TaggedValue) -> bool {
        self.note_access(id);
        self.servers[id.as_usize()].handle_write_plain(var, tv.clone())
    }

    /// Sends a signed read to a single server (dissemination protocol).
    pub fn probe_read_signed(&mut self, id: ServerId, var: VariableId) -> Option<SignedValue> {
        self.note_access(id);
        self.servers[id.as_usize()].handle_read_signed(var)
    }

    /// Sends a signed write to a single server; returns `true` if it
    /// acknowledged.
    pub fn probe_write_signed(&mut self, id: ServerId, var: VariableId, sv: &SignedValue) -> bool {
        self.note_access(id);
        self.servers[id.as_usize()].handle_write_signed(var, sv.clone())
    }

    /// Sends a plain read to every server of `quorum`; returns the replies
    /// that arrived.
    pub fn read_plain(&mut self, quorum: &Quorum, var: VariableId) -> Vec<(ServerId, TaggedValue)> {
        let mut replies = Vec::with_capacity(quorum.len());
        for id in quorum.iter() {
            if let Some(tv) = self.probe_read_plain(id, var) {
                replies.push((id, tv));
            }
        }
        replies
    }

    /// Sends a plain write to every server of `quorum`; returns the number
    /// of acknowledgements.
    pub fn write_plain(&mut self, quorum: &Quorum, var: VariableId, tv: &TaggedValue) -> usize {
        quorum
            .iter()
            .filter(|&id| self.probe_write_plain(id, var, tv))
            .count()
    }

    /// Sends a signed read to every server of `quorum`.
    pub fn read_signed(
        &mut self,
        quorum: &Quorum,
        var: VariableId,
    ) -> Vec<(ServerId, SignedValue)> {
        let mut replies = Vec::with_capacity(quorum.len());
        for id in quorum.iter() {
            if let Some(sv) = self.probe_read_signed(id, var) {
                replies.push((id, sv));
            }
        }
        replies
    }

    /// Sends a signed write to every server of `quorum`; returns the number
    /// of acknowledgements.
    pub fn write_signed(&mut self, quorum: &Quorum, var: VariableId, sv: &SignedValue) -> usize {
        quorum
            .iter()
            .filter(|&id| self.probe_write_signed(id, var, sv))
            .count()
    }

    /// Total number of quorum accesses performed so far (each read or write
    /// of a quorum counts once).
    pub fn total_accesses(&self) -> u64 {
        self.accesses
    }

    /// Per-server access counts accumulated so far.
    pub fn access_counts(&self) -> &[u64] {
        &self.access_counts
    }

    /// The empirical load: the busiest server's access count divided by the
    /// number of quorum accesses (the measured counterpart of
    /// Definition 2.4).  Returns 0 if no accesses happened yet.
    pub fn empirical_load(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let max = self.access_counts.iter().copied().max().unwrap_or(0);
        max as f64 / self.accesses as f64
    }

    /// Resets the access accounting (e.g. after a warm-up phase).
    pub fn reset_access_counts(&mut self) {
        self.access_counts.iter_mut().for_each(|c| *c = 0);
        self.accesses = 0;
    }

    fn note_access(&mut self, id: ServerId) {
        self.access_counts[id.as_usize()] += 1;
    }

    /// Marks the start of one client operation for load accounting (the
    /// register protocols call this once per read/write).
    pub fn note_operation(&mut self) {
        self.accesses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::Timestamp;
    use crate::value::Value;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tv(v: u64, c: u64) -> TaggedValue {
        TaggedValue::new(Value::from_u64(v), Timestamp::new(c, 1))
    }

    #[test]
    fn construction_and_accessors() {
        let c = Cluster::new(Universe::new(10));
        assert_eq!(c.len(), 10);
        assert!(!c.is_empty());
        assert_eq!(c.universe().size(), 10);
        assert_eq!(c.server(ServerId::new(3)).id(), ServerId::new(3));
        assert!(c.byzantine_set().is_empty());
        assert!(c.crashed_set().is_empty());
        assert_eq!(c.empirical_load(), 0.0);
    }

    #[test]
    fn write_then_read_through_quorums() {
        let u = Universe::new(10);
        let mut c = Cluster::new(u);
        let write_q = Quorum::from_indices(u, [0u32, 1, 2, 3]).unwrap();
        let read_q = Quorum::from_indices(u, [3u32, 4, 5]).unwrap();
        c.note_operation();
        assert_eq!(c.write_plain(&write_q, 0, &tv(7, 1)), 4);
        c.note_operation();
        let replies = c.read_plain(&read_q, 0);
        assert_eq!(replies.len(), 3);
        // Server 3 observed the write; 4 and 5 still have the initial value.
        let best = replies
            .into_iter()
            .map(|(_, v)| v)
            .max_by_key(|v| v.timestamp)
            .unwrap();
        assert_eq!(best, tv(7, 1));
        assert_eq!(c.total_accesses(), 2);
        // Access counts: server 3 touched twice, server 0 once, server 9 never.
        assert_eq!(c.access_counts()[3], 2);
        assert_eq!(c.access_counts()[0], 1);
        assert_eq!(c.access_counts()[9], 0);
        assert!((c.empirical_load() - 1.0).abs() < 1e-12);
        let mut c2 = c.clone();
        c2.reset_access_counts();
        assert_eq!(c2.total_accesses(), 0);
    }

    #[test]
    fn per_server_probes_respect_behavior_and_count_accesses() {
        let u = Universe::new(4);
        let mut c = Cluster::new(u);
        c.set_behavior(ServerId::new(1), Behavior::Crashed);
        // Write probes: correct server acks and stores, crashed server is
        // silent but still counted as an access.
        assert!(c.probe_write_plain(ServerId::new(0), 0, &tv(5, 1)));
        assert!(!c.probe_write_plain(ServerId::new(1), 0, &tv(5, 1)));
        assert_eq!(c.probe_read_plain(ServerId::new(0), 0), Some(tv(5, 1)));
        assert_eq!(c.probe_read_plain(ServerId::new(1), 0), None);
        assert_eq!(c.access_counts()[0], 2);
        assert_eq!(c.access_counts()[1], 2);
        // Signed probes follow the same pattern.
        use crate::crypto::{KeyRegistry, SignedValue};
        let mut registry = KeyRegistry::new();
        let key = registry.register(1, 42);
        let record = SignedValue::create(&key, Value::from_u64(9), Timestamp::new(1, 1));
        assert!(c.probe_write_signed(ServerId::new(2), 0, &record));
        assert!(!c.probe_write_signed(ServerId::new(1), 0, &record));
        assert_eq!(c.probe_read_signed(ServerId::new(2), 0), Some(record));
        assert_eq!(c.probe_read_signed(ServerId::new(1), 0), None);
    }

    #[test]
    fn crashed_servers_do_not_reply_or_ack() {
        let u = Universe::new(5);
        let mut c = Cluster::new(u);
        c.crash_all([ServerId::new(0), ServerId::new(1)]);
        assert_eq!(c.crashed_set().len(), 2);
        let q = Quorum::from_indices(u, [0u32, 1, 2]).unwrap();
        assert_eq!(c.write_plain(&q, 0, &tv(1, 1)), 1);
        assert_eq!(c.read_plain(&q, 0).len(), 1);
        c.heal_all();
        assert_eq!(c.read_plain(&q, 0).len(), 3);
    }

    #[test]
    fn independent_crashes_follow_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut total = 0usize;
        for _ in 0..200 {
            let mut c = Cluster::new(Universe::new(50));
            total += c.crash_independently(&mut rng, 0.3);
        }
        let avg = total as f64 / 200.0;
        assert!((avg - 15.0).abs() < 1.5, "avg={avg}");
    }

    #[test]
    fn byzantine_set_tracks_corruption() {
        let u = Universe::new(6);
        let mut c = Cluster::new(u);
        c.corrupt_all(
            [ServerId::new(1), ServerId::new(4)],
            Behavior::ByzantineForge,
        );
        let b = c.byzantine_set();
        assert_eq!(b.len(), 2);
        assert!(b.contains(ServerId::new(1)));
        assert!(b.contains(ServerId::new(4)));
        assert!(c.crashed_set().is_empty());
    }

    #[test]
    fn signed_paths_roundtrip() {
        use crate::crypto::{KeyRegistry, SignedValue};
        let u = Universe::new(4);
        let mut c = Cluster::new(u);
        let mut registry = KeyRegistry::new();
        let key = registry.register(1, 99);
        let record = SignedValue::create(&key, Value::from_u64(5), Timestamp::new(1, 1));
        let q = Quorum::full(u);
        c.note_operation();
        assert_eq!(c.write_signed(&q, 0, &record), 4);
        c.note_operation();
        let replies = c.read_signed(&q, 0);
        assert_eq!(replies.len(), 4);
        assert!(replies.iter().all(|(_, sv)| *sv == record));
    }
}
