//! A sharded, multi-variable key–value facade over the register protocols.
//!
//! The paper's motivating application (the Section 1.1 location directory)
//! is inherently multi-key: one replicated variable per device, all sharing
//! the same universe of replicas.  [`RegisterMap`] is that lift from "a
//! register" to "a key–value store": it exposes [`get`](RegisterMap::get) /
//! [`put`](RegisterMap::put) over an arbitrary [`VariableId`] space, lazily
//! instantiating one register client per key the first time the key is
//! touched.  Every key gets its **own writer timestamp chain** (a fresh
//! [`TimestampIssuer`](crate::timestamp::TimestampIssuer) per variable), so
//! writes to different keys never contend on a shared counter, while all
//! keys share the quorum system, the access strategy, and the replica
//! cluster — exactly the sharding model under which the paper's per-server
//! load bounds are stated.
//!
//! The flavor of register instantiated per key is fixed at construction by
//! [`RegisterFlavor`]: plain safe registers (Section 3.1), signed
//! dissemination registers (Section 4), or threshold-masking registers
//! (Section 5).  Besides the atomic `get`/`put`, the facade exposes the
//! incremental session API ([`begin_read`](RegisterMap::begin_read) /
//! [`begin_write`](RegisterMap::begin_write) /
//! [`apply_write`](RegisterMap::apply_write)) that the discrete-event
//! simulator drives one message at a time, with sessions for different keys
//! interleaving freely.

use super::session::{self, ProbeSet, ReadMode, ReadSession, SessionStatus, WriteSession};
use super::{DisseminationRegister, MaskingRegister, SafeRegister, WriteReceipt};
use crate::cluster::Cluster;
use crate::crypto::{KeyRegistry, SignedValue, SigningKey};
use crate::server::VariableId;
use crate::value::{TaggedValue, Value};
use crate::ClientId;
use pqs_core::system::QuorumSystem;
use pqs_core::universe::ServerId;
use rand::RngCore;
use std::collections::HashMap;

/// Which register protocol a [`RegisterMap`] instantiates for each key.
#[derive(Debug, Clone)]
pub enum RegisterFlavor {
    /// Section 3.1 safe registers (plain data, crash failures).
    Safe,
    /// Section 4 dissemination registers (self-verifying data): values are
    /// signed under `key` and readers verify against `registry`.
    Dissemination {
        /// The writer's signing key (shared across all variables; each
        /// variable still gets its own timestamp chain).
        key: SigningKey,
        /// Verification material for readers.
        registry: KeyRegistry,
    },
    /// Section 5 masking registers (arbitrary data): readers only accept
    /// value–timestamp pairs reported by at least `threshold` servers.
    Masking {
        /// The read-acceptance threshold `k`.
        threshold: usize,
    },
}

/// The record one write pushes to each probed server: plain for the safe
/// and masking protocols, signed for dissemination.  Produced by
/// [`RegisterMap::begin_write`] and applied per server by
/// [`RegisterMap::apply_write`].
#[derive(Debug, Clone, PartialEq)]
pub enum WriteRecord {
    /// An unsigned value–timestamp pair.
    Plain(TaggedValue),
    /// A signed value–timestamp pair.
    Signed(SignedValue),
}

impl WriteRecord {
    /// The timestamp the record was issued under.
    pub fn timestamp(&self) -> crate::timestamp::Timestamp {
        match self {
            WriteRecord::Plain(tv) => tv.timestamp,
            WriteRecord::Signed(sv) => sv.tagged.timestamp,
        }
    }
}

/// One lazily created per-key register client.
#[derive(Debug)]
enum AnyRegister<'a, S: QuorumSystem + ?Sized> {
    Safe(SafeRegister<'a, S>),
    Dissemination(DisseminationRegister<'a, S>),
    Masking(MaskingRegister<'a, S>),
}

/// A key–value store over one quorum system: one register client per key,
/// created on first touch (see the [module docs](self)).
#[derive(Debug)]
pub struct RegisterMap<'a, S: QuorumSystem + ?Sized> {
    system: &'a S,
    flavor: RegisterFlavor,
    writer: ClientId,
    probe_margin: usize,
    registers: HashMap<VariableId, AnyRegister<'a, S>>,
}

impl<'a, S: QuorumSystem + ?Sized> RegisterMap<'a, S> {
    /// Creates an empty map over `system`; every key touched later gets a
    /// register of the given `flavor` writing as `writer`.
    pub fn new(system: &'a S, flavor: RegisterFlavor, writer: ClientId) -> Self {
        RegisterMap {
            system,
            flavor,
            writer,
            probe_margin: 0,
            registers: HashMap::new(),
        }
    }

    /// Probes `margin` extra servers beyond the quorum on every operation
    /// and completes on the first `q` responders (first-q-of-probed access).
    pub fn with_probe_margin(mut self, margin: usize) -> Self {
        self.set_probe_margin(margin);
        self
    }

    /// Changes the probe margin; registers already instantiated follow the
    /// new margin too.
    pub fn set_probe_margin(&mut self, margin: usize) {
        self.probe_margin = margin;
        for reg in self.registers.values_mut() {
            match reg {
                AnyRegister::Safe(r) => r.set_probe_margin(margin),
                AnyRegister::Dissemination(r) => r.set_probe_margin(margin),
                AnyRegister::Masking(r) => r.set_probe_margin(margin),
            }
        }
    }

    /// The configured probe margin.
    pub fn probe_margin(&self) -> usize {
        self.probe_margin
    }

    /// The quorum system all keys share.
    pub fn system(&self) -> &'a S {
        self.system
    }

    /// The register flavor instantiated per key.
    pub fn flavor(&self) -> &RegisterFlavor {
        &self.flavor
    }

    /// Number of keys that have been touched (and therefore hold register
    /// state).
    pub fn len(&self) -> usize {
        self.registers.len()
    }

    /// Returns `true` if no key has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.registers.is_empty()
    }

    /// Whether the given key already holds register state.
    pub fn contains(&self, var: VariableId) -> bool {
        self.registers.contains_key(&var)
    }

    /// The keys that have been touched, in unspecified order.
    pub fn variables(&self) -> impl Iterator<Item = VariableId> + '_ {
        self.registers.keys().copied()
    }

    /// The per-key register, created on first touch.
    fn entry(&mut self, var: VariableId) -> &mut AnyRegister<'a, S> {
        let RegisterMap {
            system,
            flavor,
            writer,
            probe_margin,
            registers,
        } = self;
        registers.entry(var).or_insert_with(|| match flavor {
            RegisterFlavor::Safe => AnyRegister::Safe(
                SafeRegister::for_variable(*system, *writer, var).with_probe_margin(*probe_margin),
            ),
            RegisterFlavor::Dissemination { key, registry } => AnyRegister::Dissemination(
                DisseminationRegister::for_variable(*system, *key, registry.clone(), var)
                    .with_probe_margin(*probe_margin),
            ),
            RegisterFlavor::Masking { threshold } => AnyRegister::Masking(
                MaskingRegister::for_variable(*system, *threshold, *writer, var)
                    .with_probe_margin(*probe_margin),
            ),
        })
    }

    /// Draws the servers the next operation attempt should contact: a
    /// quorum by the access strategy plus the configured margin of spares.
    /// Key-independent — all keys share the access strategy.
    pub fn sample_probe_set(&self, rng: &mut dyn RngCore) -> ProbeSet {
        session::probe_set(self.system, rng, self.probe_margin)
    }

    /// Starts an incremental write of `value` to `var`: issues the next
    /// timestamp of the key's own chain and returns the record to push to
    /// each probed server plus the acknowledgement-tracking session.
    pub fn begin_write(
        &mut self,
        var: VariableId,
        value: Value,
        needed: usize,
        probed: usize,
    ) -> (WriteRecord, WriteSession) {
        match self.entry(var) {
            AnyRegister::Safe(r) => {
                let (record, session) = r.begin_write(value, needed, probed);
                (WriteRecord::Plain(record), session)
            }
            AnyRegister::Dissemination(r) => {
                let (record, session) = r.begin_write(value, needed, probed);
                (WriteRecord::Signed(record), session)
            }
            AnyRegister::Masking(r) => {
                let (record, session) = r.begin_write(value, needed, probed);
                (WriteRecord::Plain(record), session)
            }
        }
    }

    /// Starts an incremental read that completes after `needed` replies and
    /// condenses them by the flavor's rule.  Reads need no per-key state —
    /// only writes hold a timestamp chain — so looking up a never-written
    /// key does **not** instantiate a register for it (a read-mostly client
    /// probing millions of unknown keys allocates nothing).
    pub fn begin_read(&self, needed: usize) -> ReadSession {
        let mode = match &self.flavor {
            RegisterFlavor::Safe => ReadMode::Safe,
            RegisterFlavor::Dissemination { registry, .. } => {
                ReadMode::Dissemination(registry.clone())
            }
            RegisterFlavor::Masking { threshold } => ReadMode::Masking {
                threshold: (*threshold).max(1),
            },
        };
        ReadSession::new(mode, needed)
    }

    /// Applies one write probe to `server`: pushes the record to the
    /// server's replica of `var` and returns whether it acknowledged.
    pub fn apply_write(
        cluster: &mut Cluster,
        server: ServerId,
        var: VariableId,
        record: &WriteRecord,
    ) -> bool {
        match record {
            WriteRecord::Plain(tv) => cluster.probe_write_plain(server, var, tv),
            WriteRecord::Signed(sv) => cluster.probe_write_signed(server, var, sv),
        }
    }

    /// Writes `value` to key `var` through one quorum access (the atomic
    /// form of the session API).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`](crate::ProtocolError::QuorumUnavailable)
    /// if no probed server acknowledged the write.
    pub fn put(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
        var: VariableId,
        value: Value,
    ) -> crate::Result<WriteReceipt> {
        let probe = self.sample_probe_set(rng);
        let (record, mut session) = self.begin_write(var, value, probe.needed, probe.probed());
        cluster.note_operation();
        for &id in &probe.servers {
            let acked = Self::apply_write(cluster, id, var, &record);
            if session.on_ack(acked) == SessionStatus::Complete {
                break;
            }
        }
        session.finish()
    }

    /// Reads key `var` through one quorum access; `Ok(None)` means no
    /// acceptable value was visible (nothing written yet, or — for the
    /// masking flavor — no pair reached the threshold).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`](crate::ProtocolError::QuorumUnavailable)
    /// if no probed server replied at all.
    pub fn get(
        &self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
        var: VariableId,
    ) -> crate::Result<Option<TaggedValue>> {
        let probe = self.sample_probe_set(rng);
        let mut session = self.begin_read(probe.needed);
        cluster.note_operation();
        for &id in &probe.servers {
            let status = if session.wants_signed() {
                match cluster.probe_read_signed(id, var) {
                    Some(sv) => session.on_signed_reply(id, sv),
                    None => SessionStatus::InFlight,
                }
            } else {
                match cluster.probe_read_plain(id, var) {
                    Some(tv) => session.on_plain_reply(id, tv),
                    None => SessionStatus::InFlight,
                }
            };
            if status == SessionStatus::Complete {
                break;
            }
        }
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Behavior;
    use crate::ProtocolError;
    use pqs_core::probabilistic::{
        EpsilonIntersecting, ProbabilisticDissemination, ProbabilisticMasking,
    };
    use pqs_core::strict::Majority;
    use pqs_core::system::QuorumSystem;
    use pqs_core::universe::ServerId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn per_key_round_trips_are_independent() {
        // A strict system makes the round trips deterministic: every key
        // returns exactly its own latest value.
        let sys = Majority::new(9).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut map = RegisterMap::new(&sys, RegisterFlavor::Safe, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(map.is_empty());
        for key in 0..32u64 {
            map.put(&mut cluster, &mut rng, key, Value::from_u64(1000 + key))
                .unwrap();
        }
        assert_eq!(map.len(), 32);
        assert!(map.contains(7) && !map.contains(99));
        for key in 0..32u64 {
            let got = map.get(&mut cluster, &mut rng, key).unwrap().unwrap();
            assert_eq!(got.value, Value::from_u64(1000 + key), "key {key}");
        }
        // Untouched keys read as never-written — and reading them leaves no
        // register state behind (reads are stateless on the client).
        assert_eq!(map.get(&mut cluster, &mut rng, 999).unwrap(), None);
        assert_eq!(map.len(), 32, "a read of an unknown key allocates nothing");
        assert!(!map.contains(999));
    }

    #[test]
    fn each_key_has_its_own_timestamp_chain() {
        let sys = Majority::new(5).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut map = RegisterMap::new(&sys, RegisterFlavor::Safe, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // Five writes to key 0, then one to key 1: key 1 starts its chain at
        // counter 1, unaffected by key 0's history.
        for i in 1..=5u64 {
            let receipt = map
                .put(&mut cluster, &mut rng, 0, Value::from_u64(i))
                .unwrap();
            assert_eq!(receipt.timestamp.counter(), i);
            assert_eq!(receipt.timestamp.writer(), 3);
        }
        let receipt = map
            .put(&mut cluster, &mut rng, 1, Value::from_u64(9))
            .unwrap();
        assert_eq!(receipt.timestamp.counter(), 1);
    }

    #[test]
    fn map_matches_standalone_register_rng_stream() {
        // Driving variable 0 through the map consumes the RNG exactly like
        // the standalone register: same seed, same replies.
        let sys = EpsilonIntersecting::new(64, 16).unwrap();
        let mut c1 = Cluster::new(sys.universe());
        let mut c2 = Cluster::new(sys.universe());
        let mut map = RegisterMap::new(&sys, RegisterFlavor::Safe, 1);
        let mut reg = SafeRegister::new(&sys, 1);
        let mut rng1 = ChaCha8Rng::seed_from_u64(5);
        let mut rng2 = ChaCha8Rng::seed_from_u64(5);
        for i in 1..=20u64 {
            let a = map.put(&mut c1, &mut rng1, 0, Value::from_u64(i)).unwrap();
            let b = reg.write(&mut c2, &mut rng2, Value::from_u64(i)).unwrap();
            assert_eq!(a, b);
            let x = map.get(&mut c1, &mut rng1, 0).unwrap();
            let y = reg.read(&mut c2, &mut rng2).unwrap();
            assert_eq!(x, y);
        }
        assert_eq!(c1.access_counts(), c2.access_counts());
    }

    #[test]
    fn dissemination_flavor_signs_and_verifies_per_key() {
        let sys = ProbabilisticDissemination::with_target_epsilon(64, 8, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.corrupt_all((0..8).map(ServerId::new), Behavior::ByzantineStale);
        let mut registry = KeyRegistry::new();
        let key = registry.register(2, 77);
        let mut map = RegisterMap::new(&sys, RegisterFlavor::Dissemination { key, registry }, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for k in 0..8u64 {
            map.put(&mut cluster, &mut rng, k, Value::from_u64(k * 11))
                .unwrap();
        }
        for k in 0..8u64 {
            if let Some(tv) = map.get(&mut cluster, &mut rng, k).unwrap() {
                assert_eq!(tv.value, Value::from_u64(k * 11));
            }
        }
    }

    #[test]
    fn masking_flavor_applies_threshold_per_key() {
        let sys = ProbabilisticMasking::with_target_epsilon(100, 4, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.corrupt_all((0..4).map(ServerId::new), Behavior::ByzantineForge);
        let mut map = RegisterMap::new(
            &sys,
            RegisterFlavor::Masking {
                threshold: sys.read_threshold(),
            },
            1,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for k in 0..16u64 {
            map.put(&mut cluster, &mut rng, k, Value::from_u64(k + 1))
                .unwrap();
            if let Some(tv) = map.get(&mut cluster, &mut rng, k).unwrap() {
                assert_ne!(tv.value, crate::server::forged_value());
            }
        }
    }

    #[test]
    fn margin_changes_propagate_to_cached_registers() {
        let sys = Majority::new(5).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut map = RegisterMap::new(&sys, RegisterFlavor::Safe, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        map.put(&mut cluster, &mut rng, 0, Value::from_u64(1))
            .unwrap();
        // Two servers die; margin 2 makes every probe set cover all five.
        cluster.crash_all([ServerId::new(0), ServerId::new(1)]);
        map.set_probe_margin(2);
        assert_eq!(map.probe_margin(), 2);
        let receipt = map
            .put(&mut cluster, &mut rng, 0, Value::from_u64(2))
            .unwrap();
        assert_eq!(receipt.acks, 3, "the cached key-0 register must probe 5");
        let got = map.get(&mut cluster, &mut rng, 0).unwrap().unwrap();
        assert_eq!(got.value, Value::from_u64(2));
    }

    #[test]
    fn unavailable_when_all_crash() {
        let sys = Majority::new(5).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.crash_all((0..5).map(ServerId::new));
        let mut map = RegisterMap::new(&sys, RegisterFlavor::Safe, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert!(matches!(
            map.put(&mut cluster, &mut rng, 0, Value::from_u64(1)),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
        assert!(matches!(
            map.get(&mut cluster, &mut rng, 0),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
    }

    #[test]
    fn write_record_exposes_its_timestamp() {
        let sys = Majority::new(5).unwrap();
        let mut map = RegisterMap::new(&sys, RegisterFlavor::Safe, 4);
        let (record, session) = map.begin_write(9, Value::from_u64(1), 3, 3);
        assert_eq!(record.timestamp(), session.timestamp());
        assert_eq!(record.timestamp().writer(), 4);
        assert!(map.variables().eq(std::iter::once(9)));
    }
}
