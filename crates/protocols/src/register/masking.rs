//! The Section 5 register for arbitrary (non-self-verifying) data.

use crate::cluster::Cluster;
use crate::server::VariableId;
use crate::timestamp::TimestampIssuer;
use crate::value::{TaggedValue, Value};
use crate::{ClientId, ProtocolError};
use pqs_core::system::QuorumSystem;
use rand::RngCore;
use std::collections::HashMap;

/// A client of the masking protocol: a reader only accepts a value–timestamp
/// pair reported by at least `k` servers of its quorum, then picks the
/// highest timestamp among the accepted pairs, or `⊥` (`None`) if none
/// qualifies (the modified read protocol of Section 5).
///
/// Theorem 5.2: with a (b, ε)-masking quorum system and its threshold `k`,
/// a read not concurrent with a write returns the last written value with
/// probability at least `1 − ε` despite up to `b` Byzantine servers storing
/// arbitrary data.
#[derive(Debug)]
pub struct MaskingRegister<'a, S: QuorumSystem + ?Sized> {
    system: &'a S,
    threshold: usize,
    issuer: TimestampIssuer,
    variable: VariableId,
}

impl<'a, S: QuorumSystem + ?Sized> MaskingRegister<'a, S> {
    /// Creates a client for variable 0 with read threshold `k`.
    ///
    /// For the `R_k(n, q)` construction pass
    /// [`ProbabilisticMasking::read_threshold`](pqs_core::probabilistic::ProbabilisticMasking::read_threshold);
    /// for a strict b-masking system pass `b + 1`.
    pub fn new(system: &'a S, threshold: usize, writer: ClientId) -> Self {
        Self::for_variable(system, threshold, writer, 0)
    }

    /// Creates a client bound to a specific variable id.
    pub fn for_variable(
        system: &'a S,
        threshold: usize,
        writer: ClientId,
        variable: VariableId,
    ) -> Self {
        MaskingRegister {
            system,
            threshold: threshold.max(1),
            issuer: TimestampIssuer::new(writer),
            variable,
        }
    }

    /// The read-acceptance threshold `k`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The variable this client operates on.
    pub fn variable(&self) -> VariableId {
        self.variable
    }

    /// Write protocol: identical to the safe register's (Section 5 keeps
    /// write operations "as before").
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`] if no server
    /// acknowledged the write.
    pub fn write(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
        value: Value,
    ) -> crate::Result<super::WriteReceipt> {
        let quorum = self.system.sample_quorum(rng);
        let timestamp = self.issuer.next();
        cluster.note_operation();
        let acks = cluster.write_plain(&quorum, self.variable, &TaggedValue::new(value, timestamp));
        if acks == 0 {
            return Err(ProtocolError::QuorumUnavailable {
                contacted: quorum.len(),
                responded: 0,
            });
        }
        Ok(super::WriteReceipt {
            timestamp,
            acks,
            quorum_size: quorum.len(),
        })
    }

    /// Read protocol (Section 5): query a quorum, group identical
    /// value–timestamp pairs, discard groups smaller than `k`, and return
    /// the surviving pair with the highest timestamp (`None` ≈ ⊥ if no group
    /// survives).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`] if no server replied.
    pub fn read(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
    ) -> crate::Result<Option<TaggedValue>> {
        let quorum = self.system.sample_quorum(rng);
        cluster.note_operation();
        let replies = cluster.read_plain(&quorum, self.variable);
        if replies.is_empty() {
            return Err(ProtocolError::QuorumUnavailable {
                contacted: quorum.len(),
                responded: 0,
            });
        }
        let mut counts: HashMap<TaggedValue, usize> = HashMap::new();
        for (_, tv) in replies {
            *counts.entry(tv).or_insert(0) += 1;
        }
        let best = counts
            .into_iter()
            .filter(|(tv, count)| {
                *count >= self.threshold && tv.timestamp != crate::timestamp::Timestamp::ZERO
            })
            .map(|(tv, _)| tv)
            .max_by(|a, b| a.timestamp.cmp(&b.timestamp));
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{forged_value, Behavior};
    use pqs_core::byzantine::MaskingThreshold;
    use pqs_core::probabilistic::ProbabilisticMasking;
    use pqs_core::universe::ServerId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn read_before_write_returns_bottom() {
        let sys = ProbabilisticMasking::with_target_epsilon(64, 4, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = MaskingRegister::new(&sys, sys.read_threshold(), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(reg.read(&mut cluster, &mut rng).unwrap(), None);
        assert_eq!(reg.threshold(), sys.read_threshold());
        assert_eq!(reg.variable(), 0);
    }

    #[test]
    fn forged_values_below_threshold_are_rejected() {
        let n = 100u32;
        let b = 5u32;
        let sys = ProbabilisticMasking::with_target_epsilon(n, b, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.corrupt_all((0..b).map(ServerId::new), Behavior::ByzantineForge);
        let mut reg = MaskingRegister::new(&sys, sys.read_threshold(), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let trials = 300u64;
        let mut wrong = 0usize;
        for i in 1..=trials {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            match reg.read(&mut cluster, &mut rng).unwrap() {
                Some(tv) => {
                    assert_ne!(tv.value, forged_value(), "forgery accepted at read {i}");
                    if tv.value != Value::from_u64(i) {
                        wrong += 1;
                    }
                }
                None => wrong += 1,
            }
        }
        // epsilon <= 1e-3: essentially every read returns the latest value.
        assert!(wrong <= 3, "too many incorrect reads: {wrong}");
    }

    #[test]
    fn strict_masking_system_with_threshold_b_plus_one() {
        // The same client code runs over a strict b-masking system with
        // k = b + 1 and is then deterministically safe.
        let b = 3u32;
        let sys = MaskingThreshold::new(25, b).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.corrupt_all((0..b).map(ServerId::new), Behavior::ByzantineForge);
        let mut reg = MaskingRegister::new(&sys, (b + 1) as usize, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for i in 1..=100u64 {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            let got = reg.read(&mut cluster, &mut rng).unwrap().unwrap();
            assert_eq!(got.value, Value::from_u64(i));
        }
    }

    #[test]
    fn large_byzantine_coalition_cannot_forge_but_may_cause_bottom() {
        // With b much larger than the design threshold the reader may return
        // ⊥ more often, but it still never accepts the fabricated value as
        // long as fewer than k forgers land in the read quorum.
        let sys = ProbabilisticMasking::new(100, 40, 10).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.corrupt_all((0..10).map(ServerId::new), Behavior::ByzantineForge);
        let mut reg = MaskingRegister::new(&sys, sys.read_threshold(), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        reg.write(&mut cluster, &mut rng, Value::from_u64(7))
            .unwrap();
        let mut forged_accepted = 0usize;
        for _ in 0..200 {
            if let Some(tv) = reg.read(&mut cluster, &mut rng).unwrap() {
                if tv.value == forged_value() {
                    forged_accepted += 1;
                }
            }
        }
        // k = ceil(40^2/200) = 8; ten forgers exist, so acceptance is
        // *possible* but must be rare (P(|Q cap B| >= 8) is a few percent at
        // most), far below the ~100% a threshold-free reader would suffer.
        assert!(
            forged_accepted < 20,
            "forgeries accepted {forged_accepted} times out of 200"
        );
    }

    #[test]
    fn unavailable_when_all_crash() {
        let sys = ProbabilisticMasking::with_target_epsilon(64, 4, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.crash_all((0..64).map(ServerId::new));
        let mut reg = MaskingRegister::new(&sys, sys.read_threshold(), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(matches!(
            reg.write(&mut cluster, &mut rng, Value::from_u64(1)),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
        assert!(matches!(
            reg.read(&mut cluster, &mut rng),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
    }

    #[test]
    fn threshold_is_clamped_to_at_least_one() {
        let sys = ProbabilisticMasking::with_target_epsilon(64, 4, 1e-3).unwrap();
        let reg = MaskingRegister::new(&sys, 0, 1);
        assert_eq!(reg.threshold(), 1);
    }
}
