//! The Section 5 register for arbitrary (non-self-verifying) data.

use super::session::{self, ProbeSet, ReadMode, ReadSession, SessionStatus, WriteSession};
use crate::cluster::Cluster;
use crate::server::VariableId;
use crate::timestamp::TimestampIssuer;
use crate::value::{TaggedValue, Value};
use crate::ClientId;
use pqs_core::system::QuorumSystem;
use rand::RngCore;

/// A client of the masking protocol: a reader only accepts a value–timestamp
/// pair reported by at least `k` servers of its quorum, then picks the
/// highest timestamp among the accepted pairs, or `⊥` (`None`) if none
/// qualifies (the modified read protocol of Section 5).
///
/// Theorem 5.2: with a (b, ε)-masking quorum system and its threshold `k`,
/// a read not concurrent with a write returns the last written value with
/// probability at least `1 − ε` despite up to `b` Byzantine servers storing
/// arbitrary data.
#[derive(Debug)]
pub struct MaskingRegister<'a, S: QuorumSystem + ?Sized> {
    system: &'a S,
    threshold: usize,
    issuer: TimestampIssuer,
    variable: VariableId,
    probe_margin: usize,
}

impl<'a, S: QuorumSystem + ?Sized> MaskingRegister<'a, S> {
    /// Creates a client for variable 0 with read threshold `k`.
    ///
    /// For the `R_k(n, q)` construction pass
    /// [`ProbabilisticMasking::read_threshold`](pqs_core::probabilistic::ProbabilisticMasking::read_threshold);
    /// for a strict b-masking system pass `b + 1`.
    pub fn new(system: &'a S, threshold: usize, writer: ClientId) -> Self {
        Self::for_variable(system, threshold, writer, 0)
    }

    /// Creates a client bound to a specific variable id.
    pub fn for_variable(
        system: &'a S,
        threshold: usize,
        writer: ClientId,
        variable: VariableId,
    ) -> Self {
        MaskingRegister {
            system,
            threshold: threshold.max(1),
            issuer: TimestampIssuer::new(writer),
            variable,
            probe_margin: 0,
        }
    }

    /// Probes `margin` extra servers beyond the quorum on every operation
    /// and completes on the first `q` responders.
    pub fn with_probe_margin(mut self, margin: usize) -> Self {
        self.set_probe_margin(margin);
        self
    }

    /// Changes the probe margin of an existing client (see
    /// [`with_probe_margin`](Self::with_probe_margin)).
    pub fn set_probe_margin(&mut self, margin: usize) {
        self.probe_margin = margin;
    }

    /// The configured probe margin.
    pub fn probe_margin(&self) -> usize {
        self.probe_margin
    }

    /// Draws the servers the next operation attempt should contact.
    pub fn sample_probe_set(&self, rng: &mut dyn RngCore) -> ProbeSet {
        session::probe_set(self.system, rng, self.probe_margin)
    }

    /// Starts an incremental write: issues a fresh timestamp and returns the
    /// record plus the acknowledgement-tracking session.
    pub fn begin_write(
        &mut self,
        value: Value,
        needed: usize,
        probed: usize,
    ) -> (TaggedValue, WriteSession) {
        let timestamp = self.issuer.next();
        let record = TaggedValue::new(value, timestamp);
        (record, WriteSession::new(timestamp, needed, probed))
    }

    /// Starts an incremental read that completes after `needed` replies and
    /// only accepts value–timestamp pairs reported by at least `k` servers
    /// (Section 5).
    pub fn begin_read(&self, needed: usize) -> ReadSession {
        ReadSession::new(
            ReadMode::Masking {
                threshold: self.threshold,
            },
            needed,
        )
    }

    /// The read-acceptance threshold `k`.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The variable this client operates on.
    pub fn variable(&self) -> VariableId {
        self.variable
    }

    /// Write protocol: identical to the safe register's (Section 5 keeps
    /// write operations "as before").
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`](crate::ProtocolError::QuorumUnavailable)
    /// if no server acknowledged the write.
    pub fn write(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
        value: Value,
    ) -> crate::Result<super::WriteReceipt> {
        let probe = self.sample_probe_set(rng);
        let (record, mut session) = self.begin_write(value, probe.needed, probe.probed());
        cluster.note_operation();
        for &id in &probe.servers {
            let acked = cluster.probe_write_plain(id, self.variable, &record);
            if session.on_ack(acked) == SessionStatus::Complete {
                break;
            }
        }
        session.finish()
    }

    /// Read protocol (Section 5): query a quorum, group identical
    /// value–timestamp pairs, discard groups smaller than `k`, and return
    /// the surviving pair with the highest timestamp (`None` ≈ ⊥ if no group
    /// survives).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`](crate::ProtocolError::QuorumUnavailable)
    /// if no server replied.
    pub fn read(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
    ) -> crate::Result<Option<TaggedValue>> {
        let probe = self.sample_probe_set(rng);
        let mut session = self.begin_read(probe.needed);
        cluster.note_operation();
        for &id in &probe.servers {
            if let Some(tv) = cluster.probe_read_plain(id, self.variable) {
                if session.on_plain_reply(id, tv) == SessionStatus::Complete {
                    break;
                }
            }
        }
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{forged_value, Behavior};
    use crate::ProtocolError;
    use pqs_core::byzantine::MaskingThreshold;
    use pqs_core::probabilistic::ProbabilisticMasking;
    use pqs_core::universe::ServerId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn read_before_write_returns_bottom() {
        let sys = ProbabilisticMasking::with_target_epsilon(64, 4, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = MaskingRegister::new(&sys, sys.read_threshold(), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(reg.read(&mut cluster, &mut rng).unwrap(), None);
        assert_eq!(reg.threshold(), sys.read_threshold());
        assert_eq!(reg.variable(), 0);
    }

    #[test]
    fn forged_values_below_threshold_are_rejected() {
        let n = 100u32;
        let b = 5u32;
        let sys = ProbabilisticMasking::with_target_epsilon(n, b, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.corrupt_all((0..b).map(ServerId::new), Behavior::ByzantineForge);
        let mut reg = MaskingRegister::new(&sys, sys.read_threshold(), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let trials = 300u64;
        let mut wrong = 0usize;
        for i in 1..=trials {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            match reg.read(&mut cluster, &mut rng).unwrap() {
                Some(tv) => {
                    assert_ne!(tv.value, forged_value(), "forgery accepted at read {i}");
                    if tv.value != Value::from_u64(i) {
                        wrong += 1;
                    }
                }
                None => wrong += 1,
            }
        }
        // epsilon <= 1e-3: essentially every read returns the latest value.
        assert!(wrong <= 3, "too many incorrect reads: {wrong}");
    }

    #[test]
    fn strict_masking_system_with_threshold_b_plus_one() {
        // The same client code runs over a strict b-masking system with
        // k = b + 1 and is then deterministically safe.
        let b = 3u32;
        let sys = MaskingThreshold::new(25, b).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.corrupt_all((0..b).map(ServerId::new), Behavior::ByzantineForge);
        let mut reg = MaskingRegister::new(&sys, (b + 1) as usize, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for i in 1..=100u64 {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            let got = reg.read(&mut cluster, &mut rng).unwrap().unwrap();
            assert_eq!(got.value, Value::from_u64(i));
        }
    }

    #[test]
    fn large_byzantine_coalition_cannot_forge_but_may_cause_bottom() {
        // With b much larger than the design threshold the reader may return
        // ⊥ more often, but it still never accepts the fabricated value as
        // long as fewer than k forgers land in the read quorum.
        let sys = ProbabilisticMasking::new(100, 40, 10).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.corrupt_all((0..10).map(ServerId::new), Behavior::ByzantineForge);
        let mut reg = MaskingRegister::new(&sys, sys.read_threshold(), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        reg.write(&mut cluster, &mut rng, Value::from_u64(7))
            .unwrap();
        let mut forged_accepted = 0usize;
        for _ in 0..200 {
            if let Some(tv) = reg.read(&mut cluster, &mut rng).unwrap() {
                if tv.value == forged_value() {
                    forged_accepted += 1;
                }
            }
        }
        // k = ceil(40^2/200) = 8; ten forgers exist, so acceptance is
        // *possible* but must be rare (P(|Q cap B| >= 8) is a few percent at
        // most), far below the ~100% a threshold-free reader would suffer.
        assert!(
            forged_accepted < 20,
            "forgeries accepted {forged_accepted} times out of 200"
        );
    }

    #[test]
    fn unavailable_when_all_crash() {
        let sys = ProbabilisticMasking::with_target_epsilon(64, 4, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.crash_all((0..64).map(ServerId::new));
        let mut reg = MaskingRegister::new(&sys, sys.read_threshold(), 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(matches!(
            reg.write(&mut cluster, &mut rng, Value::from_u64(1)),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
        assert!(matches!(
            reg.read(&mut cluster, &mut rng),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
    }

    #[test]
    fn threshold_is_clamped_to_at_least_one() {
        let sys = ProbabilisticMasking::with_target_epsilon(64, 4, 1e-3).unwrap();
        let reg = MaskingRegister::new(&sys, 0, 1);
        assert_eq!(reg.threshold(), 1);
    }
}
