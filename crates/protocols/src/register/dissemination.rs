//! The Section 4 register for self-verifying data.

use super::session::{self, ProbeSet, ReadMode, ReadSession, SessionStatus, WriteSession};
use crate::cluster::Cluster;
use crate::crypto::{KeyRegistry, SignedValue, SigningKey};
use crate::server::VariableId;
use crate::timestamp::TimestampIssuer;
use crate::value::{TaggedValue, Value};
use pqs_core::system::QuorumSystem;
use rand::RngCore;

/// A client of the dissemination protocol: values are signed by the writer,
/// and readers discard any reply whose signature does not verify before
/// picking the highest timestamp (the read protocol of Section 4).
///
/// Theorem 4.2: with a (b, ε)-dissemination quorum system, a read that is
/// not concurrent with a write returns the last written value with
/// probability at least `1 − ε`, despite up to `b` Byzantine servers.
#[derive(Debug)]
pub struct DisseminationRegister<'a, S: QuorumSystem + ?Sized> {
    system: &'a S,
    key: SigningKey,
    registry: KeyRegistry,
    issuer: TimestampIssuer,
    variable: VariableId,
    probe_margin: usize,
}

impl<'a, S: QuorumSystem + ?Sized> DisseminationRegister<'a, S> {
    /// Creates a client for variable 0.
    ///
    /// `key` is the writer's signing key; `registry` is the verification
    /// material readers use (in a deployment this is the PKI; here it is the
    /// simulated [`KeyRegistry`]).
    pub fn new(system: &'a S, key: SigningKey, registry: KeyRegistry) -> Self {
        Self::for_variable(system, key, registry, 0)
    }

    /// Creates a client bound to a specific variable id.
    pub fn for_variable(
        system: &'a S,
        key: SigningKey,
        registry: KeyRegistry,
        variable: VariableId,
    ) -> Self {
        DisseminationRegister {
            system,
            issuer: TimestampIssuer::new(key.owner()),
            key,
            registry,
            variable,
            probe_margin: 0,
        }
    }

    /// Probes `margin` extra servers beyond the quorum on every operation
    /// and completes on the first `q` responders.
    pub fn with_probe_margin(mut self, margin: usize) -> Self {
        self.set_probe_margin(margin);
        self
    }

    /// Changes the probe margin of an existing client (see
    /// [`with_probe_margin`](Self::with_probe_margin)).
    pub fn set_probe_margin(&mut self, margin: usize) {
        self.probe_margin = margin;
    }

    /// The configured probe margin.
    pub fn probe_margin(&self) -> usize {
        self.probe_margin
    }

    /// The variable this client operates on.
    pub fn variable(&self) -> VariableId {
        self.variable
    }

    /// Draws the servers the next operation attempt should contact.
    pub fn sample_probe_set(&self, rng: &mut dyn RngCore) -> ProbeSet {
        session::probe_set(self.system, rng, self.probe_margin)
    }

    /// Starts an incremental write: signs ⟨v, t⟩ under a fresh timestamp and
    /// returns the signed record plus the acknowledgement-tracking session.
    pub fn begin_write(
        &mut self,
        value: Value,
        needed: usize,
        probed: usize,
    ) -> (SignedValue, WriteSession) {
        let timestamp = self.issuer.next();
        let record = SignedValue::create(&self.key, value, timestamp);
        (record, WriteSession::new(timestamp, needed, probed))
    }

    /// Starts an incremental read that completes after `needed` replies,
    /// discards unverifiable ones and picks the highest timestamp
    /// (Section 4).
    pub fn begin_read(&self, needed: usize) -> ReadSession {
        ReadSession::new(ReadMode::Dissemination(self.registry.clone()), needed)
    }

    /// Write protocol: sign ⟨v, t⟩ and push it to every member of a quorum
    /// chosen by the access strategy.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`](crate::ProtocolError::QuorumUnavailable) if no server
    /// acknowledged the write.
    pub fn write(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
        value: Value,
    ) -> crate::Result<super::WriteReceipt> {
        let probe = self.sample_probe_set(rng);
        let (record, mut session) = self.begin_write(value, probe.needed, probe.probed());
        cluster.note_operation();
        for &id in &probe.servers {
            let acked = cluster.probe_write_signed(id, self.variable, &record);
            if session.on_ack(acked) == SessionStatus::Complete {
                break;
            }
        }
        session.finish()
    }

    /// Read protocol (Section 4): query a quorum, keep only the replies that
    /// are *verifiable*, and return the highest-timestamped one.
    ///
    /// Returns `Ok(None)` if no verifiable reply was received (e.g. nothing
    /// has been written yet).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`](crate::ProtocolError::QuorumUnavailable) if no server replied at
    /// all.
    pub fn read(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
    ) -> crate::Result<Option<TaggedValue>> {
        let probe = self.sample_probe_set(rng);
        let mut session = self.begin_read(probe.needed);
        cluster.note_operation();
        for &id in &probe.servers {
            if let Some(sv) = cluster.probe_read_signed(id, self.variable) {
                if session.on_signed_reply(id, sv) == SessionStatus::Complete {
                    break;
                }
            }
        }
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Behavior;
    use crate::ProtocolError;
    use pqs_core::probabilistic::ProbabilisticDissemination;
    use pqs_core::universe::ServerId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: u32, b: u32) -> (ProbabilisticDissemination, Cluster, KeyRegistry, SigningKey) {
        let sys = ProbabilisticDissemination::with_target_epsilon(n, b, 1e-3).unwrap();
        let cluster = Cluster::new(sys.universe());
        let mut registry = KeyRegistry::new();
        let key = registry.register(1, 11);
        (sys, cluster, registry, key)
    }

    #[test]
    fn read_before_write_returns_none() {
        let (sys, mut cluster, registry, key) = setup(64, 8);
        let mut reg = DisseminationRegister::new(&sys, key, registry);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(reg.read(&mut cluster, &mut rng).unwrap(), None);
        assert_eq!(reg.variable(), 0);
    }

    #[test]
    fn round_trip_with_byzantine_servers_never_returns_forgeries() {
        let (sys, mut cluster, registry, key) = setup(100, 20);
        // Corrupt 20 servers; they can only suppress or replay.
        cluster.corrupt_all((0..20).map(ServerId::new), Behavior::ByzantineStale);
        let mut reg = DisseminationRegister::new(&sys, key, registry);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut stale = 0usize;
        let trials = 300u64;
        for i in 1..=trials {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            match reg.read(&mut cluster, &mut rng).unwrap() {
                Some(tv) if tv.value == Value::from_u64(i) => {}
                Some(tv) => {
                    // Any non-latest reply must still be a genuinely written
                    // (signed) earlier value, never a fabrication.
                    assert!(tv.value.as_u64().unwrap() < i);
                    stale += 1;
                }
                None => stale += 1,
            }
        }
        // epsilon <= 1e-3, so a handful of stale reads at most.
        assert!(stale <= 3, "too many stale reads: {stale}");
    }

    #[test]
    fn forging_servers_cannot_pass_verification() {
        let (sys, mut cluster, registry, key) = setup(64, 8);
        cluster.corrupt_all((0..8).map(ServerId::new), Behavior::ByzantineForge);
        let mut reg = DisseminationRegister::new(&sys, key, registry);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        reg.write(&mut cluster, &mut rng, Value::from_u64(5))
            .unwrap();
        for _ in 0..100 {
            if let Some(tv) = reg.read(&mut cluster, &mut rng).unwrap() {
                assert_eq!(tv.value, Value::from_u64(5));
            }
        }
    }

    #[test]
    fn unavailable_when_all_crash() {
        let (sys, mut cluster, registry, key) = setup(64, 8);
        cluster.crash_all((0..64).map(ServerId::new));
        let mut reg = DisseminationRegister::new(&sys, key, registry);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(matches!(
            reg.write(&mut cluster, &mut rng, Value::from_u64(1)),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
        assert!(matches!(
            reg.read(&mut cluster, &mut rng),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
    }

    #[test]
    fn reader_without_writer_key_rejects_everything() {
        // A registry that does not know the writer treats all data as
        // unverifiable, so reads return None — data is suppressed, never
        // forged.
        let sys = ProbabilisticDissemination::with_target_epsilon(64, 8, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut writer_registry = KeyRegistry::new();
        let key = writer_registry.register(1, 11);
        let empty_registry = KeyRegistry::new();
        let mut writer = DisseminationRegister::new(&sys, key, writer_registry);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        writer
            .write(&mut cluster, &mut rng, Value::from_u64(3))
            .unwrap();
        let mut reader = DisseminationRegister::new(&sys, key, empty_registry);
        assert_eq!(reader.read(&mut cluster, &mut rng).unwrap(), None);
    }
}
