//! The Section 4 register for self-verifying data.

use crate::cluster::Cluster;
use crate::crypto::{KeyRegistry, SignedValue, SigningKey};
use crate::server::VariableId;
use crate::timestamp::TimestampIssuer;
use crate::value::{TaggedValue, Value};
use crate::ProtocolError;
use pqs_core::system::QuorumSystem;
use rand::RngCore;

/// A client of the dissemination protocol: values are signed by the writer,
/// and readers discard any reply whose signature does not verify before
/// picking the highest timestamp (the read protocol of Section 4).
///
/// Theorem 4.2: with a (b, ε)-dissemination quorum system, a read that is
/// not concurrent with a write returns the last written value with
/// probability at least `1 − ε`, despite up to `b` Byzantine servers.
#[derive(Debug)]
pub struct DisseminationRegister<'a, S: QuorumSystem + ?Sized> {
    system: &'a S,
    key: SigningKey,
    registry: KeyRegistry,
    issuer: TimestampIssuer,
    variable: VariableId,
}

impl<'a, S: QuorumSystem + ?Sized> DisseminationRegister<'a, S> {
    /// Creates a client for variable 0.
    ///
    /// `key` is the writer's signing key; `registry` is the verification
    /// material readers use (in a deployment this is the PKI; here it is the
    /// simulated [`KeyRegistry`]).
    pub fn new(system: &'a S, key: SigningKey, registry: KeyRegistry) -> Self {
        Self::for_variable(system, key, registry, 0)
    }

    /// Creates a client bound to a specific variable id.
    pub fn for_variable(
        system: &'a S,
        key: SigningKey,
        registry: KeyRegistry,
        variable: VariableId,
    ) -> Self {
        DisseminationRegister {
            system,
            issuer: TimestampIssuer::new(key.owner()),
            key,
            registry,
            variable,
        }
    }

    /// The variable this client operates on.
    pub fn variable(&self) -> VariableId {
        self.variable
    }

    /// Write protocol: sign ⟨v, t⟩ and push it to every member of a quorum
    /// chosen by the access strategy.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`] if no server
    /// acknowledged the write.
    pub fn write(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
        value: Value,
    ) -> crate::Result<super::WriteReceipt> {
        let quorum = self.system.sample_quorum(rng);
        let timestamp = self.issuer.next();
        let record = SignedValue::create(&self.key, value, timestamp);
        cluster.note_operation();
        let acks = cluster.write_signed(&quorum, self.variable, &record);
        if acks == 0 {
            return Err(ProtocolError::QuorumUnavailable {
                contacted: quorum.len(),
                responded: 0,
            });
        }
        Ok(super::WriteReceipt {
            timestamp,
            acks,
            quorum_size: quorum.len(),
        })
    }

    /// Read protocol (Section 4): query a quorum, keep only the replies that
    /// are *verifiable*, and return the highest-timestamped one.
    ///
    /// Returns `Ok(None)` if no verifiable reply was received (e.g. nothing
    /// has been written yet).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`] if no server replied at
    /// all.
    pub fn read(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
    ) -> crate::Result<Option<TaggedValue>> {
        let quorum = self.system.sample_quorum(rng);
        cluster.note_operation();
        let replies = cluster.read_signed(&quorum, self.variable);
        if replies.is_empty() {
            return Err(ProtocolError::QuorumUnavailable {
                contacted: quorum.len(),
                responded: 0,
            });
        }
        let best = replies
            .into_iter()
            .map(|(_, sv)| sv)
            .filter(|sv| self.registry.verify_signed(sv))
            .max_by(|a, b| a.tagged.timestamp.cmp(&b.tagged.timestamp));
        Ok(best.map(|sv| sv.tagged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Behavior;
    use pqs_core::probabilistic::ProbabilisticDissemination;
    use pqs_core::universe::ServerId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: u32, b: u32) -> (ProbabilisticDissemination, Cluster, KeyRegistry, SigningKey) {
        let sys = ProbabilisticDissemination::with_target_epsilon(n, b, 1e-3).unwrap();
        let cluster = Cluster::new(sys.universe());
        let mut registry = KeyRegistry::new();
        let key = registry.register(1, 11);
        (sys, cluster, registry, key)
    }

    #[test]
    fn read_before_write_returns_none() {
        let (sys, mut cluster, registry, key) = setup(64, 8);
        let mut reg = DisseminationRegister::new(&sys, key, registry);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(reg.read(&mut cluster, &mut rng).unwrap(), None);
        assert_eq!(reg.variable(), 0);
    }

    #[test]
    fn round_trip_with_byzantine_servers_never_returns_forgeries() {
        let (sys, mut cluster, registry, key) = setup(100, 20);
        // Corrupt 20 servers; they can only suppress or replay.
        cluster.corrupt_all((0..20).map(ServerId::new), Behavior::ByzantineStale);
        let mut reg = DisseminationRegister::new(&sys, key, registry);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut stale = 0usize;
        let trials = 300u64;
        for i in 1..=trials {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            match reg.read(&mut cluster, &mut rng).unwrap() {
                Some(tv) if tv.value == Value::from_u64(i) => {}
                Some(tv) => {
                    // Any non-latest reply must still be a genuinely written
                    // (signed) earlier value, never a fabrication.
                    assert!(tv.value.as_u64().unwrap() < i);
                    stale += 1;
                }
                None => stale += 1,
            }
        }
        // epsilon <= 1e-3, so a handful of stale reads at most.
        assert!(stale <= 3, "too many stale reads: {stale}");
    }

    #[test]
    fn forging_servers_cannot_pass_verification() {
        let (sys, mut cluster, registry, key) = setup(64, 8);
        cluster.corrupt_all((0..8).map(ServerId::new), Behavior::ByzantineForge);
        let mut reg = DisseminationRegister::new(&sys, key, registry);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        reg.write(&mut cluster, &mut rng, Value::from_u64(5))
            .unwrap();
        for _ in 0..100 {
            if let Some(tv) = reg.read(&mut cluster, &mut rng).unwrap() {
                assert_eq!(tv.value, Value::from_u64(5));
            }
        }
    }

    #[test]
    fn unavailable_when_all_crash() {
        let (sys, mut cluster, registry, key) = setup(64, 8);
        cluster.crash_all((0..64).map(ServerId::new));
        let mut reg = DisseminationRegister::new(&sys, key, registry);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(matches!(
            reg.write(&mut cluster, &mut rng, Value::from_u64(1)),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
        assert!(matches!(
            reg.read(&mut cluster, &mut rng),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
    }

    #[test]
    fn reader_without_writer_key_rejects_everything() {
        // A registry that does not know the writer treats all data as
        // unverifiable, so reads return None — data is suppressed, never
        // forged.
        let sys = ProbabilisticDissemination::with_target_epsilon(64, 8, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut writer_registry = KeyRegistry::new();
        let key = writer_registry.register(1, 11);
        let empty_registry = KeyRegistry::new();
        let mut writer = DisseminationRegister::new(&sys, key, writer_registry);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        writer
            .write(&mut cluster, &mut rng, Value::from_u64(3))
            .unwrap();
        let mut reader = DisseminationRegister::new(&sys, key, empty_registry);
        assert_eq!(reader.read(&mut cluster, &mut rng).unwrap(), None);
    }
}
