//! The three replicated-register client protocols.
//!
//! All three share the Section 3.1 write protocol — pick a quorum by the
//! access strategy, pick a fresh timestamp, push ⟨v, t⟩ to every quorum
//! member — and differ in how a reader condenses the replies:
//!
//! * [`SafeRegister`] (Section 3.1) — pick the reply with the highest
//!   timestamp.  Approximates a multi-reader single-writer safe variable
//!   with probability ≥ 1 − ε under crash failures (Theorem 3.2).
//! * [`DisseminationRegister`] (Section 4) — discard replies whose
//!   signature does not verify, then pick the highest timestamp.  Tolerates
//!   `b` Byzantine servers for self-verifying data (Theorem 4.2).
//! * [`MaskingRegister`] (Section 5) — only consider value–timestamp pairs
//!   reported by at least `k` servers, then pick the highest timestamp
//!   (`⊥` if none qualifies).  Tolerates `b` Byzantine servers for
//!   arbitrary data (Theorem 5.2).
//!
//! [`RegisterMap`] lifts any of the three into a sharded key–value store:
//! one lazily created register (and writer timestamp chain) per
//! [`VariableId`](crate::server::VariableId), all sharing the quorum system
//! and the replica cluster.

mod dissemination;
pub mod map;
mod masking;
mod safe;
pub mod session;

pub use dissemination::DisseminationRegister;
pub use map::{RegisterFlavor, RegisterMap, WriteRecord};
pub use masking::MaskingRegister;
pub use safe::{SafeRegister, WriteReceipt};
pub use session::{ProbeSet, ReadMode, ReadSession, SessionStatus, WriteSession};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::crypto::KeyRegistry;
    use crate::server::Behavior;
    use crate::value::Value;
    use pqs_core::probabilistic::{
        EpsilonIntersecting, ProbabilisticDissemination, ProbabilisticMasking,
    };
    use pqs_core::system::QuorumSystem;
    use pqs_core::universe::ServerId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// End-to-end: all three registers return the last written value in a
    /// failure-free run.
    #[test]
    fn failure_free_round_trips() {
        let mut rng = ChaCha8Rng::seed_from_u64(100);

        // Safe register over an epsilon-intersecting system.
        let sys = EpsilonIntersecting::with_target_epsilon(64, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        for i in 1..=5u64 {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            let got = reg.read(&mut cluster, &mut rng).unwrap().unwrap();
            assert_eq!(got.value, Value::from_u64(i));
        }

        // Dissemination register over signed data.
        let sys = ProbabilisticDissemination::with_target_epsilon(64, 8, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut registry = KeyRegistry::new();
        let key = registry.register(2, 7);
        let mut reg = DisseminationRegister::new(&sys, key, registry.clone());
        reg.write(&mut cluster, &mut rng, Value::from_u64(77))
            .unwrap();
        let got = reg.read(&mut cluster, &mut rng).unwrap().unwrap();
        assert_eq!(got.value, Value::from_u64(77));

        // Masking register.
        let sys = ProbabilisticMasking::with_target_epsilon(64, 4, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = MaskingRegister::new(&sys, sys.read_threshold(), 3);
        reg.write(&mut cluster, &mut rng, Value::from_u64(123))
            .unwrap();
        let got = reg.read(&mut cluster, &mut rng).unwrap().unwrap();
        assert_eq!(got.value, Value::from_u64(123));
    }

    /// The safe register is fooled by forging servers (it has no defence);
    /// the masking register with the same adversary is not, and the
    /// dissemination register rejects forgeries by signature.
    #[test]
    fn byzantine_resistance_comparison() {
        let mut rng = ChaCha8Rng::seed_from_u64(200);
        let n = 64u32;
        let b = 4u32;
        let byz: Vec<ServerId> = (0..b).map(ServerId::new).collect();

        // Safe register: a single forging reply wins because its timestamp
        // is inflated.
        let sys = EpsilonIntersecting::new(n, 20).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.corrupt_all(byz.clone(), Behavior::ByzantineForge);
        let mut reg = SafeRegister::new(&sys, 1);
        reg.write(&mut cluster, &mut rng, Value::from_u64(1))
            .unwrap();
        let mut fooled = 0;
        for _ in 0..50 {
            let got = reg.read(&mut cluster, &mut rng).unwrap().unwrap();
            if got.value == crate::server::forged_value() {
                fooled += 1;
            }
        }
        assert!(
            fooled > 0,
            "with 4 forgers in 64 servers and q=20, some read should see one"
        );

        // Masking register with threshold k: the forgery needs k colluders in
        // the read quorum, which is unlikely by construction.
        let sys = ProbabilisticMasking::with_target_epsilon(n, b, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.corrupt_all(byz.clone(), Behavior::ByzantineForge);
        let mut reg = MaskingRegister::new(&sys, sys.read_threshold(), 3);
        reg.write(&mut cluster, &mut rng, Value::from_u64(1))
            .unwrap();
        for _ in 0..50 {
            let got = reg.read(&mut cluster, &mut rng).unwrap();
            if let Some(tv) = got {
                assert_ne!(tv.value, crate::server::forged_value());
            }
        }

        // Dissemination register: forged signatures never verify, so reads
        // return the genuine value even if every forger is contacted.
        let sys = ProbabilisticDissemination::with_target_epsilon(n, b, 1e-3).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.corrupt_all(byz, Behavior::ByzantineStale);
        let mut registry = KeyRegistry::new();
        let key = registry.register(9, 1);
        let mut reg = DisseminationRegister::new(&sys, key, registry);
        reg.write(&mut cluster, &mut rng, Value::from_u64(5))
            .unwrap();
        for _ in 0..50 {
            let got = reg.read(&mut cluster, &mut rng).unwrap();
            if let Some(sv) = got {
                assert_eq!(sv.value, Value::from_u64(5));
            }
        }
    }
}
