//! Incremental (session) forms of the register protocols.
//!
//! The quorum-granularity `read`/`write` methods on the registers treat one
//! quorum access as an atomic exchange.  Real deployments — and the
//! discrete-event simulator in `pqs-sim` — instead send one message per
//! server and make progress as replies trickle back.  This module provides
//! that decomposition:
//!
//! * [`ProbeSet`] — the servers one operation attempt contacts: a quorum
//!   drawn by the system's access strategy plus an optional `margin` of
//!   extra servers drawn uniformly from outside it.  The operation completes
//!   on the **first `q` responders**, whichever members of the probe set
//!   they happen to be, trading a little extra load for latency (the
//!   completion time drops from the maximum of `q` per-server latencies to
//!   the `q`-th order statistic of `q + margin`) and availability (crashed
//!   quorum members are masked by live spares).
//! * [`ReadSession`] / [`WriteSession`] — per-operation state machines: the
//!   caller feeds one reply at a time ([`ReadSession::on_plain_reply`],
//!   [`WriteSession::on_ack`], …) until the session reports
//!   [`SessionStatus::Complete`], then condenses the collected replies with
//!   [`ReadSession::finish`] / [`WriteSession::finish`].  A session that
//!   never gathers `q` replies (crashes, timeouts) can still be finished
//!   early; it condenses whatever arrived, exactly like the partial-quorum
//!   semantics of the atomic methods.
//!
//! Because the first `q` responders of a uniformly drawn probe set are
//! themselves (conditioned on the responder set) a uniformly distributed
//! `q`-subset of it, the ε-intersection analysis of the paper degrades only
//! marginally under small margins; the simulator's validation experiments
//! measure the effect directly.

use crate::crypto::{KeyRegistry, SignedValue};
use crate::timestamp::Timestamp;
use crate::value::TaggedValue;
use crate::ProtocolError;
use pqs_core::system::QuorumSystem;
use pqs_core::universe::ServerId;
use pqs_math::sampling::sample_k_of_n_excluding;
use rand::RngCore;
use std::collections::HashMap;

/// The servers contacted by one operation attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeSet {
    /// Servers to contact, quorum members first, margin spares after.
    pub servers: Vec<ServerId>,
    /// Number of replies that completes the operation (the quorum size `q`).
    pub needed: usize,
}

impl ProbeSet {
    /// Number of servers this attempt contacts (`q + margin`).
    pub fn probed(&self) -> usize {
        self.servers.len()
    }
}

/// Draws the probe set for one operation attempt: a quorum sampled by the
/// system's access strategy plus `margin` distinct extra servers drawn
/// uniformly from outside the quorum (clamped to the universe size).
pub fn probe_set<S: QuorumSystem + ?Sized>(
    system: &S,
    rng: &mut dyn RngCore,
    margin: usize,
) -> ProbeSet {
    let quorum = system.sample_quorum(rng);
    let needed = quorum.len();
    let mut servers = quorum.to_vec();
    let n = system.universe().size() as u64;
    let margin = (margin as u64).min(n - servers.len() as u64);
    if margin > 0 {
        let members: Vec<u64> = servers.iter().map(|s| s.index() as u64).collect();
        let extras = sample_k_of_n_excluding(rng, margin, n, &members)
            .expect("margin clamped to the complement size");
        servers.extend(extras.into_iter().map(|i| ServerId::new(i as u32)));
    }
    ProbeSet { servers, needed }
}

/// Whether a session still wants more replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Fewer than `q` replies so far; keep feeding.
    InFlight,
    /// The session has its `q` replies (or acks); finish it.
    Complete,
}

/// How a [`ReadSession`] condenses its collected replies — one variant per
/// register protocol.
#[derive(Debug, Clone)]
pub enum ReadMode {
    /// Section 3.1: highest timestamp wins.
    Safe,
    /// Section 4: discard replies whose signature does not verify against
    /// the registry, then highest timestamp.
    Dissemination(KeyRegistry),
    /// Section 5: only value–timestamp pairs reported by at least
    /// `threshold` servers are considered.
    Masking {
        /// The read-acceptance threshold `k`.
        threshold: usize,
    },
}

/// An in-progress read operation: collects one reply per probed server until
/// `q` servers have responded.
#[derive(Debug)]
pub struct ReadSession {
    mode: ReadMode,
    needed: usize,
    plain: Vec<TaggedValue>,
    signed: Vec<SignedValue>,
}

impl ReadSession {
    /// Creates a session that completes after `needed` replies, condensing
    /// them according to `mode`.
    pub fn new(mode: ReadMode, needed: usize) -> Self {
        ReadSession {
            mode,
            needed: needed.max(1),
            plain: Vec::new(),
            signed: Vec::new(),
        }
    }

    /// Number of replies that completes the session.
    pub fn needed(&self) -> usize {
        self.needed
    }

    /// Number of servers that have replied so far.
    pub fn responders(&self) -> usize {
        self.plain.len() + self.signed.len()
    }

    /// `true` once `needed` replies have arrived.
    pub fn is_complete(&self) -> bool {
        self.responders() >= self.needed
    }

    /// `true` if this session expects signed replies (dissemination mode).
    pub fn wants_signed(&self) -> bool {
        matches!(self.mode, ReadMode::Dissemination(_))
    }

    /// Feeds one plain reply (safe and masking modes).
    pub fn on_plain_reply(&mut self, _from: ServerId, reply: TaggedValue) -> SessionStatus {
        self.plain.push(reply);
        self.status()
    }

    /// Feeds one signed reply (dissemination mode).
    pub fn on_signed_reply(&mut self, _from: ServerId, reply: SignedValue) -> SessionStatus {
        self.signed.push(reply);
        self.status()
    }

    fn status(&self) -> SessionStatus {
        if self.is_complete() {
            SessionStatus::Complete
        } else {
            SessionStatus::InFlight
        }
    }

    /// Condenses the replies collected so far into the protocol's read
    /// result.  May be called before the session is complete (timeout,
    /// exhausted probe set): it then behaves exactly like the atomic read
    /// over the partial reply set.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`] if no server replied at
    /// all.
    pub fn finish(&self) -> crate::Result<Option<TaggedValue>> {
        if self.responders() == 0 {
            return Err(ProtocolError::QuorumUnavailable {
                contacted: self.needed,
                responded: 0,
            });
        }
        Ok(match &self.mode {
            ReadMode::Safe => self
                .plain
                .iter()
                .max_by(|a, b| a.timestamp.cmp(&b.timestamp))
                .filter(|tv| tv.timestamp != Timestamp::ZERO)
                .cloned(),
            ReadMode::Dissemination(registry) => self
                .signed
                .iter()
                .filter(|sv| registry.verify_signed(sv))
                .max_by(|a, b| a.tagged.timestamp.cmp(&b.tagged.timestamp))
                .map(|sv| sv.tagged.clone()),
            ReadMode::Masking { threshold } => {
                let mut counts: HashMap<&TaggedValue, usize> = HashMap::new();
                for tv in &self.plain {
                    *counts.entry(tv).or_insert(0) += 1;
                }
                counts
                    .into_iter()
                    .filter(|(tv, count)| {
                        *count >= (*threshold).max(1) && tv.timestamp != Timestamp::ZERO
                    })
                    .map(|(tv, _)| tv)
                    .max_by(|a, b| a.timestamp.cmp(&b.timestamp))
                    .cloned()
            }
        })
    }
}

/// An in-progress write operation: counts acknowledgements until `q` of the
/// probed servers have acked.
#[derive(Debug)]
pub struct WriteSession {
    timestamp: Timestamp,
    needed: usize,
    probed: usize,
    acks: usize,
}

impl WriteSession {
    /// Creates a session for a write issued under `timestamp`, sent to
    /// `probed` servers and complete after `needed` acknowledgements.
    pub fn new(timestamp: Timestamp, needed: usize, probed: usize) -> Self {
        WriteSession {
            timestamp,
            needed: needed.max(1),
            probed,
            acks: 0,
        }
    }

    /// The timestamp the write was issued under.
    pub fn timestamp(&self) -> Timestamp {
        self.timestamp
    }

    /// Acknowledgements received so far.
    pub fn acks(&self) -> usize {
        self.acks
    }

    /// Number of acknowledgements that completes the session.
    pub fn needed(&self) -> usize {
        self.needed
    }

    /// `true` once `needed` servers have acknowledged.
    pub fn is_complete(&self) -> bool {
        self.acks >= self.needed
    }

    /// Feeds one server's response: `acked == false` is a probed server
    /// that resolved without storing the value (crashed); it counts toward
    /// nothing but lets the caller's outstanding-probe accounting drain.
    pub fn on_ack(&mut self, acked: bool) -> SessionStatus {
        if acked {
            self.acks += 1;
        }
        if self.is_complete() {
            SessionStatus::Complete
        } else {
            SessionStatus::InFlight
        }
    }

    /// Produces the write receipt for the acknowledgements gathered so far.
    /// Like [`ReadSession::finish`], this may be called on a partially
    /// complete session: a write that reached at least one server counts as
    /// (weakly) completed, matching the atomic method's semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`] if no server
    /// acknowledged: the value is stored nowhere and the write had no
    /// effect.
    pub fn finish(&self) -> crate::Result<super::WriteReceipt> {
        if self.acks == 0 {
            return Err(ProtocolError::QuorumUnavailable {
                contacted: self.probed,
                responded: 0,
            });
        }
        Ok(super::WriteReceipt {
            timestamp: self.timestamp,
            acks: self.acks,
            quorum_size: self.needed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::SigningKey;
    use crate::value::Value;
    use pqs_core::probabilistic::EpsilonIntersecting;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tv(v: u64, c: u64) -> TaggedValue {
        TaggedValue::new(Value::from_u64(v), Timestamp::new(c, 1))
    }

    #[test]
    fn probe_set_contains_quorum_plus_distinct_margin() {
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let probe = probe_set(&sys, &mut rng, 5);
        assert_eq!(probe.needed, 8);
        assert_eq!(probe.probed(), 13);
        let mut ids: Vec<u32> = probe.servers.iter().map(|s| s.index()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 13, "probe set members must be distinct");
        // Margin is clamped to the complement of the quorum.
        let huge = probe_set(&sys, &mut rng, 1000);
        assert_eq!(huge.probed(), 64);
    }

    #[test]
    fn read_session_completes_on_first_q_replies() {
        let mut s = ReadSession::new(ReadMode::Safe, 3);
        assert_eq!(s.needed(), 3);
        assert!(!s.is_complete());
        assert_eq!(
            s.on_plain_reply(ServerId::new(0), tv(1, 1)),
            SessionStatus::InFlight
        );
        assert_eq!(
            s.on_plain_reply(ServerId::new(1), tv(2, 2)),
            SessionStatus::InFlight
        );
        assert_eq!(
            s.on_plain_reply(ServerId::new(2), tv(1, 1)),
            SessionStatus::Complete
        );
        assert_eq!(s.responders(), 3);
        assert_eq!(s.finish().unwrap(), Some(tv(2, 2)));
    }

    #[test]
    fn safe_read_session_with_only_initial_records_returns_none() {
        let mut s = ReadSession::new(ReadMode::Safe, 2);
        s.on_plain_reply(ServerId::new(0), TaggedValue::initial());
        s.on_plain_reply(ServerId::new(1), TaggedValue::initial());
        assert_eq!(s.finish().unwrap(), None);
    }

    #[test]
    fn empty_sessions_report_unavailable() {
        let s = ReadSession::new(ReadMode::Safe, 2);
        assert!(matches!(
            s.finish(),
            Err(ProtocolError::QuorumUnavailable { responded: 0, .. })
        ));
        let w = WriteSession::new(Timestamp::new(1, 1), 2, 2);
        assert!(matches!(
            w.finish(),
            Err(ProtocolError::QuorumUnavailable { responded: 0, .. })
        ));
    }

    #[test]
    fn masking_session_applies_threshold() {
        let mut s = ReadSession::new(ReadMode::Masking { threshold: 2 }, 4);
        s.on_plain_reply(ServerId::new(0), tv(9, 9)); // lone (forged-like) reply
        s.on_plain_reply(ServerId::new(1), tv(5, 5));
        s.on_plain_reply(ServerId::new(2), tv(5, 5));
        s.on_plain_reply(ServerId::new(3), tv(4, 4));
        assert!(s.is_complete());
        assert_eq!(s.finish().unwrap(), Some(tv(5, 5)));
    }

    #[test]
    fn dissemination_session_discards_unverifiable_replies() {
        let mut registry = KeyRegistry::new();
        let key: SigningKey = registry.register(1, 7);
        let good = SignedValue::create(&key, Value::from_u64(10), Timestamp::new(2, 1));
        let bogus_key = SigningKey::derive(9, 999);
        let forged = SignedValue::create(&bogus_key, Value::from_u64(666), Timestamp::new(99, 9));
        let mut s = ReadSession::new(ReadMode::Dissemination(registry), 2);
        assert!(s.wants_signed());
        s.on_signed_reply(ServerId::new(0), forged);
        s.on_signed_reply(ServerId::new(1), good.clone());
        assert_eq!(s.finish().unwrap(), Some(good.tagged));
    }

    #[test]
    fn write_session_counts_acks_and_finishes_partially() {
        let mut w = WriteSession::new(Timestamp::new(3, 1), 3, 5);
        assert_eq!(w.timestamp(), Timestamp::new(3, 1));
        assert_eq!(w.on_ack(true), SessionStatus::InFlight);
        assert_eq!(w.on_ack(false), SessionStatus::InFlight);
        assert!(!w.is_complete());
        // Partial finish after one ack: weakly completed.
        let receipt = w.finish().unwrap();
        assert_eq!(receipt.acks, 1);
        assert_eq!(receipt.quorum_size, 3);
        assert_eq!(w.on_ack(true), SessionStatus::InFlight);
        assert_eq!(w.on_ack(true), SessionStatus::Complete);
        assert_eq!(w.acks(), 3);
        assert_eq!(w.needed(), 3);
    }
}
