//! The Section 3.1 multi-reader single-writer register.

use super::session::{self, ProbeSet, ReadMode, ReadSession, SessionStatus, WriteSession};
use crate::cluster::Cluster;
use crate::server::VariableId;
use crate::timestamp::TimestampIssuer;
use crate::value::{TaggedValue, Value};
use crate::ClientId;
use pqs_core::system::QuorumSystem;
use rand::RngCore;

/// The result of a write: the timestamp it was issued under and how many
/// servers of the chosen quorum acknowledged it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReceipt {
    /// Timestamp attached to the written value.
    pub timestamp: crate::timestamp::Timestamp,
    /// Number of servers that acknowledged the write.
    pub acks: usize,
    /// Size of the quorum the write was sent to.
    pub quorum_size: usize,
}

/// A client of the Section 3.1 protocol: writes and reads a single
/// replicated variable through quorums of the given system.
///
/// Theorem 3.2: if a read is not concurrent with any write and only crash
/// failures occur, the read returns the last written value with probability
/// at least `1 − ε`.
#[derive(Debug)]
pub struct SafeRegister<'a, S: QuorumSystem + ?Sized> {
    system: &'a S,
    issuer: TimestampIssuer,
    variable: VariableId,
    probe_margin: usize,
}

impl<'a, S: QuorumSystem + ?Sized> SafeRegister<'a, S> {
    /// Creates a client for variable 0 writing as `writer`.
    pub fn new(system: &'a S, writer: ClientId) -> Self {
        Self::for_variable(system, writer, 0)
    }

    /// Creates a client bound to a specific variable id.
    pub fn for_variable(system: &'a S, writer: ClientId, variable: VariableId) -> Self {
        SafeRegister {
            system,
            issuer: TimestampIssuer::new(writer),
            variable,
            probe_margin: 0,
        }
    }

    /// Probes `margin` extra servers beyond the quorum on every operation
    /// and completes on the first `q` responders (first-q-of-probed access).
    /// A margin of 0 (the default) reproduces the classic atomic access.
    pub fn with_probe_margin(mut self, margin: usize) -> Self {
        self.set_probe_margin(margin);
        self
    }

    /// Changes the probe margin of an existing client (see
    /// [`with_probe_margin`](Self::with_probe_margin)).
    pub fn set_probe_margin(&mut self, margin: usize) {
        self.probe_margin = margin;
    }

    /// The configured probe margin.
    pub fn probe_margin(&self) -> usize {
        self.probe_margin
    }

    /// The variable this client operates on.
    pub fn variable(&self) -> VariableId {
        self.variable
    }

    /// Draws the servers the next operation attempt should contact: a
    /// quorum by the access strategy plus the configured margin of spares.
    pub fn sample_probe_set(&self, rng: &mut dyn RngCore) -> ProbeSet {
        session::probe_set(self.system, rng, self.probe_margin)
    }

    /// Starts an incremental write: issues a fresh timestamp and returns
    /// the record to push to each probed server plus the session that
    /// tracks acknowledgements (complete at `needed` acks).
    pub fn begin_write(
        &mut self,
        value: Value,
        needed: usize,
        probed: usize,
    ) -> (TaggedValue, WriteSession) {
        let timestamp = self.issuer.next();
        let record = TaggedValue::new(value, timestamp);
        (record, WriteSession::new(timestamp, needed, probed))
    }

    /// Starts an incremental read that completes after `needed` replies and
    /// condenses them by highest timestamp (Section 3.1).
    pub fn begin_read(&self, needed: usize) -> ReadSession {
        ReadSession::new(ReadMode::Safe, needed)
    }

    /// Write protocol (Section 3.1): choose a probe set by the access
    /// strategy, choose a fresh timestamp, push the record server by server
    /// and stop as soon as `q` servers acknowledged (with the default margin
    /// of 0 this updates every quorum member, exactly the classic protocol).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`](crate::ProtocolError::QuorumUnavailable)
    /// if *no* probed server acknowledged the write (the value is then not
    /// stored anywhere and the write had no effect).
    pub fn write(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
        value: Value,
    ) -> crate::Result<WriteReceipt> {
        let probe = self.sample_probe_set(rng);
        let (record, mut session) = self.begin_write(value, probe.needed, probe.probed());
        cluster.note_operation();
        for &id in &probe.servers {
            let acked = cluster.probe_write_plain(id, self.variable, &record);
            if session.on_ack(acked) == SessionStatus::Complete {
                break;
            }
        }
        session.finish()
    }

    /// Read protocol (Section 3.1): probe the chosen servers, stop at the
    /// first `q` replies, return the reply with the highest timestamp.
    ///
    /// Returns `Ok(None)` if every reply still carries the initial
    /// (never-written) record.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`](crate::ProtocolError::QuorumUnavailable)
    /// if no probed server replied.
    pub fn read(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
    ) -> crate::Result<Option<TaggedValue>> {
        let probe = self.sample_probe_set(rng);
        let mut session = self.begin_read(probe.needed);
        cluster.note_operation();
        for &id in &probe.servers {
            if let Some(tv) = cluster.probe_read_plain(id, self.variable) {
                if session.on_plain_reply(id, tv) == SessionStatus::Complete {
                    break;
                }
            }
        }
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Behavior;
    use crate::ProtocolError;
    use pqs_core::probabilistic::EpsilonIntersecting;
    use pqs_core::strict::Majority;
    use pqs_core::universe::ServerId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn read_before_any_write_returns_none() {
        let sys = Majority::new(9).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(reg.read(&mut cluster, &mut rng).unwrap(), None);
        assert_eq!(reg.variable(), 0);
    }

    #[test]
    fn strict_majority_register_is_always_consistent() {
        let sys = Majority::new(15).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for i in 1..=200u64 {
            let receipt = reg
                .write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            assert_eq!(receipt.acks, receipt.quorum_size);
            let got = reg.read(&mut cluster, &mut rng).unwrap().unwrap();
            assert_eq!(got.value, Value::from_u64(i), "write {i}");
        }
    }

    #[test]
    fn stale_read_rate_is_close_to_epsilon() {
        // Theorem 3.2 (empirical): stale reads happen with probability ~eps.
        // Use a deliberately loose system (small quorums) so the effect is
        // visible within a reasonable number of trials.
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let eps = pqs_core::system::ProbabilisticQuorumSystem::epsilon(&sys);
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trials = 4000u64;
        let mut stale = 0u64;
        for i in 1..=trials {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            let got = reg.read(&mut cluster, &mut rng).unwrap();
            match got {
                Some(tv) if tv.value == Value::from_u64(i) => {}
                _ => stale += 1,
            }
        }
        let rate = stale as f64 / trials as f64;
        // The observed stale rate should be of the same order as epsilon
        // (it is actually a bit lower because older values may coincide...
        // they cannot here since each write uses a distinct value, so it
        // should track epsilon closely).
        assert!(
            (rate - eps).abs() < 0.02,
            "stale rate {rate} vs epsilon {eps}"
        );
    }

    #[test]
    fn write_fails_only_when_entire_quorum_is_down() {
        let sys = Majority::new(5).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut reg = SafeRegister::new(&sys, 1);
        // Crash two servers: every 3-server majority still has a live member.
        cluster.crash_all([ServerId::new(0), ServerId::new(1)]);
        let receipt = reg
            .write(&mut cluster, &mut rng, Value::from_u64(9))
            .unwrap();
        assert!(receipt.acks >= 1);
        // Crash everything: now both reads and writes report unavailability.
        cluster.crash_all((0..5).map(ServerId::new));
        assert!(matches!(
            reg.write(&mut cluster, &mut rng, Value::from_u64(10)),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
        assert!(matches!(
            reg.read(&mut cluster, &mut rng),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
    }

    #[test]
    fn reads_survive_partial_crashes_with_high_probability() {
        // With q = 22 of n = 100 and 30 crashed servers, most read quorums
        // still contain live servers holding the latest value.
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut reg = SafeRegister::new(&sys, 1);
        reg.write(&mut cluster, &mut rng, Value::from_u64(42))
            .unwrap();
        cluster.crash_all((0..30).map(ServerId::new));
        let mut ok = 0;
        for _ in 0..200 {
            if let Ok(Some(tv)) = reg.read(&mut cluster, &mut rng) {
                if tv.value == Value::from_u64(42) {
                    ok += 1;
                }
            }
        }
        assert!(ok > 150, "only {ok}/200 reads returned the written value");
    }

    #[test]
    fn probe_margin_masks_crashed_quorum_members() {
        // Majority of 5: quorums have size 3. Crash two servers; with a
        // margin of 2 every probe set covers all five servers, so reads and
        // writes always reach the full quorum count of live servers.
        let sys = Majority::new(5).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.crash_all([ServerId::new(0), ServerId::new(1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut reg = SafeRegister::new(&sys, 1).with_probe_margin(2);
        assert_eq!(reg.probe_margin(), 2);
        for i in 1..=50u64 {
            let receipt = reg
                .write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            assert_eq!(receipt.acks, 3, "margin should supply 3 live ackers");
            let got = reg.read(&mut cluster, &mut rng).unwrap().unwrap();
            assert_eq!(got.value, Value::from_u64(i));
        }
    }

    #[test]
    fn incremental_session_matches_atomic_read() {
        let sys = Majority::new(9).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut reg = SafeRegister::new(&sys, 1);
        reg.write(&mut cluster, &mut rng, Value::from_u64(4))
            .unwrap();
        // Drive a read by hand through the session API.
        let probe = reg.sample_probe_set(&mut rng);
        assert_eq!(probe.needed, 5);
        let mut session = reg.begin_read(probe.needed);
        for &id in &probe.servers {
            if let Some(tv) = cluster.probe_read_plain(id, reg.variable()) {
                if session.on_plain_reply(id, tv) == SessionStatus::Complete {
                    break;
                }
            }
        }
        assert!(session.is_complete());
        assert_eq!(session.finish().unwrap().unwrap().value, Value::from_u64(4));
    }

    #[test]
    fn behavior_distribution_does_not_panic_register() {
        // Smoke test mixing behaviours; the safe register makes no Byzantine
        // promises but must not panic or return errors while servers reply.
        let sys = EpsilonIntersecting::new(30, 10).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.set_behavior(ServerId::new(0), Behavior::ByzantineForge);
        cluster.set_behavior(ServerId::new(1), Behavior::ByzantineStale);
        cluster.set_behavior(ServerId::new(2), Behavior::Crashed);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut reg = SafeRegister::new(&sys, 1);
        for i in 0..50u64 {
            let _ = reg.write(&mut cluster, &mut rng, Value::from_u64(i));
            let _ = reg.read(&mut cluster, &mut rng);
        }
    }
}
