//! The Section 3.1 multi-reader single-writer register.

use crate::cluster::Cluster;
use crate::server::VariableId;
use crate::timestamp::TimestampIssuer;
use crate::value::{TaggedValue, Value};
use crate::{ClientId, ProtocolError};
use pqs_core::system::QuorumSystem;
use rand::RngCore;

/// The result of a write: the timestamp it was issued under and how many
/// servers of the chosen quorum acknowledged it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReceipt {
    /// Timestamp attached to the written value.
    pub timestamp: crate::timestamp::Timestamp,
    /// Number of servers that acknowledged the write.
    pub acks: usize,
    /// Size of the quorum the write was sent to.
    pub quorum_size: usize,
}

/// A client of the Section 3.1 protocol: writes and reads a single
/// replicated variable through quorums of the given system.
///
/// Theorem 3.2: if a read is not concurrent with any write and only crash
/// failures occur, the read returns the last written value with probability
/// at least `1 − ε`.
#[derive(Debug)]
pub struct SafeRegister<'a, S: QuorumSystem + ?Sized> {
    system: &'a S,
    issuer: TimestampIssuer,
    variable: VariableId,
}

impl<'a, S: QuorumSystem + ?Sized> SafeRegister<'a, S> {
    /// Creates a client for variable 0 writing as `writer`.
    pub fn new(system: &'a S, writer: ClientId) -> Self {
        Self::for_variable(system, writer, 0)
    }

    /// Creates a client bound to a specific variable id.
    pub fn for_variable(system: &'a S, writer: ClientId, variable: VariableId) -> Self {
        SafeRegister {
            system,
            issuer: TimestampIssuer::new(writer),
            variable,
        }
    }

    /// The variable this client operates on.
    pub fn variable(&self) -> VariableId {
        self.variable
    }

    /// Write protocol (Section 3.1): choose a quorum by the access strategy,
    /// choose a fresh timestamp, update every server of the quorum.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`] if *no* server of the
    /// chosen quorum acknowledged the write (the value is then not stored
    /// anywhere and the write had no effect).
    pub fn write(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
        value: Value,
    ) -> crate::Result<WriteReceipt> {
        let quorum = self.system.sample_quorum(rng);
        let timestamp = self.issuer.next();
        cluster.note_operation();
        let acks = cluster.write_plain(&quorum, self.variable, &TaggedValue::new(value, timestamp));
        if acks == 0 {
            return Err(ProtocolError::QuorumUnavailable {
                contacted: quorum.len(),
                responded: 0,
            });
        }
        Ok(WriteReceipt {
            timestamp,
            acks,
            quorum_size: quorum.len(),
        })
    }

    /// Read protocol (Section 3.1): choose a quorum, query every member,
    /// return the value with the highest timestamp.
    ///
    /// Returns `Ok(None)` if every reply still carries the initial
    /// (never-written) record.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::QuorumUnavailable`] if no server of the
    /// chosen quorum replied.
    pub fn read(
        &mut self,
        cluster: &mut Cluster,
        rng: &mut dyn RngCore,
    ) -> crate::Result<Option<TaggedValue>> {
        let quorum = self.system.sample_quorum(rng);
        cluster.note_operation();
        let replies = cluster.read_plain(&quorum, self.variable);
        if replies.is_empty() {
            return Err(ProtocolError::QuorumUnavailable {
                contacted: quorum.len(),
                responded: 0,
            });
        }
        let best = replies
            .into_iter()
            .map(|(_, tv)| tv)
            .max_by(|a, b| a.timestamp.cmp(&b.timestamp))
            .expect("replies is non-empty");
        if best.timestamp == crate::timestamp::Timestamp::ZERO {
            Ok(None)
        } else {
            Ok(Some(best))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Behavior;
    use pqs_core::probabilistic::EpsilonIntersecting;
    use pqs_core::strict::Majority;
    use pqs_core::universe::ServerId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn read_before_any_write_returns_none() {
        let sys = Majority::new(9).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(reg.read(&mut cluster, &mut rng).unwrap(), None);
        assert_eq!(reg.variable(), 0);
    }

    #[test]
    fn strict_majority_register_is_always_consistent() {
        let sys = Majority::new(15).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for i in 1..=200u64 {
            let receipt = reg
                .write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            assert_eq!(receipt.acks, receipt.quorum_size);
            let got = reg.read(&mut cluster, &mut rng).unwrap().unwrap();
            assert_eq!(got.value, Value::from_u64(i), "write {i}");
        }
    }

    #[test]
    fn stale_read_rate_is_close_to_epsilon() {
        // Theorem 3.2 (empirical): stale reads happen with probability ~eps.
        // Use a deliberately loose system (small quorums) so the effect is
        // visible within a reasonable number of trials.
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let eps = pqs_core::system::ProbabilisticQuorumSystem::epsilon(&sys);
        let mut cluster = Cluster::new(sys.universe());
        let mut reg = SafeRegister::new(&sys, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let trials = 4000u64;
        let mut stale = 0u64;
        for i in 1..=trials {
            reg.write(&mut cluster, &mut rng, Value::from_u64(i))
                .unwrap();
            let got = reg.read(&mut cluster, &mut rng).unwrap();
            match got {
                Some(tv) if tv.value == Value::from_u64(i) => {}
                _ => stale += 1,
            }
        }
        let rate = stale as f64 / trials as f64;
        // The observed stale rate should be of the same order as epsilon
        // (it is actually a bit lower because older values may coincide...
        // they cannot here since each write uses a distinct value, so it
        // should track epsilon closely).
        assert!(
            (rate - eps).abs() < 0.02,
            "stale rate {rate} vs epsilon {eps}"
        );
    }

    #[test]
    fn write_fails_only_when_entire_quorum_is_down() {
        let sys = Majority::new(5).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut reg = SafeRegister::new(&sys, 1);
        // Crash two servers: every 3-server majority still has a live member.
        cluster.crash_all([ServerId::new(0), ServerId::new(1)]);
        let receipt = reg
            .write(&mut cluster, &mut rng, Value::from_u64(9))
            .unwrap();
        assert!(receipt.acks >= 1);
        // Crash everything: now both reads and writes report unavailability.
        cluster.crash_all((0..5).map(ServerId::new));
        assert!(matches!(
            reg.write(&mut cluster, &mut rng, Value::from_u64(10)),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
        assert!(matches!(
            reg.read(&mut cluster, &mut rng),
            Err(ProtocolError::QuorumUnavailable { .. })
        ));
    }

    #[test]
    fn reads_survive_partial_crashes_with_high_probability() {
        // With q = 22 of n = 100 and 30 crashed servers, most read quorums
        // still contain live servers holding the latest value.
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut reg = SafeRegister::new(&sys, 1);
        reg.write(&mut cluster, &mut rng, Value::from_u64(42))
            .unwrap();
        cluster.crash_all((0..30).map(ServerId::new));
        let mut ok = 0;
        for _ in 0..200 {
            if let Ok(Some(tv)) = reg.read(&mut cluster, &mut rng) {
                if tv.value == Value::from_u64(42) {
                    ok += 1;
                }
            }
        }
        assert!(ok > 150, "only {ok}/200 reads returned the written value");
    }

    #[test]
    fn behavior_distribution_does_not_panic_register() {
        // Smoke test mixing behaviours; the safe register makes no Byzantine
        // promises but must not panic or return errors while servers reply.
        let sys = EpsilonIntersecting::new(30, 10).unwrap();
        let mut cluster = Cluster::new(sys.universe());
        cluster.set_behavior(ServerId::new(0), Behavior::ByzantineForge);
        cluster.set_behavior(ServerId::new(1), Behavior::ByzantineStale);
        cluster.set_behavior(ServerId::new(2), Behavior::Crashed);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut reg = SafeRegister::new(&sys, 1);
        for i in 0..50u64 {
            let _ = reg.write(&mut cluster, &mut rng, Value::from_u64(i));
            let _ = reg.read(&mut cluster, &mut rng);
        }
    }
}
