//! # pqs-protocols
//!
//! Replicated-data access protocols over probabilistic quorum systems, as
//! described in Sections 3.1, 4 and 5 of *Probabilistic Quorum Systems*
//! (Malkhi, Reiter, Wool, Wright).
//!
//! The paper shows how an ε-intersecting quorum system yields a
//! multi-reader, single-writer variable whose semantics approximate a *safe*
//! variable (Theorem 3.2), and how the dissemination and masking variants
//! preserve that guarantee under Byzantine server failures for
//! self-verifying and arbitrary data respectively (Theorems 4.2 and 5.2).
//! This crate implements those protocols against an in-memory replica
//! cluster with pluggable server behaviours (correct, crashed, Byzantine),
//! plus the lazy *diffusion* mechanism sketched in Section 1.1 that drives
//! the residual inconsistency further toward zero.
//!
//! ## Layout
//!
//! * [`timestamp`] — writer-local monotone timestamps.
//! * [`value`] — replicated values and value–timestamp pairs.
//! * [`crypto`] — simulated digital signatures for self-verifying data
//!   (a keyed hash over an in-memory key registry; see DESIGN.md for the
//!   substitution rationale).
//! * [`server`] — a single replica server: storage plus a failure behaviour.
//! * [`cluster`] — a universe of servers addressed by quorum, with failure
//!   injection and per-server access accounting.
//! * [`register`] — the three client protocols: safe ([`register::SafeRegister`]),
//!   dissemination ([`register::DisseminationRegister`]) and masking
//!   ([`register::MaskingRegister`]), plus the sharded key–value facade
//!   ([`register::RegisterMap`]) that instantiates any of them per key.
//! * [`diffusion`] — epidemic propagation of the freshest value between
//!   correct servers: blind push gossip and the digest/delta exchange
//!   (per-key version summaries answered by only the records the summary's
//!   sender provably lacks).
//!
//! ## Example
//!
//! ```rust
//! use pqs_core::probabilistic::EpsilonIntersecting;
//! use pqs_core::system::QuorumSystem;
//! use pqs_protocols::cluster::Cluster;
//! use pqs_protocols::register::SafeRegister;
//! use pqs_protocols::value::Value;
//! use rand::SeedableRng;
//!
//! let system = EpsilonIntersecting::with_target_epsilon(100, 1e-3).unwrap();
//! let mut cluster = Cluster::new(system.universe());
//! let mut register = SafeRegister::new(&system, 1);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//!
//! register.write(&mut cluster, &mut rng, Value::from_u64(42)).unwrap();
//! let read = register.read(&mut cluster, &mut rng).unwrap();
//! assert_eq!(read.unwrap().value, Value::from_u64(42));
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod crypto;
pub mod diffusion;
pub mod register;
pub mod server;
pub mod timestamp;
pub mod value;

mod error;

pub use error::ProtocolError;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ProtocolError>;

/// Identifier of a client (reader or writer) of the replicated service.
pub type ClientId = u32;
