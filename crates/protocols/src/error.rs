use std::error::Error;
use std::fmt;

/// Errors surfaced by the replication protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Too few servers of the chosen quorum responded for the operation to
    /// complete (e.g. they have crashed).
    QuorumUnavailable {
        /// Servers contacted.
        contacted: usize,
        /// Servers that answered.
        responded: usize,
    },
    /// A configuration problem: mismatched universes, unknown writer key, …
    Configuration(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::QuorumUnavailable {
                contacted,
                responded,
            } => write!(
                f,
                "quorum unavailable: only {responded} of {contacted} servers responded"
            ),
            ProtocolError::Configuration(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl Error for ProtocolError {}

impl ProtocolError {
    /// Builds a [`ProtocolError::Configuration`] from anything printable.
    pub fn config(msg: impl fmt::Display) -> Self {
        ProtocolError::Configuration(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ProtocolError::QuorumUnavailable {
            contacted: 10,
            responded: 3,
        };
        assert!(e.to_string().contains("3 of 10"));
        assert!(ProtocolError::config("bad").to_string().contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolError>();
    }
}
