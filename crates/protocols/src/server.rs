//! A single replica server: per-variable storage plus a failure behaviour.
//!
//! The paper's model (Section 2) distinguishes *correct* servers, which
//! follow their specification, from *crashed* servers (benign failures) and
//! *Byzantine* servers, which "may deviate from \[their\] specification
//! arbitrarily".  The behaviours implemented here are the canonical
//! adversaries for the three protocols:
//!
//! * [`Behavior::Crashed`] — never answers; exercises the availability /
//!   failure-probability analysis.
//! * [`Behavior::ByzantineForge`] — answers with a fabricated value carrying
//!   an inflated timestamp (all forging servers collude on the same value),
//!   the worst case for the masking analysis of Section 5.
//! * [`Behavior::ByzantineStale`] — suppresses updates and keeps answering
//!   with stale data; the worst a Byzantine server can do against
//!   *self-verifying* data (Section 4), since it cannot forge signatures.

use crate::crypto::SignedValue;
use crate::timestamp::Timestamp;
use crate::value::{TaggedValue, Value};
use pqs_core::universe::ServerId;
use std::collections::BTreeMap;

/// Identifier of a replicated variable (register) held by the servers.
pub type VariableId = u64;

/// How a server behaves when accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Correct,
    /// Halted: ignores every request (benign failure model of Section 2).
    Crashed,
    /// Byzantine: answers reads with a fabricated value under an inflated
    /// timestamp and acknowledges writes without storing them.  All servers
    /// with this behaviour return the *same* fabricated value, modelling a
    /// colluding adversary.
    ByzantineForge,
    /// Byzantine: acknowledges writes without storing them and answers reads
    /// with whatever (old) state it has — i.e. it suppresses updates, which
    /// is all it can do undetectably against self-verifying data.
    ByzantineStale,
}

impl Behavior {
    /// Returns `true` for the two Byzantine variants.
    pub fn is_byzantine(self) -> bool {
        matches!(self, Behavior::ByzantineForge | Behavior::ByzantineStale)
    }
}

/// The value colluding [`Behavior::ByzantineForge`] servers fabricate.
pub fn forged_value() -> Value {
    Value::from_str_value("FORGED")
}

/// The inflated timestamp attached to the fabricated value: far ahead of any
/// honest write in a test run, attributed to a bogus writer id.
pub fn forged_timestamp() -> Timestamp {
    Timestamp::new(u64::MAX / 2, u32::MAX)
}

/// Variable ids below this bound live in the dense slot tier of a
/// [`RecordStore`]; ids at or above it (the apps hash entity names into
/// the full `u64` space) spill into the ordered sparse tier.  2^16 slots
/// comfortably covers every simulator key space while capping the dense
/// tier's worst-case footprint per server.
const DENSE_LIMIT: VariableId = 1 << 16;

/// Per-variable record storage: a dense slot vector for the workload
/// layer's ids (`0..keys`, so a direct index replaces the hash-and-probe
/// a map would pay on every probe and gossip delivery) plus an ordered
/// sparse overflow for hashed ids beyond [`DENSE_LIMIT`].
///
/// A slot is occupied exactly when it holds a record fresher than
/// [`Timestamp::ZERO`] (the only insertion paths are the server's
/// `store_*_if_fresher` merge rules).  Iteration is **ascending by id**
/// by construction — dense slots scan in index order, the sparse tier is
/// a `BTreeMap` whose keys all exceed the dense tier's — which is what
/// lets the gossip planners drop their per-sender sorts.
#[derive(Debug, Clone, Default)]
struct RecordStore<T> {
    dense: Vec<Option<T>>,
    sparse: BTreeMap<VariableId, T>,
}

impl<T> RecordStore<T> {
    fn new() -> Self {
        RecordStore {
            dense: Vec::new(),
            sparse: BTreeMap::new(),
        }
    }

    #[inline]
    fn get(&self, var: VariableId) -> Option<&T> {
        if var < DENSE_LIMIT {
            self.dense.get(var as usize).and_then(Option::as_ref)
        } else {
            self.sparse.get(&var)
        }
    }

    fn set(&mut self, var: VariableId, value: T) {
        if var < DENSE_LIMIT {
            let idx = var as usize;
            if idx >= self.dense.len() {
                self.dense.resize_with(idx + 1, || None);
            }
            self.dense[idx] = Some(value);
        } else {
            self.sparse.insert(var, value);
        }
    }

    /// Capacity hint for a key space of `keys` dense ids.
    fn reserve(&mut self, keys: u64) {
        let cap = keys.min(DENSE_LIMIT) as usize;
        self.dense.reserve(cap.saturating_sub(self.dense.len()));
    }

    /// Held variable ids, ascending.
    fn variables(&self) -> impl Iterator<Item = VariableId> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_some())
            .map(|(idx, _)| idx as VariableId)
            .chain(self.sparse.keys().copied())
    }
}

/// A replica server.
///
/// Per-variable records live in a two-tier record store: dense `Vec`
/// slots indexed directly by [`VariableId`] (with a sparse overflow tier
/// for hashed ids), lazily grown to the highest id actually stored — see
/// [`reserve_variables`](Self::reserve_variables) for pre-sizing.
#[derive(Debug, Clone)]
pub struct ReplicaServer {
    id: ServerId,
    behavior: Behavior,
    plain: RecordStore<TaggedValue>,
    signed: RecordStore<SignedValue>,
}

impl ReplicaServer {
    /// Creates a correct server with the given id and empty storage.
    pub fn new(id: ServerId) -> Self {
        ReplicaServer {
            id,
            behavior: Behavior::Correct,
            plain: RecordStore::new(),
            signed: RecordStore::new(),
        }
    }

    /// Pre-allocates both record stores for a key space of `keys` dense
    /// variable ids, so steady-state stores never reallocate.  Purely a
    /// capacity hint: occupancy (and hence iteration) is unchanged.
    pub fn reserve_variables(&mut self, keys: u64) {
        self.plain.reserve(keys);
        self.signed.reserve(keys);
    }

    /// Wipes both record stores and re-reserves capacity for `keys` dense
    /// variable ids: the state of a server (re)joining the cluster, which
    /// must bootstrap everything it once held back through gossip rather
    /// than resurrect pre-departure records.
    pub fn reset_stores(&mut self, keys: u64) {
        self.plain = RecordStore::new();
        self.signed = RecordStore::new();
        self.reserve_variables(keys);
    }

    /// The server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The server's current behaviour.
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// Changes the server's behaviour (crash it, corrupt it, or repair it).
    pub fn set_behavior(&mut self, behavior: Behavior) {
        self.behavior = behavior;
    }

    /// The stored plain record's slot, `None` when unheld.
    #[inline]
    fn plain_slot(&self, var: VariableId) -> Option<&TaggedValue> {
        self.plain.get(var)
    }

    /// The stored signed record's slot, `None` when unheld.
    #[inline]
    fn signed_slot(&self, var: VariableId) -> Option<&SignedValue> {
        self.signed.get(var)
    }

    /// The plain (unsigned) record the server *actually* stores for `var`,
    /// regardless of behaviour — useful for assertions and diffusion.
    pub fn stored_plain(&self, var: VariableId) -> TaggedValue {
        self.plain_slot(var)
            .cloned()
            .unwrap_or_else(TaggedValue::initial)
    }

    /// The signed record the server actually stores for `var`.
    pub fn stored_signed(&self, var: VariableId) -> SignedValue {
        self.signed_slot(var)
            .cloned()
            .unwrap_or_else(SignedValue::unsigned_initial)
    }

    /// Timestamp of the stored plain record for `var`
    /// ([`Timestamp::ZERO`] when unheld) — a clone-free accessor for the
    /// digest planner's per-key version summaries.
    pub fn stored_plain_timestamp(&self, var: VariableId) -> Timestamp {
        self.plain_slot(var)
            .map_or(Timestamp::ZERO, |tv| tv.timestamp)
    }

    /// Timestamp of the stored signed record for `var`
    /// ([`Timestamp::ZERO`] when unheld), without cloning the signature.
    pub fn stored_signed_timestamp(&self, var: VariableId) -> Timestamp {
        self.signed_slot(var)
            .map_or(Timestamp::ZERO, |sv| sv.tagged.timestamp)
    }

    /// Handles a plain read request. Returns `None` if the server does not
    /// answer (crashed).
    pub fn handle_read_plain(&self, var: VariableId) -> Option<TaggedValue> {
        match self.behavior {
            Behavior::Crashed => None,
            Behavior::Correct => Some(self.stored_plain(var)),
            Behavior::ByzantineForge => Some(TaggedValue::new(forged_value(), forged_timestamp())),
            Behavior::ByzantineStale => Some(self.stored_plain(var)),
        }
    }

    /// Handles a plain write request. Returns `true` if the write was
    /// acknowledged (Byzantine servers acknowledge without necessarily
    /// storing anything).
    pub fn handle_write_plain(&mut self, var: VariableId, incoming: TaggedValue) -> bool {
        match self.behavior {
            Behavior::Crashed => false,
            Behavior::Correct => {
                self.store_plain_if_fresher(var, incoming);
                true
            }
            // Byzantine servers acknowledge but drop the update.
            Behavior::ByzantineForge | Behavior::ByzantineStale => true,
        }
    }

    /// Handles a signed read request (dissemination protocol).
    pub fn handle_read_signed(&self, var: VariableId) -> Option<SignedValue> {
        match self.behavior {
            Behavior::Crashed => None,
            Behavior::Correct => Some(self.stored_signed(var)),
            // A forging server cannot produce a verifying signature; the
            // most damaging thing it can return is stale-but-valid data (or
            // garbage, which readers would discard anyway). Both Byzantine
            // behaviours therefore reply with their (stale) stored record.
            Behavior::ByzantineForge | Behavior::ByzantineStale => Some(self.stored_signed(var)),
        }
    }

    /// Handles a signed write request (dissemination protocol).
    pub fn handle_write_signed(&mut self, var: VariableId, incoming: SignedValue) -> bool {
        match self.behavior {
            Behavior::Crashed => false,
            Behavior::Correct => {
                self.store_signed_if_fresher(var, incoming);
                true
            }
            Behavior::ByzantineForge | Behavior::ByzantineStale => true,
        }
    }

    /// Stores a plain record if it is fresher than the current one — also
    /// the merge rule used by the diffusion mechanism.  Returns `true` if
    /// the incoming record replaced the stored one (it was strictly
    /// fresher), which the gossip layer uses to count effective pushes.
    pub fn store_plain_if_fresher(&mut self, var: VariableId, incoming: TaggedValue) -> bool {
        let current = self
            .plain_slot(var)
            .map_or(Timestamp::ZERO, |tv| tv.timestamp);
        if incoming.timestamp > current {
            self.plain.set(var, incoming);
            true
        } else {
            false
        }
    }

    /// Stores a signed record if it is fresher than the current one.
    /// Returns `true` if the incoming record replaced the stored one.
    pub fn store_signed_if_fresher(&mut self, var: VariableId, incoming: SignedValue) -> bool {
        let current = self
            .signed_slot(var)
            .map_or(Timestamp::ZERO, |sv| sv.tagged.timestamp);
        if incoming.tagged.timestamp > current {
            self.signed.set(var, incoming);
            true
        } else {
            false
        }
    }

    /// All variables for which this server holds a plain record, in
    /// **ascending id order** — a linear scan over the dense slots, which
    /// the gossip planners rely on to skip re-sorting per sender.
    pub fn plain_variables(&self) -> impl Iterator<Item = VariableId> + '_ {
        self.plain.variables()
    }

    /// All variables for which this server holds a signed record, in
    /// **ascending id order** (see [`plain_variables`](Self::plain_variables)).
    pub fn signed_variables(&self) -> impl Iterator<Item = VariableId> + '_ {
        self.signed.variables()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::KeyRegistry;

    fn tv(v: u64, c: u64) -> TaggedValue {
        TaggedValue::new(Value::from_u64(v), Timestamp::new(c, 1))
    }

    #[test]
    fn correct_server_stores_and_serves() {
        let mut s = ReplicaServer::new(ServerId::new(3));
        assert_eq!(s.id(), ServerId::new(3));
        assert_eq!(s.behavior(), Behavior::Correct);
        assert_eq!(s.handle_read_plain(0).unwrap().timestamp, Timestamp::ZERO);
        assert!(s.handle_write_plain(0, tv(5, 1)));
        assert_eq!(s.handle_read_plain(0).unwrap(), tv(5, 1));
        // Stale writes are ignored (keep the freshest record).
        assert!(s.handle_write_plain(0, tv(9, 1)));
        assert_eq!(s.handle_read_plain(0).unwrap(), tv(5, 1));
        assert!(s.handle_write_plain(0, tv(9, 2)));
        assert_eq!(s.handle_read_plain(0).unwrap(), tv(9, 2));
        // Independent variables do not interfere.
        assert!(s.handle_write_plain(7, tv(1, 1)));
        assert_eq!(s.handle_read_plain(0).unwrap(), tv(9, 2));
        assert_eq!(s.plain_variables().count(), 2);
    }

    #[test]
    fn crashed_server_is_silent() {
        let mut s = ReplicaServer::new(ServerId::new(0));
        s.set_behavior(Behavior::Crashed);
        assert!(s.handle_read_plain(0).is_none());
        assert!(!s.handle_write_plain(0, tv(1, 1)));
        assert!(s.handle_read_signed(0).is_none());
        assert!(!s.behavior().is_byzantine());
    }

    #[test]
    fn forging_server_returns_colluding_fabrication() {
        let mut a = ReplicaServer::new(ServerId::new(1));
        let mut b = ReplicaServer::new(ServerId::new(2));
        a.set_behavior(Behavior::ByzantineForge);
        b.set_behavior(Behavior::ByzantineForge);
        assert!(a.behavior().is_byzantine());
        let ra = a.handle_read_plain(0).unwrap();
        let rb = b.handle_read_plain(0).unwrap();
        // Collusion: identical fabricated value and timestamp.
        assert_eq!(ra, rb);
        assert_eq!(ra.value, forged_value());
        assert!(ra.timestamp > Timestamp::new(1_000_000, 0));
        // It acknowledges writes but does not store them.
        assert!(a.handle_write_plain(0, tv(3, 1)));
        assert_eq!(a.stored_plain(0).timestamp, Timestamp::ZERO);
    }

    #[test]
    fn stale_server_suppresses_updates() {
        let mut s = ReplicaServer::new(ServerId::new(1));
        assert!(s.handle_write_plain(0, tv(1, 1)));
        s.set_behavior(Behavior::ByzantineStale);
        assert!(s.handle_write_plain(0, tv(2, 2)));
        // Still serves the old record.
        assert_eq!(s.handle_read_plain(0).unwrap(), tv(1, 1));
    }

    #[test]
    fn signed_records_and_byzantine_suppression() {
        let mut registry = KeyRegistry::new();
        let key = registry.register(1, 7);
        let mut s = ReplicaServer::new(ServerId::new(4));
        let v1 = SignedValue::create(&key, Value::from_u64(10), Timestamp::new(1, 1));
        let v2 = SignedValue::create(&key, Value::from_u64(20), Timestamp::new(2, 1));
        assert!(s.handle_write_signed(0, v1.clone()));
        assert!(s.handle_write_signed(0, v2.clone()));
        assert_eq!(s.handle_read_signed(0).unwrap(), v2);
        // Regression to Byzantine: the server can only keep serving what it
        // has (or suppress); it cannot fabricate a verifying record.
        s.set_behavior(Behavior::ByzantineForge);
        assert!(s.handle_write_signed(0, v1.clone()));
        let served = s.handle_read_signed(0).unwrap();
        assert!(registry.verify_signed(&served));
        assert_eq!(served, v2);
    }

    #[test]
    fn default_behavior_is_correct() {
        assert_eq!(Behavior::default(), Behavior::Correct);
    }

    #[test]
    fn held_variables_iterate_in_ascending_id_order() {
        // The gossip planners skip per-sender sorts on the strength of
        // this: dense slots yield ids ascending no matter the insertion
        // order, and unheld ids in between never appear.
        let mut s = ReplicaServer::new(ServerId::new(0));
        s.reserve_variables(16);
        for var in [9u64, 2, 11, 0, 5] {
            assert!(s.store_plain_if_fresher(var, tv(var, 1)));
        }
        assert!(s.plain_variables().eq([0u64, 2, 5, 9, 11]));
        // A stale store (timestamp ZERO never beats an empty slot) does
        // not occupy a slot.
        assert!(!s.store_plain_if_fresher(13, TaggedValue::initial()));
        assert!(s.plain_variables().eq([0u64, 2, 5, 9, 11]));
        assert_eq!(s.stored_plain_timestamp(13), Timestamp::ZERO);
        // Hashed ids (the apps namespace entities into the full u64
        // space) land in the sparse tier, still iterated in order.
        let huge = u64::MAX / 3;
        assert!(s.store_plain_if_fresher(huge, tv(1, 4)));
        assert_eq!(s.stored_plain(huge), tv(1, 4));
        assert!(s.plain_variables().eq([0u64, 2, 5, 9, 11, huge]));
    }

    #[test]
    fn store_if_fresher_reports_whether_it_stored() {
        let mut s = ReplicaServer::new(ServerId::new(0));
        assert!(s.store_plain_if_fresher(0, tv(1, 1)));
        // Same timestamp or older: kept, not replaced.
        assert!(!s.store_plain_if_fresher(0, tv(9, 1)));
        assert!(!s.store_plain_if_fresher(0, tv(9, 0)));
        assert!(s.store_plain_if_fresher(0, tv(2, 2)));
        let mut registry = KeyRegistry::new();
        let key = registry.register(1, 5);
        let v1 = SignedValue::create(&key, Value::from_u64(1), Timestamp::new(1, 1));
        let v2 = SignedValue::create(&key, Value::from_u64(2), Timestamp::new(2, 1));
        assert!(s.store_signed_if_fresher(3, v1.clone()));
        assert!(!s.store_signed_if_fresher(3, v1));
        assert!(s.store_signed_if_fresher(3, v2));
        assert!(s.signed_variables().eq(std::iter::once(3)));
    }
}
