//! Load computations (Definitions 2.4 and 3.3) and the corresponding lower
//! bounds.

use crate::quorum::Quorum;
use crate::strategy::WeightedStrategy;
use crate::CoreError;

/// Per-server load induced by a strategy on an explicit set system:
/// `l_w(u) = Σ_{Q ∋ u} w(Q)` for every server `u` (Definition 2.4).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] if the number of quorums does
/// not match the strategy, the list is empty, or the quorums come from
/// universes of different sizes.
pub fn per_server_load(quorums: &[Quorum], strategy: &WeightedStrategy) -> crate::Result<Vec<f64>> {
    if quorums.is_empty() {
        return Err(CoreError::invalid("at least one quorum is required"));
    }
    if quorums.len() != strategy.len() {
        return Err(CoreError::invalid(format!(
            "strategy covers {} quorums but {} were supplied",
            strategy.len(),
            quorums.len()
        )));
    }
    let n = quorums[0].universe().size();
    if quorums.iter().any(|q| q.universe().size() != n) {
        return Err(CoreError::invalid(
            "all quorums must come from the same universe",
        ));
    }
    let mut loads = vec![0.0f64; n as usize];
    for (i, q) in quorums.iter().enumerate() {
        let w = strategy.probability(i);
        for s in q.iter() {
            loads[s.as_usize()] += w;
        }
    }
    Ok(loads)
}

/// The load induced by a strategy on an explicit set system:
/// `L_w(Q) = max_u l_w(u)` (Definition 2.4).
///
/// Note this is the load *of the given strategy*, not the system load
/// `L(Q) = min_w L_w(Q)`; for the symmetric constructions in this crate the
/// uniform strategy is optimal so the two coincide.
///
/// # Errors
///
/// As for [`per_server_load`].
pub fn induced_load(quorums: &[Quorum], strategy: &WeightedStrategy) -> crate::Result<f64> {
    Ok(per_server_load(quorums, strategy)?
        .into_iter()
        .fold(0.0, f64::max))
}

/// The Naor–Wool lower bound on the load of any strict quorum system:
/// `L(Q) ≥ max{1/c(Q), c(Q)/n}` where `c(Q)` is the smallest quorum size
/// (quoted in Section 2.1); in particular `L(Q) ≥ 1/√n`.
pub fn load_lower_bound(n: u32, min_quorum_size: u32) -> f64 {
    if n == 0 || min_quorum_size == 0 {
        return 0.0;
    }
    let c = min_quorum_size as f64;
    (1.0 / c).max(c / n as f64)
}

/// Theorem 3.9's lower bound on the load of an ε-intersecting quorum system:
/// `L(⟨Q, w⟩) ≥ max{E[|Q|]/n, (1 − √ε)²/E[|Q|]}`, which gives
/// `L ≥ (1 − √ε)/√n` (Corollary 3.12).
pub fn probabilistic_load_lower_bound(n: u32, expected_quorum_size: f64, epsilon: f64) -> f64 {
    if n == 0 || expected_quorum_size <= 0.0 {
        return 0.0;
    }
    let eps = epsilon.clamp(0.0, 1.0);
    let first = expected_quorum_size / n as f64;
    let second = (1.0 - eps.sqrt()).powi(2) / expected_quorum_size;
    first.max(second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strict::Grid;
    use crate::system::{ExplicitQuorumSystem, ProbabilisticQuorumSystem, QuorumSystem};
    use crate::universe::Universe;

    fn quorum(u: Universe, ids: &[u32]) -> Quorum {
        Quorum::from_indices(u, ids.iter().copied()).unwrap()
    }

    #[test]
    fn per_server_load_simple_example() {
        let u = Universe::new(4);
        let quorums = vec![quorum(u, &[0, 1]), quorum(u, &[1, 2]), quorum(u, &[2, 3])];
        let strategy = WeightedStrategy::from_weights(vec![0.5, 0.25, 0.25]).unwrap();
        let loads = per_server_load(&quorums, &strategy).unwrap();
        assert!((loads[0] - 0.5).abs() < 1e-12);
        assert!((loads[1] - 0.75).abs() < 1e-12);
        assert!((loads[2] - 0.5).abs() < 1e-12);
        assert!((loads[3] - 0.25).abs() < 1e-12);
        assert!((induced_load(&quorums, &strategy).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let u = Universe::new(4);
        let quorums = vec![quorum(u, &[0, 1])];
        let wrong_strategy = WeightedStrategy::uniform(2);
        assert!(per_server_load(&quorums, &wrong_strategy).is_err());
        assert!(per_server_load(&[], &WeightedStrategy::uniform(1)).is_err());
        let mixed = vec![quorum(u, &[0]), quorum(Universe::new(5), &[0])];
        assert!(per_server_load(&mixed, &WeightedStrategy::uniform(2)).is_err());
    }

    #[test]
    fn total_load_equals_expected_quorum_size_over_n() {
        // Lemma 3.10's accounting identity: sum_u l_w(u) = E[|Q|].
        let g = Grid::new(36).unwrap();
        let loads = per_server_load(&g.quorums(), &g.strategy()).unwrap();
        let total: f64 = loads.iter().sum();
        assert!((total - g.expected_quorum_size()).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_formulas() {
        assert!((load_lower_bound(100, 10) - 0.1).abs() < 1e-12);
        assert!((load_lower_bound(100, 51) - 0.51).abs() < 1e-12);
        assert_eq!(load_lower_bound(0, 5), 0.0);
        assert_eq!(load_lower_bound(10, 0), 0.0);
        // Probabilistic bound reduces to the strict one at epsilon = 0.
        let strict = load_lower_bound(100, 10);
        let probabilistic = probabilistic_load_lower_bound(100, 10.0, 0.0);
        assert!((strict - probabilistic).abs() < 1e-12);
        // And never strengthens as epsilon grows; the (1-sqrt(eps))^2/E term
        // alone does weaken.
        assert!(probabilistic_load_lower_bound(100, 10.0, 0.25) <= strict);
        assert!(
            probabilistic_load_lower_bound(1000, 10.0, 0.25)
                < probabilistic_load_lower_bound(1000, 10.0, 0.0)
        );
        assert_eq!(probabilistic_load_lower_bound(0, 10.0, 0.1), 0.0);
    }

    #[test]
    fn epsilon_intersecting_load_respects_theorem_3_9() {
        use crate::probabilistic::EpsilonIntersecting;
        for &n in &[100u32, 400, 900] {
            let sys = EpsilonIntersecting::with_target_epsilon(n, 1e-3).unwrap();
            let bound =
                probabilistic_load_lower_bound(n, sys.expected_quorum_size(), sys.epsilon());
            assert!(
                sys.load() + 1e-12 >= bound,
                "n={n}: load {} < bound {bound}",
                sys.load()
            );
            // Corollary 3.12 form.
            let corollary = (1.0 - sys.epsilon().sqrt()) / (n as f64).sqrt();
            assert!(sys.load() + 1e-12 >= corollary);
        }
    }
}
