//! Quality measures for quorum systems.
//!
//! The paper assesses quorum systems by three measures (Section 2): **load**
//! (Definition 2.4), **fault tolerance** (Definition 2.5) and **failure
//! probability** (Definition 2.6), and extends all three to the
//! probabilistic setting (Definitions 3.3, 3.7, 3.8) via the notion of
//! *δ-high-quality quorums* (Definition 3.4).
//!
//! The concrete constructions in this crate report their measures through
//! the [`crate::system::QuorumSystem`] trait using closed forms.  This
//! module provides the *generic* computations that work on any explicitly
//! enumerated system — they are used to cross-check the closed forms in
//! tests, to analyse hand-built systems, and to reproduce the Section 3.2
//! discussion of why the naive strict definitions break down for
//! probabilistic systems.

mod failure_prob;
mod fault_tolerance;
mod load;

pub use failure_prob::{failure_probability_exact, failure_probability_monte_carlo};
pub use fault_tolerance::{
    exact_fault_tolerance, high_quality_quorum_indices, probabilistic_fault_tolerance,
};
pub use load::{induced_load, load_lower_bound, per_server_load, probabilistic_load_lower_bound};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::WeightedStrategy;
    use crate::strict::{Grid, Majority, Singleton};
    use crate::system::{ExplicitQuorumSystem, QuorumSystem};

    /// The generic computations must agree with the closed forms reported by
    /// the concrete constructions.
    #[test]
    fn generic_measures_agree_with_closed_forms_for_grid() {
        let g = Grid::new(25).unwrap();
        let quorums = g.quorums();
        let strategy = g.strategy();
        assert!((induced_load(&quorums, &strategy).unwrap() - g.load()).abs() < 1e-12);
        assert_eq!(
            exact_fault_tolerance(&quorums).unwrap(),
            g.fault_tolerance()
        );
        // The exact (inclusion–exclusion) failure probability is limited to
        // 22 quorums, so cross-check it on the 4x4 grid.
        let small = Grid::new(16).unwrap();
        for &p in &[0.1, 0.4, 0.7] {
            let exact = failure_probability_exact(&small.quorums(), p).unwrap();
            assert!(
                (exact - small.failure_probability(p)).abs() < 1e-9,
                "p={p}: {exact} vs {}",
                small.failure_probability(p)
            );
        }
    }

    #[test]
    fn generic_measures_agree_for_singleton() {
        let s = Singleton::new(6);
        let quorums = s.quorums();
        let strategy = s.strategy();
        assert!((induced_load(&quorums, &strategy).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(exact_fault_tolerance(&quorums).unwrap(), 1);
        assert!((failure_probability_exact(&quorums, 0.25).unwrap() - 0.25).abs() < 1e-12);
    }

    /// Section 3.2: adding rarely-used singleton quorums inflates the strict
    /// fault tolerance to n, but the probabilistic fault tolerance (computed
    /// over high-quality quorums only) is unaffected.
    #[test]
    fn probabilistic_fault_tolerance_resists_inflation() {
        let n = 9u32;
        let m = Majority::new(n).unwrap();
        // Enumerate a handful of majority quorums explicitly (all 5-subsets
        // would be 126; a symmetric sample of them is enough for the test).
        let universe = m.universe();
        let mut quorums: Vec<crate::quorum::Quorum> = (0..n)
            .map(|start| {
                crate::quorum::Quorum::from_indices(universe, (0..5u32).map(|i| (start + i) % n))
                    .unwrap()
            })
            .collect();
        let base_len = quorums.len();
        let base_strategy = WeightedStrategy::uniform(base_len);
        let base_ft = probabilistic_fault_tolerance(&quorums, &base_strategy, 0.01).unwrap();

        // Inflate: add all singletons, used with tiny total probability gamma.
        for i in 0..n {
            quorums.push(crate::quorum::Quorum::from_indices(universe, [i]).unwrap());
        }
        let gamma = 1e-6;
        let mut weights = vec![(1.0 - gamma) / base_len as f64; base_len];
        weights.extend(std::iter::repeat_n(gamma / n as f64, n as usize));
        let inflated_strategy = WeightedStrategy::from_weights(weights).unwrap();

        // The strict measure is fooled: now only killing all n servers
        // disables every quorum.
        assert_eq!(exact_fault_tolerance(&quorums).unwrap(), n);
        // The probabilistic measure is not: singletons are not high quality.
        let inflated_ft =
            probabilistic_fault_tolerance(&quorums, &inflated_strategy, 0.01).unwrap();
        assert_eq!(inflated_ft, base_ft);
        assert!(inflated_ft < n);
    }
}
