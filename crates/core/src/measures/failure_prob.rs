//! Failure probability (Definitions 2.6 and 3.8) for explicitly enumerated
//! systems.
//!
//! The symmetric constructions have closed forms (binomial tails); for
//! arbitrary explicit systems this module provides an exact
//! inclusion–exclusion computation (feasible for small systems) and a
//! Monte-Carlo estimator for larger ones.

use crate::quorum::Quorum;
use crate::CoreError;
use rand::Rng;
use rand::RngCore;

/// Maximum number of quorums for which the exact inclusion–exclusion
/// computation (over `2^m` subsets) is attempted.
const EXACT_LIMIT: usize = 22;

/// Exact failure probability of an explicit set system: the probability
/// that every quorum contains at least one crashed server when servers
/// crash independently with probability `p`.
///
/// Uses inclusion–exclusion over subsets of quorums:
/// `P(some quorum alive) = Σ_{∅≠S} (−1)^{|S|+1} (1−p)^{|∪S|}`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] for an empty list or
/// mismatched universes, and [`CoreError::Infeasible`] if there are more
/// than 22 quorums (use [`failure_probability_monte_carlo`] instead).
pub fn failure_probability_exact(quorums: &[Quorum], p: f64) -> crate::Result<f64> {
    validate(quorums)?;
    if quorums.len() > EXACT_LIMIT {
        return Err(CoreError::infeasible(format!(
            "exact failure probability limited to {EXACT_LIMIT} quorums; got {}",
            quorums.len()
        )));
    }
    let p = p.clamp(0.0, 1.0);
    let alive = 1.0 - p;
    let m = quorums.len();
    let mut some_alive = 0.0f64;
    // Iterate over non-empty subsets of quorums.
    for mask in 1u32..(1u32 << m) {
        let mut union = quorums[0].as_bitset().clone();
        // Start from an empty set of the right capacity.
        union = union.difference(&union);
        let mut bits = mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            union = union.union(quorums[i].as_bitset());
            bits &= bits - 1;
        }
        let sign = if mask.count_ones() % 2 == 1 {
            1.0
        } else {
            -1.0
        };
        some_alive += sign * alive.powi(union.len() as i32);
    }
    Ok((1.0 - some_alive).clamp(0.0, 1.0))
}

/// Monte-Carlo estimate of the failure probability of an explicit set
/// system using `trials` independent crash patterns.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] for an empty list, mismatched
/// universes, or zero trials.
pub fn failure_probability_monte_carlo(
    quorums: &[Quorum],
    p: f64,
    trials: u32,
    rng: &mut dyn RngCore,
) -> crate::Result<f64> {
    validate(quorums)?;
    if trials == 0 {
        return Err(CoreError::invalid("at least one trial is required"));
    }
    let p = p.clamp(0.0, 1.0);
    let n = quorums[0].universe().size() as usize;
    let mut failures = 0u32;
    let mut crashed = vec![false; n];
    for _ in 0..trials {
        for c in crashed.iter_mut() {
            *c = rng.gen_bool(p);
        }
        let some_alive = quorums
            .iter()
            .any(|q| q.iter().all(|s| !crashed[s.as_usize()]));
        if !some_alive {
            failures += 1;
        }
    }
    Ok(failures as f64 / trials as f64)
}

fn validate(quorums: &[Quorum]) -> crate::Result<()> {
    if quorums.is_empty() {
        return Err(CoreError::invalid("at least one quorum is required"));
    }
    let n = quorums[0].universe().size();
    if quorums.iter().any(|q| q.universe().size() != n) {
        return Err(CoreError::invalid(
            "all quorums must come from the same universe",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strict::Grid;
    use crate::system::{ExplicitQuorumSystem, QuorumSystem};
    use crate::universe::Universe;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn quorum(u: Universe, ids: &[u32]) -> Quorum {
        Quorum::from_indices(u, ids.iter().copied()).unwrap()
    }

    #[test]
    fn single_quorum_failure_probability() {
        let u = Universe::new(4);
        // One quorum of two servers fails iff either crashes: 1 - (1-p)^2.
        let q = vec![quorum(u, &[0, 1])];
        let p = 0.3;
        let exact = failure_probability_exact(&q, p).unwrap();
        assert!((exact - (1.0 - 0.7f64 * 0.7)).abs() < 1e-12);
    }

    #[test]
    fn two_overlapping_quorums() {
        let u = Universe::new(3);
        // Quorums {0,1} and {1,2}: system alive iff {0,1} alive or {1,2}
        // alive. By inclusion-exclusion: 2 (1-p)^2 - (1-p)^3.
        let q = vec![quorum(u, &[0, 1]), quorum(u, &[1, 2])];
        let p = 0.4;
        let alive: f64 = 1.0 - p;
        let expected = 1.0 - (2.0 * alive.powi(2) - alive.powi(3));
        assert!((failure_probability_exact(&q, p).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn extremes_and_validation() {
        let u = Universe::new(3);
        let q = vec![quorum(u, &[0, 1])];
        assert_eq!(failure_probability_exact(&q, 0.0).unwrap(), 0.0);
        assert_eq!(failure_probability_exact(&q, 1.0).unwrap(), 1.0);
        assert!(failure_probability_exact(&[], 0.5).is_err());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(failure_probability_monte_carlo(&q, 0.5, 0, &mut rng).is_err());
        let mixed = vec![quorum(u, &[0]), quorum(Universe::new(4), &[0])];
        assert!(failure_probability_exact(&mixed, 0.5).is_err());
    }

    #[test]
    fn too_many_quorums_for_exact() {
        let u = Universe::new(30);
        let quorums: Vec<Quorum> = (0..25u32).map(|i| quorum(u, &[i, i + 1])).collect();
        assert!(matches!(
            failure_probability_exact(&quorums, 0.5),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn exact_matches_grid_closed_form() {
        let g = Grid::new(16).unwrap();
        for &p in &[0.1, 0.35, 0.6] {
            let exact = failure_probability_exact(&g.quorums(), p).unwrap();
            assert!(
                (exact - g.failure_probability(p)).abs() < 1e-9,
                "p={p}: {exact} vs {}",
                g.failure_probability(p)
            );
        }
    }

    #[test]
    fn monte_carlo_matches_exact() {
        let g = Grid::new(16).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let p = 0.3;
        let exact = failure_probability_exact(&g.quorums(), p).unwrap();
        let mc = failure_probability_monte_carlo(&g.quorums(), p, 40_000, &mut rng).unwrap();
        assert!((exact - mc).abs() < 0.01, "exact={exact} mc={mc}");
    }

    #[test]
    fn failure_probability_is_monotone_in_p() {
        let u = Universe::new(6);
        let quorums = vec![
            quorum(u, &[0, 1, 2]),
            quorum(u, &[2, 3, 4]),
            quorum(u, &[4, 5, 0]),
        ];
        let mut prev = 0.0;
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            let f = failure_probability_exact(&quorums, p).unwrap();
            assert!(f + 1e-12 >= prev);
            prev = f;
        }
    }
}
