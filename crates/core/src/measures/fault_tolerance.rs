//! Fault tolerance (Definitions 2.5 and 3.7) and the high-quality-quorum
//! machinery of Definition 3.4.
//!
//! The fault tolerance `A(Q)` of a set system is the size of a minimum
//! hitting set (transversal) of its quorums: the smallest number of crashes
//! that can disable every quorum.  Computing it exactly is NP-hard in
//! general, so [`exact_fault_tolerance`] uses a branch-and-bound search that
//! is exact but guarded by a problem-size limit; the symmetric constructions
//! report closed forms instead (via
//! [`crate::system::QuorumSystem::fault_tolerance`]).
//!
//! For probabilistic systems the strict definition can be gamed by adding
//! never-used quorums (Section 3.2), so Definition 3.7 restricts attention
//! to *high-quality* quorums — those that intersect a strategy-drawn quorum
//! with probability at least `1 − √ε`.

use crate::quorum::Quorum;
use crate::strategy::WeightedStrategy;
use crate::CoreError;

/// Upper limit on `|quorums| × universe` for the exact hitting-set search;
/// beyond this the computation refuses rather than running for hours.
const EXACT_SEARCH_LIMIT: usize = 1 << 22;

/// Computes the exact fault tolerance `A(Q)` (minimum hitting set size) of
/// an explicitly enumerated set system.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] if the list is empty or an
/// empty quorum is present (an empty quorum cannot be hit, so every server
/// set "disables" it vacuously and `A` is undefined), and
/// [`CoreError::Infeasible`] if the instance exceeds the built-in search
/// budget.
pub fn exact_fault_tolerance(quorums: &[Quorum]) -> crate::Result<u32> {
    if quorums.is_empty() {
        return Err(CoreError::invalid("at least one quorum is required"));
    }
    if quorums.iter().any(|q| q.is_empty()) {
        return Err(CoreError::invalid(
            "empty quorums are not allowed in a fault-tolerance computation",
        ));
    }
    let n = quorums[0].universe().size() as usize;
    if quorums.iter().any(|q| q.universe().size() as usize != n) {
        return Err(CoreError::invalid(
            "all quorums must come from the same universe",
        ));
    }
    if quorums.len() * n > EXACT_SEARCH_LIMIT {
        return Err(CoreError::infeasible(format!(
            "exact fault tolerance limited to |quorums| * n <= {EXACT_SEARCH_LIMIT}; got {} * {n}",
            quorums.len()
        )));
    }
    // Greedy upper bound first (pick the server covering the most
    // still-unhit quorums), then branch and bound on the hitting-set size.
    let greedy = greedy_hitting_set(quorums, n);
    let mut best = greedy as u32;
    let mut chosen = vec![false; n];
    branch(quorums, n, &mut chosen, 0, 0, &mut best);
    Ok(best)
}

fn greedy_hitting_set(quorums: &[Quorum], n: usize) -> usize {
    let mut unhit: Vec<&Quorum> = quorums.iter().collect();
    let mut count = 0usize;
    while !unhit.is_empty() {
        let mut cover = vec![0usize; n];
        for q in &unhit {
            for s in q.iter() {
                cover[s.as_usize()] += 1;
            }
        }
        let best_server = cover
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .expect("n > 0");
        count += 1;
        unhit.retain(|q| !q.contains(crate::universe::ServerId::new(best_server as u32)));
    }
    count
}

/// Depth-first branch and bound: at each step pick the first unhit quorum
/// and try adding each of its servers to the hitting set.
fn branch(
    quorums: &[Quorum],
    n: usize,
    chosen: &mut Vec<bool>,
    chosen_count: u32,
    first_unchecked: usize,
    best: &mut u32,
) {
    if chosen_count >= *best {
        return;
    }
    // Find an unhit quorum.
    let mut unhit = None;
    for (i, q) in quorums.iter().enumerate().skip(first_unchecked) {
        if !q.iter().any(|s| chosen[s.as_usize()]) {
            unhit = Some(i);
            break;
        }
    }
    let Some(idx) = unhit else {
        // Every quorum is hit.
        *best = chosen_count;
        return;
    };
    let _ = n;
    for s in quorums[idx].iter() {
        let i = s.as_usize();
        if chosen[i] {
            continue;
        }
        chosen[i] = true;
        branch(quorums, n, chosen, chosen_count + 1, idx, best);
        chosen[i] = false;
    }
}

/// Indices of the δ-high-quality quorums of `⟨Q, w⟩` (Definition 3.4): those
/// that intersect a quorum drawn according to `w` with probability at least
/// `1 − δ`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] if the inputs are inconsistent
/// or `δ` is not in `[0, 1]`.
pub fn high_quality_quorum_indices(
    quorums: &[Quorum],
    strategy: &WeightedStrategy,
    delta: f64,
) -> crate::Result<Vec<usize>> {
    if quorums.is_empty() {
        return Err(CoreError::invalid("at least one quorum is required"));
    }
    if quorums.len() != strategy.len() {
        return Err(CoreError::invalid(format!(
            "strategy covers {} quorums but {} were supplied",
            strategy.len(),
            quorums.len()
        )));
    }
    if !(0.0..=1.0).contains(&delta) || delta.is_nan() {
        return Err(CoreError::invalid(format!(
            "delta must be in [0,1], got {delta}"
        )));
    }
    let mut result = Vec::new();
    for (i, q) in quorums.iter().enumerate() {
        let mut intersect_prob = 0.0f64;
        for (j, other) in quorums.iter().enumerate() {
            if q.intersects(other) {
                intersect_prob += strategy.probability(j);
            }
        }
        if intersect_prob >= 1.0 - delta - 1e-12 {
            result.push(i);
        }
    }
    Ok(result)
}

/// The probabilistic fault tolerance `A(⟨Q, w⟩)` of Definition 3.7: the
/// minimum number of crashes hitting every *high-quality* quorum, where high
/// quality means `δ = √ε` (Definition 3.6).
///
/// # Errors
///
/// As for [`high_quality_quorum_indices`] and [`exact_fault_tolerance`];
/// additionally fails if no quorum qualifies as high quality.
pub fn probabilistic_fault_tolerance(
    quorums: &[Quorum],
    strategy: &WeightedStrategy,
    epsilon: f64,
) -> crate::Result<u32> {
    if !(0.0..=1.0).contains(&epsilon) || epsilon.is_nan() {
        return Err(CoreError::invalid(format!(
            "epsilon must be in [0,1], got {epsilon}"
        )));
    }
    let delta = epsilon.sqrt();
    let indices = high_quality_quorum_indices(quorums, strategy, delta)?;
    if indices.is_empty() {
        return Err(CoreError::invalid(
            "no high-quality quorums: the system is not epsilon-intersecting for this epsilon",
        ));
    }
    let subset: Vec<Quorum> = indices.into_iter().map(|i| quorums[i].clone()).collect();
    exact_fault_tolerance(&subset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strict::{Grid, Majority};
    use crate::system::{ExplicitQuorumSystem, QuorumSystem};
    use crate::universe::Universe;

    fn quorum(u: Universe, ids: &[u32]) -> Quorum {
        Quorum::from_indices(u, ids.iter().copied()).unwrap()
    }

    #[test]
    fn exact_fault_tolerance_simple_cases() {
        let u = Universe::new(5);
        // Single quorum: hit it with one server.
        assert_eq!(exact_fault_tolerance(&[quorum(u, &[0, 1, 2])]).unwrap(), 1);
        // Two disjoint-ish quorums sharing one server: that server hits both.
        assert_eq!(
            exact_fault_tolerance(&[quorum(u, &[0, 1]), quorum(u, &[1, 2])]).unwrap(),
            1
        );
        // Two disjoint quorums need two crashes. (Such a system is not a
        // strict quorum system, but A(Q) is still well defined.)
        assert_eq!(
            exact_fault_tolerance(&[quorum(u, &[0, 1]), quorum(u, &[2, 3])]).unwrap(),
            2
        );
    }

    #[test]
    fn exact_fault_tolerance_validation() {
        let u = Universe::new(5);
        assert!(exact_fault_tolerance(&[]).is_err());
        assert!(exact_fault_tolerance(&[quorum(u, &[])]).is_err());
        let other = Universe::new(6);
        assert!(exact_fault_tolerance(&[quorum(u, &[0]), quorum(other, &[0])]).is_err());
    }

    #[test]
    fn grid_fault_tolerance_matches_closed_form() {
        for &n in &[9u32, 16, 25] {
            let g = Grid::new(n).unwrap();
            assert_eq!(
                exact_fault_tolerance(&g.quorums()).unwrap(),
                g.fault_tolerance(),
                "n={n}"
            );
        }
    }

    #[test]
    fn majority_fault_tolerance_matches_closed_form_small() {
        // Enumerate all majority quorums of a 6-server system (C(6,4) = 15).
        let m = Majority::new(6).unwrap();
        let u = m.universe();
        let mut quorums = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    for d in (c + 1)..6 {
                        quorums.push(quorum(u, &[a, b, c, d]));
                    }
                }
            }
        }
        assert_eq!(
            exact_fault_tolerance(&quorums).unwrap(),
            m.fault_tolerance()
        );
    }

    #[test]
    fn infeasible_instances_are_rejected() {
        // A synthetic instance exceeding the search budget.
        let u = Universe::new(3000);
        let quorums: Vec<Quorum> = (0..2000u32)
            .map(|i| quorum(u, &[i, i + 1, i + 2]))
            .collect();
        assert!(matches!(
            exact_fault_tolerance(&quorums),
            Err(CoreError::Infeasible(_))
        ));
    }

    #[test]
    fn high_quality_selection() {
        let u = Universe::new(6);
        // Three mutually intersecting quorums plus one outlier that misses
        // two of them.
        let quorums = vec![
            quorum(u, &[0, 1, 2]),
            quorum(u, &[1, 2, 3]),
            quorum(u, &[2, 3, 4]),
            quorum(u, &[5, 0]), // intersects only the first
        ];
        let strategy = WeightedStrategy::uniform(4);
        // Intersection probabilities under the uniform strategy:
        // quorum 0 meets everything (1.0); quorums 1 and 2 miss the outlier
        // (0.75); the outlier meets only quorum 0 and itself (0.5).
        let hq = high_quality_quorum_indices(&quorums, &strategy, 0.1).unwrap();
        assert_eq!(hq, vec![0]);
        let hq = high_quality_quorum_indices(&quorums, &strategy, 0.3).unwrap();
        assert_eq!(hq, vec![0, 1, 2]);
        // With a permissive delta everything qualifies.
        let all = high_quality_quorum_indices(&quorums, &strategy, 0.6).unwrap();
        assert_eq!(all.len(), 4);
        // Validation.
        assert!(high_quality_quorum_indices(&quorums, &strategy, -0.1).is_err());
        assert!(high_quality_quorum_indices(&quorums, &WeightedStrategy::uniform(3), 0.1).is_err());
    }

    #[test]
    fn probabilistic_fault_tolerance_validation() {
        let u = Universe::new(4);
        let quorums = vec![quorum(u, &[0, 1]), quorum(u, &[1, 2])];
        let strategy = WeightedStrategy::uniform(2);
        assert!(probabilistic_fault_tolerance(&quorums, &strategy, -0.5).is_err());
        assert!(probabilistic_fault_tolerance(&quorums, &strategy, 1.5).is_err());
        assert_eq!(
            probabilistic_fault_tolerance(&quorums, &strategy, 0.01).unwrap(),
            1
        );
    }
}
