//! Grid constructions of strict Byzantine quorum systems (\[MRW00\]).
//!
//! The `n = d²` servers are laid out in a `d × d` grid and a quorum is the
//! union of `r` full rows and `r` full columns.  Two such quorums always
//! share at least `2r²` cells (the rows of one crossed with the columns of
//! the other), so
//!
//! * `r = ⌈√((b+1)/2)⌉` yields a strict b-dissemination system, and
//! * `r = ⌈√((2b+1)/2)⌉` yields a strict b-masking system.
//!
//! Quorums have `2rd − r²` servers.  These are the "Grid" comparators of
//! Tables 3 and 4 (e.g. for `n = 400`, `b = 9` the dissemination grid quorum
//! has `2·3·20 − 9 = 111` servers and the masking grid `2·4·20 − 16 = 144`).

use crate::quorum::Quorum;
use crate::system::{ByzantineQuorumSystem, QuorumSystem};
use crate::universe::Universe;
use crate::CoreError;
use pqs_math::binomial::Binomial;
use pqs_math::sampling::sample_k_of_n;
use rand::Rng;
use rand::RngCore;
use rand::SeedableRng;

/// Shared implementation of the r-rows-plus-r-columns grid systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ByzantineGridCore {
    universe: Universe,
    side: u32,
    rows_and_cols: u32,
    byzantine: u32,
}

impl ByzantineGridCore {
    fn new(n: u32, b: u32, required_overlap: u32, kind: &str) -> crate::Result<Self> {
        if n == 0 {
            return Err(CoreError::invalid("universe must be non-empty"));
        }
        let side = (n as f64).sqrt().round() as u32;
        if side * side != n {
            return Err(CoreError::invalid(format!(
                "{kind} grid requires a perfect-square universe, got n={n}"
            )));
        }
        // Smallest r with 2 r^2 >= required_overlap.
        let r = (required_overlap as f64 / 2.0).sqrt().ceil() as u32;
        let r = r.max(1);
        if r > side {
            return Err(CoreError::invalid(format!(
                "{kind} grid over n={n} cannot tolerate b={b}: needs {r} rows/columns but the grid only has {side}"
            )));
        }
        // The quorum must still exist after b crashes have disabled rows:
        // resilience requires A(Q) > b, i.e. side - r + 1 > b.
        if side - r < b {
            return Err(CoreError::invalid(format!(
                "{kind} grid over n={n} has fault tolerance {} which does not exceed b={b}",
                side - r + 1
            )));
        }
        Ok(ByzantineGridCore {
            universe: Universe::new(n),
            side,
            rows_and_cols: r,
            byzantine: b,
        })
    }

    fn quorum_size(&self) -> u32 {
        2 * self.rows_and_cols * self.side - self.rows_and_cols * self.rows_and_cols
    }

    fn quorum_for(&self, rows: &[u32], cols: &[u32]) -> crate::Result<Quorum> {
        let d = self.side;
        let r = self.rows_and_cols as usize;
        if rows.len() != r || cols.len() != r {
            return Err(CoreError::invalid(format!(
                "expected exactly {r} rows and {r} columns"
            )));
        }
        if rows.iter().chain(cols).any(|&x| x >= d) {
            return Err(CoreError::invalid("row/column index out of range"));
        }
        let mut indices = Vec::new();
        for &row in rows {
            for c in 0..d {
                indices.push(row * d + c);
            }
        }
        for &col in cols {
            for row in 0..d {
                if !rows.contains(&row) {
                    indices.push(row * d + col);
                }
            }
        }
        Quorum::from_indices(self.universe, indices)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Quorum {
        let r = self.rows_and_cols as u64;
        let d = self.side as u64;
        let rows: Vec<u32> = sample_k_of_n(rng, r, d)
            .expect("r <= d")
            .into_iter()
            .map(|x| x as u32)
            .collect();
        let cols: Vec<u32> = sample_k_of_n(rng, r, d)
            .expect("r <= d")
            .into_iter()
            .map(|x| x as u32)
            .collect();
        self.quorum_for(&rows, &cols).expect("sampled in range")
    }

    fn load(&self) -> f64 {
        self.quorum_size() as f64 / self.universe.size() as f64
    }

    fn fault_tolerance(&self) -> u32 {
        // One crash in each of d - r + 1 rows leaves fewer than r clean
        // rows, so no quorum survives; any smaller set leaves both r clean
        // rows and r clean columns.
        self.side - self.rows_and_cols + 1
    }

    /// Estimated by deterministic Monte-Carlo (fixed seed, 40 000 samples):
    /// the exact probability couples the row- and column-cleanliness events,
    /// which have no convenient closed form for `r > 1`.
    fn failure_probability(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return 0.0;
        }
        if p == 1.0 {
            return 1.0;
        }
        let d = self.side as usize;
        let r = self.rows_and_cols as usize;
        const SAMPLES: usize = 40_000;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x6121_d001);
        let mut failures = 0usize;
        for _ in 0..SAMPLES {
            let mut clean_rows = 0usize;
            let mut col_hit = vec![false; d];
            for _row in 0..d {
                let mut row_clean = true;
                for hit in col_hit.iter_mut() {
                    if rng.gen_bool(p) {
                        row_clean = false;
                        *hit = true;
                    }
                }
                if row_clean {
                    clean_rows += 1;
                }
            }
            let clean_cols = col_hit.iter().filter(|h| !**h).count();
            if clean_rows < r || clean_cols < r {
                failures += 1;
            }
        }
        failures as f64 / SAMPLES as f64
    }

    /// A cheap analytical *upper bound* on the failure probability via the
    /// union bound over rows and columns: `2·P(Bin(d, (1−p)^d) ≤ r − 1)`.
    fn failure_probability_union_bound(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let d = self.side as u64;
        let clean_row_prob = (1.0 - p).powi(self.side as i32);
        let rows = Binomial::new(d, clean_row_prob).expect("probability");
        let single = rows.cdf((self.rows_and_cols - 1) as u64);
        (2.0 * single).min(1.0)
    }
}

macro_rules! byzantine_grid_system {
    ($name:ident, $label:literal, $overlap:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name {
            core: ByzantineGridCore,
        }

        impl $name {
            /// Creates the system over `n = d²` servers tolerating `b`
            /// Byzantine failures.
            ///
            /// # Errors
            ///
            /// Returns [`CoreError::InvalidConstruction`] if `n` is not a
            /// perfect square, the required number of rows/columns exceeds
            /// the grid side, or the resulting fault tolerance would not
            /// exceed `b`.
            pub fn new(n: u32, b: u32) -> crate::Result<Self> {
                let overlap: u32 = $overlap(b);
                Ok(Self {
                    core: ByzantineGridCore::new(n, b, overlap, $label)?,
                })
            }

            /// Number of rows (equivalently columns) in each quorum.
            pub fn rows_and_cols(&self) -> u32 {
                self.core.rows_and_cols
            }

            /// The fixed quorum size `2rd − r²`.
            pub fn quorum_size(&self) -> u32 {
                self.core.quorum_size()
            }

            /// The quorum formed by the given rows and columns.
            ///
            /// # Errors
            ///
            /// Returns an error unless exactly `r` in-range rows and `r`
            /// in-range columns are supplied.
            pub fn quorum_for(&self, rows: &[u32], cols: &[u32]) -> crate::Result<Quorum> {
                self.core.quorum_for(rows, cols)
            }

            /// Analytical upper bound on the failure probability
            /// (union bound over "too few clean rows" / "too few clean
            /// columns").
            pub fn failure_probability_upper_bound(&self, p: f64) -> f64 {
                self.core.failure_probability_union_bound(p)
            }
        }

        impl QuorumSystem for $name {
            fn universe(&self) -> Universe {
                self.core.universe
            }
            fn sample_quorum(&self, rng: &mut dyn RngCore) -> Quorum {
                self.core.sample(rng)
            }
            fn name(&self) -> String {
                format!(
                    concat!($label, "-grid(n={}, b={})"),
                    self.core.universe.size(),
                    self.core.byzantine
                )
            }
            fn min_quorum_size(&self) -> usize {
                self.core.quorum_size() as usize
            }
            /// Exactly `(2rd − r²)/n` under the uniform strategy.
            fn load(&self) -> f64 {
                self.core.load()
            }
            /// `d − r + 1`.
            fn fault_tolerance(&self) -> u32 {
                self.core.fault_tolerance()
            }
            /// Deterministic Monte-Carlo estimate (see
            /// [`failure_probability_upper_bound`](Self::failure_probability_upper_bound)
            /// for an analytical bound).
            fn failure_probability(&self, p: f64) -> f64 {
                self.core.failure_probability(p)
            }
        }

        impl ByzantineQuorumSystem for $name {
            fn byzantine_threshold(&self) -> u32 {
                self.core.byzantine
            }
        }
    };
}

byzantine_grid_system!(
    DisseminationGrid,
    "dissemination",
    |b: u32| b + 1,
    "Strict b-dissemination grid system: quorums are `⌈√((b+1)/2)⌉` rows plus as many columns, so any two quorums overlap in at least `b + 1` servers.\n\n# Examples\n\n```\nuse pqs_core::byzantine::DisseminationGrid;\nuse pqs_core::system::QuorumSystem;\nlet g = DisseminationGrid::new(400, 9).unwrap();\nassert_eq!(g.min_quorum_size(), 111); // Table 3\n```"
);

byzantine_grid_system!(
    MaskingGrid,
    "masking",
    |b: u32| 2 * b + 1,
    "Strict b-masking grid system: quorums are `⌈√((2b+1)/2)⌉` rows plus as many columns, so any two quorums overlap in at least `2b + 1` servers.\n\n# Examples\n\n```\nuse pqs_core::byzantine::MaskingGrid;\nuse pqs_core::system::QuorumSystem;\nlet g = MaskingGrid::new(400, 9).unwrap();\nassert_eq!(g.min_quorum_size(), 144); // Table 4\n```"
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dissemination_grid_sizes_match_table_three() {
        // (n, b, quorum size); n=900 entry corrected for the scanned table's
        // obvious typo (771 -> 171 = 2*3*30 - 9).
        let expected = [
            (25u32, 2u32, 16u32),
            (100, 4, 36),
            (225, 7, 56),
            (400, 9, 111),
            (625, 12, 141),
            (900, 14, 171),
        ];
        for (n, b, size) in expected {
            let g = DisseminationGrid::new(n, b).unwrap();
            assert_eq!(g.quorum_size(), size, "n={n} b={b}");
        }
    }

    #[test]
    fn masking_grid_sizes_match_table_four() {
        let expected = [
            (25u32, 2u32, 16u32),
            (100, 4, 51),
            (225, 7, 81),
            (400, 9, 144),
            (625, 12, 184),
            (900, 14, 224),
        ];
        for (n, b, size) in expected {
            let g = MaskingGrid::new(n, b).unwrap();
            assert_eq!(g.quorum_size(), size, "n={n} b={b}");
        }
    }

    #[test]
    fn construction_validation() {
        assert!(DisseminationGrid::new(0, 1).is_err());
        assert!(DisseminationGrid::new(26, 2).is_err(), "not a square");
        // b so large that r would exceed the side.
        assert!(DisseminationGrid::new(25, 24).is_err());
        // b exceeding the fault tolerance d - r + 1.
        assert!(MaskingGrid::new(25, 4).is_err());
        assert!(MaskingGrid::new(25, 2).is_ok());
    }

    #[test]
    fn sampled_quorums_have_expected_size_and_structure() {
        let g = DisseminationGrid::new(100, 4).unwrap();
        assert_eq!(g.rows_and_cols(), 2);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..50 {
            let q = g.sample_quorum(&mut rng);
            assert_eq!(q.len(), 36);
        }
    }

    #[test]
    fn explicit_quorum_for_overlap_requirement() {
        let g = MaskingGrid::new(100, 4).unwrap();
        let r = g.rows_and_cols();
        assert_eq!(r, 3);
        // Two quorums with disjoint rows and columns: worst-case overlap 2r².
        let q1 = g.quorum_for(&[0, 1, 2], &[0, 1, 2]).unwrap();
        let q2 = g.quorum_for(&[3, 4, 5], &[3, 4, 5]).unwrap();
        assert!(q1.intersection_size(&q2) >= (2 * 4 + 1) as usize);
        assert_eq!(q1.intersection_size(&q2), (2 * r * r) as usize);
        // Argument validation.
        assert!(g.quorum_for(&[0, 1], &[0, 1, 2]).is_err());
        assert!(g.quorum_for(&[0, 1, 99], &[0, 1, 2]).is_err());
    }

    #[test]
    fn fault_tolerance_is_d_minus_r_plus_one() {
        let g = DisseminationGrid::new(400, 9).unwrap();
        assert_eq!(g.rows_and_cols(), 3);
        assert_eq!(g.fault_tolerance(), 18);
        let m = MaskingGrid::new(400, 9).unwrap();
        assert_eq!(m.rows_and_cols(), 4);
        assert_eq!(m.fault_tolerance(), 17);
    }

    #[test]
    fn load_equals_quorum_fraction() {
        let g = DisseminationGrid::new(225, 7).unwrap();
        assert!((g.load() - 56.0 / 225.0).abs() < 1e-12);
    }

    #[test]
    fn failure_probability_extremes_and_bound() {
        let g = MaskingGrid::new(100, 4).unwrap();
        assert_eq!(g.failure_probability(0.0), 0.0);
        assert_eq!(g.failure_probability(1.0), 1.0);
        let p = 0.15;
        let mc = g.failure_probability(p);
        let ub = g.failure_probability_upper_bound(p);
        // The Monte-Carlo estimate must not exceed the union bound by more
        // than sampling noise.
        assert!(mc <= ub + 0.02, "mc={mc} ub={ub}");
    }

    #[test]
    fn byzantine_threshold_accessors() {
        assert_eq!(
            DisseminationGrid::new(100, 4)
                .unwrap()
                .byzantine_threshold(),
            4
        );
        assert_eq!(MaskingGrid::new(100, 4).unwrap().byzantine_threshold(), 4);
        assert!(DisseminationGrid::new(100, 4)
            .unwrap()
            .name()
            .contains("grid"));
    }
}
