//! Threshold constructions of strict Byzantine quorum systems.
//!
//! The quorums are all subsets of size `q`, with `q` chosen so that any two
//! quorums overlap in enough servers:
//!
//! * dissemination: `q = ⌈(n + b + 1)/2⌉` gives `|Q ∩ Q′| ≥ 2q − n ≥ b + 1`;
//! * masking: `q = ⌈(n + 2b + 1)/2⌉` gives `|Q ∩ Q′| ≥ 2b + 1`.
//!
//! These are the "Threshold" comparators of Tables 3 and 4 and the strict
//! curves on the right of Figures 2 and 3.

use crate::quorum::Quorum;
use crate::system::{ByzantineQuorumSystem, QuorumSystem};
use crate::universe::Universe;
use crate::CoreError;
use pqs_math::binomial::Binomial;
use pqs_math::sampling::sample_k_of_n;
use rand::RngCore;

/// Common implementation shared by the dissemination and masking threshold
/// systems: a uniform-strategy system over all `q`-subsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ThresholdCore {
    universe: Universe,
    quorum_size: u32,
    byzantine: u32,
}

impl ThresholdCore {
    fn sample(&self, rng: &mut dyn RngCore) -> Quorum {
        let indices = sample_k_of_n(rng, self.quorum_size as u64, self.universe.size() as u64)
            .expect("quorum size validated");
        Quorum::from_indices(self.universe, indices.into_iter().map(|i| i as u32))
            .expect("indices in range")
    }

    fn load(&self) -> f64 {
        self.quorum_size as f64 / self.universe.size() as f64
    }

    fn fault_tolerance(&self) -> u32 {
        self.universe.size() - self.quorum_size + 1
    }

    fn failure_probability(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        Binomial::new(self.universe.size() as u64, p)
            .expect("p clamped")
            .sf((self.universe.size() - self.quorum_size) as u64)
    }
}

/// Strict b-dissemination threshold system: all subsets of size
/// `⌈(n + b + 1)/2⌉`.
///
/// # Examples
///
/// ```
/// use pqs_core::byzantine::DisseminationThreshold;
/// use pqs_core::system::{ByzantineQuorumSystem, QuorumSystem};
/// let d = DisseminationThreshold::new(100, 4).unwrap();
/// assert_eq!(d.min_quorum_size(), 53);           // Table 3
/// assert_eq!(d.fault_tolerance(), 48);           // Table 3
/// assert_eq!(d.byzantine_threshold(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisseminationThreshold {
    core: ThresholdCore,
}

impl DisseminationThreshold {
    /// Creates a b-dissemination threshold system over `n` servers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if `n` is zero or
    /// `b > ⌊(n − 1)/3⌋` (beyond the resilience bound of Table I, the
    /// required quorums would have to overlap in more servers than they
    /// contain).
    pub fn new(n: u32, b: u32) -> crate::Result<Self> {
        if n == 0 {
            return Err(CoreError::invalid("universe must be non-empty"));
        }
        if b > super::max_dissemination_threshold(n) {
            return Err(CoreError::invalid(format!(
                "b={b} exceeds the dissemination resilience bound (n-1)/3 = {} for n={n}",
                super::max_dissemination_threshold(n)
            )));
        }
        let q = (n + b + 1).div_ceil(2).min(n);
        Ok(DisseminationThreshold {
            core: ThresholdCore {
                universe: Universe::new(n),
                quorum_size: q,
                byzantine: b,
            },
        })
    }

    /// The fixed quorum size `⌈(n + b + 1)/2⌉`.
    pub fn quorum_size(&self) -> u32 {
        self.core.quorum_size
    }
}

impl QuorumSystem for DisseminationThreshold {
    fn universe(&self) -> Universe {
        self.core.universe
    }
    fn sample_quorum(&self, rng: &mut dyn RngCore) -> Quorum {
        self.core.sample(rng)
    }
    fn name(&self) -> String {
        format!(
            "dissemination-threshold(n={}, b={})",
            self.core.universe.size(),
            self.core.byzantine
        )
    }
    fn min_quorum_size(&self) -> usize {
        self.core.quorum_size as usize
    }
    /// Exactly `q/n` under the uniform strategy.
    fn load(&self) -> f64 {
        self.core.load()
    }
    /// `n − q + 1`, as for any threshold system.
    fn fault_tolerance(&self) -> u32 {
        self.core.fault_tolerance()
    }
    /// Exact binomial tail, as for any threshold system.
    fn failure_probability(&self, p: f64) -> f64 {
        self.core.failure_probability(p)
    }
}

impl ByzantineQuorumSystem for DisseminationThreshold {
    fn byzantine_threshold(&self) -> u32 {
        self.core.byzantine
    }
}

/// Strict b-masking threshold system: all subsets of size
/// `⌈(n + 2b + 1)/2⌉`.
///
/// # Examples
///
/// ```
/// use pqs_core::byzantine::MaskingThreshold;
/// use pqs_core::system::{ByzantineQuorumSystem, QuorumSystem};
/// let m = MaskingThreshold::new(100, 4).unwrap();
/// assert_eq!(m.min_quorum_size(), 55);           // Table 4
/// assert_eq!(m.fault_tolerance(), 46);           // Table 4
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskingThreshold {
    core: ThresholdCore,
}

impl MaskingThreshold {
    /// Creates a b-masking threshold system over `n` servers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if `n` is zero or
    /// `b > ⌊(n − 1)/4⌋`.
    pub fn new(n: u32, b: u32) -> crate::Result<Self> {
        if n == 0 {
            return Err(CoreError::invalid("universe must be non-empty"));
        }
        if b > super::max_masking_threshold(n) {
            return Err(CoreError::invalid(format!(
                "b={b} exceeds the masking resilience bound (n-1)/4 = {} for n={n}",
                super::max_masking_threshold(n)
            )));
        }
        let q = (n + 2 * b + 1).div_ceil(2).min(n);
        Ok(MaskingThreshold {
            core: ThresholdCore {
                universe: Universe::new(n),
                quorum_size: q,
                byzantine: b,
            },
        })
    }

    /// The fixed quorum size `⌈(n + 2b + 1)/2⌉`.
    pub fn quorum_size(&self) -> u32 {
        self.core.quorum_size
    }
}

impl QuorumSystem for MaskingThreshold {
    fn universe(&self) -> Universe {
        self.core.universe
    }
    fn sample_quorum(&self, rng: &mut dyn RngCore) -> Quorum {
        self.core.sample(rng)
    }
    fn name(&self) -> String {
        format!(
            "masking-threshold(n={}, b={})",
            self.core.universe.size(),
            self.core.byzantine
        )
    }
    fn min_quorum_size(&self) -> usize {
        self.core.quorum_size as usize
    }
    /// Exactly `q/n` under the uniform strategy.
    fn load(&self) -> f64 {
        self.core.load()
    }
    /// `n − q + 1`, as for any threshold system.
    fn fault_tolerance(&self) -> u32 {
        self.core.fault_tolerance()
    }
    /// Exact binomial tail, as for any threshold system.
    fn failure_probability(&self, p: f64) -> f64 {
        self.core.failure_probability(p)
    }
}

impl ByzantineQuorumSystem for MaskingThreshold {
    fn byzantine_threshold(&self) -> u32 {
        self.core.byzantine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dissemination_sizes_match_table_three() {
        // Table 3 threshold quorum sizes and fault tolerances
        // (n=225 row corrected for the obvious typo in the scanned table).
        let expected = [
            (25u32, 2u32, 14u32, 12u32),
            (100, 4, 53, 48),
            (225, 7, 117, 109),
            (400, 9, 205, 196),
            (625, 12, 319, 307),
            (900, 14, 458, 443),
        ];
        for (n, b, size, ft) in expected {
            let d = DisseminationThreshold::new(n, b).unwrap();
            assert_eq!(d.quorum_size(), size, "n={n}");
            assert_eq!(d.fault_tolerance(), ft, "n={n}");
        }
    }

    #[test]
    fn masking_sizes_match_table_four() {
        let expected = [
            (25u32, 2u32, 15u32, 11u32),
            (100, 4, 55, 46),
            (225, 7, 120, 106),
            (400, 9, 210, 191),
            (625, 12, 325, 301),
            (900, 14, 465, 436),
        ];
        for (n, b, size, ft) in expected {
            let m = MaskingThreshold::new(n, b).unwrap();
            assert_eq!(m.quorum_size(), size, "n={n}");
            assert_eq!(m.fault_tolerance(), ft, "n={n}");
        }
    }

    #[test]
    fn resilience_bounds_enforced() {
        assert!(DisseminationThreshold::new(100, 33).is_ok());
        assert!(DisseminationThreshold::new(100, 34).is_err());
        assert!(MaskingThreshold::new(100, 24).is_ok());
        assert!(MaskingThreshold::new(100, 25).is_err());
        assert!(DisseminationThreshold::new(0, 0).is_err());
        assert!(MaskingThreshold::new(0, 0).is_err());
    }

    #[test]
    fn overlap_guarantees_hold_for_worst_case_quorums() {
        // The two "extreme" quorums 0..q and n-q..n overlap in exactly 2q-n
        // servers, which must still meet the requirement.
        let n = 100u32;
        let b = 4u32;
        let d = DisseminationThreshold::new(n, b).unwrap();
        assert!(2 * d.quorum_size() as i64 - n as i64 >= (b + 1) as i64);
        let m = MaskingThreshold::new(n, b).unwrap();
        assert!(2 * m.quorum_size() as i64 - n as i64 >= (2 * b + 1) as i64);
    }

    #[test]
    fn sampling_and_measures() {
        let d = DisseminationThreshold::new(25, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let q = d.sample_quorum(&mut rng);
        assert_eq!(q.len(), 14);
        assert!((d.load() - 14.0 / 25.0).abs() < 1e-12);
        assert!(d.failure_probability(0.0).abs() < 1e-12);
        assert!((d.failure_probability(1.0) - 1.0).abs() < 1e-12);
        assert!(d.name().contains("dissemination"));

        let m = MaskingThreshold::new(25, 2).unwrap();
        let q = m.sample_quorum(&mut rng);
        assert_eq!(q.len(), 15);
        assert!(m.name().contains("masking"));
    }

    #[test]
    fn byzantine_threshold_accessor() {
        use crate::system::ByzantineQuorumSystem;
        assert_eq!(
            DisseminationThreshold::new(100, 7)
                .unwrap()
                .byzantine_threshold(),
            7
        );
        assert_eq!(
            MaskingThreshold::new(100, 7).unwrap().byzantine_threshold(),
            7
        );
    }

    #[test]
    fn masking_failure_probability_worse_than_dissemination() {
        // Larger quorums -> worse availability at the same p.
        let d = DisseminationThreshold::new(100, 4).unwrap();
        let m = MaskingThreshold::new(100, 4).unwrap();
        for &p in &[0.2, 0.4] {
            assert!(m.failure_probability(p) >= d.failure_probability(p));
        }
    }
}
