//! Strict Byzantine quorum systems of Malkhi–Reiter (\[MR98a\], \[MRW00\]).
//!
//! When servers can fail arbitrarily, a non-empty intersection is not
//! enough: the overlap of a read quorum and the latest write quorum could
//! consist entirely of faulty servers.  Definition 2.7 therefore strengthens
//! the intersection requirement:
//!
//! * a **b-dissemination** quorum system has `|Q ∩ Q′| ≥ b + 1` for every
//!   pair of quorums (enough for *self-verifying* data, where faulty servers
//!   can suppress but not forge values);
//! * a **b-masking** quorum system has `|Q ∩ Q′| ≥ 2b + 1` (enough for
//!   arbitrary data, because correct servers outnumber faulty ones in the
//!   overlap).
//!
//! This module provides the threshold and grid constructions of both kinds;
//! they are the strict comparators of Tables 3 and 4 and Figures 2 and 3.
//! Their resilience is capped at `b ≤ ⌊(n−1)/3⌋` (dissemination) and
//! `b ≤ ⌊(n−1)/4⌋` (masking), and their load is at least `√((b+1)/n)` /
//! `√((2b+1)/n)` (Table I) — precisely the limitations the probabilistic
//! constructions of [`crate::probabilistic`] overcome.

mod grid_byzantine;
mod threshold_byzantine;

pub use grid_byzantine::{DisseminationGrid, MaskingGrid};
pub use threshold_byzantine::{DisseminationThreshold, MaskingThreshold};

/// The largest `b` for which a strict b-dissemination quorum system over `n`
/// servers exists: `⌊(n − 1)/3⌋` (Table I).
pub fn max_dissemination_threshold(n: u32) -> u32 {
    if n == 0 {
        0
    } else {
        (n - 1) / 3
    }
}

/// The largest `b` for which a strict b-masking quorum system over `n`
/// servers exists: `⌊(n − 1)/4⌋` (Table I).
pub fn max_masking_threshold(n: u32) -> u32 {
    if n == 0 {
        0
    } else {
        (n - 1) / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{ByzantineQuorumSystem, QuorumSystem};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn resilience_caps_match_table_one() {
        assert_eq!(max_dissemination_threshold(100), 33);
        assert_eq!(max_masking_threshold(100), 24);
        assert_eq!(max_dissemination_threshold(4), 1);
        assert_eq!(max_masking_threshold(5), 1);
        assert_eq!(max_dissemination_threshold(0), 0);
        assert_eq!(max_masking_threshold(0), 0);
    }

    /// Dissemination systems: every sampled pair overlaps in at least b+1
    /// servers; masking systems: in at least 2b+1 (Definition 2.7).
    #[test]
    fn sampled_overlaps_meet_byzantine_requirements() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let dis: Vec<Box<dyn ByzantineQuorumSystem>> = vec![
            Box::new(DisseminationThreshold::new(25, 2).unwrap()),
            Box::new(DisseminationThreshold::new(100, 4).unwrap()),
            Box::new(DisseminationGrid::new(100, 4).unwrap()),
            Box::new(DisseminationGrid::new(400, 9).unwrap()),
        ];
        for system in &dis {
            let b = system.byzantine_threshold() as usize;
            for _ in 0..100 {
                let q1 = system.sample_quorum(&mut rng);
                let q2 = system.sample_quorum(&mut rng);
                assert!(
                    q1.intersection_size(&q2) > b,
                    "{}: overlap {} < b+1",
                    system.name(),
                    q1.intersection_size(&q2)
                );
            }
        }
        let mask: Vec<Box<dyn ByzantineQuorumSystem>> = vec![
            Box::new(MaskingThreshold::new(25, 2).unwrap()),
            Box::new(MaskingThreshold::new(100, 4).unwrap()),
            Box::new(MaskingGrid::new(100, 4).unwrap()),
            Box::new(MaskingGrid::new(625, 12).unwrap()),
        ];
        for system in &mask {
            let b = system.byzantine_threshold() as usize;
            for _ in 0..100 {
                let q1 = system.sample_quorum(&mut rng);
                let q2 = system.sample_quorum(&mut rng);
                assert!(
                    q1.intersection_size(&q2) > 2 * b,
                    "{}: overlap {} < 2b+1",
                    system.name(),
                    q1.intersection_size(&q2)
                );
            }
        }
    }

    /// Table I: the load of strict Byzantine systems is bounded below by
    /// sqrt((b+1)/n) and sqrt((2b+1)/n) respectively.
    #[test]
    fn loads_respect_table_one_lower_bounds() {
        for &(n, b) in &[(100u32, 4u32), (400, 9), (900, 14)] {
            let d = DisseminationThreshold::new(n, b).unwrap();
            assert!(d.load() + 1e-9 >= ((b + 1) as f64 / n as f64).sqrt());
            let m = MaskingThreshold::new(n, b).unwrap();
            assert!(m.load() + 1e-9 >= ((2 * b + 1) as f64 / n as f64).sqrt());
            let dg = DisseminationGrid::new(n, b).unwrap();
            assert!(dg.load() + 1e-9 >= ((b + 1) as f64 / n as f64).sqrt());
            let mg = MaskingGrid::new(n, b).unwrap();
            assert!(mg.load() + 1e-9 >= ((2 * b + 1) as f64 / n as f64).sqrt());
        }
    }
}
