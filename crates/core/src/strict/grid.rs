//! The Maekawa-style grid quorum system.
//!
//! The `n = d²` servers are laid out in a `d × d` grid; a quorum is the
//! union of one full row and one full column (\[Mae85\], \[CAA90\]).  Any two
//! quorums intersect (the row of one meets the column of the other), quorums
//! have size `2d − 1 = O(√n)` — so the load is near-optimal — but the fault
//! tolerance is only `d = √n`: crashing one server per row disables every
//! quorum.  This is the "Grid" comparator of Table 2.

use crate::quorum::Quorum;
use crate::strategy::WeightedStrategy;
use crate::system::{ExplicitQuorumSystem, QuorumSystem};
use crate::universe::Universe;
use crate::CoreError;
use pqs_math::comb::choose_f64;
use rand::Rng;
use rand::RngCore;

/// The grid quorum system over `n = d²` servers.
///
/// # Examples
///
/// ```
/// use pqs_core::strict::Grid;
/// use pqs_core::system::QuorumSystem;
/// let g = Grid::new(100).unwrap();
/// assert_eq!(g.min_quorum_size(), 19);   // 2·10 − 1
/// assert_eq!(g.fault_tolerance(), 10);   // one crash per row suffices
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    universe: Universe,
    side: u32,
}

impl Grid {
    /// Creates a grid system over `n` servers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if `n` is not a positive
    /// perfect square.
    pub fn new(n: u32) -> crate::Result<Self> {
        if n == 0 {
            return Err(CoreError::invalid("universe must be non-empty"));
        }
        let side = (n as f64).sqrt().round() as u32;
        if side * side != n {
            return Err(CoreError::invalid(format!(
                "grid system requires a perfect-square universe, got n={n}"
            )));
        }
        Ok(Grid {
            universe: Universe::new(n),
            side,
        })
    }

    /// The side length `d = √n` of the grid.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// The quorum formed by row `row` and column `col` (both `0..d`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if either index is out of
    /// range.
    pub fn quorum_for(&self, row: u32, col: u32) -> crate::Result<Quorum> {
        if row >= self.side || col >= self.side {
            return Err(CoreError::invalid(format!(
                "row {row} / col {col} out of range for side {}",
                self.side
            )));
        }
        let d = self.side;
        let mut indices = Vec::with_capacity((2 * d - 1) as usize);
        for c in 0..d {
            indices.push(row * d + c);
        }
        for r in 0..d {
            if r != row {
                indices.push(r * d + col);
            }
        }
        Quorum::from_indices(self.universe, indices)
    }
}

impl QuorumSystem for Grid {
    fn universe(&self) -> Universe {
        self.universe
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> Quorum {
        let row = rng.gen_range(0..self.side);
        let col = rng.gen_range(0..self.side);
        self.quorum_for(row, col).expect("row/col in range")
    }

    fn name(&self) -> String {
        format!("grid(n={})", self.universe.size())
    }

    fn min_quorum_size(&self) -> usize {
        (2 * self.side - 1) as usize
    }

    /// Under the uniform strategy over the `d²` (row, column) pairs, a
    /// server in cell `(r, c)` belongs to the `2d − 1` quorums that pick row
    /// `r` or column `c`, so every server's load is `(2d − 1)/d²` exactly.
    fn load(&self) -> f64 {
        let d = self.side as f64;
        (2.0 * d - 1.0) / (d * d)
    }

    /// `A(Q) = d`: one crash per row (or per column) hits every quorum, and
    /// no smaller set can, because `d − 1` crashes leave both a clean row
    /// and a clean column.
    fn fault_tolerance(&self) -> u32 {
        self.side
    }

    /// Exact, by inclusion–exclusion.  The system is *available* iff some
    /// row is entirely alive **and** some column is entirely alive; the
    /// failure probability is therefore
    /// `P(all rows hit) + P(all cols hit) − P(all rows hit ∧ all cols hit)`,
    /// with the joint term computed by inclusion–exclusion over the clean
    /// rows/columns.
    fn failure_probability(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let d = self.side as u64;
        let alive = 1.0 - p;
        // P(every row contains a crash) = (1 − (1−p)^d)^d, and by symmetry
        // the same for columns.
        let all_rows_hit = (1.0 - alive.powi(d as i32)).powi(d as i32);
        // P(no clean row ∧ no clean col) via inclusion–exclusion over which
        // rows/columns are clean: the union of a specific a rows and b
        // columns covers ad + bd − ab cells.
        let mut joint = 0.0f64;
        for a in 0..=d {
            for b in 0..=d {
                let sign = if (a + b) % 2 == 0 { 1.0 } else { -1.0 };
                let cells = (a * d + b * d - a * b) as i32;
                joint += sign * choose_f64(d, a) * choose_f64(d, b) * alive.powi(cells);
            }
        }
        let joint = joint.clamp(0.0, 1.0);
        (2.0 * all_rows_hit - joint).clamp(0.0, 1.0)
    }
}

impl ExplicitQuorumSystem for Grid {
    fn quorums(&self) -> Vec<Quorum> {
        let d = self.side;
        let mut out = Vec::with_capacity((d * d) as usize);
        for row in 0..d {
            for col in 0..d {
                out.push(self.quorum_for(row, col).expect("in range"));
            }
        }
        out
    }

    fn strategy(&self) -> WeightedStrategy {
        WeightedStrategy::uniform((self.side * self.side) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_non_square_universes() {
        assert!(Grid::new(0).is_err());
        assert!(Grid::new(26).is_err());
        assert!(Grid::new(99).is_err());
        assert!(Grid::new(25).is_ok());
        assert!(Grid::new(1).is_ok());
    }

    #[test]
    fn table_two_grid_columns() {
        // Table 2 grid quorum sizes 9, 19, 29, 39, 49, 59 and fault
        // tolerances 5, 10, 15, 20, 25, 30.
        let expected = [
            (25u32, 9usize, 5u32),
            (100, 19, 10),
            (225, 29, 15),
            (400, 39, 20),
            (625, 49, 25),
            (900, 59, 30),
        ];
        for (n, size, ft) in expected {
            let g = Grid::new(n).unwrap();
            assert_eq!(g.min_quorum_size(), size, "n={n}");
            assert_eq!(g.fault_tolerance(), ft, "n={n}");
        }
    }

    #[test]
    fn quorum_for_is_row_plus_column() {
        let g = Grid::new(25).unwrap();
        let q = g.quorum_for(1, 2).unwrap();
        assert_eq!(q.len(), 9);
        // Row 1 is servers 5..10; column 2 is servers 2, 7, 12, 17, 22.
        for idx in [5u32, 6, 7, 8, 9, 2, 12, 17, 22] {
            assert!(q.contains(crate::universe::ServerId::new(idx)), "{idx}");
        }
        assert!(g.quorum_for(5, 0).is_err());
        assert!(g.quorum_for(0, 5).is_err());
    }

    #[test]
    fn enumerated_quorums_count_and_sizes() {
        let g = Grid::new(16).unwrap();
        let quorums = g.quorums();
        assert_eq!(quorums.len(), 16);
        assert!(quorums.iter().all(|q| q.len() == 7));
        assert_eq!(g.strategy().len(), 16);
    }

    #[test]
    fn sampling_matches_enumeration() {
        let g = Grid::new(25).unwrap();
        let all = g.quorums();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..50 {
            let q = g.sample_quorum(&mut rng);
            assert!(all.contains(&q));
        }
    }

    #[test]
    fn load_matches_induced_load_formula() {
        let g = Grid::new(100).unwrap();
        assert!((g.load() - 19.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn failure_probability_extremes() {
        let g = Grid::new(25).unwrap();
        assert!(g.failure_probability(0.0).abs() < 1e-12);
        assert!((g.failure_probability(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failure_probability_matches_monte_carlo() {
        let g = Grid::new(25).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for &p in &[0.1, 0.3, 0.5] {
            let analytic = g.failure_probability(p);
            let trials = 20_000;
            let mut failures = 0usize;
            for _ in 0..trials {
                // Simulate crashes and check whether some quorum survives:
                // need a fully-alive row and a fully-alive column.
                let crashed: Vec<bool> = (0..25).map(|_| rng.gen_bool(p)).collect();
                let clean_row = (0..5).any(|r| (0..5).all(|c| !crashed[r * 5 + c]));
                let clean_col = (0..5).any(|c| (0..5).all(|r| !crashed[r * 5 + c]));
                if !(clean_row && clean_col) {
                    failures += 1;
                }
            }
            let empirical = failures as f64 / trials as f64;
            assert!(
                (empirical - analytic).abs() < 0.015,
                "p={p} analytic={analytic} empirical={empirical}"
            );
        }
    }

    #[test]
    fn grid_worse_fault_tolerance_than_majority_despite_lower_load() {
        use crate::strict::Majority;
        let g = Grid::new(400).unwrap();
        let m = Majority::new(400).unwrap();
        assert!(g.load() < m.load());
        assert!(g.fault_tolerance() < m.fault_tolerance());
    }
}
