//! The singleton quorum system: one designated server forms the only quorum.
//!
//! Degenerate but important: footnote 3 of the paper notes that for crash
//! probability `p ≥ ½` the singleton is the *most available* strict quorum
//! system, so the strict failure-probability floor plotted in Figures 1–3 is
//! the minimum of the majority curve and the singleton's `p`.

use crate::quorum::Quorum;
use crate::strategy::WeightedStrategy;
use crate::system::{ExplicitQuorumSystem, QuorumSystem};
use crate::universe::{ServerId, Universe};
use rand::RngCore;

/// The strict quorum system whose only quorum is `{server}`.
///
/// # Examples
///
/// ```
/// use pqs_core::strict::Singleton;
/// use pqs_core::system::QuorumSystem;
/// let s = Singleton::new(10);
/// assert_eq!(s.load(), 1.0);
/// assert_eq!(s.fault_tolerance(), 1);
/// assert_eq!(s.failure_probability(0.2), 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Singleton {
    universe: Universe,
    server: ServerId,
}

impl Singleton {
    /// Creates a singleton system over `n` servers using server 0.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (see [`Universe::new`]).
    pub fn new(n: u32) -> Self {
        Singleton {
            universe: Universe::new(n),
            server: ServerId::new(0),
        }
    }

    /// Creates a singleton system using a specific server.
    ///
    /// # Errors
    ///
    /// Returns an error if `server` is outside the universe.
    pub fn with_server(n: u32, server: ServerId) -> crate::Result<Self> {
        let universe = Universe::new(n);
        if !universe.contains(server) {
            return Err(crate::CoreError::ServerOutOfRange {
                server: server.index() as u64,
                universe: n as u64,
            });
        }
        Ok(Singleton { universe, server })
    }

    /// The designated server.
    pub fn server(&self) -> ServerId {
        self.server
    }
}

impl QuorumSystem for Singleton {
    fn universe(&self) -> Universe {
        self.universe
    }

    fn sample_quorum(&self, _rng: &mut dyn RngCore) -> Quorum {
        Quorum::from_servers(self.universe, [self.server]).expect("server validated")
    }

    fn name(&self) -> String {
        format!("singleton(n={})", self.universe.size())
    }

    fn min_quorum_size(&self) -> usize {
        1
    }

    /// The single server receives every access, so the load is 1.
    fn load(&self) -> f64 {
        1.0
    }

    /// Crashing the designated server disables the only quorum.
    fn fault_tolerance(&self) -> u32 {
        1
    }

    /// Exactly the probability that the designated server crashes.
    fn failure_probability(&self, p: f64) -> f64 {
        p.clamp(0.0, 1.0)
    }
}

impl ExplicitQuorumSystem for Singleton {
    fn quorums(&self) -> Vec<Quorum> {
        vec![Quorum::from_servers(self.universe, [self.server]).expect("server validated")]
    }

    fn strategy(&self) -> WeightedStrategy {
        WeightedStrategy::uniform(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_uses_server_zero() {
        let s = Singleton::new(5);
        assert_eq!(s.server(), ServerId::new(0));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let q = s.sample_quorum(&mut rng);
        assert_eq!(q.to_vec(), vec![ServerId::new(0)]);
        assert_eq!(s.min_quorum_size(), 1);
        assert_eq!(s.expected_quorum_size(), 1.0);
        assert!(s.name().contains("singleton"));
    }

    #[test]
    fn with_server_validates_range() {
        assert!(Singleton::with_server(5, ServerId::new(4)).is_ok());
        assert!(Singleton::with_server(5, ServerId::new(5)).is_err());
    }

    #[test]
    fn measures_are_degenerate() {
        let s = Singleton::new(100);
        assert_eq!(s.load(), 1.0);
        assert_eq!(s.fault_tolerance(), 1);
        assert_eq!(s.failure_probability(0.0), 0.0);
        assert_eq!(s.failure_probability(1.0), 1.0);
        assert_eq!(s.failure_probability(0.37), 0.37);
    }

    #[test]
    fn explicit_enumeration() {
        let s = Singleton::with_server(6, ServerId::new(3)).unwrap();
        let quorums = s.quorums();
        assert_eq!(quorums.len(), 1);
        assert!(quorums[0].contains(ServerId::new(3)));
        assert_eq!(s.strategy().len(), 1);
    }
}
