//! Threshold (majority) quorum systems.
//!
//! The quorums are *all* subsets of a fixed size `q` with `2q > n`, so any
//! two quorums intersect.  With `q = ⌈(n+1)/2⌉` this is the classical
//! majority system of Thomas and Gifford; it has the best failure
//! probability of any strict quorum system when `p < ½` (\[BG87\], \[PW95\]) and
//! is the "Threshold" comparator of Tables 2–4 and Figures 1–3.
//!
//! The system is *implicit*: its `C(n, q)` quorums are never enumerated; the
//! uniform access strategy samples a random `q`-subset directly.

use crate::quorum::Quorum;
use crate::system::QuorumSystem;
use crate::universe::Universe;
use crate::CoreError;
use pqs_math::binomial::Binomial;
use pqs_math::sampling::sample_k_of_n;
use rand::RngCore;

/// The threshold quorum system: all `q`-subsets of `n` servers, `2q > n`,
/// accessed uniformly at random.
///
/// # Examples
///
/// ```
/// use pqs_core::strict::Majority;
/// use pqs_core::system::QuorumSystem;
/// let m = Majority::new(100).unwrap();
/// assert_eq!(m.min_quorum_size(), 51);
/// assert_eq!(m.fault_tolerance(), 50);
/// assert!((m.load() - 0.51).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Majority {
    universe: Universe,
    quorum_size: u32,
}

impl Majority {
    /// The classical majority system with quorums of size `⌈(n+1)/2⌉`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if `n` is zero.
    pub fn new(n: u32) -> crate::Result<Self> {
        if n == 0 {
            return Err(CoreError::invalid("universe must be non-empty"));
        }
        Self::with_quorum_size(n, n / 2 + 1)
    }

    /// A threshold system with an explicit quorum size `q`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] unless `0 < q ≤ n` and
    /// `2q > n` (the condition for any two `q`-subsets to intersect).
    pub fn with_quorum_size(n: u32, q: u32) -> crate::Result<Self> {
        if n == 0 {
            return Err(CoreError::invalid("universe must be non-empty"));
        }
        if q == 0 || q > n {
            return Err(CoreError::invalid(format!(
                "quorum size {q} must be in 1..={n}"
            )));
        }
        if 2 * q <= n {
            return Err(CoreError::invalid(format!(
                "quorum size {q} over {n} servers does not guarantee intersection (need 2q > n)"
            )));
        }
        Ok(Majority {
            universe: Universe::new(n),
            quorum_size: q,
        })
    }

    /// The fixed quorum size `q`.
    pub fn quorum_size(&self) -> u32 {
        self.quorum_size
    }
}

impl QuorumSystem for Majority {
    fn universe(&self) -> Universe {
        self.universe
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> Quorum {
        let indices = sample_k_of_n(rng, self.quorum_size as u64, self.universe.size() as u64)
            .expect("quorum size validated against universe size");
        Quorum::from_indices(self.universe, indices.into_iter().map(|i| i as u32))
            .expect("sampled indices are in range")
    }

    fn name(&self) -> String {
        format!(
            "threshold(n={}, q={})",
            self.universe.size(),
            self.quorum_size
        )
    }

    fn min_quorum_size(&self) -> usize {
        self.quorum_size as usize
    }

    /// Under the uniform strategy every server is equally loaded, so the
    /// load is exactly `q/n` (this matches the general formula
    /// `E[|Q|]/n` of Lemma 3.10 with equality).
    fn load(&self) -> f64 {
        self.quorum_size as f64 / self.universe.size() as f64
    }

    /// `A(Q) = n − q + 1`: once fewer than `q` servers remain alive, no
    /// quorum is available.
    fn fault_tolerance(&self) -> u32 {
        self.universe.size() - self.quorum_size + 1
    }

    /// Exact: the system fails iff more than `n − q` servers crash, i.e. a
    /// `Binomial(n, p)` tail.
    fn failure_probability(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let n = self.universe.size() as u64;
        let dead_threshold = (self.universe.size() - self.quorum_size) as u64;
        Binomial::new(n, p)
            .expect("p clamped to [0,1]")
            .sf(dead_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_validations() {
        assert!(Majority::new(0).is_err());
        assert!(Majority::with_quorum_size(10, 0).is_err());
        assert!(Majority::with_quorum_size(10, 11).is_err());
        assert!(
            Majority::with_quorum_size(10, 5).is_err(),
            "2q <= n rejected"
        );
        assert!(Majority::with_quorum_size(10, 6).is_ok());
        assert!(Majority::with_quorum_size(1, 1).is_ok());
    }

    #[test]
    fn majority_sizes_match_table_two() {
        // Table 2 threshold quorum sizes: 13, 51, 113, 201, 313, 451.
        let expected = [
            (25, 13),
            (100, 51),
            (225, 113),
            (400, 201),
            (625, 313),
            (900, 451),
        ];
        for (n, size) in expected {
            let m = Majority::new(n).unwrap();
            assert_eq!(m.quorum_size(), size, "n={n}");
            // Fault tolerance equals quorum size for odd-majority systems
            // (Table 2 lists identical columns).
            assert_eq!(m.fault_tolerance(), n - size + 1);
        }
    }

    #[test]
    fn sampling_produces_valid_quorums() {
        let m = Majority::new(30).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let q = m.sample_quorum(&mut rng);
            assert_eq!(q.len(), 16);
            assert!(q.iter().all(|s| s.index() < 30));
        }
    }

    #[test]
    fn load_and_expected_size() {
        let m = Majority::new(99).unwrap();
        assert_eq!(m.min_quorum_size(), 50);
        assert!((m.load() - 50.0 / 99.0).abs() < 1e-12);
        assert_eq!(m.expected_quorum_size(), 50.0);
        assert!(m.name().contains("threshold"));
    }

    #[test]
    fn failure_probability_extremes_and_monotonicity() {
        let m = Majority::new(50).unwrap();
        assert_eq!(m.failure_probability(0.0), 0.0);
        assert!((m.failure_probability(1.0) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let f = m.failure_probability(p);
            assert!(f + 1e-12 >= prev, "p={p}");
            prev = f;
        }
    }

    #[test]
    fn failure_probability_at_half_is_about_half_for_odd_n() {
        // For odd n and q = (n+1)/2, failure iff more than (n-1)/2 crash,
        // which at p = 1/2 has probability exactly 1/2.
        let m = Majority::new(101).unwrap();
        let f = m.failure_probability(0.5);
        assert!((f - 0.5).abs() < 1e-9, "f={f}");
    }

    #[test]
    fn bigger_majorities_fail_more_often() {
        // A threshold system with larger q (e.g. masking-style sizes) has
        // strictly worse failure probability at the same p.
        let small = Majority::new(100).unwrap();
        let large = Majority::with_quorum_size(100, 80).unwrap();
        for &p in &[0.1, 0.2, 0.3] {
            assert!(large.failure_probability(p) > small.failure_probability(p));
        }
    }
}
