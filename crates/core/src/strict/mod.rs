//! Strict quorum systems (Definition 2.2) used as baselines.
//!
//! These are the classical constructions the paper compares its
//! probabilistic systems against in Section 6:
//!
//! * [`Singleton`] — a single designated server; the most available strict
//!   system once the individual crash probability exceeds ½ (footnote 3).
//! * [`Majority`] — the threshold system with quorums of size
//!   `⌈(n+1)/2⌉` (\[Tho79\], \[Gif79\]); optimal failure probability for
//!   `p < ½` and the comparator on the right-hand side of Figure 1.
//! * [`Grid`] — Maekawa-style `√n × √n` grid where a quorum is one full row
//!   plus one full column (\[Mae85\], \[CAA90\]); near-optimal load but low
//!   fault tolerance (the Table 2 comparator).
//! * [`WeightedVoting`] — Gifford-style voting where each server holds a
//!   number of votes and a quorum is any set holding a strict majority of
//!   votes.

mod grid;
mod majority;
mod singleton;
mod weighted_voting;

pub use grid::Grid;
pub use majority::Majority;
pub use singleton::Singleton;
pub use weighted_voting::WeightedVoting;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{ExplicitQuorumSystem, QuorumSystem};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Every strict construction must satisfy the defining pairwise
    /// intersection property (Definition 2.2) on sampled quorums.
    #[test]
    fn sampled_quorums_of_strict_systems_always_intersect() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let systems: Vec<Box<dyn QuorumSystem>> = vec![
            Box::new(Singleton::new(10)),
            Box::new(Majority::new(10).unwrap()),
            Box::new(Majority::new(25).unwrap()),
            Box::new(Grid::new(25).unwrap()),
            Box::new(Grid::new(100).unwrap()),
            Box::new(WeightedVoting::new(vec![1, 2, 3, 4, 5]).unwrap()),
        ];
        for system in &systems {
            for _ in 0..200 {
                let a = system.sample_quorum(&mut rng);
                let b = system.sample_quorum(&mut rng);
                assert!(
                    a.intersects(&b),
                    "{} produced disjoint quorums {a} and {b}",
                    system.name()
                );
            }
        }
    }

    /// Explicit systems' enumerated quorums must pairwise intersect, too.
    #[test]
    fn enumerated_quorums_pairwise_intersect() {
        let grid = Grid::new(25).unwrap();
        let quorums = grid.quorums();
        for (i, a) in quorums.iter().enumerate() {
            for b in &quorums[i..] {
                assert!(a.intersects(b));
            }
        }
    }

    /// The load lower bound L(Q) >= max(1/c(Q), c(Q)/n) from \[NW98\] must be
    /// respected by every reported load.
    #[test]
    fn reported_load_respects_naor_wool_lower_bound() {
        let systems: Vec<Box<dyn QuorumSystem>> = vec![
            Box::new(Singleton::new(50)),
            Box::new(Majority::new(49).unwrap()),
            Box::new(Grid::new(49).unwrap()),
            Box::new(WeightedVoting::new(vec![1; 30]).unwrap()),
        ];
        for system in &systems {
            let c = system.min_quorum_size() as f64;
            let n = system.universe().size() as f64;
            let bound = (1.0 / c).max(c / n);
            // Allow a small tolerance: WeightedVoting estimates its load by
            // (deterministic) Monte-Carlo.
            assert!(
                system.load() + 5e-3 >= bound,
                "{}: load {} below bound {}",
                system.name(),
                system.load(),
                bound
            );
        }
    }

    /// Fault tolerance can never exceed the smallest quorum size
    /// (killing one full quorum disables every quorum it intersects —
    /// Section 2.2).
    #[test]
    fn fault_tolerance_at_most_min_quorum_size() {
        let systems: Vec<Box<dyn QuorumSystem>> = vec![
            Box::new(Singleton::new(50)),
            Box::new(Majority::new(100).unwrap()),
            Box::new(Grid::new(100).unwrap()),
            Box::new(WeightedVoting::new(vec![3, 1, 1, 1, 1, 1]).unwrap()),
        ];
        for system in &systems {
            assert!(
                system.fault_tolerance() as usize <= system.min_quorum_size(),
                "{}",
                system.name()
            );
        }
    }
}
