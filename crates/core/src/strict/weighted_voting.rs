//! Gifford-style weighted voting.
//!
//! Each server holds a number of votes; a quorum is any set of servers whose
//! votes form a strict majority of the total (\[Gif79\], \[GB85\]).  With equal
//! votes this degenerates to the majority system; with skewed votes it trades
//! load concentration on heavy servers for smaller quorums.  It is included
//! as a baseline because vote assignment is the classical knob for tuning
//! strict systems, which the paper's probabilistic constructions make
//! unnecessary.

use crate::quorum::Quorum;
use crate::system::QuorumSystem;
use crate::universe::Universe;
use crate::CoreError;
use rand::seq::SliceRandom;
use rand::RngCore;
use rand::SeedableRng;

/// A weighted-voting quorum system.
///
/// The access strategy is "visit servers in a uniformly random order and
/// stop as soon as the accumulated votes reach a strict majority" — a simple
/// strategy that favours no server beyond what its vote weight dictates.
///
/// # Examples
///
/// ```
/// use pqs_core::strict::WeightedVoting;
/// use pqs_core::system::QuorumSystem;
/// let wv = WeightedVoting::new(vec![3, 1, 1, 1, 1]).unwrap();
/// // Total 7 votes, majority 4: the 3-vote server plus any other reaches it.
/// assert_eq!(wv.min_quorum_size(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedVoting {
    universe: Universe,
    votes: Vec<u64>,
    total_votes: u64,
    threshold: u64,
}

impl WeightedVoting {
    /// Creates a weighted-voting system from per-server vote counts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if `votes` is empty or all
    /// votes are zero.
    pub fn new(votes: Vec<u64>) -> crate::Result<Self> {
        if votes.is_empty() {
            return Err(CoreError::invalid("votes must be non-empty"));
        }
        let total_votes: u64 = votes.iter().sum();
        if total_votes == 0 {
            return Err(CoreError::invalid("at least one server must hold a vote"));
        }
        let threshold = total_votes / 2 + 1;
        Ok(WeightedVoting {
            universe: Universe::new(votes.len() as u32),
            votes,
            total_votes,
            threshold,
        })
    }

    /// The per-server vote counts.
    pub fn votes(&self) -> &[u64] {
        &self.votes
    }

    /// Total number of votes in the system.
    pub fn total_votes(&self) -> u64 {
        self.total_votes
    }

    /// The strict-majority vote threshold a quorum must reach.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Returns `true` if the given server set holds a strict majority of
    /// votes (i.e. forms a quorum).
    pub fn is_quorum(&self, quorum: &Quorum) -> bool {
        let v: u64 = quorum.iter().map(|s| self.votes[s.as_usize()]).sum();
        v >= self.threshold
    }

    /// Probability that a specific server is included in a sampled quorum,
    /// estimated by deterministic Monte-Carlo (fixed internal seed,
    /// `SAMPLES` draws).  Used by [`QuorumSystem::load`].
    fn inclusion_probabilities(&self) -> Vec<f64> {
        const SAMPLES: usize = 20_000;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5eed_0001);
        let n = self.universe.size() as usize;
        let mut counts = vec![0usize; n];
        for _ in 0..SAMPLES {
            let q = self.sample_quorum(&mut rng);
            for s in q.iter() {
                counts[s.as_usize()] += 1;
            }
        }
        counts
            .into_iter()
            .map(|c| c as f64 / SAMPLES as f64)
            .collect()
    }
}

impl QuorumSystem for WeightedVoting {
    fn universe(&self) -> Universe {
        self.universe
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> Quorum {
        let n = self.universe.size() as usize;
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut chosen = Vec::new();
        let mut votes = 0u64;
        for idx in order {
            // Skip servers with no votes: they never help reach the
            // threshold and including them would only inflate the load.
            if self.votes[idx] == 0 {
                continue;
            }
            chosen.push(idx as u32);
            votes += self.votes[idx];
            if votes >= self.threshold {
                break;
            }
        }
        Quorum::from_indices(self.universe, chosen).expect("indices in range")
    }

    fn name(&self) -> String {
        format!(
            "weighted-voting(n={}, votes={})",
            self.universe.size(),
            self.total_votes
        )
    }

    /// The fewest servers that can reach the threshold: greedily take the
    /// largest vote holders.
    fn min_quorum_size(&self) -> usize {
        let mut sorted = self.votes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0u64;
        for (i, v) in sorted.iter().enumerate() {
            acc += v;
            if acc >= self.threshold {
                return i + 1;
            }
        }
        self.votes.len()
    }

    /// Estimated as the largest per-server inclusion probability under the
    /// random-order access strategy (deterministic Monte-Carlo, documented
    /// on [`WeightedVoting`]); exact closed forms exist only for equal votes.
    fn load(&self) -> f64 {
        self.inclusion_probabilities()
            .into_iter()
            .fold(0.0, f64::max)
    }

    /// The fewest servers whose removal leaves less than a majority of
    /// votes alive: greedily remove the largest vote holders.
    fn fault_tolerance(&self) -> u32 {
        let mut sorted = self.votes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut remaining = self.total_votes;
        for (i, v) in sorted.iter().enumerate() {
            remaining -= v;
            if remaining < self.threshold {
                return (i + 1) as u32;
            }
        }
        self.votes.len() as u32
    }

    /// Exact: dynamic programming over the distribution of the number of
    /// votes held by the *alive* servers; the system fails iff that total is
    /// below the threshold.
    fn failure_probability(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let alive_prob = 1.0 - p;
        // dp[v] = probability that alive servers hold exactly v votes.
        let mut dp = vec![0.0f64; (self.total_votes + 1) as usize];
        dp[0] = 1.0;
        for &v in &self.votes {
            if v == 0 {
                continue;
            }
            let mut next = vec![0.0f64; dp.len()];
            for (held, &prob) in dp.iter().enumerate() {
                if prob == 0.0 {
                    continue;
                }
                next[held] += prob * p; // this server crashed
                next[held + v as usize] += prob * alive_prob; // alive
            }
            dp = next;
        }
        dp.iter()
            .take(self.threshold as usize)
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strict::Majority;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_validation() {
        assert!(WeightedVoting::new(vec![]).is_err());
        assert!(WeightedVoting::new(vec![0, 0]).is_err());
        assert!(WeightedVoting::new(vec![1]).is_ok());
    }

    #[test]
    fn thresholds_and_min_quorum() {
        let wv = WeightedVoting::new(vec![3, 1, 1, 1, 1]).unwrap();
        assert_eq!(wv.total_votes(), 7);
        assert_eq!(wv.threshold(), 4);
        assert_eq!(wv.min_quorum_size(), 2);
        assert_eq!(wv.votes(), &[3, 1, 1, 1, 1]);
        // Equal votes: reduces to majority.
        let eq = WeightedVoting::new(vec![1; 9]).unwrap();
        assert_eq!(eq.min_quorum_size(), 5);
    }

    #[test]
    fn sampled_sets_are_quorums_and_intersect() {
        let wv = WeightedVoting::new(vec![4, 3, 2, 2, 1, 1, 1]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..200 {
            let a = wv.sample_quorum(&mut rng);
            let b = wv.sample_quorum(&mut rng);
            assert!(wv.is_quorum(&a));
            assert!(wv.is_quorum(&b));
            assert!(a.intersects(&b), "two vote majorities must share a server");
        }
    }

    #[test]
    fn zero_vote_servers_never_sampled() {
        let wv = WeightedVoting::new(vec![2, 0, 2, 0, 1]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..100 {
            let q = wv.sample_quorum(&mut rng);
            assert!(!q.contains(crate::universe::ServerId::new(1)));
            assert!(!q.contains(crate::universe::ServerId::new(3)));
        }
    }

    #[test]
    fn fault_tolerance_greedy() {
        // votes 3,1,1,1,1: total 7, threshold 4. Removing the 3-vote server
        // leaves 4 >= 4 (still a quorum), removing it plus one more leaves 3.
        let wv = WeightedVoting::new(vec![3, 1, 1, 1, 1]).unwrap();
        assert_eq!(wv.fault_tolerance(), 2);
        // Equal votes over 9 servers: need to remove 5 to leave 4 < 5.
        let eq = WeightedVoting::new(vec![1; 9]).unwrap();
        assert_eq!(eq.fault_tolerance(), 5);
    }

    #[test]
    fn equal_votes_failure_probability_matches_majority() {
        let wv = WeightedVoting::new(vec![1; 11]).unwrap();
        let m = Majority::new(11).unwrap();
        for &p in &[0.1, 0.3, 0.5, 0.7] {
            assert!(
                (wv.failure_probability(p) - m.failure_probability(p)).abs() < 1e-9,
                "p={p}"
            );
        }
    }

    #[test]
    fn failure_probability_extremes() {
        let wv = WeightedVoting::new(vec![5, 2, 2, 1]).unwrap();
        assert_eq!(wv.failure_probability(0.0), 0.0);
        assert!((wv.failure_probability(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heavy_server_carries_more_load() {
        let wv = WeightedVoting::new(vec![5, 1, 1, 1, 1, 1, 1]).unwrap();
        let probs = wv.inclusion_probabilities();
        // The 5-vote server is excluded only when it lands in the last
        // position of the random visiting order: P(include) = 6/7 ~ 0.857.
        assert!(probs[0] > 0.8, "heavy server prob {}", probs[0]);
        assert!(probs[1] < probs[0]);
        assert!(wv.load() >= probs[0]);
    }

    #[test]
    fn load_of_equal_votes_close_to_majority_fraction() {
        let wv = WeightedVoting::new(vec![1; 15]).unwrap();
        // Majority of 15 needs 8 servers; random-order strategy includes each
        // server with probability ~8/15.
        assert!((wv.load() - 8.0 / 15.0).abs() < 0.03, "load={}", wv.load());
    }
}
