//! The universe of servers and server identifiers.
//!
//! The paper assumes "a universe `U` of servers, `|U| = n`, and a distinct
//! set of clients" (Section 2).  Servers are identified by dense indices
//! `0..n`, wrapped in the [`ServerId`] newtype so that indices into other
//! collections cannot be confused with server identities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a single server in a universe.
///
/// Server ids are dense indices `0..n`; they are meaningful only relative to
/// the [`Universe`] they were created for.
///
/// # Examples
///
/// ```
/// use pqs_core::universe::ServerId;
/// let s = ServerId::new(3);
/// assert_eq!(s.index(), 3);
/// assert_eq!(format!("{s}"), "s3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(u32);

impl ServerId {
    /// Creates a server id from its dense index.
    pub fn new(index: u32) -> Self {
        ServerId(index)
    }

    /// The dense index of this server.
    pub fn index(self) -> u32 {
        self.0
    }

    /// The dense index as a `usize`, for indexing into vectors.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for ServerId {
    fn from(v: u32) -> Self {
        ServerId(v)
    }
}

impl From<ServerId> for u32 {
    fn from(v: ServerId) -> Self {
        v.0
    }
}

/// A universe of `n` servers, identified `0..n`.
///
/// # Examples
///
/// ```
/// use pqs_core::universe::Universe;
/// let u = Universe::new(100);
/// assert_eq!(u.size(), 100);
/// assert_eq!(u.servers().count(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Universe {
    size: u32,
}

impl Universe {
    /// Creates a universe of `size` servers.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero; an empty universe admits no quorum system.
    pub fn new(size: u32) -> Self {
        assert!(size > 0, "a universe must contain at least one server");
        Universe { size }
    }

    /// Number of servers `n` in the universe.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Iterator over all server ids in the universe.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.size).map(ServerId::new)
    }

    /// Returns `true` if `server` belongs to this universe.
    pub fn contains(&self, server: ServerId) -> bool {
        server.index() < self.size
    }

    /// `⌈√n⌉`, the side length of the smallest square grid covering the
    /// universe — used by grid constructions and by the `ℓ√n` quorum sizes.
    pub fn sqrt_ceil(&self) -> u32 {
        (self.size as f64).sqrt().ceil() as u32
    }

    /// `√n` as a float, used when converting the paper's `ℓ√n` quorum sizes.
    pub fn sqrt(&self) -> f64 {
        (self.size as f64).sqrt()
    }
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Universe(n={})", self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_id_roundtrip() {
        let s = ServerId::new(7);
        assert_eq!(s.index(), 7);
        assert_eq!(s.as_usize(), 7usize);
        assert_eq!(u32::from(s), 7);
        assert_eq!(ServerId::from(7u32), s);
        assert_eq!(s.to_string(), "s7");
    }

    #[test]
    fn server_id_ordering() {
        assert!(ServerId::new(1) < ServerId::new(2));
        assert_eq!(ServerId::new(5), ServerId::new(5));
    }

    #[test]
    fn universe_basics() {
        let u = Universe::new(25);
        assert_eq!(u.size(), 25);
        assert!(u.contains(ServerId::new(0)));
        assert!(u.contains(ServerId::new(24)));
        assert!(!u.contains(ServerId::new(25)));
        assert_eq!(u.servers().count(), 25);
        assert_eq!(u.sqrt_ceil(), 5);
        assert!((u.sqrt() - 5.0).abs() < 1e-12);
        assert_eq!(u.to_string(), "Universe(n=25)");
    }

    #[test]
    fn sqrt_ceil_rounds_up() {
        assert_eq!(Universe::new(26).sqrt_ceil(), 6);
        assert_eq!(Universe::new(24).sqrt_ceil(), 5);
        assert_eq!(Universe::new(1).sqrt_ceil(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_universe_panics() {
        let _ = Universe::new(0);
    }

    #[test]
    fn servers_are_dense_and_ordered() {
        let u = Universe::new(5);
        let ids: Vec<u32> = u.servers().map(|s| s.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
