//! A compact, fixed-capacity bitset over server indices.
//!
//! Quorum intersection tests are the innermost operation of every measure and
//! protocol in this workspace (e.g. the Monte-Carlo estimates behind the
//! Section 6 comparisons perform millions of them), so quorums are backed by
//! a word-level bitset rather than hash sets.

use serde::{Deserialize, Serialize};
use std::fmt;

const WORD_BITS: usize = 64;

/// A set of indices in `0..capacity`, stored one bit per index.
///
/// # Examples
///
/// ```
/// use pqs_core::bitset::BitSet;
/// let mut a = BitSet::new(100);
/// a.insert(3);
/// a.insert(64);
/// let mut b = BitSet::new(100);
/// b.insert(64);
/// assert_eq!(a.intersection_count(&b), 1);
/// assert!(a.intersects(&b));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty bitset able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        let words = vec![0u64; capacity.div_ceil(WORD_BITS)];
        BitSet { words, capacity }
    }

    /// Creates a bitset from an iterator of indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= capacity`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(capacity: usize, indices: I) -> Self {
        let mut s = BitSet::new(capacity);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Creates a bitset containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// The number of indices this set can hold (`0..capacity`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index` into the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(
            index < self.capacity,
            "index {index} out of range for capacity {}",
            self.capacity
        );
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        let mask = 1u64 << b;
        let was_set = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was_set
    }

    /// Removes `index` from the set. Returns `true` if it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        let mask = 1u64 << b;
        let was_set = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was_set
    }

    /// Returns `true` if `index` is in the set.
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        self.words[w] & (1u64 << b) != 0
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of indices present in both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.assert_same_capacity(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Returns `true` if the two sets share at least one index.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.assert_same_capacity(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if every index of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        self.assert_same_capacity(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// The set of indices in `self` but not in `other`.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        self.assert_same_capacity(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & !b)
            .collect();
        BitSet {
            words,
            capacity: self.capacity,
        }
    }

    /// The set of indices in either `self` or `other`.
    pub fn union(&self, other: &BitSet) -> BitSet {
        self.assert_same_capacity(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        BitSet {
            words,
            capacity: self.capacity,
        }
    }

    /// The set of indices in both `self` and `other`.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        self.assert_same_capacity(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        BitSet {
            words,
            capacity: self.capacity,
        }
    }

    /// Iterator over the indices in the set, in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    fn assert_same_capacity(&self, other: &BitSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "bitset capacities differ ({} vs {})",
            self.capacity, other.capacity
        );
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet(capacity={}, {{", self.capacity)?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}})")
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a bitset sized to the largest index seen.
    ///
    /// Mostly useful in tests; prefer [`BitSet::from_indices`] when the
    /// capacity (universe size) is known.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let capacity = indices.iter().max().map_or(0, |m| m + 1);
        BitSet::from_indices(capacity, indices)
    }
}

/// Iterator over the indices of a [`BitSet`], produced by [`BitSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert_eq!(s.len(), 4);
        assert!(s.contains(129));
        assert!(!s.contains(100));
        assert!(!s.contains(500));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.remove(999));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn from_indices_and_iter_roundtrip() {
        let indices = vec![1usize, 5, 64, 65, 99];
        let s = BitSet::from_indices(100, indices.iter().copied());
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, indices);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn full_set() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(0));
        assert!(s.contains(69));
        assert_eq!(s.iter().count(), 70);
    }

    #[test]
    fn intersection_union_difference() {
        let a = BitSet::from_indices(128, [1usize, 2, 3, 64, 100]);
        let b = BitSet::from_indices(128, [3usize, 64, 101]);
        assert_eq!(a.intersection_count(&b), 2);
        assert!(a.intersects(&b));
        let inter = a.intersection(&b);
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![3, 64]);
        let uni = a.union(&b);
        assert_eq!(uni.len(), 6);
        let diff = a.difference(&b);
        assert_eq!(diff.iter().collect::<Vec<_>>(), vec![1, 2, 100]);
    }

    #[test]
    fn disjoint_sets_do_not_intersect() {
        let a = BitSet::from_indices(200, [0usize, 10, 150]);
        let b = BitSet::from_indices(200, [1usize, 11, 151]);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection_count(&b), 0);
    }

    #[test]
    fn subset_relation() {
        let a = BitSet::from_indices(64, [3usize, 7]);
        let b = BitSet::from_indices(64, [1usize, 3, 7, 9]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        let empty = BitSet::new(64);
        assert!(empty.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    #[should_panic(expected = "capacities differ")]
    fn mismatched_capacity_panics() {
        let a = BitSet::new(10);
        let b = BitSet::new(20);
        let _ = a.intersects(&b);
    }

    #[test]
    fn debug_format_lists_elements() {
        let s = BitSet::from_indices(10, [2usize, 5]);
        let dbg = format!("{s:?}");
        assert!(dbg.contains('2') && dbg.contains('5'));
        // Never empty even for an empty set (C-DEBUG-NONEMPTY).
        let empty = BitSet::new(4);
        assert!(!format!("{empty:?}").is_empty());
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = vec![2usize, 8, 4].into_iter().collect();
        assert_eq!(s.capacity(), 9);
        assert_eq!(s.len(), 3);
        let empty: BitSet = Vec::<usize>::new().into_iter().collect();
        assert_eq!(empty.capacity(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn capacity_not_multiple_of_word_size() {
        let mut s = BitSet::new(65);
        s.insert(64);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![64]);
    }
}
