//! Quorums: sets of servers drawn from a [`Universe`].
//!
//! A [`Quorum`] is an immutable set of servers tied to the universe it was
//! drawn from.  It exposes exactly the operations the paper's analysis
//! needs: cardinality, intersection size with another quorum, and whether
//! the intersection is contained in a (Byzantine) subset.

use crate::bitset::BitSet;
use crate::universe::{ServerId, Universe};
use crate::CoreError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An immutable set of servers from a particular universe.
///
/// # Examples
///
/// ```
/// use pqs_core::quorum::Quorum;
/// use pqs_core::universe::{ServerId, Universe};
///
/// let u = Universe::new(10);
/// let q1 = Quorum::from_indices(u, [0u32, 1, 2]).unwrap();
/// let q2 = Quorum::from_indices(u, [2u32, 3, 4]).unwrap();
/// assert_eq!(q1.len(), 3);
/// assert!(q1.intersects(&q2));
/// assert_eq!(q1.intersection_size(&q2), 1);
/// assert!(q1.contains(ServerId::new(1)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Quorum {
    universe: Universe,
    members: BitSet,
}

impl Quorum {
    /// Builds a quorum from raw server indices.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ServerOutOfRange`] if any index is outside the
    /// universe.
    pub fn from_indices<I>(universe: Universe, indices: I) -> crate::Result<Self>
    where
        I: IntoIterator<Item = u32>,
    {
        let mut members = BitSet::new(universe.size() as usize);
        for idx in indices {
            if idx >= universe.size() {
                return Err(CoreError::ServerOutOfRange {
                    server: idx as u64,
                    universe: universe.size() as u64,
                });
            }
            members.insert(idx as usize);
        }
        Ok(Quorum { universe, members })
    }

    /// Builds a quorum from server ids.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ServerOutOfRange`] if any id is outside the
    /// universe.
    pub fn from_servers<I>(universe: Universe, servers: I) -> crate::Result<Self>
    where
        I: IntoIterator<Item = ServerId>,
    {
        Self::from_indices(universe, servers.into_iter().map(|s| s.index()))
    }

    /// Builds a quorum directly from a bitset.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if the bitset capacity does
    /// not match the universe size.
    pub fn from_bitset(universe: Universe, members: BitSet) -> crate::Result<Self> {
        if members.capacity() != universe.size() as usize {
            return Err(CoreError::invalid(format!(
                "bitset capacity {} does not match universe size {}",
                members.capacity(),
                universe.size()
            )));
        }
        Ok(Quorum { universe, members })
    }

    /// The quorum containing every server of the universe.
    pub fn full(universe: Universe) -> Self {
        Quorum {
            members: BitSet::full(universe.size() as usize),
            universe,
        }
    }

    /// The universe this quorum was drawn from.
    pub fn universe(&self) -> Universe {
        self.universe
    }

    /// Number of servers in the quorum.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the quorum contains no servers.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` if `server` belongs to the quorum.
    pub fn contains(&self, server: ServerId) -> bool {
        self.members.contains(server.as_usize())
    }

    /// Iterator over the servers in the quorum, in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.members.iter().map(|i| ServerId::new(i as u32))
    }

    /// The servers as a sorted vector of ids.
    pub fn to_vec(&self) -> Vec<ServerId> {
        self.iter().collect()
    }

    /// A view of the underlying bitset.
    pub fn as_bitset(&self) -> &BitSet {
        &self.members
    }

    /// Number of servers shared with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two quorums come from universes of different sizes.
    pub fn intersection_size(&self, other: &Quorum) -> usize {
        self.members.intersection_count(&other.members)
    }

    /// Returns `true` if the quorums share at least one server
    /// (the strict-quorum intersection property of Definition 2.2).
    pub fn intersects(&self, other: &Quorum) -> bool {
        self.members.intersects(&other.members)
    }

    /// The servers in both quorums.
    pub fn intersection(&self, other: &Quorum) -> Quorum {
        Quorum {
            universe: self.universe,
            members: self.members.intersection(&other.members),
        }
    }

    /// The servers of `self` that are *not* in `bad` — e.g. `Q ∩ Q′ ∖ B` in
    /// the masking analysis (Section 5).
    pub fn without(&self, bad: &Quorum) -> Quorum {
        Quorum {
            universe: self.universe,
            members: self.members.difference(&bad.members),
        }
    }

    /// Returns `true` if every server of this quorum lies inside `set` —
    /// the event `Q ∩ Q′ ⊆ B` from Definition 4.1 is
    /// `q1.intersection(&q2).is_subset_of(&byz)`.
    pub fn is_subset_of(&self, set: &Quorum) -> bool {
        self.members.is_subset_of(&set.members)
    }

    /// Size of `self ∩ other ∖ bad`, the number of *correct* servers that
    /// observe both quorums (the variable `Y` of Section 5.3).
    pub fn correct_overlap(&self, other: &Quorum, bad: &Quorum) -> usize {
        self.members
            .intersection(&other.members)
            .difference(&bad.members)
            .len()
    }

    /// Size of `self ∩ bad`, the number of faulty servers contacted
    /// (the variable `X` of Section 5.3).
    pub fn faulty_overlap(&self, bad: &Quorum) -> usize {
        self.members.intersection_count(&bad.members)
    }
}

impl fmt::Debug for Quorum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Quorum(n={}, {{", self.universe.size())?;
        let mut first = true;
        for s in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}", s.index())?;
            first = false;
        }
        write!(f, "}})")
    }
}

impl fmt::Display for Quorum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for s in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", s.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u10() -> Universe {
        Universe::new(10)
    }

    #[test]
    fn construction_and_membership() {
        let q = Quorum::from_indices(u10(), [1u32, 3, 5]).unwrap();
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert!(q.contains(ServerId::new(3)));
        assert!(!q.contains(ServerId::new(2)));
        assert_eq!(q.universe().size(), 10);
        assert_eq!(
            q.to_vec(),
            vec![ServerId::new(1), ServerId::new(3), ServerId::new(5)]
        );
    }

    #[test]
    fn out_of_range_server_rejected() {
        let err = Quorum::from_indices(u10(), [1u32, 10]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::ServerOutOfRange { server: 10, .. }
        ));
    }

    #[test]
    fn from_servers_matches_from_indices() {
        let a = Quorum::from_indices(u10(), [2u32, 4]).unwrap();
        let b = Quorum::from_servers(u10(), [ServerId::new(2), ServerId::new(4)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_bitset_requires_matching_capacity() {
        let bs = BitSet::from_indices(10, [0usize, 9]);
        assert!(Quorum::from_bitset(u10(), bs).is_ok());
        let bs_wrong = BitSet::from_indices(11, [0usize]);
        assert!(Quorum::from_bitset(u10(), bs_wrong).is_err());
    }

    #[test]
    fn full_quorum_contains_everything() {
        let q = Quorum::full(u10());
        assert_eq!(q.len(), 10);
        for s in u10().servers() {
            assert!(q.contains(s));
        }
    }

    #[test]
    fn intersection_operations() {
        let a = Quorum::from_indices(u10(), [0u32, 1, 2, 3]).unwrap();
        let b = Quorum::from_indices(u10(), [2u32, 3, 4]).unwrap();
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.intersection(&b).to_vec().len(), 2);
        let c = Quorum::from_indices(u10(), [7u32, 8]).unwrap();
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection_size(&c), 0);
    }

    #[test]
    fn byzantine_overlap_helpers() {
        // Q = {0..4}, Q' = {3..7}, B = {3, 4}
        let q = Quorum::from_indices(u10(), 0u32..5).unwrap();
        let q2 = Quorum::from_indices(u10(), 3u32..8).unwrap();
        let b = Quorum::from_indices(u10(), [3u32, 4]).unwrap();
        // Q ∩ Q' = {3, 4} which is a subset of B.
        assert!(q.intersection(&q2).is_subset_of(&b));
        assert_eq!(q.correct_overlap(&q2, &b), 0);
        assert_eq!(q.faulty_overlap(&b), 2);
        // Make B smaller: Q ∩ Q' no longer inside B.
        let b_small = Quorum::from_indices(u10(), [3u32]).unwrap();
        assert!(!q.intersection(&q2).is_subset_of(&b_small));
        assert_eq!(q.correct_overlap(&q2, &b_small), 1);
    }

    #[test]
    fn without_removes_bad_servers() {
        let q = Quorum::from_indices(u10(), [0u32, 1, 2]).unwrap();
        let bad = Quorum::from_indices(u10(), [1u32, 5]).unwrap();
        let good = q.without(&bad);
        assert_eq!(good.to_vec(), vec![ServerId::new(0), ServerId::new(2)]);
    }

    #[test]
    fn display_and_debug() {
        let q = Quorum::from_indices(u10(), [1u32, 2]).unwrap();
        assert_eq!(q.to_string(), "{1,2}");
        let dbg = format!("{q:?}");
        assert!(dbg.contains("n=10"));
        let empty = Quorum::from_indices(u10(), std::iter::empty()).unwrap();
        assert_eq!(empty.to_string(), "{}");
        assert!(!format!("{empty:?}").is_empty());
    }

    #[test]
    fn equality_and_hashing() {
        use std::collections::HashSet;
        let a = Quorum::from_indices(u10(), [1u32, 2]).unwrap();
        let b = Quorum::from_indices(u10(), [2u32, 1]).unwrap();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
