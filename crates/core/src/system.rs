//! The quorum-system trait family.
//!
//! [`QuorumSystem`] is the object-safe interface shared by every
//! construction in this crate: it couples a set system with its access
//! strategy (per Definition 3.1 the two travel together) and exposes the
//! three quality measures the paper uses to compare systems — load
//! (Definition 2.4 / 3.3), fault tolerance (Definition 2.5 / 3.7) and
//! failure probability (Definition 2.6 / 3.8).
//!
//! Sub-traits refine the interface:
//!
//! * [`ExplicitQuorumSystem`] — systems small enough to enumerate their
//!   quorums (grid, singleton, hand-built systems), enabling exact generic
//!   measure computations in [`crate::measures`];
//! * [`ByzantineQuorumSystem`] — systems designed to mask `b` arbitrary
//!   failures (strict or probabilistic dissemination/masking systems);
//! * [`ProbabilisticQuorumSystem`] — systems whose intersection guarantee is
//!   probabilistic, exposing their ε.

use crate::quorum::Quorum;
use crate::strategy::WeightedStrategy;
use crate::universe::Universe;
use rand::RngCore;

/// A quorum system paired with its access strategy.
///
/// Implementations must guarantee that [`sample_quorum`](Self::sample_quorum)
/// draws quorums according to the system's designated strategy `w`; all the
/// probabilistic guarantees (and the measured load) are relative to that
/// strategy.
///
/// The trait requires `Send + Sync`: a system description is immutable data
/// shared read-only by every shard of the parallel simulation engine, so all
/// constructions must be safe to reference from multiple worker threads.
pub trait QuorumSystem: Send + Sync {
    /// The universe of servers the system is defined over.
    fn universe(&self) -> Universe;

    /// Draws one quorum according to the system's access strategy.
    fn sample_quorum(&self, rng: &mut dyn RngCore) -> Quorum;

    /// A short human-readable name used in experiment output
    /// (e.g. `"majority(n=100)"` or `"R(100, 22)"`).
    fn name(&self) -> String;

    /// Size of the smallest quorum, `c(Q)` in the paper's notation.
    fn min_quorum_size(&self) -> usize;

    /// Expected size of a quorum drawn by the access strategy, `E[|Q|]`.
    ///
    /// Defaults to the minimum size, which is exact for all fixed-size
    /// constructions in this crate.
    fn expected_quorum_size(&self) -> f64 {
        self.min_quorum_size() as f64
    }

    /// The load `L(⟨Q, w⟩)` induced by the system's access strategy
    /// (Definitions 2.4 and 3.3): the access probability of the busiest
    /// server.
    fn load(&self) -> f64;

    /// The fault tolerance `A(Q)` (Definitions 2.5 and 3.7): the minimum
    /// number of crash failures that can disable every (high-quality)
    /// quorum.  The system survives any `A(Q) − 1` crashes.
    fn fault_tolerance(&self) -> u32;

    /// The failure probability `F_p(Q)` (Definitions 2.6 and 3.8): the
    /// probability that every (high-quality) quorum contains at least one
    /// crashed server when servers crash independently with probability `p`.
    ///
    /// Implementations may return an exact value or a tight analytical
    /// expression; each documents which.
    fn failure_probability(&self, p: f64) -> f64;
}

/// A quorum system whose quorums can be explicitly enumerated.
pub trait ExplicitQuorumSystem: QuorumSystem {
    /// All quorums of the system, in a fixed order matching
    /// [`strategy`](Self::strategy).
    fn quorums(&self) -> Vec<Quorum>;

    /// The access strategy over [`quorums`](Self::quorums).
    fn strategy(&self) -> WeightedStrategy;
}

/// A quorum system designed for Byzantine environments.
pub trait ByzantineQuorumSystem: QuorumSystem {
    /// The number `b` of arbitrary (Byzantine) server failures the system is
    /// configured to mask.
    fn byzantine_threshold(&self) -> u32;
}

/// A quorum system whose consistency guarantee is probabilistic.
pub trait ProbabilisticQuorumSystem: QuorumSystem {
    /// An upper bound on the probability ε that two quorums drawn by the
    /// access strategy fail to satisfy the system's intersection requirement
    /// (non-empty intersection, intersection outside `B`, or the masking
    /// threshold event, per Definitions 3.1, 4.1 and 5.1).
    fn epsilon(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    /// A minimal hand-rolled system used to exercise the trait object
    /// surface: the single quorum {0} over a universe of 3 servers.
    #[derive(Debug)]
    struct Trivial {
        universe: Universe,
    }

    impl QuorumSystem for Trivial {
        fn universe(&self) -> Universe {
            self.universe
        }
        fn sample_quorum(&self, _rng: &mut dyn RngCore) -> Quorum {
            Quorum::from_indices(self.universe, [0u32]).expect("valid")
        }
        fn name(&self) -> String {
            "trivial".to_string()
        }
        fn min_quorum_size(&self) -> usize {
            1
        }
        fn load(&self) -> f64 {
            1.0
        }
        fn fault_tolerance(&self) -> u32 {
            1
        }
        fn failure_probability(&self, p: f64) -> f64 {
            p
        }
    }

    #[test]
    fn trait_is_object_safe_and_default_expected_size_works() {
        let t = Trivial {
            universe: Universe::new(3),
        };
        let boxed: Box<dyn QuorumSystem> = Box::new(t);
        assert_eq!(boxed.min_quorum_size(), 1);
        assert_eq!(boxed.expected_quorum_size(), 1.0);
        assert_eq!(boxed.name(), "trivial");
        let mut rng = rand::thread_rng();
        let q = boxed.sample_quorum(&mut rng);
        assert_eq!(q.len(), 1);
        assert_eq!(boxed.failure_probability(0.3), 0.3);
    }
}
