//! Lower-bound formulas: Table I and the probabilistic load bounds.

/// Table I: lower bound `√(1/n)` on the load of any strict quorum system
/// (\[NW98\]).
pub fn strict_load_lower_bound(n: u32) -> f64 {
    if n == 0 {
        return 0.0;
    }
    (1.0 / n as f64).sqrt()
}

/// Table I: lower bound `√((b+1)/n)` on the load of any strict
/// b-dissemination quorum system (\[MR98a\]).
pub fn dissemination_load_lower_bound(n: u32, b: u32) -> f64 {
    if n == 0 {
        return 0.0;
    }
    (((b + 1) as f64) / n as f64).sqrt().min(1.0)
}

/// Table I: lower bound `√((2b+1)/n)` on the load of any strict b-masking
/// quorum system (\[MRW00\]).
pub fn masking_load_lower_bound(n: u32, b: u32) -> f64 {
    if n == 0 {
        return 0.0;
    }
    (((2 * b + 1) as f64) / n as f64).sqrt().min(1.0)
}

/// Table I: the largest `b` a strict b-dissemination system can tolerate,
/// `⌊(n−1)/3⌋`.
pub fn dissemination_resilience_bound(n: u32) -> u32 {
    crate::byzantine::max_dissemination_threshold(n)
}

/// Table I: the largest `b` a strict b-masking system can tolerate,
/// `⌊(n−1)/4⌋`.
pub fn masking_resilience_bound(n: u32) -> u32 {
    crate::byzantine::max_masking_threshold(n)
}

/// Theorem 3.9: the load of any ε-intersecting system with expected quorum
/// size `E[|Q|]` is at least `max{E[|Q|]/n, (1−√ε)²/E[|Q|]}`.
pub fn epsilon_intersecting_load_lower_bound(n: u32, expected_quorum: f64, epsilon: f64) -> f64 {
    crate::measures::probabilistic_load_lower_bound(n, expected_quorum, epsilon)
}

/// Corollary 3.12: the load of any ε-intersecting system is at least
/// `(1 − √ε)/√n`.
pub fn corollary_3_12_bound(n: u32, epsilon: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    (1.0 - epsilon.clamp(0.0, 1.0).sqrt()) / (n as f64).sqrt()
}

/// Theorem 5.5: the load of any (b, ε)-masking quorum system is larger than
/// `((1 − 2ε)/(1 − ε)) · b/n`.
pub fn masking_probabilistic_load_lower_bound(n: u32, b: u32, epsilon: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let eps = epsilon.clamp(0.0, 0.5);
    ((1.0 - 2.0 * eps) / (1.0 - eps)) * b as f64 / n as f64
}

/// One row of Table I, for the harness that regenerates it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableOneRow {
    /// Universe size the row is evaluated for.
    pub n: u32,
    /// Byzantine threshold used for the dissemination/masking columns.
    pub b: u32,
    /// `√(1/n)`.
    pub strict_load: f64,
    /// `√((b+1)/n)`.
    pub dissemination_load: f64,
    /// `√((2b+1)/n)`.
    pub masking_load: f64,
    /// `⌊(n−1)/3⌋`.
    pub dissemination_max_b: u32,
    /// `⌊(n−1)/4⌋`.
    pub masking_max_b: u32,
}

/// Computes one row of Table I.
pub fn table_one_row(n: u32, b: u32) -> TableOneRow {
    TableOneRow {
        n,
        b,
        strict_load: strict_load_lower_bound(n),
        dissemination_load: dissemination_load_lower_bound(n, b),
        masking_load: masking_load_lower_bound(n, b),
        dissemination_max_b: dissemination_resilience_bound(n),
        masking_max_b: masking_resilience_bound(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::{DisseminationThreshold, MaskingThreshold};
    use crate::strict::{Grid, Majority};
    use crate::system::QuorumSystem;

    #[test]
    fn strict_bound_values() {
        assert!((strict_load_lower_bound(100) - 0.1).abs() < 1e-12);
        assert_eq!(strict_load_lower_bound(0), 0.0);
        assert!((dissemination_load_lower_bound(100, 4) - (5.0f64 / 100.0).sqrt()).abs() < 1e-12);
        assert!((masking_load_lower_bound(100, 4) - (9.0f64 / 100.0).sqrt()).abs() < 1e-12);
        // Clamped to 1 for absurd b.
        assert_eq!(dissemination_load_lower_bound(10, 100), 1.0);
    }

    #[test]
    fn strict_constructions_respect_their_bounds() {
        for &n in &[25u32, 100, 400] {
            let b = ((n as f64).sqrt() as u32 - 1) / 2;
            assert!(Majority::new(n).unwrap().load() + 1e-12 >= strict_load_lower_bound(n));
            assert!(Grid::new(n).unwrap().load() + 1e-12 >= strict_load_lower_bound(n));
            assert!(
                DisseminationThreshold::new(n, b).unwrap().load() + 1e-12
                    >= dissemination_load_lower_bound(n, b)
            );
            assert!(
                MaskingThreshold::new(n, b).unwrap().load() + 1e-12
                    >= masking_load_lower_bound(n, b)
            );
        }
    }

    #[test]
    fn probabilistic_masking_beats_strict_bound_but_not_theorem_5_5() {
        use crate::probabilistic::ProbabilisticMasking;
        use crate::system::ProbabilisticQuorumSystem;
        // b = sqrt(n), l chosen so that the quorum is o(sqrt(bn)).
        let n = 10_000u32;
        let b = 100u32;
        let sys = ProbabilisticMasking::with_ell(n, (n as f64).powf(0.2), b).unwrap();
        // Beats the strict masking bound...
        assert!(sys.load() < masking_load_lower_bound(n, b));
        // ...but still respects Theorem 5.5.
        assert!(sys.load() + 1e-12 >= masking_probabilistic_load_lower_bound(n, b, sys.epsilon()));
    }

    #[test]
    fn corollary_3_12_and_theorem_3_9_consistency() {
        use crate::probabilistic::EpsilonIntersecting;
        use crate::system::ProbabilisticQuorumSystem;
        let sys = EpsilonIntersecting::with_target_epsilon(400, 1e-3).unwrap();
        let cor = corollary_3_12_bound(400, sys.epsilon());
        let thm =
            epsilon_intersecting_load_lower_bound(400, sys.expected_quorum_size(), sys.epsilon());
        // The theorem's bound is at least as strong as the corollary's.
        assert!(thm + 1e-12 >= cor);
        assert!(sys.load() + 1e-12 >= thm);
        assert_eq!(corollary_3_12_bound(0, 0.1), 0.0);
    }

    #[test]
    fn table_one_row_is_consistent() {
        let row = table_one_row(100, 4);
        assert_eq!(row.n, 100);
        assert_eq!(row.b, 4);
        assert_eq!(row.dissemination_max_b, 33);
        assert_eq!(row.masking_max_b, 24);
        assert!(row.strict_load < row.dissemination_load);
        assert!(row.dissemination_load < row.masking_load);
    }

    #[test]
    fn theorem_5_5_degenerate_epsilon() {
        // Epsilon >= 1/2 gives a vacuous (zero) bound.
        assert_eq!(masking_probabilistic_load_lower_bound(100, 10, 0.5), 0.0);
        assert_eq!(masking_probabilistic_load_lower_bound(0, 10, 0.1), 0.0);
    }
}
