//! Monte-Carlo estimation of the intersection events behind the three
//! probabilistic quorum definitions.
//!
//! These estimators take any [`QuorumSystem`] (they only need its sampling
//! strategy), so they can be used both to validate the closed-form ε values
//! of the `R(n, q)` constructions and to *measure* the ε of ad-hoc systems
//! for which no closed form exists.

use crate::quorum::Quorum;
use crate::system::QuorumSystem;
use crate::CoreError;
use pqs_math::mc::BernoulliEstimator;
use rand::RngCore;

/// Estimates `P(Q ∩ Q′ = ∅)` — the complement of the Definition 3.1 event —
/// by drawing `trials` independent pairs of quorums.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] if `trials` is zero.
pub fn estimate_nonintersection(
    system: &dyn QuorumSystem,
    trials: u32,
    rng: &mut dyn RngCore,
) -> crate::Result<BernoulliEstimator> {
    if trials == 0 {
        return Err(CoreError::invalid("at least one trial is required"));
    }
    let mut est = BernoulliEstimator::new();
    for _ in 0..trials {
        let a = system.sample_quorum(rng);
        let b = system.sample_quorum(rng);
        est.record(!a.intersects(&b));
    }
    Ok(est)
}

/// Estimates `P(Q ∩ Q′ ⊆ B)` — the complement of the Definition 4.1 event —
/// for a fixed faulty set `B`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] if `trials` is zero or `B`
/// does not belong to the system's universe.
pub fn estimate_contained_in_faulty(
    system: &dyn QuorumSystem,
    faulty: &Quorum,
    trials: u32,
    rng: &mut dyn RngCore,
) -> crate::Result<BernoulliEstimator> {
    if trials == 0 {
        return Err(CoreError::invalid("at least one trial is required"));
    }
    if faulty.universe() != system.universe() {
        return Err(CoreError::invalid(
            "the faulty set must come from the system's universe",
        ));
    }
    let mut est = BernoulliEstimator::new();
    for _ in 0..trials {
        let a = system.sample_quorum(rng);
        let b = system.sample_quorum(rng);
        est.record(a.intersection(&b).is_subset_of(faulty));
    }
    Ok(est)
}

/// Estimates the probability that the Definition 5.1 masking event *fails*
/// (`|Q ∩ B| ≥ k` or `|Q ∩ Q′ ∖ B| < k`) for a fixed faulty set `B` and read
/// threshold `k`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] if `trials` is zero or `B`
/// does not belong to the system's universe.
pub fn estimate_masking_failure(
    system: &dyn QuorumSystem,
    faulty: &Quorum,
    threshold: usize,
    trials: u32,
    rng: &mut dyn RngCore,
) -> crate::Result<BernoulliEstimator> {
    if trials == 0 {
        return Err(CoreError::invalid("at least one trial is required"));
    }
    if faulty.universe() != system.universe() {
        return Err(CoreError::invalid(
            "the faulty set must come from the system's universe",
        ));
    }
    let mut est = BernoulliEstimator::new();
    for _ in 0..trials {
        let read = system.sample_quorum(rng);
        let write = system.sample_quorum(rng);
        let x = read.faulty_overlap(faulty);
        let y = read.correct_overlap(&write, faulty);
        est.record(!(x < threshold && y >= threshold));
    }
    Ok(est)
}

/// Estimates the *empirical load* of a system under its access strategy: it
/// samples `trials` quorums, counts per-server accesses and reports the
/// busiest server's access frequency.  This is the measured counterpart of
/// [`QuorumSystem::load`] used by the V5 experiment.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] if `trials` is zero.
pub fn estimate_empirical_load(
    system: &dyn QuorumSystem,
    trials: u32,
    rng: &mut dyn RngCore,
) -> crate::Result<f64> {
    if trials == 0 {
        return Err(CoreError::invalid("at least one trial is required"));
    }
    let n = system.universe().size() as usize;
    let mut counts = vec![0u64; n];
    for _ in 0..trials {
        for s in system.sample_quorum(rng).iter() {
            counts[s.as_usize()] += 1;
        }
    }
    Ok(counts.into_iter().max().unwrap_or(0) as f64 / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probabilistic::{
        EpsilonIntersecting, ProbabilisticDissemination, ProbabilisticMasking,
    };
    use crate::strict::Majority;
    use crate::system::ProbabilisticQuorumSystem;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn nonintersection_estimate_matches_exact_epsilon() {
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let est = estimate_nonintersection(&sys, 30_000, &mut rng).unwrap();
        assert!((est.estimate() - sys.epsilon()).abs() < 0.01);
        // Strict systems never fail to intersect.
        let strict = Majority::new(20).unwrap();
        let est = estimate_nonintersection(&strict, 2000, &mut rng).unwrap();
        assert_eq!(est.successes(), 0);
    }

    #[test]
    fn containment_estimate_matches_exact_epsilon() {
        let sys = ProbabilisticDissemination::new(60, 12, 20).unwrap();
        let faulty = Quorum::from_indices(sys.universe(), 0u32..20).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let est = estimate_contained_in_faulty(&sys, &faulty, 30_000, &mut rng).unwrap();
        assert!((est.estimate() - sys.epsilon()).abs() < 0.012);
    }

    #[test]
    fn masking_estimate_matches_exact_epsilon() {
        let sys = ProbabilisticMasking::new(80, 26, 8).unwrap();
        let faulty = Quorum::from_indices(sys.universe(), 0u32..8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let est = estimate_masking_failure(&sys, &faulty, sys.read_threshold(), 30_000, &mut rng)
            .unwrap();
        assert!((est.estimate() - sys.epsilon()).abs() < 0.012);
    }

    #[test]
    fn empirical_load_close_to_analytic() {
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let load = estimate_empirical_load(&sys, 20_000, &mut rng).unwrap();
        // The busiest server's frequency concentrates near q/n = 0.22.
        assert!((load - sys.load()).abs() < 0.02, "load={load}");
    }

    #[test]
    fn validation_errors() {
        let sys = EpsilonIntersecting::new(30, 6).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(estimate_nonintersection(&sys, 0, &mut rng).is_err());
        assert!(estimate_empirical_load(&sys, 0, &mut rng).is_err());
        let wrong_universe =
            Quorum::from_indices(crate::universe::Universe::new(31), [0u32]).unwrap();
        assert!(estimate_contained_in_faulty(&sys, &wrong_universe, 10, &mut rng).is_err());
        assert!(estimate_masking_failure(&sys, &wrong_universe, 1, 10, &mut rng).is_err());
    }
}
