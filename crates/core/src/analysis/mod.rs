//! Monte-Carlo estimators and lower-bound formulas used by the experiment
//! harness.
//!
//! * [`intersection`] — empirical estimation of the three intersection
//!   events (Definitions 3.1, 4.1 and 5.1) for any
//!   [`crate::system::QuorumSystem`]; used to validate the analytical ε
//!   bounds (experiments V1–V3 of DESIGN.md).
//! * [`lower_bounds`] — Table I's load/resilience bounds and the load lower
//!   bounds for probabilistic systems (Theorem 3.9, Corollary 3.12,
//!   Theorem 5.5).

pub mod intersection;
pub mod lower_bounds;
