//! The (b, ε)-dissemination construction of Section 4.
//!
//! For self-verifying data (servers can suppress but not forge values) it is
//! enough that the overlap of a read quorum with the latest write quorum is
//! *not entirely faulty* (Definition 4.1).  The same uniform `R(n, ℓ√n)`
//! set system satisfies this with ε at most `2e^{−ℓ²/6}` when `b = n/3`
//! (Theorem 4.4) and `ε_α = 2/(1−α)·α^{ℓ²(1−√α)/2}` when `b = αn`
//! (Theorem 4.6) — so, unlike strict dissemination systems, it tolerates
//! *any constant fraction* of Byzantine servers while keeping `O(1/√n)` load
//! and `Θ(n)` crash fault tolerance.

use crate::probabilistic::params::exact_epsilon_dissemination;
use crate::quorum::Quorum;
use crate::system::{ByzantineQuorumSystem, ProbabilisticQuorumSystem, QuorumSystem};
use crate::universe::Universe;
use crate::CoreError;
use pqs_math::binomial::Binomial;
use pqs_math::bounds;
use pqs_math::sampling::sample_k_of_n;
use rand::RngCore;

/// The (b, ε)-dissemination quorum system: `R(n, q)` analysed against a
/// Byzantine set of size `b`.
///
/// # Examples
///
/// ```
/// use pqs_core::probabilistic::ProbabilisticDissemination;
/// use pqs_core::system::{ByzantineQuorumSystem, ProbabilisticQuorumSystem, QuorumSystem};
///
/// // Tolerate a Byzantine *third* of the universe — impossible for any
/// // strict dissemination system beyond (n-1)/3 — with small quorums.
/// let sys = ProbabilisticDissemination::with_target_epsilon(900, 300, 1e-3).unwrap();
/// assert!(sys.epsilon() <= 1e-3);
/// assert_eq!(sys.byzantine_threshold(), 300);
/// assert!(sys.min_quorum_size() < 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilisticDissemination {
    universe: Universe,
    quorum_size: u32,
    byzantine: u32,
    exact_epsilon: f64,
}

impl ProbabilisticDissemination {
    /// Creates the system with an explicit quorum size.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if the parameters are out
    /// of range or the crash fault tolerance `n − q + 1` would not exceed
    /// `b` (Definition 4.1 requires `A(⟨Q, w⟩) > b`).
    pub fn new(n: u32, q: u32, b: u32) -> crate::Result<Self> {
        if b == 0 {
            return Err(CoreError::invalid(
                "b must be positive; use EpsilonIntersecting when no Byzantine failures are expected",
            ));
        }
        if b >= n {
            return Err(CoreError::invalid(format!(
                "b={b} must be smaller than the universe n={n}"
            )));
        }
        if q == 0 || q > n {
            return Err(CoreError::invalid(format!(
                "quorum size {q} must be in 1..={n}"
            )));
        }
        if n - q < b {
            return Err(CoreError::invalid(format!(
                "fault tolerance n-q+1 = {} must exceed b = {b} (Definition 4.1)",
                n - q + 1
            )));
        }
        let exact_epsilon = exact_epsilon_dissemination(n, q, b)?;
        Ok(ProbabilisticDissemination {
            universe: Universe::new(n),
            quorum_size: q,
            byzantine: b,
            exact_epsilon,
        })
    }

    /// Creates the system with `q = ℓ√n` rounded to the nearest integer.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new), plus `ℓ` must be positive.
    pub fn with_ell(n: u32, ell: f64, b: u32) -> crate::Result<Self> {
        if ell.is_nan() || ell <= 0.0 {
            return Err(CoreError::invalid(format!(
                "ell must be positive, got {ell}"
            )));
        }
        let q = (ell * (n as f64).sqrt()).round().max(1.0) as u32;
        Self::new(n, q, b)
    }

    /// Creates the smallest system whose exact ε (for the given `b`) is at
    /// most `target_epsilon` — the Table 3 selection rule.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if no quorum size
    /// `q ≤ n − b` achieves the target.
    pub fn with_target_epsilon(n: u32, b: u32, target_epsilon: f64) -> crate::Result<Self> {
        let q = crate::probabilistic::params::smallest_quorum_dissemination(n, b, target_epsilon)
            .ok_or_else(|| {
                CoreError::invalid(format!(
                    "no quorum size achieves dissemination epsilon <= {target_epsilon} for n={n}, b={b}"
                ))
            })?;
        Self::new(n, q, b)
    }

    /// The fixed quorum size `q`.
    pub fn quorum_size(&self) -> usize {
        self.quorum_size as usize
    }

    /// The paper's parameter `ℓ = q/√n`.
    pub fn ell(&self) -> f64 {
        self.quorum_size as f64 / (self.universe.size() as f64).sqrt()
    }

    /// The Byzantine fraction `α = b/n`.
    pub fn alpha(&self) -> f64 {
        self.byzantine as f64 / self.universe.size() as f64
    }

    /// The exact probability that `Q ∩ Q′ ⊆ B` for the configured `b`
    /// (what [`ProbabilisticQuorumSystem::epsilon`] reports).
    pub fn exact_epsilon(&self) -> f64 {
        self.exact_epsilon
    }

    /// The analytical bound of Theorem 4.4 (`2e^{−ℓ²/6}`, used when
    /// `α ≤ 1/3`) or Theorem 4.6 (`ε_α`, used when `α > 1/3`).
    pub fn epsilon_bound(&self) -> f64 {
        let alpha = self.alpha();
        if alpha <= 1.0 / 3.0 {
            bounds::dissemination_bound_one_third(self.ell())
        } else {
            bounds::dissemination_bound_alpha(self.ell(), alpha)
        }
    }
}

impl QuorumSystem for ProbabilisticDissemination {
    fn universe(&self) -> Universe {
        self.universe
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> Quorum {
        let indices = sample_k_of_n(rng, self.quorum_size as u64, self.universe.size() as u64)
            .expect("quorum size validated");
        Quorum::from_indices(self.universe, indices.into_iter().map(|i| i as u32))
            .expect("indices in range")
    }

    fn name(&self) -> String {
        format!(
            "dissemination-R(n={}, q={}, b={})",
            self.universe.size(),
            self.quorum_size,
            self.byzantine
        )
    }

    fn min_quorum_size(&self) -> usize {
        self.quorum_size as usize
    }

    /// Exactly `q/n` under the uniform strategy (Section 4.1: "load, fault
    /// tolerance and failure probability do not depend on b or ε").
    fn load(&self) -> f64 {
        self.quorum_size as f64 / self.universe.size() as f64
    }

    /// `n − q + 1` — the construction keeps `Θ(n)` tolerance to *crash*
    /// failures regardless of the Byzantine threshold it masks.
    fn fault_tolerance(&self) -> u32 {
        self.universe.size() - self.quorum_size + 1
    }

    /// Exact binomial tail for crash failures, as for
    /// [`crate::probabilistic::EpsilonIntersecting`].
    fn failure_probability(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        Binomial::new(self.universe.size() as u64, p)
            .expect("p clamped")
            .sf((self.universe.size() - self.quorum_size) as u64)
    }
}

impl ByzantineQuorumSystem for ProbabilisticDissemination {
    fn byzantine_threshold(&self) -> u32 {
        self.byzantine
    }
}

impl ProbabilisticQuorumSystem for ProbabilisticDissemination {
    fn epsilon(&self) -> f64 {
        self.exact_epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_validation() {
        assert!(ProbabilisticDissemination::new(100, 24, 0).is_err());
        assert!(ProbabilisticDissemination::new(100, 24, 100).is_err());
        assert!(ProbabilisticDissemination::new(100, 0, 4).is_err());
        assert!(ProbabilisticDissemination::new(100, 101, 4).is_err());
        // Fault tolerance must exceed b: n - q + 1 > b.
        assert!(ProbabilisticDissemination::new(100, 97, 4).is_err());
        assert!(ProbabilisticDissemination::new(100, 96, 4).is_ok());
        assert!(ProbabilisticDissemination::with_ell(100, -2.0, 4).is_err());
    }

    #[test]
    fn table_three_sizes_from_ell() {
        // Table 3: (n, b, l, quorum size, fault tolerance).
        for &(n, b, ell, size, ft) in &[
            (25u32, 2u32, 2.20f64, 11usize, 15u32),
            (100, 4, 2.40, 24, 77),
            (225, 7, 2.47, 37, 189),
            (400, 9, 2.50, 50, 351),
            (625, 12, 2.52, 63, 563),
            (900, 14, 2.57, 77, 824),
        ] {
            let sys = ProbabilisticDissemination::with_ell(n, ell, b).unwrap();
            assert_eq!(sys.quorum_size(), size, "n={n}");
            assert_eq!(sys.fault_tolerance(), ft, "n={n}");
        }
    }

    #[test]
    fn exact_epsilon_below_analytic_bound() {
        // One-third regime.
        let third = ProbabilisticDissemination::with_ell(900, 4.0, 300).unwrap();
        assert!(third.exact_epsilon() <= third.epsilon_bound() + 1e-12);
        // Larger-fraction regime (alpha = 0.5).
        let half = ProbabilisticDissemination::with_ell(900, 6.0, 450).unwrap();
        assert!((half.alpha() - 0.5).abs() < 1e-12);
        assert!(half.exact_epsilon() <= half.epsilon_bound() + 1e-12);
    }

    #[test]
    fn tolerates_byzantine_fractions_beyond_strict_limit() {
        // Strict dissemination systems cap at b = (n-1)/3; the probabilistic
        // construction reaches b = n/2 with a small quorum and tiny epsilon.
        let n = 2500u32;
        let b = 1250u32;
        let sys = ProbabilisticDissemination::with_target_epsilon(n, b, 1e-3).unwrap();
        assert!(sys.epsilon() <= 1e-3);
        assert!(sys.min_quorum_size() < (n / 2) as usize);
        assert!(sys.byzantine_threshold() > crate::byzantine::max_dissemination_threshold(n));
    }

    #[test]
    fn with_target_epsilon_is_minimal() {
        let sys = ProbabilisticDissemination::with_target_epsilon(100, 4, 1e-3).unwrap();
        assert!(sys.epsilon() <= 1e-3);
        if sys.quorum_size() > 1 {
            let smaller =
                ProbabilisticDissemination::new(100, sys.quorum_size() as u32 - 1, 4).unwrap();
            assert!(smaller.epsilon() > 1e-3);
        }
    }

    #[test]
    fn graceful_degradation_with_fewer_faults() {
        // Remark after Theorem 4.6: with fewer actual faults the achieved
        // intersection probability only improves.
        let strong = ProbabilisticDissemination::new(400, 50, 100).unwrap();
        let weaker_adversary = ProbabilisticDissemination::new(400, 50, 9).unwrap();
        assert!(weaker_adversary.epsilon() < strong.epsilon());
    }

    #[test]
    fn sampling_and_measures() {
        let sys = ProbabilisticDissemination::new(100, 24, 4).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let q = sys.sample_quorum(&mut rng);
        assert_eq!(q.len(), 24);
        assert!((sys.load() - 0.24).abs() < 1e-12);
        assert!((sys.ell() - 2.4).abs() < 1e-12);
        assert!((sys.alpha() - 0.04).abs() < 1e-12);
        assert!(sys.name().contains("dissemination-R"));
        assert_eq!(sys.failure_probability(0.0), 0.0);
        assert!((sys.failure_probability(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_containment_rate_matches_epsilon() {
        // Monte-Carlo check of Definition 4.1 for a moderately small system.
        let sys = ProbabilisticDissemination::new(60, 12, 20).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let b_set = crate::quorum::Quorum::from_indices(sys.universe(), 0u32..20).unwrap();
        let trials = 40_000;
        let mut contained = 0usize;
        for _ in 0..trials {
            let q1 = sys.sample_quorum(&mut rng);
            let q2 = sys.sample_quorum(&mut rng);
            if q1.intersection(&q2).is_subset_of(&b_set) {
                contained += 1;
            }
        }
        let empirical = contained as f64 / trials as f64;
        assert!(
            (empirical - sys.epsilon()).abs() < 0.012,
            "empirical={empirical} exact={}",
            sys.epsilon()
        );
    }
}
