//! Exact ε computations and parameter selection for the `R(n, q)` family.
//!
//! The paper's Chernoff-style bounds (Lemma 3.15, Theorem 4.4, Theorem 5.10)
//! are convenient analytically but loose for the concrete system sizes of
//! Section 6; the tables there pick "ℓ as small as possible subject to
//! ε ≤ .001", which requires the *exact* probabilities.  Because the access
//! strategy is uniform over `q`-subsets, all three intersection events have
//! closed forms in terms of hypergeometric distributions:
//!
//! * **ε-intersecting** (Definition 3.1):
//!   `ε(n, q) = P(Q ∩ Q′ = ∅) = C(n−q, q)/C(n, q)`.
//! * **dissemination** (Definition 4.1): conditioning on `j = |Q′ ∩ B|`
//!   (hypergeometric), `Q ∩ Q′ ⊆ B` iff `Q` avoids the `q − j` servers of
//!   `Q′ ∖ B`, so
//!   `ε(n, q, b) = Σ_j P(|Q′ ∩ B| = j) · C(n−q+j, q)/C(n, q)`.
//! * **masking** (Definition 5.1): with `X = |Q ∩ B|` and, given `X` and the
//!   write quorum, `Y = |Q ∩ Q′ ∖ B|`; conditioning on the *write* quorum's
//!   good part `g = |Q′ ∖ B| ≥ q − b` and on `X`,
//!   `P(consistent) = Σ_{x<k} P(X = x) · P(H(n, q−b, q) ≥ k)` is a lower
//!   bound attained when `B ⊆ Q′`; the adversary places all `b` faults inside
//!   the write quorum, so this worst case is the right quantity to report.
//!
//! These functions drive the `with_target_epsilon` constructors and the
//! Table 2–4 harness.

use crate::CoreError;
use pqs_math::comb::ln_choose;
use pqs_math::hypergeometric::Hypergeometric;

/// Exact probability that two independent uniform `q`-subsets of an
/// `n`-universe are disjoint: `C(n−q, q)/C(n, q)` (zero when `2q > n`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] if `q` is zero or exceeds `n`.
///
/// # Examples
///
/// ```
/// use pqs_core::probabilistic::params::exact_epsilon_intersecting;
/// let eps = exact_epsilon_intersecting(100, 22).unwrap();
/// assert!(eps > 0.0 && eps < 0.01);
/// assert_eq!(exact_epsilon_intersecting(100, 51).unwrap(), 0.0);
/// ```
pub fn exact_epsilon_intersecting(n: u32, q: u32) -> crate::Result<f64> {
    validate_nq(n, q)?;
    if 2 * q > n {
        return Ok(0.0);
    }
    Ok((ln_choose((n - q) as u64, q as u64) - ln_choose(n as u64, q as u64)).exp())
}

/// Exact probability that the intersection of two independent uniform
/// `q`-subsets is contained in a fixed adversarial set `B` of size `b`
/// (the complement of the Definition 4.1 requirement).
///
/// By symmetry the value does not depend on *which* `b` servers are faulty.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] if `q` is zero, `q > n`, or
/// `b ≥ n`.
pub fn exact_epsilon_dissemination(n: u32, q: u32, b: u32) -> crate::Result<f64> {
    validate_nq(n, q)?;
    if b >= n {
        return Err(CoreError::invalid(format!(
            "byzantine set size {b} must be smaller than the universe {n}"
        )));
    }
    if b == 0 {
        return exact_epsilon_intersecting(n, q);
    }
    // j = |Q' ∩ B| is hypergeometric; given j, Q ∩ Q' ⊆ B iff Q avoids the
    // q − j servers of Q' ∖ B, which happens with probability
    // C(n − (q−j), q)/C(n, q).
    let overlap = Hypergeometric::new(n as u64, b as u64, q as u64)?;
    let ln_total = ln_choose(n as u64, q as u64);
    let mut eps = 0.0f64;
    for j in overlap.min_value()..=overlap.max_value() {
        let good_servers = q as u64 - j; // |Q' \ B|
        if good_servers > n as u64 {
            continue;
        }
        let avoid = if n as u64 - good_servers < q as u64 {
            0.0
        } else {
            (ln_choose(n as u64 - good_servers, q as u64) - ln_total).exp()
        };
        eps += overlap.pmf(j) * avoid;
    }
    Ok(eps.clamp(0.0, 1.0))
}

/// Exact probability that the masking event of Definition 5.1 fails, i.e.
/// the complement of `P(|Q ∩ B| < k ∧ |Q ∩ Q′ ∖ B| ≥ k)` when the read
/// quorum `Q` and the write quorum `Q′` are both drawn uniformly and
/// independently and `B` is any fixed set of `b` servers (by symmetry of the
/// uniform strategy the value does not depend on the placement of `B`).
///
/// The computation conditions on `X = |Q ∩ B| ∼ H(n, b, q)`: given `X = x`,
/// the set `Q ∖ B` has `q − x` servers, and `Y = |Q′ ∩ (Q ∖ B)| ∼
/// H(n, q − x, q)` because `Q′` is an independent uniform `q`-subset.
///
/// See [`worst_case_epsilon_masking`] for the pessimistic variant in which
/// the faulty servers all sit inside the previous write quorum.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] for out-of-range parameters
/// (`q = 0`, `q > n`, `b ≥ n`, `b ≥ q`, or `k > q`).
pub fn exact_epsilon_masking(n: u32, q: u32, b: u32, k: u32) -> crate::Result<f64> {
    validate_masking(n, q, b, k)?;
    if k == 0 {
        // A zero threshold accepts fabricated values whenever any faulty
        // server is contacted; the consistent event is then just X < 0,
        // impossible, so epsilon is 1.
        return Ok(1.0);
    }
    let x_dist = Hypergeometric::new(n as u64, b as u64, q as u64)?;
    let mut consistent = 0.0f64;
    let x_hi = x_dist.max_value().min((k - 1) as u64);
    for x in x_dist.min_value()..=x_hi {
        let y_dist = Hypergeometric::new(n as u64, q as u64 - x, q as u64)?;
        consistent += x_dist.pmf(x) * y_dist.at_least(k as u64);
    }
    Ok((1.0 - consistent).clamp(0.0, 1.0))
}

/// Pessimistic variant of [`exact_epsilon_masking`]: the probability that
/// the masking read rule fails *given that every faulty server lies inside
/// the previous write quorum* (`B ⊆ Q′`), which is the coupling behind
/// Lemma 5.9's variable `Z ∼ H(n, q − b, q)`.
///
/// This is an upper bound on [`exact_epsilon_masking`] and is the right
/// quantity to use when the adversary can influence *which* servers the
/// writer contacts.
///
/// # Errors
///
/// Same as [`exact_epsilon_masking`].
pub fn worst_case_epsilon_masking(n: u32, q: u32, b: u32, k: u32) -> crate::Result<f64> {
    validate_masking(n, q, b, k)?;
    if k == 0 {
        return Ok(1.0);
    }
    // X = |Q ∩ B| ~ H(n, b, q). Given X = x, the remaining q − x read
    // servers are a uniform subset of the n − b correct servers, of which
    // q − b lie in Q' ∖ B, so Y | X = x ~ H(n − b, q − b, q − x).
    let x_dist = Hypergeometric::new(n as u64, b as u64, q as u64)?;
    let mut consistent = 0.0f64;
    let x_hi = x_dist.max_value().min((k - 1) as u64);
    for x in x_dist.min_value()..=x_hi {
        let y_dist = Hypergeometric::new((n - b) as u64, (q - b) as u64, q as u64 - x)?;
        consistent += x_dist.pmf(x) * y_dist.at_least(k as u64);
    }
    Ok((1.0 - consistent).clamp(0.0, 1.0))
}

fn validate_masking(n: u32, q: u32, b: u32, k: u32) -> crate::Result<()> {
    validate_nq(n, q)?;
    if b >= n {
        return Err(CoreError::invalid(format!(
            "byzantine set size {b} must be smaller than the universe {n}"
        )));
    }
    if b >= q {
        return Err(CoreError::invalid(format!(
            "masking analysis requires b < q (got b={b}, q={q})"
        )));
    }
    if k > q {
        return Err(CoreError::invalid(format!(
            "read threshold k={k} cannot exceed the quorum size q={q}"
        )));
    }
    Ok(())
}

/// Smallest quorum size `q` such that the exact non-intersection probability
/// is at most `target_epsilon`, or `None` if no `q ≤ n` achieves it
/// (never the case for `target_epsilon > 0`, since `2q > n` gives ε = 0).
pub fn smallest_quorum_intersecting(n: u32, target_epsilon: f64) -> Option<u32> {
    if !(0.0..1.0).contains(&target_epsilon) || target_epsilon == 0.0 {
        return None;
    }
    (1..=n).find(|&q| {
        exact_epsilon_intersecting(n, q)
            .map(|e| e <= target_epsilon)
            .unwrap_or(false)
    })
}

/// Smallest quorum size `q ≤ n − b` such that the exact dissemination ε is
/// at most `target_epsilon`; `None` if none exists (the cap `q ≤ n − b`
/// keeps the fault tolerance above `b`, per Definition 4.1).
pub fn smallest_quorum_dissemination(n: u32, b: u32, target_epsilon: f64) -> Option<u32> {
    if !(0.0..1.0).contains(&target_epsilon) || target_epsilon == 0.0 || b >= n {
        return None;
    }
    (1..=(n - b)).find(|&q| {
        exact_epsilon_dissemination(n, q, b)
            .map(|e| e <= target_epsilon)
            .unwrap_or(false)
    })
}

/// Smallest quorum size `q` (with its threshold `k = ⌈q²/2n⌉`) such that the
/// exact masking ε is at most `target_epsilon`, scanning `q` from `2b + 1`
/// to `n − b`; `None` if none qualifies.
pub fn smallest_quorum_masking(n: u32, b: u32, target_epsilon: f64) -> Option<(u32, u32)> {
    if !(0.0..1.0).contains(&target_epsilon) || target_epsilon == 0.0 || b == 0 || b >= n {
        return None;
    }
    let lo = 2 * b + 1;
    let hi = n.saturating_sub(b);
    for q in lo..=hi {
        let k = pqs_math::bounds::masking_threshold_k(n as u64, q as u64) as u32;
        if k > q {
            continue;
        }
        if let Ok(e) = exact_epsilon_masking(n, q, b, k) {
            if e <= target_epsilon {
                return Some((q, k));
            }
        }
    }
    None
}

/// The read threshold `k ∈ 1..=q` minimising the exact masking ε for the
/// given parameters, together with that ε.
///
/// The paper fixes `k = q²/2n` for its general analysis and remarks
/// (Section 5.4) that choosing `k` to balance the two tail bounds yields
/// "marginally better factors"; for the concrete Table 4 parameters the
/// optimised threshold can be substantially better when `b` is small
/// (because `P(|Q ∩ B| ≥ k)` is already zero for every `k > b`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidConstruction`] for out-of-range parameters.
pub fn optimal_threshold_masking(n: u32, q: u32, b: u32) -> crate::Result<(u32, f64)> {
    validate_masking(n, q, b, 1)?;
    let mut best = (1u32, f64::INFINITY);
    for k in 1..=q {
        let eps = exact_epsilon_masking(n, q, b, k)?;
        if eps < best.1 {
            best = (k, eps);
        }
    }
    Ok(best)
}

/// Smallest quorum size `q` (with its *optimised* threshold `k`) such that
/// the exact masking ε is at most `target_epsilon`; `None` if none
/// qualifies.  Companion of [`smallest_quorum_masking`], which uses the
/// paper's default `k = ⌈q²/2n⌉`.
pub fn smallest_quorum_masking_optimal_k(
    n: u32,
    b: u32,
    target_epsilon: f64,
) -> Option<(u32, u32)> {
    if !(0.0..1.0).contains(&target_epsilon) || target_epsilon == 0.0 || b == 0 || b >= n {
        return None;
    }
    let lo = 2 * b + 1;
    let hi = n.saturating_sub(b);
    for q in lo..=hi {
        if let Ok((k, eps)) = optimal_threshold_masking(n, q, b) {
            if eps <= target_epsilon {
                return Some((q, k));
            }
        }
    }
    None
}

fn validate_nq(n: u32, q: u32) -> crate::Result<()> {
    if n == 0 {
        return Err(CoreError::invalid("universe must be non-empty"));
    }
    if q == 0 || q > n {
        return Err(CoreError::invalid(format!(
            "quorum size {q} must be in 1..={n}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqs_math::bounds;

    #[test]
    fn intersecting_epsilon_matches_hand_computation() {
        // n=25, q=9: C(16,9)/C(25,9) = 11440 / 2042975.
        let eps = exact_epsilon_intersecting(25, 9).unwrap();
        assert!((eps - 11440.0 / 2_042_975.0).abs() < 1e-12);
        // Quorums larger than half the universe always intersect.
        assert_eq!(exact_epsilon_intersecting(25, 13).unwrap(), 0.0);
    }

    #[test]
    fn intersecting_epsilon_below_lemma_3_15_bound() {
        for &(n, q) in &[(100u32, 22u32), (225, 36), (400, 49), (900, 75)] {
            let exact = exact_epsilon_intersecting(n, q).unwrap();
            let ell = q as f64 / (n as f64).sqrt();
            assert!(exact <= bounds::epsilon_intersecting_bound(ell) + 1e-12);
        }
    }

    #[test]
    fn intersecting_epsilon_decreasing_in_q() {
        let mut prev = 1.0;
        for q in 1..=50 {
            let e = exact_epsilon_intersecting(100, q).unwrap();
            assert!(e <= prev + 1e-12, "q={q}");
            prev = e;
        }
    }

    #[test]
    fn parameter_validation() {
        assert!(exact_epsilon_intersecting(0, 1).is_err());
        assert!(exact_epsilon_intersecting(10, 0).is_err());
        assert!(exact_epsilon_intersecting(10, 11).is_err());
        assert!(exact_epsilon_dissemination(10, 5, 10).is_err());
        assert!(exact_epsilon_masking(10, 5, 5, 2).is_err());
        assert!(exact_epsilon_masking(10, 5, 2, 6).is_err());
        assert_eq!(exact_epsilon_masking(100, 30, 5, 0).unwrap(), 1.0);
    }

    #[test]
    fn dissemination_reduces_to_intersecting_when_b_is_zero() {
        let a = exact_epsilon_dissemination(100, 20, 0).unwrap();
        let b = exact_epsilon_intersecting(100, 20).unwrap();
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn dissemination_epsilon_grows_with_b_and_shrinks_with_q() {
        let base = exact_epsilon_dissemination(100, 24, 4).unwrap();
        let more_faults = exact_epsilon_dissemination(100, 24, 10).unwrap();
        assert!(more_faults > base);
        let bigger_quorum = exact_epsilon_dissemination(100, 30, 4).unwrap();
        assert!(bigger_quorum < base);
    }

    #[test]
    fn dissemination_epsilon_matches_monte_carlo() {
        use pqs_math::sampling::sample_k_of_n;
        use rand::SeedableRng;
        let (n, q, b) = (50u32, 12u32, 8u32);
        let exact = exact_epsilon_dissemination(n, q, b).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let trials = 60_000;
        let mut bad = 0usize;
        for _ in 0..trials {
            let q1 = sample_k_of_n(&mut rng, q as u64, n as u64).unwrap();
            let q2 = sample_k_of_n(&mut rng, q as u64, n as u64).unwrap();
            // B = {0, .., b-1} (placement is irrelevant by symmetry).
            let q2set: std::collections::HashSet<u64> = q2.into_iter().collect();
            let contained = q1
                .iter()
                .filter(|x| q2set.contains(x))
                .all(|&x| x < b as u64);
            if contained {
                bad += 1;
            }
        }
        let mc = bad as f64 / trials as f64;
        assert!((mc - exact).abs() < 0.01, "exact={exact} monte-carlo={mc}");
    }

    #[test]
    fn dissemination_epsilon_below_lemma_4_3_bound_for_one_third() {
        // b = n/3: the Lemma 4.3 bound 2e^{-l^2/6} must dominate the exact value.
        let n = 300u32;
        let b = 100u32;
        for &q in &[35u32, 52, 70] {
            let ell = q as f64 / (n as f64).sqrt();
            let exact = exact_epsilon_dissemination(n, q, b).unwrap();
            let bound = bounds::dissemination_bound_one_third(ell);
            assert!(exact <= bound + 1e-12, "q={q} exact={exact} bound={bound}");
        }
    }

    #[test]
    fn masking_epsilon_matches_monte_carlo() {
        use pqs_math::sampling::sample_k_of_n;
        use rand::SeedableRng;
        let (n, q, b) = (60u32, 25u32, 6u32);
        let k = pqs_math::bounds::masking_threshold_k(n as u64, q as u64) as u32;
        let exact = exact_epsilon_masking(n, q, b, k).unwrap();
        // Monte-Carlo straight from Definition 5.1: read and write quorums
        // both uniform, B = {0..b} (placement irrelevant by symmetry).
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let trials = 60_000;
        let mut bad = 0usize;
        for _ in 0..trials {
            let read = sample_k_of_n(&mut rng, q as u64, n as u64).unwrap();
            let write: std::collections::HashSet<u64> = sample_k_of_n(&mut rng, q as u64, n as u64)
                .unwrap()
                .into_iter()
                .collect();
            let x = read.iter().filter(|&&s| s < b as u64).count() as u32;
            let y = read
                .iter()
                .filter(|&&s| s >= b as u64 && write.contains(&s))
                .count() as u32;
            if !(x < k && y >= k) {
                bad += 1;
            }
        }
        let mc = bad as f64 / trials as f64;
        assert!((mc - exact).abs() < 0.01, "exact={exact} mc={mc}");
    }

    #[test]
    fn worst_case_masking_dominates_exact() {
        for &(n, q, b) in &[(100u32, 30u32, 5u32), (225, 64, 7), (400, 94, 9)] {
            let k = pqs_math::bounds::masking_threshold_k(n as u64, q as u64) as u32;
            let exact = exact_epsilon_masking(n, q, b, k).unwrap();
            let worst = worst_case_epsilon_masking(n, q, b, k).unwrap();
            assert!(worst + 1e-12 >= exact, "n={n} exact={exact} worst={worst}");
        }
    }

    #[test]
    fn masking_epsilon_below_theorem_5_10_bound() {
        let n = 400u32;
        let b = 9u32;
        for &ell in &[3.0f64, 4.7, 6.0] {
            let q = (ell * b as f64).round() as u32;
            let k = pqs_math::bounds::masking_threshold_k(n as u64, q as u64) as u32;
            let exact = exact_epsilon_masking(n, q, b, k).unwrap();
            let bound = bounds::masking_bound(n as u64, q as u64, q as f64 / b as f64);
            assert!(
                exact <= bound + 1e-9,
                "ell={ell} exact={exact} bound={bound}"
            );
        }
    }

    #[test]
    fn smallest_quorum_intersecting_is_minimal() {
        let q = smallest_quorum_intersecting(100, 0.001).unwrap();
        assert!(exact_epsilon_intersecting(100, q).unwrap() <= 0.001);
        assert!(exact_epsilon_intersecting(100, q - 1).unwrap() > 0.001);
        assert!(smallest_quorum_intersecting(100, 0.0).is_none());
        assert!(smallest_quorum_intersecting(100, 1.0).is_none());
    }

    #[test]
    fn smallest_quorum_dissemination_is_minimal_and_capped() {
        let (n, b) = (100, 4);
        let q = smallest_quorum_dissemination(n, b, 0.001).unwrap();
        assert!(q <= n - b);
        assert!(exact_epsilon_dissemination(n, q, b).unwrap() <= 0.001);
        assert!(exact_epsilon_dissemination(n, q - 1, b).unwrap() > 0.001);
        assert!(smallest_quorum_dissemination(n, 100, 0.001).is_none());
    }

    #[test]
    fn smallest_quorum_masking_meets_target() {
        let (n, b) = (100, 4);
        let (q, k) = smallest_quorum_masking(n, b, 0.001).unwrap();
        assert!(q > 2 * b);
        assert!(exact_epsilon_masking(n, q, b, k).unwrap() <= 0.001);
        assert!(smallest_quorum_masking(n, 0, 0.001).is_none());
        // A tiny universe with a large b cannot reach a small epsilon.
        assert!(smallest_quorum_masking(10, 4, 1e-6).is_none());
    }

    #[test]
    fn optimal_threshold_never_worse_than_default() {
        for &(n, b) in &[(100u32, 4u32), (225, 7), (400, 9)] {
            let ell_table = [(100, 3.80), (225, 4.27), (400, 4.70)]
                .iter()
                .find(|(m, _)| *m == n)
                .unwrap()
                .1;
            let q = (ell_table * (n as f64).sqrt()).round() as u32;
            let default_k = pqs_math::bounds::masking_threshold_k(n as u64, q as u64) as u32;
            let default_eps = exact_epsilon_masking(n, q, b, default_k).unwrap();
            let (opt_k, opt_eps) = optimal_threshold_masking(n, q, b).unwrap();
            assert!(opt_eps <= default_eps + 1e-15, "n={n}");
            assert!(opt_k >= 1 && opt_k <= q);
            // With the optimised threshold the paper's Table 4 parameters get
            // within a small factor of the 0.001 consistency target.
            assert!(opt_eps <= 2e-2, "n={n} opt_eps={opt_eps}");
        }
    }

    #[test]
    fn smallest_quorum_with_optimal_k_not_larger_than_default_rule() {
        let (n, b) = (100, 4);
        let default = smallest_quorum_masking(n, b, 0.001).unwrap();
        let optimal = smallest_quorum_masking_optimal_k(n, b, 0.001).unwrap();
        assert!(optimal.0 <= default.0);
        assert!(exact_epsilon_masking(n, optimal.0, b, optimal.1).unwrap() <= 0.001);
        assert!(smallest_quorum_masking_optimal_k(n, 0, 0.001).is_none());
    }

    #[test]
    fn table_two_shape_small_quorums_suffice() {
        // The headline of Table 2: for eps <= 0.001 the probabilistic system
        // needs far smaller quorums than the majority system's (n+1)/2.
        for &n in &[100u32, 225, 400, 625, 900] {
            let q = smallest_quorum_intersecting(n, 0.001).unwrap();
            assert!(
                (q as f64) < 0.6 * (n as f64 / 2.0),
                "n={n}: probabilistic quorum {q} not clearly smaller than majority {}",
                n / 2 + 1
            );
        }
    }
}
