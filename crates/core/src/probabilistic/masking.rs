//! The (b, ε)-masking construction `R_k(n, q)` of Section 5.
//!
//! For arbitrary (non-self-verifying) data a reading client must be able to
//! *out-vote* the faulty servers: it only accepts a value returned by at
//! least `k` servers (Definition 5.1 and the modified read protocol of
//! Section 5).  The construction keeps the uniform `R(n, q)` set system,
//! sets `q = ℓ·b` with `ℓ > 2`, and uses the threshold `k = q²/2n`, which
//! sits strictly between `E[|Q ∩ B|] = q²/ℓn` and
//! `E[|Q ∩ Q′∖B|] ≈ q²/n·(1 − q/ℓn)` (Section 5.3).  Theorem 5.10 bounds
//! the error probability by `2·exp(−(q²/n)·min{ψ₁(ℓ), ψ₂(ℓ)})`, so any
//! `b < n/2` can be masked with arbitrarily small ε, and for `b = ω(√n)` the
//! load `ℓb/n` beats the `Ω(√(b/n))` lower bound of strict masking systems.

use crate::probabilistic::params::{exact_epsilon_masking, worst_case_epsilon_masking};
use crate::quorum::Quorum;
use crate::system::{ByzantineQuorumSystem, ProbabilisticQuorumSystem, QuorumSystem};
use crate::universe::Universe;
use crate::CoreError;
use pqs_math::binomial::Binomial;
use pqs_math::bounds;
use pqs_math::sampling::sample_k_of_n;
use rand::RngCore;

/// The (b, ε)-masking quorum system `R_k(n, q)`: all `q`-subsets accessed
/// uniformly, with read-acceptance threshold `k`.
///
/// # Examples
///
/// ```
/// use pqs_core::probabilistic::ProbabilisticMasking;
/// use pqs_core::system::{ByzantineQuorumSystem, ProbabilisticQuorumSystem, QuorumSystem};
///
/// // Mask b = sqrt(n) Byzantine servers with load well below the strict
/// // masking lower bound sqrt(2b+1/n).
/// let sys = ProbabilisticMasking::with_target_epsilon(400, 20, 1e-3).unwrap();
/// assert!(sys.epsilon() <= 1e-3);
/// assert!(sys.read_threshold() >= 1);
/// assert_eq!(sys.byzantine_threshold(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilisticMasking {
    universe: Universe,
    quorum_size: u32,
    byzantine: u32,
    threshold: u32,
    exact_epsilon: f64,
}

impl ProbabilisticMasking {
    /// Creates `R_k(n, q)` with the paper's threshold `k = ⌈q²/2n⌉`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if the parameters are out
    /// of range: requires `0 < b < q`, `q ≤ n`, `ℓ = q/b > 2`, fault
    /// tolerance `n − q + 1 > b`, and `k ≤ q`.
    pub fn new(n: u32, q: u32, b: u32) -> crate::Result<Self> {
        let k = bounds::masking_threshold_k(n as u64, q as u64) as u32;
        Self::with_threshold(n, q, b, k)
    }

    /// Creates `R_k(n, q)` with an explicit read threshold `k`.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new); additionally `k` must be in `1..=q`.
    pub fn with_threshold(n: u32, q: u32, b: u32, k: u32) -> crate::Result<Self> {
        if b == 0 {
            return Err(CoreError::invalid(
                "b must be positive; use EpsilonIntersecting when no Byzantine failures are expected",
            ));
        }
        if q == 0 || q > n {
            return Err(CoreError::invalid(format!(
                "quorum size {q} must be in 1..={n}"
            )));
        }
        if q <= 2 * b {
            return Err(CoreError::invalid(format!(
                "masking construction requires l = q/b > 2 (got q={q}, b={b})"
            )));
        }
        if n - q < b {
            return Err(CoreError::invalid(format!(
                "fault tolerance n-q+1 = {} must exceed b = {b} (Definition 5.1)",
                n - q + 1
            )));
        }
        if k == 0 || k > q {
            return Err(CoreError::invalid(format!(
                "read threshold k={k} must be in 1..=q={q}"
            )));
        }
        let exact_epsilon = exact_epsilon_masking(n, q, b, k)?;
        Ok(ProbabilisticMasking {
            universe: Universe::new(n),
            quorum_size: q,
            byzantine: b,
            threshold: k,
            exact_epsilon,
        })
    }

    /// Creates the system with `q = ℓ·b` rounded to the nearest integer and
    /// `k = ⌈q²/2n⌉`.
    ///
    /// # Errors
    ///
    /// As for [`new`](Self::new); additionally `ℓ` must exceed 2.
    pub fn with_ell(n: u32, ell: f64, b: u32) -> crate::Result<Self> {
        if ell.is_nan() || ell <= 2.0 {
            return Err(CoreError::invalid(format!(
                "masking construction requires l > 2, got {ell}"
            )));
        }
        let q = (ell * b as f64).round().max(1.0) as u32;
        Self::new(n, q, b)
    }

    /// Creates the smallest system (scanning `q` upward from `2b + 1`) whose
    /// exact ε is at most `target_epsilon` — the Table 4 selection rule.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if no quorum size achieves
    /// the target for this `n` and `b`.
    pub fn with_target_epsilon(n: u32, b: u32, target_epsilon: f64) -> crate::Result<Self> {
        let (q, k) = crate::probabilistic::params::smallest_quorum_masking(n, b, target_epsilon)
            .ok_or_else(|| {
                CoreError::invalid(format!(
                    "no quorum size achieves masking epsilon <= {target_epsilon} for n={n}, b={b}"
                ))
            })?;
        Self::with_threshold(n, q, b, k)
    }

    /// The fixed quorum size `q`.
    pub fn quorum_size(&self) -> usize {
        self.quorum_size as usize
    }

    /// The read-acceptance threshold `k`: a reading client only accepts a
    /// value reported by at least `k` servers of its quorum.
    pub fn read_threshold(&self) -> usize {
        self.threshold as usize
    }

    /// The paper's parameter `ℓ = q/b`.
    pub fn ell(&self) -> f64 {
        self.quorum_size as f64 / self.byzantine as f64
    }

    /// The exact probability that the Definition 5.1 event fails (what
    /// [`ProbabilisticQuorumSystem::epsilon`] reports).
    pub fn exact_epsilon(&self) -> f64 {
        self.exact_epsilon
    }

    /// The pessimistic ε in which all `b` faulty servers lie inside the
    /// previous write quorum (the coupling of Lemma 5.9); an upper bound on
    /// [`exact_epsilon`](Self::exact_epsilon).
    pub fn worst_case_epsilon(&self) -> f64 {
        worst_case_epsilon_masking(
            self.universe.size(),
            self.quorum_size,
            self.byzantine,
            self.threshold,
        )
        .expect("parameters validated at construction")
    }

    /// The Theorem 5.10 analytical bound
    /// `2·exp(−(q²/n)·min{ψ₁(ℓ), ψ₂(ℓ)})`.
    pub fn epsilon_bound(&self) -> f64 {
        bounds::masking_bound(
            self.universe.size() as u64,
            self.quorum_size as u64,
            self.ell(),
        )
    }
}

impl QuorumSystem for ProbabilisticMasking {
    fn universe(&self) -> Universe {
        self.universe
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> Quorum {
        let indices = sample_k_of_n(rng, self.quorum_size as u64, self.universe.size() as u64)
            .expect("quorum size validated");
        Quorum::from_indices(self.universe, indices.into_iter().map(|i| i as u32))
            .expect("indices in range")
    }

    fn name(&self) -> String {
        format!(
            "masking-R(n={}, q={}, b={}, k={})",
            self.universe.size(),
            self.quorum_size,
            self.byzantine,
            self.threshold
        )
    }

    fn min_quorum_size(&self) -> usize {
        self.quorum_size as usize
    }

    /// Exactly `q/n = ℓb/n` under the uniform strategy (Section 5.5).
    fn load(&self) -> f64 {
        self.quorum_size as f64 / self.universe.size() as f64
    }

    /// `n − q + 1` — the uniform system is symmetric, so all its quorums are
    /// high quality and the probabilistic fault tolerance (Definition 3.7)
    /// coincides with the strict value (Section 5.5).
    fn fault_tolerance(&self) -> u32 {
        self.universe.size() - self.quorum_size + 1
    }

    /// Exact binomial tail for crash failures (Section 5.5 quotes the
    /// Chernoff form `e^{−2n(1−q/n−p)²}`).
    fn failure_probability(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        Binomial::new(self.universe.size() as u64, p)
            .expect("p clamped")
            .sf((self.universe.size() - self.quorum_size) as u64)
    }
}

impl ByzantineQuorumSystem for ProbabilisticMasking {
    fn byzantine_threshold(&self) -> u32 {
        self.byzantine
    }
}

impl ProbabilisticQuorumSystem for ProbabilisticMasking {
    fn epsilon(&self) -> f64 {
        self.exact_epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_validation() {
        assert!(ProbabilisticMasking::new(100, 38, 0).is_err());
        assert!(ProbabilisticMasking::new(100, 0, 4).is_err());
        assert!(ProbabilisticMasking::new(100, 101, 4).is_err());
        // l <= 2 rejected.
        assert!(ProbabilisticMasking::new(100, 8, 4).is_err());
        // Fault tolerance must exceed b.
        assert!(ProbabilisticMasking::new(100, 97, 4).is_err());
        assert!(ProbabilisticMasking::with_ell(100, 2.0, 4).is_err());
        assert!(ProbabilisticMasking::with_threshold(100, 38, 4, 0).is_err());
        assert!(ProbabilisticMasking::with_threshold(100, 38, 4, 39).is_err());
        assert!(ProbabilisticMasking::new(100, 38, 4).is_ok());
    }

    #[test]
    fn table_four_sizes_and_fault_tolerance() {
        // Table 4: (n, b, l, quorum size, fault tolerance). Note that in the
        // Section 6 tables l denotes q/sqrt(n) (consistent with Tables 2 and
        // 3), not the q/b ratio used inside the Section 5 analysis, so the
        // quorum size is l*sqrt(n).
        for &(n, b, ell_table, size, ft) in &[
            (25u32, 2u32, 3.00f64, 15usize, 11u32),
            (100, 4, 3.80, 38, 63),
            (225, 7, 4.27, 64, 162),
            (400, 9, 4.70, 94, 307),
            (625, 12, 4.92, 123, 503),
            (900, 14, 5.07, 152, 749),
        ] {
            let q = (ell_table * (n as f64).sqrt()).round() as u32;
            let sys = ProbabilisticMasking::new(n, q, b).unwrap();
            assert_eq!(sys.quorum_size(), size, "n={n}");
            assert_eq!(sys.fault_tolerance(), ft, "n={n}");
        }
    }

    #[test]
    fn threshold_is_paper_default() {
        let sys = ProbabilisticMasking::new(400, 94, 9).unwrap();
        // k = ceil(94^2 / 800) = ceil(11.045) = 12.
        assert_eq!(sys.read_threshold(), 12);
        let custom = ProbabilisticMasking::with_threshold(400, 94, 9, 10).unwrap();
        assert_eq!(custom.read_threshold(), 10);
    }

    #[test]
    fn epsilon_relations() {
        let sys = ProbabilisticMasking::new(400, 94, 9).unwrap();
        assert!(sys.exact_epsilon() <= sys.worst_case_epsilon() + 1e-12);
        assert!(sys.worst_case_epsilon() <= sys.epsilon_bound() + 1e-9);
        assert_eq!(sys.epsilon(), sys.exact_epsilon());
        assert!((sys.ell() - 94.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn with_target_epsilon_meets_target() {
        let sys = ProbabilisticMasking::with_target_epsilon(400, 20, 1e-3).unwrap();
        assert!(sys.epsilon() <= 1e-3);
        assert!(sys.quorum_size() > 40);
        assert!(ProbabilisticMasking::with_target_epsilon(20, 9, 1e-6).is_err());
    }

    #[test]
    fn masks_byzantine_thresholds_beyond_strict_limit() {
        // Strict masking caps at (n-1)/4; the probabilistic construction
        // handles b well beyond that (here n=900, b=250 > 224).
        let n = 900u32;
        let b = 250u32;
        let sys = ProbabilisticMasking::with_ell(n, 2.2, b).unwrap();
        assert!(sys.byzantine_threshold() > crate::byzantine::max_masking_threshold(n));
        assert!(sys.epsilon() < 1.0);
    }

    #[test]
    fn beats_strict_masking_load_for_b_omega_sqrt_n() {
        // Section 5.5: for b = sqrt(n) and l = n^{1/5} the load is O(n^-0.3),
        // beating the strict lower bound Omega(n^-0.25).
        let n = 10_000u32;
        let b = 100u32; // sqrt(n)
        let ell = (n as f64).powf(0.2);
        let sys = ProbabilisticMasking::with_ell(n, ell, b).unwrap();
        let strict_lower_bound = ((2 * b + 1) as f64 / n as f64).sqrt();
        assert!(
            sys.load() < strict_lower_bound,
            "load {} should beat strict bound {}",
            sys.load(),
            strict_lower_bound
        );
    }

    #[test]
    fn sampling_and_measures() {
        let sys = ProbabilisticMasking::new(100, 38, 4).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let q = sys.sample_quorum(&mut rng);
        assert_eq!(q.len(), 38);
        assert!((sys.load() - 0.38).abs() < 1e-12);
        assert_eq!(sys.fault_tolerance(), 63);
        assert!(sys.name().contains("masking-R"));
        assert_eq!(sys.failure_probability(0.0), 0.0);
        assert!((sys.failure_probability(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_masking_event_matches_epsilon() {
        // Monte-Carlo check of Definition 5.1 on a moderate system.
        let sys = ProbabilisticMasking::new(80, 26, 8).unwrap();
        let k = sys.read_threshold();
        let b_set = crate::quorum::Quorum::from_indices(sys.universe(), 0u32..8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let trials = 40_000;
        let mut bad = 0usize;
        for _ in 0..trials {
            let read = sys.sample_quorum(&mut rng);
            let write = sys.sample_quorum(&mut rng);
            let x = read.faulty_overlap(&b_set);
            let y = read.correct_overlap(&write, &b_set);
            if !(x < k && y >= k) {
                bad += 1;
            }
        }
        let empirical = bad as f64 / trials as f64;
        assert!(
            (empirical - sys.epsilon()).abs() < 0.012,
            "empirical={empirical} exact={}",
            sys.epsilon()
        );
    }
}
