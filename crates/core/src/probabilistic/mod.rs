//! The paper's probabilistic quorum constructions.
//!
//! All three constructions share the same set system `R(n, q)` — *every*
//! `q`-subset of the universe is a quorum and the access strategy is uniform
//! (Definition 3.13) — and differ only in the intersection event they are
//! required to make likely and, for masking systems, in the read threshold
//! `k` applied by clients:
//!
//! | Type | Intersection requirement | ε bound | Construction |
//! |---|---|---|---|
//! | [`EpsilonIntersecting`] | `Q ∩ Q′ ≠ ∅` | `e^{−ℓ²}` (Thm 3.16) | `R(n, ℓ√n)` |
//! | [`ProbabilisticDissemination`] | `Q ∩ Q′ ⊄ B` | `2e^{−ℓ²/6}` for `b=n/3` (Thm 4.4), `ε_α` for `b=αn` (Thm 4.6) | `R(n, ℓ√n)` |
//! | [`ProbabilisticMasking`] | `|Q∩B| < k ∧ |Q∩Q′∖B| ≥ k` | `2e^{−(q²/n)·min(ψ₁,ψ₂)}` (Thm 5.10) | `R_k(n, ℓb)`, `k = q²/2n` |
//!
//! [`params`] provides the exact ε values used to size the systems for the
//! paper's concrete comparisons (Tables 2–4).

pub mod params;

mod dissemination;
mod epsilon_intersecting;
mod masking;

pub use dissemination::ProbabilisticDissemination;
pub use epsilon_intersecting::EpsilonIntersecting;
pub use masking::ProbabilisticMasking;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{ProbabilisticQuorumSystem, QuorumSystem};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// All three constructions sample fixed-size quorums from the right
    /// universe and report an epsilon consistent with their exact value.
    #[test]
    fn constructions_share_r_n_q_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let systems: Vec<(Box<dyn ProbabilisticQuorumSystem>, usize)> = vec![
            (
                Box::new(EpsilonIntersecting::new(100, 22).unwrap()),
                22usize,
            ),
            (
                Box::new(ProbabilisticDissemination::new(100, 24, 4).unwrap()),
                24,
            ),
            (Box::new(ProbabilisticMasking::new(100, 38, 4).unwrap()), 38),
        ];
        for (system, size) in &systems {
            assert_eq!(system.min_quorum_size(), *size);
            assert!(system.epsilon() > 0.0 && system.epsilon() < 1.0);
            for _ in 0..20 {
                let q = system.sample_quorum(&mut rng);
                assert_eq!(q.len(), *size);
                assert_eq!(q.universe().size(), 100);
            }
        }
    }

    /// The headline comparison of the paper: at matched epsilon, the
    /// probabilistic systems have far better fault tolerance than any strict
    /// system with comparable load, and far smaller quorums than strict
    /// systems with comparable fault tolerance.
    #[test]
    fn probabilistic_beats_strict_tradeoff() {
        use crate::strict::{Grid, Majority};
        let n = 400;
        let eps = EpsilonIntersecting::with_target_epsilon(n, 1e-3).unwrap();
        let majority = Majority::new(n).unwrap();
        let grid = Grid::new(n).unwrap();
        // Much smaller quorums (hence lower load) than the majority system...
        assert!(eps.min_quorum_size() * 3 < majority.min_quorum_size());
        assert!(eps.load() < majority.load() / 3.0);
        // ...with far better fault tolerance than the grid, whose load is
        // comparable.
        assert!(eps.fault_tolerance() > 10 * grid.fault_tolerance());
    }
}
