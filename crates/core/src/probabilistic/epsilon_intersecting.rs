//! The ε-intersecting construction `R(n, ℓ√n)` of Section 3.4.
//!
//! Quorums are *all* subsets of size `q = ℓ√n` and the access strategy is
//! uniform (Definition 3.13).  By the birthday-paradox argument of
//! Lemma 3.15, two uniformly chosen quorums fail to intersect with
//! probability at most `e^{−ℓ²}`, so choosing `ℓ` a small constant already
//! drives ε below any desired target while the quorums stay `Θ(√n)` — the
//! construction simultaneously achieves optimal load `O(1/√n)`, fault
//! tolerance `n − ℓ√n + 1 = Ω(n)` and failure probability `e^{−Ω(n)}` even
//! for crash probabilities `p > ½` (Section 3.4), which no strict quorum
//! system can do.

use crate::probabilistic::params::exact_epsilon_intersecting;
use crate::quorum::Quorum;
use crate::system::{ProbabilisticQuorumSystem, QuorumSystem};
use crate::universe::Universe;
use crate::CoreError;
use pqs_math::binomial::Binomial;
use pqs_math::bounds;
use pqs_math::sampling::sample_k_of_n;
use rand::RngCore;

/// The ε-intersecting quorum system `R(n, q)`: all `q`-subsets of `n`
/// servers accessed uniformly at random.
///
/// # Examples
///
/// ```
/// use pqs_core::probabilistic::EpsilonIntersecting;
/// use pqs_core::system::{ProbabilisticQuorumSystem, QuorumSystem};
///
/// let sys = EpsilonIntersecting::with_target_epsilon(100, 1e-3).unwrap();
/// assert!(sys.epsilon() <= 1e-3);
/// assert!(sys.quorum_size() < 30);             // ~ℓ√n, far below a majority
/// assert!(sys.fault_tolerance() > 70);         // Ω(n)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonIntersecting {
    universe: Universe,
    quorum_size: u32,
    exact_epsilon: f64,
}

impl EpsilonIntersecting {
    /// Creates `R(n, q)` with an explicit quorum size.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if `n` is zero or `q` is
    /// not in `1..=n`.
    pub fn new(n: u32, q: u32) -> crate::Result<Self> {
        let exact_epsilon = exact_epsilon_intersecting(n, q)?;
        Ok(EpsilonIntersecting {
            universe: Universe::new(n),
            quorum_size: q,
            exact_epsilon,
        })
    }

    /// Creates `R(n, q)` with `q = ℓ√n` rounded to the nearest integer,
    /// from the paper's parameter `ℓ`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if `ℓ ≤ 0` or the implied
    /// quorum size falls outside `1..=n`.
    pub fn with_ell(n: u32, ell: f64) -> crate::Result<Self> {
        if ell.is_nan() || ell <= 0.0 {
            return Err(CoreError::invalid(format!(
                "ell must be positive, got {ell}"
            )));
        }
        let q = (ell * (n as f64).sqrt()).round().max(1.0) as u32;
        Self::new(n, q)
    }

    /// Creates the smallest `R(n, q)` whose *exact* non-intersection
    /// probability is at most `target_epsilon` — the selection rule behind
    /// Table 2 ("ℓ was chosen as small as possible subject to ε ≤ .001").
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if `target_epsilon` is not
    /// in `(0, 1)`.
    pub fn with_target_epsilon(n: u32, target_epsilon: f64) -> crate::Result<Self> {
        let q = crate::probabilistic::params::smallest_quorum_intersecting(n, target_epsilon)
            .ok_or_else(|| {
                CoreError::invalid(format!(
                    "no quorum size achieves epsilon <= {target_epsilon} over {n} servers"
                ))
            })?;
        Self::new(n, q)
    }

    /// The fixed quorum size `q`.
    pub fn quorum_size(&self) -> usize {
        self.quorum_size as usize
    }

    /// The paper's parameter `ℓ = q/√n`.
    pub fn ell(&self) -> f64 {
        self.quorum_size as f64 / (self.universe.size() as f64).sqrt()
    }

    /// The exact non-intersection probability
    /// `C(n−q, q)/C(n, q)` (what [`ProbabilisticQuorumSystem::epsilon`]
    /// reports).
    pub fn exact_epsilon(&self) -> f64 {
        self.exact_epsilon
    }

    /// The analytical Lemma 3.15 / Theorem 3.16 bound `e^{−ℓ²}`, always at
    /// least [`exact_epsilon`](Self::exact_epsilon).
    pub fn epsilon_bound(&self) -> f64 {
        bounds::epsilon_intersecting_bound(self.ell())
    }

    /// The paper's Chernoff bound on the crash failure probability,
    /// `e^{−2n(1 − ℓ/√n − p)²}` for `p ≤ 1 − ℓ/√n` (Section 3.4); compare
    /// with the exact [`QuorumSystem::failure_probability`].
    pub fn failure_probability_bound(&self, p: f64) -> f64 {
        pqs_math::tail::r_system_failure_bound(
            self.universe.size() as u64,
            self.quorum_size as u64,
            p.clamp(0.0, 1.0),
        )
    }
}

impl QuorumSystem for EpsilonIntersecting {
    fn universe(&self) -> Universe {
        self.universe
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> Quorum {
        let indices = sample_k_of_n(rng, self.quorum_size as u64, self.universe.size() as u64)
            .expect("quorum size validated");
        Quorum::from_indices(self.universe, indices.into_iter().map(|i| i as u32))
            .expect("indices in range")
    }

    fn name(&self) -> String {
        format!("R(n={}, q={})", self.universe.size(), self.quorum_size)
    }

    fn min_quorum_size(&self) -> usize {
        self.quorum_size as usize
    }

    /// Every server lies in the same number of quorums, so the load is
    /// exactly `q/n = ℓ/√n` (Section 3.4, "Quality Measures").
    fn load(&self) -> f64 {
        self.quorum_size as f64 / self.universe.size() as f64
    }

    /// All quorums of the uniform construction are high quality, so the
    /// probabilistic fault tolerance (Definition 3.7) coincides with the
    /// strict one: `n − q + 1` — as long as `q` servers survive, some quorum
    /// is fully alive.
    fn fault_tolerance(&self) -> u32 {
        self.universe.size() - self.quorum_size + 1
    }

    /// Exact: the system fails iff more than `n − q` servers crash
    /// (a binomial tail); the paper's `e^{−2n(1−ℓ/√n−p)²}` Chernoff form is
    /// available as
    /// [`failure_probability_bound`](Self::failure_probability_bound).
    fn failure_probability(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        Binomial::new(self.universe.size() as u64, p)
            .expect("p clamped")
            .sf((self.universe.size() - self.quorum_size) as u64)
    }
}

impl ProbabilisticQuorumSystem for EpsilonIntersecting {
    /// The exact non-intersection probability of two quorums drawn by the
    /// uniform strategy.
    fn epsilon(&self) -> f64 {
        self.exact_epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_validation() {
        assert!(EpsilonIntersecting::new(0, 1).is_err());
        assert!(EpsilonIntersecting::new(10, 0).is_err());
        assert!(EpsilonIntersecting::new(10, 11).is_err());
        assert!(EpsilonIntersecting::with_ell(100, 0.0).is_err());
        assert!(EpsilonIntersecting::with_ell(100, -1.0).is_err());
        assert!(EpsilonIntersecting::with_ell(100, f64::NAN).is_err());
        assert!(EpsilonIntersecting::with_target_epsilon(100, 0.0).is_err());
        assert!(EpsilonIntersecting::with_target_epsilon(100, 1.0).is_err());
    }

    #[test]
    fn with_ell_matches_paper_sizes() {
        // Table 2's quorum sizes are exactly l * sqrt(n).
        for &(n, ell, size) in &[
            (25u32, 1.80f64, 9usize),
            (100, 2.20, 22),
            (225, 2.40, 36),
            (400, 2.45, 49),
            (625, 2.48, 62),
            (900, 2.50, 75),
        ] {
            let sys = EpsilonIntersecting::with_ell(n, ell).unwrap();
            assert_eq!(sys.quorum_size(), size, "n={n}");
            // Fault tolerance column of Table 2: n − q + 1.
            assert_eq!(sys.fault_tolerance() as usize, n as usize - size + 1);
        }
    }

    #[test]
    fn epsilon_consistency() {
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        assert!(sys.exact_epsilon() <= sys.epsilon_bound());
        assert_eq!(sys.epsilon(), sys.exact_epsilon());
        assert!((sys.ell() - 2.2).abs() < 1e-12);
        assert!(sys.name().contains("R(n=100"));
    }

    #[test]
    fn with_target_epsilon_is_minimal() {
        let sys = EpsilonIntersecting::with_target_epsilon(400, 1e-3).unwrap();
        assert!(sys.epsilon() <= 1e-3);
        let smaller = EpsilonIntersecting::new(400, sys.quorum_size() as u32 - 1).unwrap();
        assert!(smaller.epsilon() > 1e-3);
    }

    #[test]
    fn sampling_uniformity_of_membership() {
        let sys = EpsilonIntersecting::new(50, 10).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let trials = 20_000;
        let mut counts = [0u32; 50];
        for _ in 0..trials {
            for s in sys.sample_quorum(&mut rng).iter() {
                counts[s.as_usize()] += 1;
            }
        }
        let expected = trials as f64 * 10.0 / 50.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() / expected < 0.06,
                "server {i}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn empirical_nonintersection_matches_epsilon() {
        let sys = EpsilonIntersecting::new(64, 8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let trials = 40_000;
        let mut disjoint = 0usize;
        for _ in 0..trials {
            let a = sys.sample_quorum(&mut rng);
            let b = sys.sample_quorum(&mut rng);
            if !a.intersects(&b) {
                disjoint += 1;
            }
        }
        let empirical = disjoint as f64 / trials as f64;
        assert!(
            (empirical - sys.epsilon()).abs() < 0.01,
            "empirical={empirical} exact={}",
            sys.epsilon()
        );
    }

    #[test]
    fn load_and_failure_probability() {
        let sys = EpsilonIntersecting::new(100, 22).unwrap();
        assert!((sys.load() - 0.22).abs() < 1e-12);
        assert_eq!(sys.failure_probability(0.0), 0.0);
        assert!((sys.failure_probability(1.0) - 1.0).abs() < 1e-12);
        // Exact failure probability is below the paper's Chernoff bound.
        for &p in &[0.3, 0.5, 0.7] {
            assert!(sys.failure_probability(p) <= sys.failure_probability_bound(p) + 1e-12);
        }
    }

    #[test]
    fn beats_strict_failure_probability_floor_beyond_one_half() {
        // Section 3.4 / Figure 1: for 1/2 <= p <= 1 − l/sqrt(n), the failure
        // probability of R(n, l sqrt(n)) is provably better than any strict
        // quorum system's (which is at least p for p >= 1/2).
        let sys = EpsilonIntersecting::with_ell(400, 2.45).unwrap();
        for &p in &[0.5, 0.6, 0.7, 0.8] {
            let strict_floor = pqs_math::bounds::strict_failure_probability_floor(400, p);
            assert!(
                sys.failure_probability(p) < strict_floor,
                "p={p}: {} !< {strict_floor}",
                sys.failure_probability(p)
            );
        }
    }

    #[test]
    fn quorum_larger_than_half_never_fails_to_intersect() {
        let sys = EpsilonIntersecting::new(20, 11).unwrap();
        assert_eq!(sys.epsilon(), 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let a = sys.sample_quorum(&mut rng);
            let b = sys.sample_quorum(&mut rng);
            assert!(a.intersects(&b));
        }
    }
}
