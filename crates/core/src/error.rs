use std::error::Error;
use std::fmt;

/// Errors produced by quorum-system constructors and measure computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A construction was given parameters that cannot produce a valid
    /// system (e.g. a quorum size larger than the universe, or a Byzantine
    /// threshold beyond the construction's resilience bound).
    InvalidConstruction(String),
    /// A server id was outside the universe it was used with.
    ServerOutOfRange {
        /// The offending server index.
        server: u64,
        /// The size of the universe it was checked against.
        universe: u64,
    },
    /// A requested exact computation is infeasible for the given system size
    /// (e.g. exact fault tolerance of an enormous explicit system).
    Infeasible(String),
    /// An error bubbled up from the numerical layer.
    Math(pqs_math::MathError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConstruction(msg) => write!(f, "invalid construction: {msg}"),
            CoreError::ServerOutOfRange { server, universe } => write!(
                f,
                "server {server} is outside the universe of {universe} servers"
            ),
            CoreError::Infeasible(msg) => write!(f, "computation infeasible: {msg}"),
            CoreError::Math(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pqs_math::MathError> for CoreError {
    fn from(e: pqs_math::MathError) -> Self {
        CoreError::Math(e)
    }
}

impl CoreError {
    /// Builds an [`CoreError::InvalidConstruction`] from anything printable.
    pub fn invalid(msg: impl fmt::Display) -> Self {
        CoreError::InvalidConstruction(msg.to_string())
    }

    /// Builds an [`CoreError::Infeasible`] from anything printable.
    pub fn infeasible(msg: impl fmt::Display) -> Self {
        CoreError::Infeasible(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::invalid("q > n").to_string().contains("q > n"));
        assert!(CoreError::infeasible("too big")
            .to_string()
            .contains("too big"));
        let e = CoreError::ServerOutOfRange {
            server: 12,
            universe: 10,
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn from_math_error_preserves_source() {
        let inner = pqs_math::MathError::invalid("bad p");
        let e: CoreError = inner.clone().into();
        assert!(e.to_string().contains("bad p"));
        assert!(Error::source(&e).is_some());
        assert_eq!(e, CoreError::Math(inner));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
