//! Access strategies (Definition 2.3).
//!
//! An access strategy `w` assigns each quorum a probability of being chosen
//! for an access; the paper's probabilistic guarantees are stated *with
//! respect to* a designated strategy (Definition 3.1 pairs the set system
//! with its strategy), and the remark after Theorem 3.2 stresses that the
//! strategy must actually be enforced to obtain the advertised ε.
//!
//! Two kinds of strategies appear in this workspace:
//!
//! * [`WeightedStrategy`] — an explicit probability vector over an
//!   enumerated list of quorums (used by grid and other explicit systems,
//!   and by the counter-example of Section 3.2 that motivates the
//!   high-quality-quorum definitions);
//! * implicit uniform strategies — the `R(n, q)` constructions never
//!   enumerate their quorums; they sample a uniform `q`-subset directly
//!   (see [`crate::probabilistic`]).

use crate::CoreError;
use pqs_math::sampling::weighted_choice;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// An explicit access strategy: a normalised probability vector over the
/// quorums of an explicit quorum system.
///
/// # Examples
///
/// ```
/// use pqs_core::strategy::WeightedStrategy;
/// let s = WeightedStrategy::uniform(4);
/// assert!((s.probability(2) - 0.25).abs() < 1e-12);
/// assert_eq!(s.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedStrategy {
    weights: Vec<f64>,
}

impl WeightedStrategy {
    /// The uniform strategy over `m` quorums.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn uniform(m: usize) -> Self {
        assert!(m > 0, "a strategy needs at least one quorum");
        WeightedStrategy {
            weights: vec![1.0 / m as f64; m],
        }
    }

    /// Builds a strategy from arbitrary non-negative weights, normalising
    /// them to sum to one.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if the weights are empty,
    /// contain negative or non-finite entries, or sum to zero.
    pub fn from_weights(weights: Vec<f64>) -> crate::Result<Self> {
        if weights.is_empty() {
            return Err(CoreError::invalid("strategy weights must be non-empty"));
        }
        let mut total = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(CoreError::invalid(format!(
                    "strategy weight {i} is invalid: {w}"
                )));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(CoreError::invalid("strategy weights sum to zero"));
        }
        Ok(WeightedStrategy {
            weights: weights.into_iter().map(|w| w / total).collect(),
        })
    }

    /// Number of quorums the strategy ranges over.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if the strategy ranges over no quorums
    /// (never true for a validly constructed strategy).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Probability assigned to quorum `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn probability(&self, index: usize) -> f64 {
        self.weights[index]
    }

    /// The full probability vector.
    pub fn probabilities(&self) -> &[f64] {
        &self.weights
    }

    /// Samples a quorum index according to the strategy.
    pub fn sample_index<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        weighted_choice(rng, &self.weights).expect("validated at construction")
    }

    /// Mixes this strategy with another: with probability `1 − gamma` use
    /// `self`, with probability `gamma` use `other`.
    ///
    /// This is the operation used in Section 3.2's discussion of artificially
    /// inflating fault tolerance by mixing in rarely-used singleton quorums;
    /// it is exposed so tests and experiments can reproduce that argument.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConstruction`] if `gamma` is not in
    /// `[0, 1]`. The two strategies may range over different quorum counts;
    /// the result ranges over `self.len() + other.len()` quorums
    /// (self's quorums first).
    pub fn mix(&self, other: &WeightedStrategy, gamma: f64) -> crate::Result<WeightedStrategy> {
        if !(0.0..=1.0).contains(&gamma) || gamma.is_nan() {
            return Err(CoreError::invalid(format!(
                "mixing probability must be in [0,1], got {gamma}"
            )));
        }
        let mut weights = Vec::with_capacity(self.len() + other.len());
        weights.extend(self.weights.iter().map(|w| w * (1.0 - gamma)));
        weights.extend(other.weights.iter().map(|w| w * gamma));
        WeightedStrategy::from_weights(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_strategy_probabilities() {
        let s = WeightedStrategy::uniform(5);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        for i in 0..5 {
            assert!((s.probability(i) - 0.2).abs() < 1e-12);
        }
        let total: f64 = s.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one quorum")]
    fn uniform_zero_panics() {
        let _ = WeightedStrategy::uniform(0);
    }

    #[test]
    fn from_weights_normalises() {
        let s = WeightedStrategy::from_weights(vec![1.0, 3.0]).unwrap();
        assert!((s.probability(0) - 0.25).abs() < 1e-12);
        assert!((s.probability(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_weights_validation() {
        assert!(WeightedStrategy::from_weights(vec![]).is_err());
        assert!(WeightedStrategy::from_weights(vec![0.0, 0.0]).is_err());
        assert!(WeightedStrategy::from_weights(vec![-1.0, 2.0]).is_err());
        assert!(WeightedStrategy::from_weights(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn sampling_follows_weights() {
        let s = WeightedStrategy::from_weights(vec![1.0, 0.0, 3.0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let trials = 20_000;
        for _ in 0..trials {
            counts[s.sample_index(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / trials as f64;
        assert!((frac0 - 0.25).abs() < 0.02, "frac0={frac0}");
    }

    #[test]
    fn mix_reproduces_section_3_2_inflation_setup() {
        // Original strategy over 2 quorums, mixed with singletons at gamma.
        let base = WeightedStrategy::uniform(2);
        let singletons = WeightedStrategy::uniform(4);
        let gamma = 0.01;
        let mixed = base.mix(&singletons, gamma).unwrap();
        assert_eq!(mixed.len(), 6);
        // Base quorums get (1-gamma)/2 each, singletons gamma/4 each.
        assert!((mixed.probability(0) - 0.495).abs() < 1e-12);
        assert!((mixed.probability(2) - 0.0025).abs() < 1e-12);
        let total: f64 = mixed.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mix_rejects_bad_gamma() {
        let a = WeightedStrategy::uniform(2);
        let b = WeightedStrategy::uniform(2);
        assert!(a.mix(&b, -0.1).is_err());
        assert!(a.mix(&b, 1.1).is_err());
        assert!(a.mix(&b, f64::NAN).is_err());
    }
}
